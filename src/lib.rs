//! # spmap — static task mapping via series-parallel decompositions
//!
//! A full reproduction of *"Static task mapping for heterogeneous systems
//! based on series-parallel decompositions"* (Wilhelm & Pionteck, IPPS
//! 2025) as a Rust workspace:
//!
//! * [`graph`] — task DAGs, random series-parallel / almost-SP
//!   generators, attribute augmentation,
//! * [`model`] — the CPU+GPU+FPGA platform model and the linear-time
//!   model-based makespan evaluator (with FPGA dataflow streaming),
//! * [`decomp`] — series-parallel decomposition trees, the paper's
//!   decomposition-forest algorithm for general DAGs (Alg. 1), and the
//!   candidate subgraph sets,
//! * [`core`] — the decomposition-based mapping algorithms (SingleNode /
//!   SeriesParallel, exhaustive / γ-threshold / FirstFit),
//! * [`baselines`] — HEFT and PEFT list schedulers,
//! * [`ga`] — the single-objective NSGA-II mapper,
//! * [`milp`] — a simplex + branch & bound MILP stack with the ZhouLiu,
//!   WGDP-Device and WGDP-Time formulations,
//! * [`workflows`] — WfCommons-style scientific workflow generators,
//! * [`par`] — a small parallel-map utility for experiment sweeps.
//!
//! ## Quickstart
//!
//! ```
//! use spmap::prelude::*;
//!
//! // A random series-parallel task graph with the paper's attributes.
//! let mut graph = random_sp_graph(&SpGenConfig::new(40, 7));
//! augment(&mut graph, &AugmentConfig::default(), 7);
//!
//! // The paper's reference platform: Epyc CPU + Vega GPU + Zynq FPGA.
//! let platform = Platform::reference();
//!
//! // Map with the series-parallel decomposition + FirstFit heuristic.
//! let result = decomposition_map(&graph, &platform, &MapperConfig::sp_first_fit());
//! assert!(result.makespan <= result.cpu_only_makespan);
//! println!("relative improvement: {:.1}%", 100.0 * result.relative_improvement());
//! ```

pub use spmap_baselines as baselines;
pub use spmap_core as core;
pub use spmap_decomp as decomp;
pub use spmap_ga as ga;
pub use spmap_graph as graph;
pub use spmap_milp as milp;
pub use spmap_model as model;
pub use spmap_par as par;
pub use spmap_workflows as workflows;

/// The most common imports in one place.
pub mod prelude {
    pub use spmap_baselines::{heft, peft};
    pub use spmap_core::{
        decomposition_map, map_request, Algo, AttachEdge, GaParams, Limits, MapRequest, MapService,
        MapperConfig, Perturbation, RemapError, RemapOutcome, RemapSession, RuntimeConfig,
        SearchHeuristic, ServiceConfig, ServiceError, SessionId, SubgraphStrategy,
    };
    pub use spmap_decomp::{
        decompose_forest, series_parallel_subgraphs, single_node_subgraphs, CutPolicy,
    };
    pub use spmap_ga::{nsga2_map, nsga2_map_reference, nsga2_map_request, GaConfig};
    pub use spmap_graph::{
        almost_sp_graph, augment,
        gen::{chain, diamond, fig1_graph, fig2_graph, fork_join},
        random_sp_graph, AugmentConfig, GraphBuilder, NodeId, SpGenConfig, Task, TaskGraph,
    };
    pub use spmap_milp::{solve_wgdp_device, solve_wgdp_time, solve_zhou_liu, SolveOptions};
    pub use spmap_model::{
        relative_improvement, DeviceId, Evaluator, Mapping, Platform, SchedulePolicy,
    };
    pub use spmap_workflows::{benchmark_set, Family, SizeTier};
}

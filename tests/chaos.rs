//! Chaos suite for the mapping service's fault containment
//! (docs/ROBUSTNESS.md).  Requires `--features fault-injection`; the
//! whole file compiles away without it.
//!
//! Every test arms deterministic faults (`spmap_core::faults`) inside
//! live service requests and pins the containment contract:
//!
//! * an injected panic surfaces to its caller as a **typed**
//!   [`ServiceError::Internal`] carrying the recognizable payload —
//!   never as a propagated panic,
//! * admission slots are released by RAII drop guards, so a panicking
//!   request can never wedge a `max_inflight = 1` service (the
//!   slot-leak regression),
//! * injected *error* faults degrade into the existing typed refusal
//!   (`MapperError::NanDelta`) rather than a new failure mode,
//! * a panic inside a session operation poisons only that session:
//!   warm remaps refuse with [`ServiceError::SessionPoisoned`],
//!   `remap_full` rebuilds and recovers it bit-identically to a fresh
//!   session, and `close_session` disposes of it (reporting the
//!   poison),
//! * under concurrent clients with faults firing mid-flight, every
//!   unfaulted response stays bit-identical to the direct mapper, the
//!   accounting balances (`admitted == completed + failed`), and a
//!   fault-free clean pass succeeds afterwards — across explicit
//!   {1,2}-shard pools and both dispatch backends.

#![cfg(feature = "fault-injection")]

use std::sync::Arc;

use spmap::par::{with_backend, with_pool, ParBackend, Pool};
use spmap::prelude::*;
use spmap_core::faults::{arm, arm_kind};
use spmap_core::{
    EngineConfig, FaultKind, FaultSchedule, FaultSite, MapRequest, MapService, MapperResult,
    RemapOutcome, RemapSession, ServiceConfig, ServiceError, INJECTED_PANIC_PREFIX,
};

/// Swallow the default panic-hook chatter of *injected* panics (they
/// are expected output here) while forwarding organic ones untouched.
fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let injected = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .is_some_and(|s| s.starts_with(INJECTED_PANIC_PREFIX));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// A 48-node augmented SP request under the reference platform —
/// large enough that 2 engine threads actually run parallel pool
/// batches (the `PoolBatch` fault site is on the executed path).
fn request(seed: u64) -> MapRequest {
    let mut g = random_sp_graph(&SpGenConfig::new(48, seed));
    augment(&mut g, &AugmentConfig::default(), seed);
    MapRequest::from_mapper_config(
        Arc::new(g),
        Arc::new(Platform::reference()),
        &MapperConfig {
            engine: EngineConfig {
                threads: Some(2),
                ..EngineConfig::default()
            },
            ..MapperConfig::sp_first_fit()
        },
    )
}

fn reference(req: &MapRequest) -> MapperResult {
    let cfg = req.mapper_config().expect("decomposition request");
    decomposition_map(&req.graph, &req.platform, &cfg)
}

fn assert_identical(tag: &str, got: &MapperResult, want: &MapperResult) {
    assert_eq!(got.mapping, want.mapping, "{tag}: mapping diverged");
    assert_eq!(got.makespan, want.makespan, "{tag}: makespan diverged");
    assert_eq!(got.history, want.history, "{tag}: history diverged");
    assert_eq!(got.batch, want.batch, "{tag}: decision counters diverged");
}

fn assert_outcomes_identical(tag: &str, got: &RemapOutcome, want: &RemapOutcome) {
    assert_eq!(got.mapping, want.mapping, "{tag}: mapping diverged");
    assert_eq!(got.makespan, want.makespan, "{tag}: makespan diverged");
    assert_eq!(got.history, want.history, "{tag}: history diverged");
    assert_eq!(
        got.iterations, want.iterations,
        "{tag}: iterations diverged"
    );
    assert_eq!(
        got.neighborhood_ops, want.neighborhood_ops,
        "{tag}: neighborhood diverged"
    );
    assert_eq!(got.warm, want.warm, "{tag}: path flag diverged");
}

/// Each map-path fault site, panicking mid-request under both dispatch
/// backends: the caller gets `Internal` with the recognizable payload
/// naming the site, the slot is released, and an immediate rerun of the
/// same request returns the reference bits.
#[test]
fn injected_panics_surface_as_typed_internal_errors() {
    silence_injected_panics();
    let req = request(1001);
    let want = reference(&req);
    let pool = Arc::new(Pool::with_shards(1));

    for backend in [ParBackend::Pool, ParBackend::Scoped] {
        for site in [
            FaultSite::ArtifactBuild,
            FaultSite::CandidateSweep,
            FaultSite::PoolBatch,
        ] {
            let tag = format!("{backend:?}, {}", site.name());
            with_pool(&pool, || {
                with_backend(backend, || {
                    // Fresh service per case: the first map is a cache
                    // miss, so every site is on the executed path.
                    let service = MapService::new(ServiceConfig::default());
                    let fault = arm(site, 1);
                    let err = service.map(&req).expect_err("armed panic must fault");
                    assert!(fault.fired(), "{tag}: fault never fired");
                    drop(fault);
                    match &err {
                        ServiceError::Internal {
                            site: boundary,
                            payload,
                        } => {
                            assert_eq!(*boundary, "map", "{tag}");
                            assert!(
                                payload.starts_with(INJECTED_PANIC_PREFIX)
                                    && payload.contains(site.name()),
                                "{tag}: payload lost: {payload}"
                            );
                        }
                        other => panic!("{tag}: expected Internal, got {other:?}"),
                    }
                    let resp = service.map(&req).expect("service survives the panic");
                    assert_identical(&tag, &resp.result, &want);
                    let stats = service.stats();
                    assert_eq!(stats.failed, 1, "{tag}");
                    assert_eq!(stats.completed, 1, "{tag}");
                    assert_eq!(stats.admitted, stats.completed + stats.failed, "{tag}");
                })
            });
        }
    }
}

/// An `Error`-kind fault at the candidate sweep degrades into the
/// existing typed refusal (`MapperError::NanDelta`) — no new failure
/// mode, and the service counts it as a completed request.
#[test]
fn injected_sweep_errors_degrade_to_the_typed_nan_refusal() {
    silence_injected_panics();
    let req = request(1002);
    let want = reference(&req);
    let service = MapService::new(ServiceConfig::default());

    let fault = arm_kind(FaultSite::CandidateSweep, 1, FaultKind::Error);
    let err = service.map(&req).expect_err("armed error must refuse");
    assert!(fault.fired());
    drop(fault);
    assert!(
        matches!(
            err,
            ServiceError::Mapper(spmap_core::MapperError::NanDelta { .. })
        ),
        "expected the NanDelta refusal, got {err:?}"
    );

    let resp = service.map(&req).expect("clean rerun");
    assert_identical("post-error rerun", &resp.result, &want);
    let stats = service.stats();
    assert_eq!(stats.failed, 0, "a typed refusal is not a contained panic");
    assert_eq!(stats.completed, 2, "refusal and rerun both completed");
}

/// The slot-leak regression (the bug the RAII guards fix): two
/// consecutive panicking requests on a `max_inflight = 1`, zero-queue
/// service must each release their slot — the third, clean request
/// maps successfully instead of being rejected forever.
#[test]
fn panicking_requests_release_their_admission_slots() {
    silence_injected_panics();
    let req = request(1003);
    let want = reference(&req);
    let service = MapService::new(ServiceConfig {
        max_inflight: 1,
        max_queued: 0,
        ..ServiceConfig::default()
    });

    for round in 0..2 {
        let fault = arm(FaultSite::ArtifactBuild, 1);
        let err = service.map(&req).expect_err("armed panic must fault");
        assert!(fault.fired(), "round {round}");
        drop(fault);
        assert!(
            matches!(err, ServiceError::Internal { .. }),
            "round {round}: {err:?}"
        );
    }

    // A leaked slot would reject this with `Overloaded`.
    let resp = service
        .map(&req)
        .expect("both panicked slots must have been released");
    assert_identical("post-leak-check map", &resp.result, &want);

    let stats = service.stats();
    assert_eq!(stats.admitted, 3);
    assert_eq!(stats.failed, 2);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.rejected, 0, "nothing was ever rejected");
    assert_eq!(stats.peak_inflight, 1);
}

/// A panic inside a session operation poisons only that session: warm
/// remaps refuse typed, `remap_full` rebuilds and recovers — after
/// recovery the session is bit-identical to a fresh one (sessions
/// mutate only at their panic-free commit boundary, so the committed
/// state the rebuild derives from is intact).
#[test]
fn poisoned_sessions_recover_through_remap_full() {
    silence_injected_panics();
    let req = request(1004);
    let batch = vec![Perturbation::DeviceLost(DeviceId(1))];
    let service = MapService::new(ServiceConfig::default());
    let opened = service.open_session(&req).expect("open");

    // Panic at the commit boundary — *before* any session field
    // mutates, so the incumbent below is still the opening state.
    let fault = arm(FaultSite::SessionCommit, 1);
    let err = service
        .remap(opened.id, &batch)
        .expect_err("armed panic must fault");
    assert!(fault.fired());
    drop(fault);
    assert!(
        matches!(&err, ServiceError::Internal { site, .. } if *site == "remap"),
        "{err:?}"
    );

    // The poison is sticky for warm remaps — a typed refusal, not a
    // panic, and not a silent wrong answer.
    let refused = service.remap(opened.id, &batch).expect_err("poisoned");
    assert!(
        matches!(refused, ServiceError::SessionPoisoned(id) if id == opened.id),
        "{refused:?}"
    );

    // `remap_full` is the designated recovery path.  The aborted commit
    // never mutated the session, so recovery runs against the opening
    // state: a fresh session stepped the same way is the reference.
    let recovered = service
        .remap_full(opened.id, &batch)
        .expect("remap_full recovers the poisoned session");
    let want = {
        let mut fresh = RemapSession::open(&req, None).expect("reference session");
        fresh.remap_full(&batch).expect("reference remap_full")
    };
    assert_outcomes_identical("recovered vs fresh", &recovered, &want);

    // The poison is cleared: warm remaps and close work again.
    let restored = service
        .remap(opened.id, &[Perturbation::DeviceRestored(DeviceId(1))])
        .expect("warm remap after recovery");
    assert!(restored.warm, "back on the warm path");
    let closed = service.close_session(opened.id).expect("close");
    assert!(!closed.poisoned, "recovery cleared the poison");
    assert_eq!(closed.mapping, restored.mapping);

    let stats = service.stats();
    assert_eq!(stats.failed, 1, "only the injected panic");
    assert_eq!(stats.remaps_full, 1);
    assert_eq!(stats.admitted, stats.completed + stats.failed);
}

/// The other exit for a poisoned session: `close_session` disposes of
/// it, reports the poison, and returns the last *committed* incumbent.
#[test]
fn poisoned_sessions_can_be_disposed_by_close() {
    silence_injected_panics();
    let req = request(1005);
    let service = MapService::new(ServiceConfig::default());
    let opened = service.open_session(&req).expect("open");
    let initial = opened.result.mapping.clone();

    let fault = arm(FaultSite::SessionCompile, 1);
    let err = service
        .remap(opened.id, &[Perturbation::DeviceLost(DeviceId(1))])
        .expect_err("armed panic must fault");
    assert!(fault.fired());
    drop(fault);
    assert!(matches!(err, ServiceError::Internal { .. }), "{err:?}");

    let closed = service.close_session(opened.id).expect("close disposes");
    assert!(closed.poisoned, "the close must report the poison");
    assert_eq!(
        closed.mapping, initial,
        "the panic never committed — the incumbent is the opening state"
    );
    assert_eq!(closed.remaps, 0);
    assert_eq!(service.open_sessions(), 0);
}

/// Eight concurrent clients with seeded faults firing mid-flight,
/// across explicit {1,2}-shard pools and both dispatch backends: every
/// response is either bit-identical to the direct mapper or a typed
/// error, the accounting balances at every round's quiescence, and a
/// fault-free clean pass follows.  The fault schedule is a pure
/// function of its seed, so every cell runs the same plans.
#[test]
fn concurrent_chaos_keeps_unfaulted_responses_bit_identical() {
    silence_injected_panics();
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 3;
    const REQUESTS_PER_CLIENT: usize = 3;

    let requests: Vec<MapRequest> = (0..3u64).map(|i| request(2000 + i)).collect();
    let references: Vec<MapperResult> = requests.iter().map(reference).collect();

    for shards in [1usize, 2] {
        let pool = Arc::new(Pool::with_shards(shards));
        for backend in [ParBackend::Pool, ParBackend::Scoped] {
            let tag = format!("shards {shards}, backend {backend:?}");
            // Queue room for every client, and a byte-starved cache so
            // the artifact-build site stays on every request's path.
            let service = Arc::new(MapService::new(ServiceConfig {
                max_inflight: CLIENTS,
                max_queued: CLIENTS,
                cache_budget_bytes: 1,
                ..ServiceConfig::default()
            }));
            let mut schedule = FaultSchedule::new(0xC4A05);
            let mut ok = 0u64;
            for round in 0..ROUNDS {
                let (site, hit, kind) = schedule.next_map_plan(8);
                let fault = arm_kind(site, hit, kind);
                let round_ok: u64 = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..CLIENTS)
                        .map(|client| {
                            let service = Arc::clone(&service);
                            let pool = Arc::clone(&pool);
                            let requests = &requests;
                            let references = &references;
                            let tag = &tag;
                            scope.spawn(move || {
                                with_pool(&pool, || {
                                    with_backend(backend, || {
                                        let mut ok = 0u64;
                                        for i in 0..REQUESTS_PER_CLIENT {
                                            let idx = (client + i) % requests.len();
                                            match service.map(&requests[idx]) {
                                                Ok(resp) => {
                                                    assert_identical(
                                                        &format!(
                                                            "{tag}, round {round}, \
                                                             client {client}, graph {idx}"
                                                        ),
                                                        &resp.result,
                                                        &references[idx],
                                                    );
                                                    ok += 1;
                                                }
                                                Err(ServiceError::Internal { .. })
                                                | Err(ServiceError::Mapper(_)) => {}
                                                Err(other) => panic!(
                                                    "{tag}, round {round}: \
                                                     unexpected outcome {other:?}"
                                                ),
                                            }
                                        }
                                        ok
                                    })
                                })
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("containment breached: client panicked"))
                        .sum()
                });
                ok += round_ok;
                drop(fault);
                let stats = service.stats();
                assert_eq!(
                    stats.admitted,
                    stats.completed + stats.failed,
                    "{tag}, round {round}: accounting must balance at quiescence"
                );
            }
            let submitted = (CLIENTS * ROUNDS * REQUESTS_PER_CLIENT) as u64;
            let stats = service.stats();
            assert_eq!(stats.admitted, submitted, "{tag}: queue room for everyone");
            assert_eq!(stats.rejected, 0, "{tag}");
            assert!(ok > 0, "{tag}: chaos rounds still produce good responses");

            // Fault-free clean pass on the same service: nothing leaked
            // into its future.
            with_pool(&pool, || {
                with_backend(backend, || {
                    for (i, req) in requests.iter().enumerate() {
                        let resp = service.map(req).expect("clean pass");
                        assert_identical(
                            &format!("{tag}, clean pass graph {i}"),
                            &resp.result,
                            &references[i],
                        );
                    }
                })
            });
        }
    }
}

//! The error surface as API: `Display` texts, `#[non_exhaustive]`
//! classification matching, `From` conversions and `std::error::Error`
//! trait-object coercion for [`MapperError`], [`RemapError`] and
//! [`ServiceError`] — including the fault-containment variants
//! (`Internal`, `SessionPoisoned`) introduced with docs/ROBUSTNESS.md.
//!
//! Display strings are load-bearing: operators grep logs for them and
//! the chaos harness classifies on the variants, so changes here are
//! API changes and should be deliberate.

use spmap::model::DeviceId;
use spmap_core::{MapperError, RemapError, ServiceError, SessionId};
use spmap_graph::NodeId;

#[test]
fn mapper_error_display_is_pinned() {
    let nan = MapperError::NanDelta { op: 42 };
    let text = nan.to_string();
    assert!(
        text.contains("candidate operation 42") && text.contains("NaN"),
        "NanDelta display drifted: {text}"
    );
    let unsupported = MapperError::UnsupportedAlgo { algo: "ga" };
    let text = unsupported.to_string();
    assert!(
        text.contains("'ga'") && text.contains("not executable"),
        "UnsupportedAlgo display drifted: {text}"
    );
}

#[test]
fn remap_error_display_is_pinned() {
    let cases: Vec<(RemapError, &str)> = vec![
        (
            RemapError::Mapper(MapperError::NanDelta { op: 7 }),
            "remap search failed:",
        ),
        (RemapError::UnknownDevice(DeviceId(3)), "unknown device"),
        (
            RemapError::DefaultDeviceUnavailable(DeviceId(0)),
            "default (repair) device",
        ),
        (RemapError::UnknownNode(NodeId(9)), "unknown node"),
        (
            RemapError::UnknownArrivingNode(4),
            "arriving node 4 out of range",
        ),
        (
            RemapError::WouldEmptyGraph,
            "close the session instead of remapping",
        ),
    ];
    for (err, needle) in cases {
        let text = err.to_string();
        assert!(text.contains(needle), "{err:?} display drifted: {text}");
    }
}

#[test]
fn service_error_display_is_pinned() {
    let overloaded = ServiceError::Overloaded {
        inflight: 2,
        queued: 3,
        retry_hint: 4,
    };
    let text = overloaded.to_string();
    assert!(
        text.contains("2 requests in flight and 3 queued")
            && text.contains("retry after 4 completions"),
        "Overloaded display drifted: {text}"
    );

    assert_eq!(
        ServiceError::UnknownSession(SessionId(5)).to_string(),
        "unknown session#5"
    );

    // The containment variant names its boundary and carries the panic
    // payload verbatim — that pair is what an operator greps for.
    assert_eq!(
        ServiceError::Internal {
            site: "map",
            payload: "boom".to_string(),
        }
        .to_string(),
        "internal fault contained at service map: boom"
    );

    // The poison refusal must name both recovery paths.
    let text = ServiceError::SessionPoisoned(SessionId(8)).to_string();
    assert!(
        text.contains("session#8") && text.contains("remap_full") && text.contains("close_session"),
        "SessionPoisoned display drifted: {text}"
    );
}

/// All three enums are `#[non_exhaustive]`: downstream classification
/// must compile with a wildcard arm, and the classification the chaos
/// harness relies on (retryable / typed refusal / contained fault) must
/// be derivable from matching alone.
#[test]
fn non_exhaustive_classification_matches() {
    fn classify(err: &ServiceError) -> &'static str {
        match err {
            ServiceError::Overloaded { .. } => "retryable",
            ServiceError::Mapper(_) | ServiceError::Session(_) => "typed refusal",
            ServiceError::UnknownSession(_) => "typed refusal",
            ServiceError::SessionPoisoned(_) => "recoverable via remap_full",
            ServiceError::Internal { .. } => "contained fault",
            // `#[non_exhaustive]`: future variants must not break
            // downstream builds.
            _ => "unknown",
        }
    }
    assert_eq!(
        classify(&ServiceError::Overloaded {
            inflight: 1,
            queued: 0,
            retry_hint: 1,
        }),
        "retryable"
    );
    assert_eq!(
        classify(&ServiceError::Internal {
            site: "remap",
            payload: String::new(),
        }),
        "contained fault"
    );
    assert_eq!(
        classify(&ServiceError::SessionPoisoned(SessionId(1))),
        "recoverable via remap_full"
    );

    fn mapper_kind(err: &MapperError) -> &'static str {
        match err {
            MapperError::NanDelta { .. } => "nan",
            MapperError::UnsupportedAlgo { .. } => "routing",
            _ => "unknown",
        }
    }
    assert_eq!(mapper_kind(&MapperError::NanDelta { op: 0 }), "nan");

    fn remap_kind(err: &RemapError) -> &'static str {
        match err {
            RemapError::Mapper(_) => "search",
            RemapError::WouldEmptyGraph => "lifecycle",
            _ => "perturbation",
        }
    }
    assert_eq!(
        remap_kind(&RemapError::UnknownDevice(DeviceId(1))),
        "perturbation"
    );
}

#[test]
fn from_conversions_preserve_the_inner_error() {
    let nan = MapperError::NanDelta { op: 11 };

    let as_remap: RemapError = nan.into();
    assert_eq!(as_remap, RemapError::Mapper(nan));

    let as_service: ServiceError = nan.into();
    assert_eq!(as_service, ServiceError::Mapper(nan));

    // A mapper failure inside a session flattens to `Mapper`, not
    // `Session(Mapper(..))` — one variant per failure class.
    let flattened: ServiceError = RemapError::Mapper(nan).into();
    assert_eq!(flattened, ServiceError::Mapper(nan));

    let kept: ServiceError = RemapError::UnknownDevice(DeviceId(2)).into();
    assert_eq!(
        kept,
        ServiceError::Session(RemapError::UnknownDevice(DeviceId(2)))
    );
}

#[test]
fn all_error_types_coerce_to_error_trait_objects() {
    let errors: Vec<Box<dyn std::error::Error>> = vec![
        Box::new(MapperError::NanDelta { op: 1 }),
        Box::new(RemapError::WouldEmptyGraph),
        Box::new(ServiceError::Internal {
            site: "map",
            payload: "x".to_string(),
        }),
    ];
    for err in &errors {
        assert!(!err.to_string().is_empty());
    }
}

//! Cross-crate property-based tests (proptest) on the core invariants.

use proptest::prelude::*;
use spmap::decomp::{decompose_forest, is_two_terminal_sp, CutPolicy};
use spmap::graph::ops;
use spmap::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated SP graph is recognized by the reduction oracle and
    /// decomposes into a single tree covering all edges.
    #[test]
    fn generated_sp_graphs_decompose_cleanly(nodes in 2usize..60, seed in 0u64..5000) {
        let g = random_sp_graph(&SpGenConfig::new(nodes, seed));
        prop_assert!(is_two_terminal_sp(&g));
        let norm = ops::normalize_terminals(&g);
        let r = decompose_forest(&norm.graph, norm.source, norm.sink, CutPolicy::default());
        prop_assert!(r.is_series_parallel());
        prop_assert_eq!(r.forest.node(r.core).edge_count as usize, g.edge_count());
        r.forest.validate(&norm.graph);
    }

    /// The forest algorithm and the reduction oracle agree on almost-SP
    /// graphs, and the forest always partitions the edge set.
    #[test]
    fn forest_agrees_with_oracle(nodes in 4usize..40, extra in 0usize..25, seed in 0u64..2000) {
        let g = almost_sp_graph(&SpGenConfig::new(nodes, seed), extra);
        let norm = ops::normalize_terminals(&g);
        let r = decompose_forest(&norm.graph, norm.source, norm.sink, CutPolicy::default());
        prop_assert_eq!(r.is_series_parallel(), is_two_terminal_sp(&norm.graph));
        let total: u32 = r.forest.roots.iter().map(|&t| r.forest.node(t).edge_count).sum();
        prop_assert_eq!(total as usize, norm.graph.edge_count());
    }

    /// The mapper never returns a mapping worse than pure CPU, never
    /// violates the area budget, and its makespan history is decreasing.
    #[test]
    fn mapper_invariants(nodes in 5usize..30, seed in 0u64..1000) {
        let mut g = random_sp_graph(&SpGenConfig::new(nodes, seed));
        augment(&mut g, &AugmentConfig::default(), seed);
        let p = Platform::reference();
        let r = decomposition_map(&g, &p, &MapperConfig::sp_first_fit());
        prop_assert!(r.makespan <= r.cpu_only_makespan * (1.0 + 1e-9));
        prop_assert!(r.mapping.is_area_feasible(&g, &p));
        let mut prev = r.cpu_only_makespan;
        for &h in &r.history {
            prop_assert!(h < prev);
            prev = h;
        }
    }

    /// The evaluator's makespan is never below the per-task lower bound
    /// (the most favorable device for every task, no waiting at all), and
    /// reported improvements stay in [0, 1).
    #[test]
    fn evaluator_bounds(nodes in 3usize..40, seed in 0u64..1000) {
        let mut g = random_sp_graph(&SpGenConfig::new(nodes, seed));
        augment(&mut g, &AugmentConfig::default(), seed);
        let p = Platform::reference();
        let mut ev = Evaluator::new(&g, &p);
        let cpu_only = ev.cpu_only_makespan();
        let mapping = heft(&g, &p).mapping;
        let ms = ev.makespan_bfs(&mapping).unwrap();
        // Lower bound: the longest single task on its fastest device.
        let lb = g.nodes()
            .map(|v| p.device_ids().map(|d| ev.exec_time(v, d)).fold(f64::INFINITY, f64::min))
            .fold(0.0, f64::max);
        prop_assert!(ms + 1e-9 >= lb);
        let imp = relative_improvement(cpu_only, ms.min(cpu_only));
        prop_assert!((0.0..1.0).contains(&imp));
    }

    /// HEFT and PEFT schedules respect precedence and the area budget on
    /// arbitrary workflow shapes.
    #[test]
    fn list_schedulers_are_safe_on_workflows(tasks in 20usize..80, seed in 0u64..500) {
        use spmap::workflows::augment_ps;
        let family = Family::all()[(seed % 9) as usize];
        let mut g = family.generate(tasks, seed);
        augment_ps(&mut g, seed);
        let p = Platform::reference();
        for r in [heft(&g, &p), peft(&g, &p)] {
            prop_assert!(r.mapping.is_area_feasible(&g, &p));
            let mut pos = vec![0usize; g.node_count()];
            for (i, &v) in r.order.iter().enumerate() {
                pos[v.index()] = i;
            }
            for e in g.edge_ids() {
                let edge = g.edge(e);
                prop_assert!(pos[edge.src.index()] < pos[edge.dst.index()]);
            }
        }
    }
}

//! Cross-crate property-based tests on the core invariants.
//!
//! Written as explicit seeded case loops (the offline environment has no
//! `proptest`); each property sweeps a deterministic grid of sizes and
//! seeds, so failures reproduce exactly.

use spmap::decomp::{decompose_forest, is_two_terminal_sp, CutPolicy};
use spmap::graph::ops;
use spmap::prelude::*;

/// Every generated SP graph is recognized by the reduction oracle and
/// decomposes into a single tree covering all edges.
#[test]
fn generated_sp_graphs_decompose_cleanly() {
    for case in 0..24u64 {
        let nodes = 2 + (case * 7 % 58) as usize;
        let seed = case * 199;
        let g = random_sp_graph(&SpGenConfig::new(nodes, seed));
        assert!(is_two_terminal_sp(&g), "nodes {nodes} seed {seed}");
        let norm = ops::normalize_terminals(&g);
        let r = decompose_forest(&norm.graph, norm.source, norm.sink, CutPolicy::default());
        assert!(r.is_series_parallel(), "nodes {nodes} seed {seed}");
        assert_eq!(
            r.forest.node(r.core).edge_count as usize,
            g.edge_count(),
            "nodes {nodes} seed {seed}"
        );
        r.forest.validate(&norm.graph);
    }
}

/// The forest algorithm and the reduction oracle agree on almost-SP
/// graphs, and the forest always partitions the edge set.
#[test]
fn forest_agrees_with_oracle() {
    for case in 0..24u64 {
        let nodes = 4 + (case * 5 % 36) as usize;
        let extra = (case * 3 % 25) as usize;
        let seed = case * 83;
        let g = almost_sp_graph(&SpGenConfig::new(nodes, seed), extra);
        let norm = ops::normalize_terminals(&g);
        let r = decompose_forest(&norm.graph, norm.source, norm.sink, CutPolicy::default());
        assert_eq!(
            r.is_series_parallel(),
            is_two_terminal_sp(&norm.graph),
            "nodes {nodes} extra {extra} seed {seed}"
        );
        let total: u32 = r
            .forest
            .roots
            .iter()
            .map(|&t| r.forest.node(t).edge_count)
            .sum();
        assert_eq!(total as usize, norm.graph.edge_count());
    }
}

/// The mapper never returns a mapping worse than pure CPU, never
/// violates the area budget, and its makespan history is decreasing.
#[test]
fn mapper_invariants() {
    let p = Platform::reference();
    for case in 0..24u64 {
        let nodes = 5 + (case % 25) as usize;
        let seed = case * 41;
        let mut g = random_sp_graph(&SpGenConfig::new(nodes, seed));
        augment(&mut g, &AugmentConfig::default(), seed);
        let r = decomposition_map(&g, &p, &MapperConfig::sp_first_fit());
        assert!(
            r.makespan <= r.cpu_only_makespan * (1.0 + 1e-9),
            "nodes {nodes} seed {seed}"
        );
        assert!(r.mapping.is_area_feasible(&g, &p));
        let mut prev = r.cpu_only_makespan;
        for &h in &r.history {
            assert!(
                h < prev,
                "history not decreasing (nodes {nodes} seed {seed})"
            );
            prev = h;
        }
    }
}

/// The evaluator's makespan is never below the per-task lower bound
/// (the most favorable device for every task, no waiting at all), and
/// reported improvements stay in [0, 1).
#[test]
fn evaluator_bounds() {
    let p = Platform::reference();
    for case in 0..24u64 {
        let nodes = 3 + (case * 11 % 37) as usize;
        let seed = case * 59;
        let mut g = random_sp_graph(&SpGenConfig::new(nodes, seed));
        augment(&mut g, &AugmentConfig::default(), seed);
        let mut ev = Evaluator::new(&g, &p);
        let cpu_only = ev.cpu_only_makespan();
        let mapping = heft(&g, &p).mapping;
        let ms = ev.makespan_bfs(&mapping).unwrap();
        // Lower bound: the longest single task on its fastest device.
        let lb = g
            .nodes()
            .map(|v| {
                p.device_ids()
                    .map(|d| ev.exec_time(v, d))
                    .fold(f64::INFINITY, f64::min)
            })
            .fold(0.0, f64::max);
        assert!(ms + 1e-9 >= lb, "nodes {nodes} seed {seed}");
        let imp = relative_improvement(cpu_only, ms.min(cpu_only));
        assert!((0.0..1.0).contains(&imp));
    }
}

/// `random_topo_order` is deterministic per seed, and the two call sites
/// that derive random schedules from it — `spmap_graph::gen` directly
/// and `spmap_model::schedule::priority_ranks` through `StdRng` — agree
/// exactly: the rank vector of `RandomTopo { seed }` is the inverse
/// permutation of the order drawn with the same seed.
#[test]
fn random_topo_order_is_deterministic_across_call_sites() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spmap::graph::gen::random_topo_order;
    use spmap::model::schedule::priority_ranks;

    for case in 0..18u64 {
        let nodes = 6 + (case * 9 % 40) as usize;
        let graph_seed = case * 71 + 5;
        let g = match case % 3 {
            0 => random_sp_graph(&SpGenConfig::new(nodes, graph_seed)),
            1 => almost_sp_graph(&SpGenConfig::new(nodes, graph_seed), (case % 6) as usize),
            _ => {
                use spmap::graph::gen::{layered_random, LayeredConfig};
                layered_random(&LayeredConfig {
                    layers: 2 + (case % 5) as usize,
                    width: 2 + (case % 4) as usize,
                    density: 0.4,
                    seed: graph_seed,
                    edge_bytes: 10e6,
                })
            }
        };
        for order_seed in [0u64, 1, case * 17 + 3] {
            // Same seed, same RNG construction ⇒ same order, twice.
            let a = random_topo_order(&g, &mut StdRng::seed_from_u64(order_seed));
            let b = random_topo_order(&g, &mut StdRng::seed_from_u64(order_seed));
            assert_eq!(a, b, "case {case} order_seed {order_seed}");
            // The model crate's rank derivation is the inverse of the
            // same draw: rank[order[i]] == i.
            let ranks = priority_ranks(&g, SchedulePolicy::RandomTopo { seed: order_seed });
            for (i, &v) in a.iter().enumerate() {
                assert_eq!(
                    ranks[v.index()] as usize,
                    i,
                    "case {case} order_seed {order_seed}: rank/order mismatch at {i}"
                );
            }
        }
    }
}

/// Every schedule of a `ReportSchedules` set — BFS and each seeded
/// random order — is a valid topological order of the DAG: the pop
/// order is a permutation and respects every edge.
#[test]
fn every_report_schedule_is_a_valid_topological_order() {
    use spmap::model::ReportSchedules;

    for case in 0..18u64 {
        let nodes = 5 + (case * 7 % 45) as usize;
        let seed = case * 131 + 1;
        let g = match case % 3 {
            0 => random_sp_graph(&SpGenConfig::new(nodes, seed)),
            1 => almost_sp_graph(&SpGenConfig::new(nodes, seed), (case % 8) as usize),
            _ => {
                use spmap::graph::gen::{layered_random, LayeredConfig};
                layered_random(&LayeredConfig {
                    layers: 2 + (case % 4) as usize,
                    width: 2 + (case % 3) as usize,
                    density: 0.5,
                    seed,
                    edge_bytes: 25e6,
                })
            }
        };
        let set = ReportSchedules::new(&g, 2 + (case % 4) as usize, seed ^ 0x5eed);
        for (s, order) in set.iter().enumerate() {
            assert_eq!(order.len(), g.node_count(), "case {case} schedule {s}");
            let mut seen = vec![false; g.node_count()];
            for &v in order.pop_order() {
                assert!(
                    !seen[v as usize],
                    "case {case} schedule {s}: duplicate pop {v}"
                );
                seen[v as usize] = true;
            }
            for e in g.edge_ids() {
                let edge = g.edge(e);
                assert!(
                    order.pop_position(edge.src) < order.pop_position(edge.dst),
                    "case {case} schedule {s}: edge order violated"
                );
                assert!(
                    order.ranks()[edge.src.index()] < order.ranks()[edge.dst.index()],
                    "case {case} schedule {s}: rank order violated"
                );
            }
        }
    }
}

/// Multi-move delta windows are sound: for random multi-assignment
/// deltas under every report schedule, the window start — the minimum
/// earliest-read position over all changed nodes — never exceeds any
/// changed node's earliest read position, and a windowed replay from it
/// reproduces the from-scratch simulation bit for bit (i.e. the window
/// covers every position at which the delta can first be observed).
#[test]
fn multi_move_delta_window_covers_every_changed_node() {
    use spmap::model::{CheckpointSet, EvalScratch, EvalTables, ReportSchedules, WindowSim};

    let p = Platform::reference();
    for case in 0..12u64 {
        let nodes = 10 + (case * 9 % 40) as usize;
        let seed = case * 61 + 7;
        let mut g = match case % 2 {
            0 => random_sp_graph(&SpGenConfig::new(nodes, seed)),
            _ => almost_sp_graph(&SpGenConfig::new(nodes, seed), (case % 5) as usize),
        };
        augment(&mut g, &AugmentConfig::default(), seed);
        let n = g.node_count();
        let tables = EvalTables::new(&g, &p);
        let mut scratch = EvalScratch::for_tables(&tables);
        let schedules = ReportSchedules::new(&g, 2, seed ^ 0xfeed);
        let mut ckpts = CheckpointSet::for_schedules(&schedules, n);
        let base = Mapping::all_default(&g, &p);
        for s in 0..schedules.len() {
            tables
                .makespan_order_checkpointed(
                    &mut scratch,
                    &base,
                    schedules.order(s),
                    ckpts.get_mut(s),
                )
                .expect("default mapping is feasible");
        }
        // Random multi-assignment deltas: k nodes to varying devices.
        for trial in 0..8u64 {
            let k = 1 + (trial % 4) as usize;
            let mut candidate = base.clone();
            let mut changed = Vec::new();
            for j in 0..k {
                let v = NodeId(((trial * 31 + j as u64 * 17 + case * 7) % n as u64) as u32);
                let d = DeviceId((1 + (trial + j as u64) % 2) as u32);
                if candidate.device(v) != d && !changed.contains(&v) {
                    candidate.set(v, d);
                    changed.push(v);
                }
            }
            if changed.is_empty() || !candidate.is_area_feasible(&g, &p) {
                continue;
            }
            for s in 0..schedules.len() {
                let order = schedules.order(s);
                let from_pos = changed
                    .iter()
                    .map(|&v| order.earliest_read_pos(v))
                    .min()
                    .expect("non-empty delta");
                // The window start covers (is at or before) every
                // changed node's earliest read position.
                for &v in &changed {
                    assert!(
                        from_pos <= order.earliest_read_pos(v),
                        "case {case} trial {trial} schedule {s}: window misses {v:?}"
                    );
                }
                let full = tables
                    .makespan_with_ranks(&mut scratch, &candidate, order.ranks())
                    .expect("area-feasible");
                let windowed = tables.makespan_order_window(
                    &mut scratch,
                    &candidate,
                    order,
                    ckpts.get(s),
                    from_pos,
                    f64::INFINITY,
                );
                assert_eq!(
                    windowed,
                    WindowSim::Done(full),
                    "case {case} trial {trial} schedule {s}: windowed replay drifted"
                );
            }
        }
    }
}

/// The prefix-sharing trie walk visits every offspring exactly once:
/// for random candidate populations (including duplicates and
/// clustered near-copies), `spmap_core::trie_order` returns a
/// permutation of the candidate indices, deterministically — and
/// adjacent candidates of the walk share at least as long a prefix
/// with each other as with any *earlier* walk member (the sortedness
/// property the rolling-trail chains rely on).
#[test]
fn trie_walk_visits_every_offspring_exactly_once() {
    use spmap_core::trie_order;
    use spmap_model::EvalTables;

    let p = Platform::reference();
    for case in 0..12u64 {
        let nodes = 8 + (case * 11 % 40) as usize;
        let seed = case * 97 + 3;
        let mut g = random_sp_graph(&SpGenConfig::new(nodes, seed));
        augment(&mut g, &AugmentConfig::default(), seed);
        let n = g.node_count();
        let tables = EvalTables::new(&g, &p);
        // A clustered population: a few centers, each with near-copies
        // (the converged-GA shape), plus exact duplicates.
        let mut pop: Vec<Mapping> = Vec::new();
        for c in 0..3u64 {
            let center = Mapping::from_vec(
                (0..n)
                    .map(|i| DeviceId(((i as u64 * 5 + c * 7 + seed) % 2) as u32))
                    .collect(),
            );
            pop.push(center.clone());
            for t in 0..5u64 {
                let mut m = center.clone();
                let v = NodeId(((t * 13 + c * 29 + case) % n as u64) as u32);
                m.set(v, DeviceId((m.device(v).0 + 1) % 2));
                pop.push(m);
            }
        }
        pop.push(pop[0].clone()); // exact duplicate
        let refs: Vec<&Mapping> = pop.iter().collect();
        let order = trie_order(&tables, &refs);
        // Permutation: every candidate exactly once.
        assert_eq!(order.len(), pop.len(), "case {case}");
        let mut seen = vec![false; pop.len()];
        for &k in &order {
            assert!(!seen[k], "case {case}: candidate {k} visited twice");
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s), "case {case}: candidate missed");
        // Deterministic.
        assert_eq!(order, trie_order(&tables, &refs), "case {case}");
        // Sortedness: the walk neighbor shares the longest prefix.
        let scan: Vec<NodeId> = {
            let mut s: Vec<NodeId> = g.nodes().collect();
            s.sort_by_key(|&v| (tables.earliest_read_pos(v), v.index()));
            s
        };
        let lcp = |a: &Mapping, b: &Mapping| -> usize {
            scan.iter()
                .position(|&v| a.device(v) != b.device(v))
                .unwrap_or(n)
        };
        for k in 1..order.len() {
            let with_prev = lcp(&pop[order[k - 1]], &pop[order[k]]);
            for e in 0..k - 1 {
                assert!(
                    lcp(&pop[order[e]], &pop[order[k]]) <= with_prev,
                    "case {case}: walk position {k} shares more with earlier member {e} \
                     than with its predecessor"
                );
            }
        }
    }
}

/// The rolling-trail primitive round-trips: a depth-first chain of
/// candidates that restores from the rolling trail at each pair's LCP
/// window start (truncate on backtrack), replays the suffix and
/// re-records the snapshots its successors restore (extend in place)
/// reproduces a fresh full simulation of every candidate, bit for bit.
#[test]
fn rolling_trail_truncate_extend_roundtrips_bitwise() {
    use spmap_model::{EvalScratch, EvalTables, ScheduleCheckpoints};

    let p = Platform::reference();
    for case in 0..10u64 {
        let nodes = 12 + (case * 9 % 38) as usize;
        let seed = case * 73 + 11;
        let mut g = random_sp_graph(&SpGenConfig::new(nodes, seed));
        augment(&mut g, &AugmentConfig::default(), seed);
        let n = g.node_count();
        let m = p.device_count();
        let tables = EvalTables::new(&g, &p);
        let mut scratch = EvalScratch::for_tables(&tables);
        let every = ScheduleCheckpoints::auto_interval(n);
        let mut rolling = ScheduleCheckpoints::zeroed(n, m, every);
        let zero = ScheduleCheckpoints::zeroed(n, m, n + 1);
        let scan: Vec<NodeId> = {
            let mut s: Vec<NodeId> = g.nodes().collect();
            s.sort_by_key(|&v| (tables.earliest_read_pos(v), v.index()));
            s
        };
        // A chain that walks down and back up the trie: each candidate
        // mutates a node at a varying scan depth, so successive LCP
        // window starts both grow (extend) and shrink (truncate).
        let mut chain: Vec<Mapping> = vec![Mapping::all_default(&g, &p)];
        for t in 0..8u64 {
            let mut next = chain.last().unwrap().clone();
            let depth = ((t * 31 + case * 17) % n as u64) as usize;
            let v = scan[depth];
            next.set(v, DeviceId((next.device(v).0 + 1) % 2));
            if next.is_area_feasible(&g, &p) {
                chain.push(next);
            }
        }
        let lcp_start = |a: &Mapping, b: &Mapping| -> usize {
            scan.iter()
                .find(|&&v| a.device(v) != b.device(v))
                .map(|&v| tables.earliest_read_pos(v))
                .unwrap_or(n)
        };
        // Record obligations: candidate i re-records the snapshot its
        // successor restores whenever that lies in its replayed range
        // (the trie planner's owner rule, specialised to one chain).
        let all_snaps: Vec<u32> = (0..rolling.snapshot_count() as u32).collect();
        for (i, cand) in chain.iter().enumerate() {
            let from = if i == 0 {
                0
            } else {
                lcp_start(&chain[i - 1], cand)
            };
            let restore_snap = rolling.snapshot_index(from);
            assert!(
                restore_snap * every <= from,
                "restore never overshoots the window start"
            );
            // This test keeps every snapshot of the replayed range live
            // (the simplest valid obligation set — a superset of what
            // any successor can need): snapshots below the restore stay
            // untouched, snapshots at or above it are re-recorded.  The
            // store over-allocates one slot when `every` divides `n`
            // (its top index would sit at position `n`, past the last
            // pop) — only snapshots inside the replayed range are
            // listable.
            let rec: Vec<u32> = all_snaps
                .iter()
                .copied()
                .filter(|&j| (j as usize) >= restore_snap && (j as usize) * every < n)
                .collect();
            let ms = if i == 0 {
                tables.makespan_order_window_recording(
                    &mut scratch,
                    cand,
                    tables.bfs_order(),
                    Some(&zero),
                    &mut rolling,
                    0,
                    &rec,
                )
            } else {
                tables.makespan_order_window_recording(
                    &mut scratch,
                    cand,
                    tables.bfs_order(),
                    None,
                    &mut rolling,
                    from,
                    &rec,
                )
            };
            // Bit-identical to a fresh, heap-driven full simulation.
            let mut fresh = EvalScratch::for_tables(&tables);
            let full = tables
                .makespan_bfs(&mut fresh, cand)
                .expect("chain members stay feasible");
            assert_eq!(
                ms, full,
                "case {case} chain {i}: rolling replay (from {from}) drifted"
            );
        }
    }
}

/// Suffix-sparse snapshots are a pure storage change: a windowed replay
/// restoring from a suffix-sparse checkpoint store reproduces the same
/// replay from a dense store bit for bit — same makespan, same
/// start/finish arrays — at arbitrary window positions.
#[test]
fn suffix_sparse_restores_match_dense_bitwise() {
    use spmap::model::{EvalScratch, EvalTables, ScheduleCheckpoints, WindowSim};

    let p = Platform::reference();
    for case in 0..10u64 {
        let nodes = 12 + (case * 11 % 44) as usize;
        let seed = case * 67 + 9;
        let mut g = match case % 2 {
            0 => random_sp_graph(&SpGenConfig::new(nodes, seed)),
            _ => {
                use spmap::graph::gen::{layered_random, LayeredConfig};
                layered_random(&LayeredConfig {
                    layers: 3 + (case % 4) as usize,
                    width: 3 + (case % 3) as usize,
                    density: 0.4,
                    seed,
                    edge_bytes: 20e6,
                })
            }
        };
        augment(&mut g, &AugmentConfig::default(), seed);
        let n = g.node_count();
        let m = p.device_count();
        // Suffix layouts need the pop-order tables (the default).
        let tables = EvalTables::new(&g, &p);
        assert!(tables.suffix_windows(), "pop-order numbering is default");
        let every = (n / 6).max(2);
        let mut dense = ScheduleCheckpoints::zeroed(n, m, every);
        let mut suffix = ScheduleCheckpoints::zeroed_with_layout(n, m, every, true);
        let mut s_dense = EvalScratch::for_tables(&tables);
        let mut s_suffix = EvalScratch::for_tables(&tables);
        let base = Mapping::all_default(&g, &p);
        let ms_d = tables
            .makespan_bfs_checkpointed(&mut s_dense, &base, &mut dense)
            .expect("default mapping is feasible");
        let ms_s = tables
            .makespan_bfs_checkpointed(&mut s_suffix, &base, &mut suffix)
            .expect("default mapping is feasible");
        assert_eq!(ms_d, ms_s, "case {case}: layouts drifted on record");
        assert!(!dense.is_suffix() && suffix.is_suffix(), "case {case}");
        assert!(
            suffix.byte_len() < dense.byte_len(),
            "case {case}: suffix layout must shrink the store \
             ({} vs {} bytes)",
            suffix.byte_len(),
            dense.byte_len()
        );
        for trial in 0..8u64 {
            // A random single-move delta and a random *valid* window
            // position: anywhere at or before the delta's earliest
            // effect (extra replayed prefix must not change bits).
            let v = NodeId(((trial * 29 + case * 13) % n as u64) as u32);
            let mut cand = base.clone();
            cand.set(v, DeviceId((1 + trial % 2) as u32));
            if cand.device(v) == base.device(v) || !cand.is_area_feasible(&g, &p) {
                continue;
            }
            let latest = tables.earliest_read_pos(v);
            let from_pos = ((trial * 37 + case * 19) % (latest as u64 + 1)) as usize;
            let wd = tables.makespan_order_window(
                &mut s_dense,
                &cand,
                tables.bfs_order(),
                &dense,
                from_pos,
                f64::INFINITY,
            );
            let ws = tables.makespan_order_window(
                &mut s_suffix,
                &cand,
                tables.bfs_order(),
                &suffix,
                from_pos,
                f64::INFINITY,
            );
            assert_eq!(
                wd, ws,
                "case {case} trial {trial} from {from_pos}: layouts disagree"
            );
            // Both scratches went through identical operation
            // sequences, so the full per-node arrays — replayed suffix
            // and untouched prefix alike — must match exactly.
            assert_eq!(
                s_dense.start_times(),
                s_suffix.start_times(),
                "case {case} trial {trial} from {from_pos}: start drift"
            );
            assert_eq!(
                s_dense.finish_times(),
                s_suffix.finish_times(),
                "case {case} trial {trial} from {from_pos}: finish drift"
            );
            // And the replay itself is exact against a fresh full sim.
            let mut fresh = EvalScratch::for_tables(&tables);
            let full = tables
                .makespan_bfs(&mut fresh, &cand)
                .expect("area-feasible");
            assert_eq!(
                wd,
                WindowSim::Done(full),
                "case {case} trial {trial} from {from_pos}: replay drifted"
            );
        }
    }
}

/// Schedule-order renumbering is a pure layout change: simulations on
/// pop-order-numbered tables reproduce identity-numbered tables bit for
/// bit — under the BFS schedule and under every random report schedule
/// (the heap path) — for random layered and series-parallel graphs.
#[test]
fn renumbered_tables_match_identity_bitwise() {
    use spmap::model::{EvalScratch, EvalTables, Numbering, ReportSchedules};

    let p = Platform::reference();
    for case in 0..12u64 {
        let nodes = 10 + (case * 9 % 46) as usize;
        let seed = case * 53 + 5;
        let mut g = match case % 2 {
            0 => random_sp_graph(&SpGenConfig::new(nodes, seed)),
            _ => {
                use spmap::graph::gen::{layered_random, LayeredConfig};
                layered_random(&LayeredConfig {
                    layers: 3 + (case % 5) as usize,
                    width: 2 + (case % 4) as usize,
                    density: 0.35,
                    seed,
                    edge_bytes: 30e6,
                })
            }
        };
        augment(&mut g, &AugmentConfig::default(), seed);
        let n = g.node_count();
        let t_id = EvalTables::with_numbering(&g, &p, Numbering::Identity);
        let t_pop = EvalTables::with_numbering(&g, &p, Numbering::PopOrder);
        let mut s_id = EvalScratch::for_tables(&t_id);
        let mut s_pop = EvalScratch::for_tables(&t_pop);
        // Per-task execution times are translated at the boundary.
        for v in g.nodes() {
            for d in p.device_ids() {
                assert_eq!(
                    t_id.exec_time(v, d),
                    t_pop.exec_time(v, d),
                    "case {case}: exec_time({v:?}, {d:?}) drifted"
                );
            }
        }
        let schedules = ReportSchedules::new(&g, 3, seed ^ 0xab1e);
        let mut mappings = vec![Mapping::all_default(&g, &p), heft(&g, &p).mapping];
        for trial in 0..4u64 {
            let mut m = mappings[0].clone();
            for j in 0..(1 + trial % 3) {
                let v = NodeId(((trial * 23 + j * 11 + case * 7) % n as u64) as u32);
                m.set(v, DeviceId(((trial + j) % 2 + 1) as u32));
            }
            if m.is_area_feasible(&g, &p) {
                mappings.push(m);
            }
        }
        for (k, mapping) in mappings.iter().enumerate() {
            assert_eq!(
                t_id.makespan_bfs(&mut s_id, mapping),
                t_pop.makespan_bfs(&mut s_pop, mapping),
                "case {case} mapping {k}: BFS makespan drifted"
            );
            for s in 0..schedules.len() {
                let ranks = schedules.order(s).ranks();
                assert_eq!(
                    t_id.makespan_with_ranks(&mut s_id, mapping, ranks),
                    t_pop.makespan_with_ranks(&mut s_pop, mapping, ranks),
                    "case {case} mapping {k} schedule {s}: makespan drifted"
                );
            }
        }
    }
}

/// HEFT and PEFT schedules respect precedence and the area budget on
/// arbitrary workflow shapes.
#[test]
fn list_schedulers_are_safe_on_workflows() {
    use spmap::workflows::augment_ps;
    let p = Platform::reference();
    for case in 0..18u64 {
        let tasks = 20 + (case * 13 % 60) as usize;
        let seed = case * 29;
        let family = Family::all()[(seed % 9) as usize];
        let mut g = family.generate(tasks, seed);
        augment_ps(&mut g, seed);
        for r in [heft(&g, &p), peft(&g, &p)] {
            assert!(
                r.mapping.is_area_feasible(&g, &p),
                "tasks {tasks} seed {seed}"
            );
            let mut pos = vec![0usize; g.node_count()];
            for (i, &v) in r.order.iter().enumerate() {
                pos[v.index()] = i;
            }
            for e in g.edge_ids() {
                let edge = g.edge(e);
                assert!(
                    pos[edge.src.index()] < pos[edge.dst.index()],
                    "tasks {tasks} seed {seed}"
                );
            }
        }
    }
}

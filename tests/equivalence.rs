//! Equivalence property suite for the candidate evaluation engine.
//!
//! The engine (`spmap_core::batch`) stacks parallel simulation, exact
//! lower-bound pruning and content-keyed memoization under the mapper's
//! inner loop.  None of that may change a single result: for random
//! graphs and platforms, the engine path must produce the **same makespan
//! history and final mapping, bit for bit**, as the straight serial
//! exhaustive scan (`decomposition_map_reference` — the seed
//! implementation kept as an executable specification).
//!
//! The same burden applies to the `report_makespan` cost model: the
//! multi-schedule incremental sweep (per-schedule checkpoints, running
//! cutoffs, `(fingerprint, schedule)` memoization) must reproduce the
//! reference serial sweep — one full `Evaluator::report_makespan` per
//! candidate per iteration — bit for bit, across thread counts and
//! schedule counts.
//!
//! And to the NSGA-II baseline: the engine-backed GA (`nsga2_map` —
//! fitness memoization, base-trail windowed replays, parallel
//! population simulation) must reproduce the kept serial reference
//! (`nsga2_map_reference`) per seed, bit for bit, across thread counts
//! and memo-capacity corners (tiny capacities force evictions; results
//! must not move).

use spmap::par::{with_backend, ParBackend};
use spmap::prelude::*;
use spmap_core::{decomposition_map_reference, CostModel, EngineConfig, EvalOrder};

/// Deterministic graph zoo: SP graphs, almost-SP graphs and layered
/// non-SP DAGs, with the paper's attribute augmentation.
fn graph_case(case: u64) -> TaskGraph {
    let nodes = 12 + (case * 7 % 36) as usize;
    let seed = case * 131 + 17;
    let mut g = match case % 3 {
        0 => random_sp_graph(&SpGenConfig::new(nodes, seed)),
        1 => almost_sp_graph(&SpGenConfig::new(nodes, seed), (case % 7) as usize),
        _ => {
            use spmap::graph::gen::{layered_random, LayeredConfig};
            layered_random(&LayeredConfig {
                layers: 3 + (case % 4) as usize,
                width: 2 + (case % 3) as usize,
                density: 0.5,
                seed,
                edge_bytes: 50e6,
            })
        }
    };
    augment(&mut g, &AugmentConfig::default(), seed);
    g
}

fn platform_case(case: u64) -> Platform {
    match case % 4 {
        3 => Platform::cpu_gpu(),
        _ => Platform::reference(),
    }
}

fn engine_cfg(base: MapperConfig, threads: usize, prune: bool, memo: bool) -> MapperConfig {
    MapperConfig {
        engine: EngineConfig {
            threads: Some(threads),
            prune,
            memo,
            ..EngineConfig::default()
        },
        ..base
    }
}

fn assert_equivalent(
    g: &TaskGraph,
    p: &Platform,
    fast: &MapperConfig,
    slow: &MapperConfig,
    tag: &str,
) {
    let a = decomposition_map(g, p, fast);
    let b = decomposition_map_reference(g, p, slow);
    assert_eq!(a.mapping, b.mapping, "{tag}: final mapping differs");
    assert_eq!(a.makespan, b.makespan, "{tag}: makespan differs");
    assert_eq!(a.history, b.history, "{tag}: makespan history differs");
    assert_eq!(a.iterations, b.iterations, "{tag}: iteration count differs");
    assert_eq!(
        a.cpu_only_makespan, b.cpu_only_makespan,
        "{tag}: baseline differs"
    );
}

/// The headline property: parallel + pruned + memoized batches reproduce
/// the serial exhaustive scan exactly, over random graphs and platforms.
#[test]
fn batch_engine_matches_serial_exhaustive_scan() {
    for case in 0..18u64 {
        let g = graph_case(case);
        let p = platform_case(case);
        for base in [MapperConfig::series_parallel(), MapperConfig::single_node()] {
            let fast = engine_cfg(base, 8, true, true);
            let tag = format!("case {case} {:?}", base.strategy);
            assert_equivalent(&g, &p, &fast, &base, &tag);
        }
    }
}

/// Every ablation corner (each optimization on its own, and none at all)
/// is equally exact — a failure here isolates the broken layer.
#[test]
fn every_engine_ablation_is_exact() {
    for case in 0..6u64 {
        let g = graph_case(case + 100);
        let p = platform_case(case);
        let base = MapperConfig::series_parallel();
        for (threads, prune, memo) in [
            (1, false, false), // pure serial batch: the engine skeleton
            (1, true, false),  // pruning alone
            (1, false, true),  // memo alone
            (8, false, false), // parallelism alone
            (8, true, true),   // everything
        ] {
            let fast = engine_cfg(base, threads, prune, memo);
            let tag = format!("case {case} t{threads} prune={prune} memo={memo}");
            assert_equivalent(&g, &p, &fast, &base, &tag);
        }
    }
}

/// The γ-threshold family (FirstFit and the look-ahead variants) replays
/// the serial decision sequence exactly, including the speculative-wave
/// parallel path.
#[test]
fn gamma_threshold_waves_match_serial() {
    for case in 0..12u64 {
        let g = graph_case(case + 200);
        let p = platform_case(case);
        for gamma in [1.0, 2.0, 4.0] {
            let base = MapperConfig {
                heuristic: SearchHeuristic::GammaThreshold { gamma },
                ..MapperConfig::series_parallel()
            };
            let fast = engine_cfg(base, 8, true, true);
            let tag = format!("case {case} gamma {gamma}");
            assert_equivalent(&g, &p, &fast, &base, &tag);
        }
    }
}

/// The multi-schedule sweep, headline version: for every combination of
/// ≥3 thread counts and ≥2 schedule counts, the incremental
/// `report_makespan`-mode engine (pruning + memo + per-schedule windows
/// + running cutoffs) reproduces the reference serial sweep bit for
/// bit: final mapping, report makespans, acceptance history, iteration
/// count and baseline.
#[test]
fn report_sweep_matches_serial_reference_across_threads_and_schedules() {
    for case in 0..5u64 {
        let g = graph_case(case + 400);
        let p = platform_case(case);
        for schedules in [2usize, 5] {
            let base = MapperConfig {
                cost: CostModel::Report {
                    schedules,
                    seed: 0xbeef + case,
                },
                ..MapperConfig::series_parallel()
            };
            for threads in [1usize, 3, 8] {
                let fast = engine_cfg(base, threads, true, true);
                let tag = format!("case {case} k {schedules} t{threads}");
                assert_equivalent(&g, &p, &fast, &base, &tag);
            }
        }
    }
}

/// Every engine ablation corner is equally exact under the report cost
/// model — a failure here isolates the broken layer of the
/// multi-schedule path.
#[test]
fn report_sweep_ablations_are_exact() {
    for case in 0..4u64 {
        let g = graph_case(case + 500);
        let p = platform_case(case);
        let base = MapperConfig {
            cost: CostModel::Report {
                schedules: 3,
                seed: 99,
            },
            ..MapperConfig::series_parallel()
        };
        for (threads, prune, memo) in [
            (1, false, false), // pure multi-schedule skeleton
            (1, true, false),  // pruning alone
            (1, false, true),  // (fp, schedule) memo alone
            (8, false, false), // parallelism alone
            (8, true, true),   // everything
        ] {
            let fast = engine_cfg(base, threads, prune, memo);
            let tag = format!("report case {case} t{threads} prune={prune} memo={memo}");
            assert_equivalent(&g, &p, &fast, &base, &tag);
        }
    }
}

/// The γ-threshold speculative waves (now adaptively sized) replay the
/// serial decision sequence exactly under the report cost model too.
#[test]
fn report_gamma_waves_match_serial() {
    for case in 0..4u64 {
        let g = graph_case(case + 600);
        let p = platform_case(case);
        for gamma in [1.0, 2.0] {
            let base = MapperConfig {
                heuristic: SearchHeuristic::GammaThreshold { gamma },
                cost: CostModel::Report {
                    schedules: 2,
                    seed: 7,
                },
                ..MapperConfig::series_parallel()
            };
            let fast = engine_cfg(base, 8, true, true);
            let tag = format!("report case {case} gamma {gamma}");
            assert_equivalent(&g, &p, &fast, &base, &tag);
        }
    }
}

/// Thread count is not allowed to influence anything observable in the
/// report sweep either — including every engine statistic.
#[test]
fn report_results_and_stats_are_thread_invariant() {
    for case in 0..3u64 {
        let g = graph_case(case + 700);
        let p = platform_case(case);
        let base = MapperConfig {
            cost: CostModel::Report {
                schedules: 3,
                seed: 21,
            },
            ..MapperConfig::series_parallel()
        };
        let runs: Vec<_> = [1usize, 3, 8]
            .iter()
            .map(|&t| decomposition_map(&g, &p, &engine_cfg(base, t, true, true)))
            .collect();
        for r in &runs[1..] {
            assert_eq!(r.mapping, runs[0].mapping, "case {case}");
            assert_eq!(r.makespan, runs[0].makespan, "case {case}");
            assert_eq!(r.history, runs[0].history, "case {case}");
            assert_eq!(r.batch, runs[0].batch, "case {case}: stats drifted");
            assert_eq!(r.evaluations, runs[0].evaluations, "case {case}");
        }
    }
}

/// The GA headline property: the engine-backed NSGA-II reproduces the
/// serial reference per seed — final mapping, best makespan, baseline
/// and the full per-generation history, bit for bit — for every worker
/// count (`SPMAP_THREADS`-style overrides 1, 3 and 8).
#[test]
fn engine_ga_matches_serial_reference_across_threads() {
    for case in 0..4u64 {
        let g = graph_case(case + 800);
        let p = platform_case(case);
        let cfg = |threads: Option<usize>| GaConfig {
            population: 20,
            generations: 25,
            seed: 11 + case,
            threads,
            ..GaConfig::default()
        };
        let slow = nsga2_map_reference(&g, &p, &cfg(None));
        for threads in [1usize, 3, 8] {
            let fast = nsga2_map(&g, &p, &cfg(Some(threads)));
            let tag = format!("case {case} t{threads}");
            assert_eq!(fast.mapping, slow.mapping, "{tag}: final mapping differs");
            assert_eq!(fast.makespan, slow.makespan, "{tag}: makespan differs");
            assert_eq!(
                fast.best_per_generation, slow.best_per_generation,
                "{tag}: history differs"
            );
            assert_eq!(
                fast.cpu_only_makespan, slow.cpu_only_makespan,
                "{tag}: baseline differs"
            );
        }
    }
}

/// Memo-capacity corners: a tiny fitness-memo capacity forces constant
/// evictions; the GA's results must not move by a bit, and the memo
/// must never exceed its capacity (observed via the engine statistics).
#[test]
fn ga_memo_capacity_corners_are_exact_and_bounded() {
    for case in 0..3u64 {
        let g = graph_case(case + 900);
        let p = platform_case(case);
        let cfg = |memo_capacity: usize| GaConfig {
            population: 16,
            generations: 20,
            seed: 5 + case,
            threads: Some(3),
            memo_capacity,
            ..GaConfig::default()
        };
        let slow = nsga2_map_reference(&g, &p, &cfg(0));
        for capacity in [0usize, 7, 64] {
            let fast = nsga2_map(&g, &p, &cfg(capacity));
            let tag = format!("case {case} capacity {capacity}");
            assert_eq!(fast.makespan, slow.makespan, "{tag}: makespan differs");
            assert_eq!(
                fast.best_per_generation, slow.best_per_generation,
                "{tag}: history differs"
            );
            assert_eq!(fast.mapping, slow.mapping, "{tag}: mapping differs");
            if capacity > 0 {
                assert!(
                    fast.engine.memo_peak <= capacity as u64,
                    "{tag}: memo grew past its capacity ({:?})",
                    fast.engine
                );
            }
            if capacity == 7 {
                assert!(
                    fast.engine.memo_evictions > 0,
                    "{tag}: a 7-entry memo over 20 generations must evict"
                );
            }
        }
    }
}

/// The mapper engine's memos obey the same capacity contract: a tiny
/// `EngineConfig::memo_capacity` forces evictions without moving any
/// result, and the peak sizes never exceed the configured cap.
#[test]
fn mapper_memo_capacity_corners_are_exact_and_bounded() {
    for case in 0..3u64 {
        let g = graph_case(case + 1000);
        let p = platform_case(case);
        let base = MapperConfig::series_parallel();
        let reference = decomposition_map_reference(&g, &p, &base);
        for capacity in [16usize, 0] {
            let fast = decomposition_map(
                &g,
                &p,
                &MapperConfig {
                    engine: EngineConfig {
                        threads: Some(4),
                        memo_capacity: capacity,
                        ..EngineConfig::default()
                    },
                    ..base
                },
            );
            let tag = format!("case {case} capacity {capacity}");
            assert_eq!(fast.mapping, reference.mapping, "{tag}");
            assert_eq!(fast.makespan, reference.makespan, "{tag}");
            assert_eq!(fast.history, reference.history, "{tag}");
            if capacity > 0 {
                assert!(
                    fast.batch.memo_peak <= capacity as u64
                        && fast.batch.sched_memo_peak <= capacity as u64,
                    "{tag}: a memo outgrew its capacity ({:?})",
                    fast.batch
                );
            }
        }
    }
}

/// The worker-pool runtime's headline property: for every execution
/// backend in {serial reference, scoped spawns, persistent pool} and
/// every `SPMAP_THREADS`-style worker count in {1, 3, 8}, the mapper
/// produces the identical mapping, makespan, history, iteration count
/// and baseline, bit for bit — and the engine's decision statistics
/// agree between the scoped and pooled backends at equal thread counts
/// (the backend only changes *which threads* run the simulations, never
/// what is simulated).
#[test]
fn pool_scoped_serial_bit_identity_across_thread_counts() {
    for case in 0..5u64 {
        let g = graph_case(case + 1100);
        let p = platform_case(case);
        for base in [
            MapperConfig::series_parallel(),
            MapperConfig {
                heuristic: SearchHeuristic::GammaThreshold { gamma: 2.0 },
                ..MapperConfig::series_parallel()
            },
        ] {
            let reference = decomposition_map_reference(&g, &p, &base);
            for threads in [1usize, 3, 8] {
                let cfg = engine_cfg(base, threads, true, true);
                let scoped = with_backend(ParBackend::Scoped, || decomposition_map(&g, &p, &cfg));
                let pooled = with_backend(ParBackend::Pool, || decomposition_map(&g, &p, &cfg));
                for (tag, r) in [("scoped", &scoped), ("pool", &pooled)] {
                    let tag = format!("case {case} t{threads} {tag} {:?}", base.heuristic);
                    assert_eq!(r.mapping, reference.mapping, "{tag}: mapping differs");
                    assert_eq!(r.makespan, reference.makespan, "{tag}: makespan differs");
                    assert_eq!(r.history, reference.history, "{tag}: history differs");
                    assert_eq!(
                        r.iterations, reference.iterations,
                        "{tag}: iterations differ"
                    );
                    assert_eq!(
                        r.cpu_only_makespan, reference.cpu_only_makespan,
                        "{tag}: baseline differs"
                    );
                }
                assert_eq!(
                    scoped.batch, pooled.batch,
                    "case {case} t{threads}: decision stats must not depend on the backend"
                );
                assert_eq!(
                    scoped.evaluations, pooled.evaluations,
                    "case {case} t{threads}"
                );
                if threads > 1 {
                    // The dispatch counters must prove the intended
                    // backend actually ran the parallel batches.
                    assert_eq!(scoped.dispatch.pool_batches, 0, "case {case} t{threads}");
                    assert_eq!(pooled.dispatch.scoped_batches, 0, "case {case} t{threads}");
                    assert_eq!(
                        scoped.dispatch.parallel_batches(),
                        pooled.dispatch.parallel_batches(),
                        "case {case} t{threads}: same batches, different transport"
                    );
                }
            }
        }
    }
}

/// Same burden for the report-mode sweep: {scoped, pool} × {1, 3, 8}
/// reproduce the reference serial multi-schedule sweep bit for bit.
#[test]
fn report_pool_scoped_serial_bit_identity() {
    for case in 0..3u64 {
        let g = graph_case(case + 1200);
        let p = platform_case(case);
        let base = MapperConfig {
            cost: CostModel::Report {
                schedules: 3,
                seed: 0xfeed + case,
            },
            ..MapperConfig::series_parallel()
        };
        let reference = decomposition_map_reference(&g, &p, &base);
        for threads in [1usize, 3, 8] {
            let cfg = engine_cfg(base, threads, true, true);
            for (tag, backend) in [("scoped", ParBackend::Scoped), ("pool", ParBackend::Pool)] {
                let r = with_backend(backend, || decomposition_map(&g, &p, &cfg));
                let tag = format!("report case {case} t{threads} {tag}");
                assert_eq!(r.mapping, reference.mapping, "{tag}");
                assert_eq!(r.makespan, reference.makespan, "{tag}");
                assert_eq!(r.history, reference.history, "{tag}");
            }
        }
    }
}

/// And for the GA: the engine-backed NSGA-II reproduces the serial
/// reference per seed under both parallel backends at every worker
/// count, with backend-invariant engine statistics.
#[test]
fn ga_pool_scoped_serial_bit_identity() {
    for case in 0..3u64 {
        let g = graph_case(case + 1300);
        let p = platform_case(case);
        let cfg = |threads: Option<usize>| GaConfig {
            population: 16,
            generations: 20,
            seed: 3 + case,
            threads,
            ..GaConfig::default()
        };
        let reference = nsga2_map_reference(&g, &p, &cfg(None));
        for threads in [1usize, 3, 8] {
            let scoped = with_backend(ParBackend::Scoped, || {
                nsga2_map(&g, &p, &cfg(Some(threads)))
            });
            let pooled = with_backend(ParBackend::Pool, || nsga2_map(&g, &p, &cfg(Some(threads))));
            for (tag, r) in [("scoped", &scoped), ("pool", &pooled)] {
                let tag = format!("ga case {case} t{threads} {tag}");
                assert_eq!(r.mapping, reference.mapping, "{tag}: mapping differs");
                assert_eq!(r.makespan, reference.makespan, "{tag}: makespan differs");
                assert_eq!(
                    r.best_per_generation, reference.best_per_generation,
                    "{tag}: history differs"
                );
                assert_eq!(
                    r.cpu_only_makespan, reference.cpu_only_makespan,
                    "{tag}: baseline differs"
                );
            }
            assert_eq!(
                scoped.engine, pooled.engine,
                "ga case {case} t{threads}: decision stats must not depend on the backend"
            );
            if threads > 1 {
                assert_eq!(scoped.dispatch.pool_batches, 0, "ga case {case} t{threads}");
                assert_eq!(
                    pooled.dispatch.scoped_batches, 0,
                    "ga case {case} t{threads}"
                );
            }
        }
    }
}

/// The trie-order rows of the GA matrix: for *both* evaluation orders
/// of the population engine — the prefix-sharing trie walk (default)
/// and the flat nearest-base policy kept as the PR 3 executable spec —
/// and for every `SPMAP_THREADS`-style worker count {1, 3, 8} ×
/// `SPMAP_POOL`-style backend {scoped, pool}, the engine-backed GA
/// reproduces the serial reference per seed bit for bit, with
/// order-specific engine statistics that are themselves invariant
/// across threads and backends (the whole trie plan lives on the
/// serial path).
#[test]
fn ga_trie_order_bit_identity_across_threads_and_backends() {
    for case in 0..3u64 {
        let g = graph_case(case + 1400);
        let p = platform_case(case);
        let cfg = |threads: Option<usize>, order: EvalOrder| GaConfig {
            population: 16,
            generations: 20,
            seed: 17 + case,
            threads,
            eval_order: order,
            ..GaConfig::default()
        };
        let reference = nsga2_map_reference(&g, &p, &cfg(None, EvalOrder::PrefixTrie));
        for order in [EvalOrder::PrefixTrie, EvalOrder::NearestBase] {
            let mut stats = None;
            for threads in [1usize, 3, 8] {
                for (tag, backend) in [("scoped", ParBackend::Scoped), ("pool", ParBackend::Pool)] {
                    let r = with_backend(backend, || nsga2_map(&g, &p, &cfg(Some(threads), order)));
                    let tag = format!("case {case} {order:?} t{threads} {tag}");
                    assert_eq!(r.mapping, reference.mapping, "{tag}: mapping differs");
                    assert_eq!(r.makespan, reference.makespan, "{tag}: makespan differs");
                    assert_eq!(
                        r.best_per_generation, reference.best_per_generation,
                        "{tag}: history differs"
                    );
                    assert_eq!(
                        r.cpu_only_makespan, reference.cpu_only_makespan,
                        "{tag}: baseline differs"
                    );
                    match &stats {
                        None => stats = Some(r.engine),
                        Some(s) => assert_eq!(
                            r.engine, *s,
                            "{tag}: engine stats must not depend on threads or backend"
                        ),
                    }
                }
            }
            if order == EvalOrder::PrefixTrie {
                let s = stats.expect("at least one run");
                assert!(
                    s.trie_members > 0,
                    "case {case}: the trie walk never chained a candidate: {s:?}"
                );
            }
        }
    }
}

/// Trail-cache capacity corners: a tiny `GaConfig::trail_cache_capacity`
/// forces constant trail eviction; the GA's results must not move by a
/// bit, the cache must never outgrow the cap (observed via
/// `trail_peak`), and eviction must actually happen.
#[test]
fn ga_trail_cache_capacity_corners_are_exact_and_bounded() {
    for case in 0..3u64 {
        let g = graph_case(case + 1500);
        let p = platform_case(case);
        let cfg = |trail_cache_capacity: usize| GaConfig {
            population: 16,
            generations: 25,
            seed: 29 + case,
            threads: Some(3),
            trail_cache_capacity,
            ..GaConfig::default()
        };
        let reference = nsga2_map_reference(&g, &p, &cfg(0));
        for capacity in [0usize, 2, 8] {
            let fast = nsga2_map(&g, &p, &cfg(capacity));
            let tag = format!("case {case} trail capacity {capacity}");
            assert_eq!(fast.mapping, reference.mapping, "{tag}: mapping differs");
            assert_eq!(fast.makespan, reference.makespan, "{tag}: makespan differs");
            assert_eq!(
                fast.best_per_generation, reference.best_per_generation,
                "{tag}: history differs"
            );
            if capacity > 0 {
                assert!(
                    fast.engine.trail_peak <= capacity as u64,
                    "{tag}: trail cache outgrew its capacity ({:?})",
                    fast.engine
                );
            }
            if capacity == 2 && fast.engine.trails_recorded > 2 {
                assert!(
                    fast.engine.trail_evictions > 0,
                    "{tag}: recording more trails than slots must evict ({:?})",
                    fast.engine
                );
            }
        }
    }
}

/// The scale-tier matrix: evaluation-table numbering {identity,
/// pop-order} × checkpoint layout {dense, suffix-sparse} are pure
/// layout choices — the mapper (both cost models) reproduces the serial
/// reference bit for bit in every cell, across worker counts {1, 3, 8}
/// and both parallel backends, with decision statistics that are
/// invariant across the whole matrix (layout must not change what the
/// engine computes, only where the bytes live).  A starved checkpoint
/// byte budget (which can only widen the snapshot interval) must not
/// move a result either, and the suffix-sparse layout must never hold
/// more snapshot bytes than dense.
#[test]
fn mapper_numbering_and_checkpoint_layout_matrix_bit_identity() {
    use spmap_core::Numbering;

    // (numbering, dense_checkpoints, checkpoint_budget_bytes)
    let cells = [
        (Numbering::Identity, false, 0usize),
        (Numbering::Identity, true, 0),
        (Numbering::PopOrder, true, 0),
        (Numbering::PopOrder, false, 0), // suffix-sparse, the default
        (Numbering::PopOrder, false, 4096), // starved per-trail budget
    ];
    for case in 0..3u64 {
        let g = graph_case(case + 1600);
        let p = platform_case(case);
        for cost in [
            CostModel::Bfs,
            CostModel::Report {
                schedules: 3,
                seed: 0xcafe + case,
            },
        ] {
            let base = MapperConfig {
                cost,
                ..MapperConfig::series_parallel()
            };
            let reference = decomposition_map_reference(&g, &p, &base);
            let mut stats = None;
            let mut dense_peak = 0u64;
            let mut suffix_peak = u64::MAX;
            for &(numbering, dense, budget) in &cells {
                for threads in [1usize, 3, 8] {
                    for (btag, backend) in
                        [("scoped", ParBackend::Scoped), ("pool", ParBackend::Pool)]
                    {
                        let cfg = MapperConfig {
                            engine: EngineConfig {
                                threads: Some(threads),
                                numbering,
                                dense_checkpoints: dense,
                                checkpoint_budget_bytes: budget,
                                ..EngineConfig::default()
                            },
                            ..base
                        };
                        let r = with_backend(backend, || decomposition_map(&g, &p, &cfg));
                        let tag = format!(
                            "case {case} {cost:?} {numbering:?} dense={dense} \
                             budget={budget} t{threads} {btag}"
                        );
                        assert_eq!(r.mapping, reference.mapping, "{tag}: mapping differs");
                        assert_eq!(r.makespan, reference.makespan, "{tag}: makespan differs");
                        assert_eq!(r.history, reference.history, "{tag}: history differs");
                        match &stats {
                            None => stats = Some(r.batch),
                            Some(s) => assert_eq!(
                                r.batch, *s,
                                "{tag}: decision stats must not depend on layout, \
                                 threads or backend"
                            ),
                        }
                        if numbering == Numbering::PopOrder && budget == 0 {
                            if dense {
                                dense_peak = dense_peak.max(r.checkpoint_peak_bytes);
                            } else {
                                suffix_peak = suffix_peak.min(r.checkpoint_peak_bytes);
                            }
                        }
                    }
                }
            }
            assert!(
                suffix_peak <= dense_peak,
                "case {case} {cost:?}: suffix-sparse snapshots held more bytes than \
                 dense ({suffix_peak} vs {dense_peak})"
            );
        }
    }
}

/// Same matrix for the GA: every numbering × layout × budget cell, at
/// every worker count and under both parallel backends, reproduces the
/// serial reference GA per seed bit for bit with matrix-invariant
/// engine statistics.
#[test]
fn ga_numbering_and_checkpoint_layout_matrix_bit_identity() {
    use spmap_core::Numbering;

    let cells = [
        (Numbering::Identity, false, 0usize),
        (Numbering::Identity, true, 0),
        (Numbering::PopOrder, true, 0),
        (Numbering::PopOrder, false, 0),
        (Numbering::PopOrder, false, 4096),
    ];
    for case in 0..3u64 {
        let g = graph_case(case + 1700);
        let p = platform_case(case);
        let cfg =
            |threads: Option<usize>, numbering: Numbering, dense: bool, budget: usize| GaConfig {
                population: 14,
                generations: 15,
                seed: 41 + case,
                threads,
                numbering,
                dense_checkpoints: dense,
                checkpoint_budget_bytes: budget,
                ..GaConfig::default()
            };
        let reference = nsga2_map_reference(&g, &p, &cfg(None, Numbering::default(), false, 0));
        let mut stats = None;
        let mut dense_peak = 0u64;
        let mut suffix_peak = u64::MAX;
        for &(numbering, dense, budget) in &cells {
            for threads in [1usize, 3, 8] {
                for (btag, backend) in [("scoped", ParBackend::Scoped), ("pool", ParBackend::Pool)]
                {
                    let r = with_backend(backend, || {
                        nsga2_map(&g, &p, &cfg(Some(threads), numbering, dense, budget))
                    });
                    let tag = format!(
                        "ga case {case} {numbering:?} dense={dense} budget={budget} \
                         t{threads} {btag}"
                    );
                    assert_eq!(r.mapping, reference.mapping, "{tag}: mapping differs");
                    assert_eq!(r.makespan, reference.makespan, "{tag}: makespan differs");
                    assert_eq!(
                        r.best_per_generation, reference.best_per_generation,
                        "{tag}: history differs"
                    );
                    assert_eq!(
                        r.cpu_only_makespan, reference.cpu_only_makespan,
                        "{tag}: baseline differs"
                    );
                    match &stats {
                        None => stats = Some(r.engine),
                        Some(s) => assert_eq!(
                            r.engine, *s,
                            "{tag}: engine stats must not depend on layout, threads \
                             or backend"
                        ),
                    }
                    if numbering == Numbering::PopOrder && budget == 0 {
                        if dense {
                            dense_peak = dense_peak.max(r.checkpoint_peak_bytes);
                        } else {
                            suffix_peak = suffix_peak.min(r.checkpoint_peak_bytes);
                        }
                    }
                }
            }
        }
        assert!(
            suffix_peak <= dense_peak,
            "ga case {case}: suffix-sparse trails held more bytes than dense \
             ({suffix_peak} vs {dense_peak})"
        );
    }
}

/// Thread count is not allowed to influence anything observable — runs
/// with 1, 3 and 8 workers must agree with each other in every field,
/// including the engine statistics.
#[test]
fn results_and_stats_are_thread_invariant() {
    for case in 0..6u64 {
        let g = graph_case(case + 300);
        let p = platform_case(case);
        let base = MapperConfig::series_parallel();
        let runs: Vec<_> = [1usize, 3, 8]
            .iter()
            .map(|&t| decomposition_map(&g, &p, &engine_cfg(base, t, true, true)))
            .collect();
        for r in &runs[1..] {
            assert_eq!(r.mapping, runs[0].mapping, "case {case}");
            assert_eq!(r.makespan, runs[0].makespan, "case {case}");
            assert_eq!(r.history, runs[0].history, "case {case}");
            assert_eq!(r.batch, runs[0].batch, "case {case}: stats drifted");
            assert_eq!(r.evaluations, runs[0].evaluations, "case {case}");
        }
    }
}

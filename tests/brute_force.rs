//! Brute-force oracles on tiny instances: enumerate every possible
//! mapping and compare the heuristics against the true optimum of the
//! model.

use spmap::prelude::*;

/// The optimal makespan over all `m^n` mappings (BFS schedule), or the
/// CPU-only makespan if nothing beats it.
fn brute_force_optimum(graph: &TaskGraph, platform: &Platform) -> (f64, Mapping) {
    let n = graph.node_count();
    let m = platform.device_count();
    assert!(
        m.pow(n as u32) <= 4_000_000,
        "instance too large to enumerate"
    );
    let mut ev = Evaluator::new(graph, platform);
    let mut best = (
        ev.cpu_only_makespan(),
        Mapping::all_default(graph, platform),
    );
    let mut devices = vec![0usize; n];
    loop {
        let mapping = Mapping::from_vec(devices.iter().map(|&d| DeviceId(d as u32)).collect());
        if let Some(ms) = ev.makespan_bfs(&mapping) {
            if ms < best.0 {
                best = (ms, mapping);
            }
        }
        // Increment the mixed-radix counter.
        let mut i = 0;
        loop {
            if i == n {
                return best;
            }
            devices[i] += 1;
            if devices[i] < m {
                break;
            }
            devices[i] = 0;
            i += 1;
        }
    }
}

#[test]
fn decomposition_mapper_is_near_optimal_on_tiny_graphs() {
    let platform = Platform::reference();
    let mut ratios = Vec::new();
    for seed in 0..6 {
        let mut graph = random_sp_graph(&SpGenConfig::new(7, seed));
        augment(&mut graph, &AugmentConfig::default(), seed);
        let (opt, _) = brute_force_optimum(&graph, &platform);
        let sp = decomposition_map(&graph, &platform, &MapperConfig::series_parallel());
        // Greedy can miss the optimum but must never be worse than the
        // baseline, and the gap should be modest on 7-task graphs.
        assert!(sp.makespan + 1e-12 >= opt, "cannot beat the optimum");
        assert!(
            sp.makespan <= opt * 1.5,
            "seed {seed}: greedy {} vs optimum {opt}",
            sp.makespan
        );
        ratios.push(sp.makespan / opt);
    }
    let mean: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(mean <= 1.2, "mean optimality ratio {mean}");
}

#[test]
fn ga_finds_tiny_optima_with_enough_generations() {
    let platform = Platform::reference();
    let mut graph = random_sp_graph(&SpGenConfig::new(6, 3));
    augment(&mut graph, &AugmentConfig::default(), 3);
    let (opt, _) = brute_force_optimum(&graph, &platform);
    let ga = nsga2_map(
        &graph,
        &platform,
        &GaConfig {
            population: 60,
            generations: 120,
            seed: 5,
            ..GaConfig::default()
        },
    );
    assert!(
        ga.makespan <= opt * 1.05,
        "GA {} vs optimum {opt}",
        ga.makespan
    );
}

#[test]
fn report_metric_no_worse_than_exhaustive_schedule_search_on_chains() {
    // On a chain there is exactly one topological order, so the reported
    // makespan must equal the BFS-schedule makespan exactly.
    let platform = Platform::reference();
    let mut graph = spmap::graph::gen::chain(5, 100e6);
    augment(&mut graph, &AugmentConfig::default(), 2);
    let mut ev = Evaluator::new(&graph, &platform);
    let mapping = Mapping::all_default(&graph, &platform);
    let bfs = ev.makespan(&mapping, SchedulePolicy::Bfs).unwrap();
    let reported = ev.report_makespan(&mapping, 50, 1).unwrap();
    assert!((bfs - reported).abs() < 1e-12);
}

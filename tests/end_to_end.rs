//! Cross-crate integration tests: full pipelines from graph generation
//! through decomposition, mapping and model evaluation.

use spmap::prelude::*;

#[test]
fn full_pipeline_on_random_sp_graphs() {
    let platform = Platform::reference();
    for seed in 0..5 {
        let mut graph = random_sp_graph(&SpGenConfig::new(35, seed));
        augment(&mut graph, &AugmentConfig::default(), seed);
        let mut ev = Evaluator::new(&graph, &platform);
        let cpu_only = ev.cpu_only_makespan();

        let heft_res = heft(&graph, &platform);
        let peft_res = peft(&graph, &platform);
        let sn = decomposition_map(&graph, &platform, &MapperConfig::sn_first_fit());
        let sp = decomposition_map(&graph, &platform, &MapperConfig::sp_first_fit());
        let ga = nsga2_map(
            &graph,
            &platform,
            &GaConfig {
                population: 30,
                generations: 40,
                seed,
                ..GaConfig::default()
            },
        );

        // Every algorithm produces a feasible mapping the model can score.
        for (name, mapping) in [
            ("heft", &heft_res.mapping),
            ("peft", &peft_res.mapping),
            ("sn", &sn.mapping),
            ("sp", &sp.mapping),
            ("ga", &ga.mapping),
        ] {
            assert!(mapping.is_area_feasible(&graph, &platform), "{name}");
            let ms = ev.makespan_bfs(mapping);
            assert!(ms.is_some(), "{name} infeasible");
        }
        // Decomposition and GA never lose to the pure-CPU mapping.
        assert!(sn.makespan <= cpu_only * (1.0 + 1e-9));
        assert!(sp.makespan <= cpu_only * (1.0 + 1e-9));
        assert!(ga.makespan <= cpu_only * (1.0 + 1e-9));
    }
}

#[test]
fn sp_strategy_dominates_on_streaming_pipelines() {
    // Average over several pipelines: the series-parallel strategy must
    // beat single-node where streaming chains matter (paper Fig. 4 story).
    let platform = Platform::reference();
    let mut sn_total = 0.0;
    let mut sp_total = 0.0;
    for seed in 0..4 {
        let mut builder = GraphBuilder::new();
        let mut prev = builder.add_task(Task::default());
        for _ in 1..10 {
            let t = builder.add_task(Task::default());
            builder.add_edge(prev, t, 1e9).unwrap();
            prev = t;
        }
        let mut graph = builder.build().unwrap();
        for v in graph.nodes().collect::<Vec<_>>() {
            *graph.task_mut(v) = Task {
                complexity: 15.0 + seed as f64,
                data_points: 1.25e8,
                parallelizability: 0.0,
                streamability: 6.5,
                area: 110.0,
                ..Task::default()
            };
        }
        let sn = decomposition_map(&graph, &platform, &MapperConfig::single_node());
        let sp = decomposition_map(&graph, &platform, &MapperConfig::series_parallel());
        sn_total += sn.relative_improvement();
        sp_total += sp.relative_improvement();
    }
    assert!(
        sp_total > sn_total + 0.5,
        "SP {sp_total} must clearly beat SN {sn_total} on pipelines"
    );
}

#[test]
fn milp_and_decomposition_agree_on_tiny_instances() {
    // On tiny graphs the time-based MILP (exact within its time budget)
    // must be at least as good as the greedy heuristics under its own
    // objective; under the full model all stay within the CPU-only bound.
    let platform = Platform::reference();
    let mut graph = random_sp_graph(&SpGenConfig::new(6, 11));
    augment(&mut graph, &AugmentConfig::default(), 11);
    let mut ev = Evaluator::new(&graph, &platform);
    let cpu_only = ev.cpu_only_makespan();
    let milp = solve_wgdp_time(
        &graph,
        &platform,
        &SolveOptions {
            time_limit: std::time::Duration::from_secs(20),
            ..SolveOptions::default()
        },
    );
    let milp_ms = ev.makespan_bfs(&milp.mapping).unwrap_or(cpu_only);
    assert!(milp_ms <= cpu_only * 1.5, "MILP mapping must be sane");
    assert!(milp.objective <= cpu_only * (1.0 + 1e-6));
}

#[test]
fn workflows_map_end_to_end() {
    use spmap::workflows::augment_ps;
    let platform = Platform::reference();
    for family in Family::all() {
        let mut graph = family.generate(60, 3);
        augment_ps(&mut graph, 3);
        let r = decomposition_map(&graph, &platform, &MapperConfig::sp_first_fit());
        assert!(
            r.makespan <= r.cpu_only_makespan * (1.0 + 1e-9),
            "{}",
            family.name()
        );
        assert!(r.mapping.is_area_feasible(&graph, &platform));
    }
}

#[test]
fn transfer_dominated_workflows_see_no_gain() {
    // bwa and seismology: the paper reports no significant acceleration.
    use spmap::workflows::augment_ps;
    let platform = Platform::reference();
    for family in [Family::Bwa, Family::Seismology] {
        let mut total = 0.0;
        for seed in 0..3 {
            let mut graph = family.generate(80, seed);
            augment_ps(&mut graph, seed);
            let r = decomposition_map(&graph, &platform, &MapperConfig::sp_first_fit());
            total += r.relative_improvement();
        }
        // "No *significant* acceleration" (paper §IV-D): single-digit
        // improvements at most.
        assert!(
            total / 3.0 < 0.10,
            "{} should not accelerate, got {:.1}%",
            family.name(),
            100.0 * total / 3.0
        );
    }
}

#[test]
fn decomposition_forest_invariants_across_generators() {
    use spmap::decomp::{decompose_forest, CutPolicy};
    use spmap::graph::ops::normalize_terminals;
    let cases: Vec<TaskGraph> = vec![
        random_sp_graph(&SpGenConfig::new(80, 1)),
        almost_sp_graph(&SpGenConfig::new(80, 2), 30),
        Family::Montage.generate(120, 3),
        Family::Epigenomics.generate(150, 4),
    ];
    for graph in cases {
        let norm = normalize_terminals(&graph);
        let result = decompose_forest(&norm.graph, norm.source, norm.sink, CutPolicy::default());
        result.forest.validate(&norm.graph);
        let total: u32 = result
            .forest
            .roots
            .iter()
            .map(|&t| result.forest.node(t).edge_count)
            .sum();
        assert_eq!(total as usize, norm.graph.edge_count(), "edge partition");
    }
}

#[test]
fn reporting_metric_is_min_over_schedules() {
    let platform = Platform::reference();
    let mut graph = random_sp_graph(&SpGenConfig::new(50, 9));
    augment(&mut graph, &AugmentConfig::default(), 9);
    let mut ev = Evaluator::new(&graph, &platform);
    let mapping = heft(&graph, &platform).mapping;
    let bfs_only = ev.makespan(&mapping, SchedulePolicy::Bfs).unwrap();
    let reported = ev.report_makespan(&mapping, 100, 7).unwrap();
    assert!(reported <= bfs_only + 1e-12);
}

#[test]
fn heft_is_competitive_on_cpu_gpu_platforms() {
    // Paper §II-A: "HEFT performs very well in a CPU-GPU environment" —
    // the decomposition advantage comes from high heterogeneity (FPGA
    // streaming).  Without the FPGA, HEFT must be close to the
    // decomposition mappers on average.
    let platform = Platform::cpu_gpu();
    let mut heft_sum = 0.0;
    let mut sp_sum = 0.0;
    let trials = 6;
    for seed in 0..trials {
        let mut graph = random_sp_graph(&SpGenConfig::new(40, seed));
        augment(&mut graph, &AugmentConfig::default(), seed);
        let mut ev = Evaluator::new(&graph, &platform);
        let cpu = ev.cpu_only_makespan();
        let hm = ev
            .makespan_bfs(&heft(&graph, &platform).mapping)
            .unwrap()
            .min(cpu);
        let sp = decomposition_map(&graph, &platform, &MapperConfig::sp_first_fit());
        heft_sum += relative_improvement(cpu, hm);
        sp_sum += relative_improvement(cpu, sp.makespan);
    }
    let heft_mean = heft_sum / trials as f64;
    let sp_mean = sp_sum / trials as f64;
    assert!(
        heft_mean >= sp_mean - 0.06,
        "HEFT ({heft_mean:.3}) should be near decomposition ({sp_mean:.3}) without an FPGA"
    );
}

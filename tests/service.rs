//! Concurrency stress suite for the sharded pool and the mapping
//! service.
//!
//! The tentpole guarantee of the sharded backend: shard choice affects
//! only *which threads execute* a batch, never its result.  Here eight
//! submitter threads interleave mapper and GA runs against shared
//! pools of every shard count (explicit 1, explicit 2, and the
//! `SPMAP_SHARDS` auto default) under both dispatch backends, and every
//! result must be bit-identical to its serial reference.  The service
//! half pins the artifact cache (cold vs warm vs evicting — identical
//! results) and the admission gate's invariants (`peak_inflight` never
//! exceeds the bound; zero-queue services reject instead of buffering).

use std::sync::Arc;

use spmap::par::{with_backend, with_pool, ParBackend, Pool};
use spmap::prelude::*;
use spmap_core::{
    decomposition_map_reference, EngineConfig, MapRequest, MapService, MapperResult, ServiceConfig,
    ServiceError,
};
use spmap_ga::{nsga2_map, nsga2_map_reference, GaConfig, GaResult};

/// Deterministic graph zoo (mirrors `tests/equivalence.rs`): SP,
/// almost-SP and layered non-SP shapes with the paper's augmentation.
fn graph_case(case: u64) -> TaskGraph {
    let nodes = 12 + (case * 7 % 24) as usize;
    let seed = case * 131 + 17;
    let mut g = match case % 3 {
        0 => random_sp_graph(&SpGenConfig::new(nodes, seed)),
        1 => almost_sp_graph(&SpGenConfig::new(nodes, seed), (case % 7) as usize),
        _ => {
            use spmap::graph::gen::{layered_random, LayeredConfig};
            layered_random(&LayeredConfig {
                layers: 3 + (case % 4) as usize,
                width: 2 + (case % 3) as usize,
                density: 0.5,
                seed,
                edge_bytes: 50e6,
            })
        }
    };
    augment(&mut g, &AugmentConfig::default(), seed);
    g
}

fn mapper_cfg(threads: usize) -> MapperConfig {
    MapperConfig {
        engine: EngineConfig {
            threads: Some(threads),
            ..EngineConfig::default()
        },
        ..MapperConfig::sp_first_fit()
    }
}

fn ga_cfg(threads: usize, seed: u64) -> GaConfig {
    GaConfig {
        population: 16,
        generations: 12,
        seed,
        threads: Some(threads),
        ..GaConfig::default()
    }
}

/// Engine result vs the *serial reference* result: everything the
/// reference produces must match bit for bit.  Decision counters are
/// not compared here — the reference path reports zeros by design;
/// the concurrent test below pins them against an engine baseline.
fn assert_mapper_identical(tag: &str, got: &MapperResult, want: &MapperResult) {
    assert_eq!(got.mapping, want.mapping, "{tag}: mapping diverged");
    assert_eq!(got.makespan, want.makespan, "{tag}: makespan diverged");
    assert_eq!(got.history, want.history, "{tag}: history diverged");
    assert_eq!(
        got.cpu_only_makespan, want.cpu_only_makespan,
        "{tag}: baseline diverged"
    );
}

fn assert_ga_identical(tag: &str, got: &GaResult, want: &GaResult) {
    assert_eq!(got.mapping, want.mapping, "{tag}: mapping diverged");
    assert_eq!(got.makespan, want.makespan, "{tag}: makespan diverged");
    assert_eq!(
        got.best_per_generation, want.best_per_generation,
        "{tag}: per-generation history diverged"
    );
}

/// Eight threads hammer one shared pool with interleaved mapper and GA
/// runs; every result must match its serial reference bit for bit, for
/// every shard count and both backends.  (`SPMAP_POOL` itself cannot be
/// toggled from inside a test process — `with_backend` covers both
/// values of that env knob, and `with_pool` covers `SPMAP_SHARDS`.)
#[test]
fn concurrent_mapper_and_ga_runs_are_bit_identical() {
    const SUBMITTERS: usize = 8;
    const ENGINE_THREADS: usize = 2;

    // Serial references, computed once up front.
    let graphs: Vec<TaskGraph> = (0..SUBMITTERS as u64).map(graph_case).collect();
    let platform = Platform::reference();
    let mapper_refs: Vec<MapperResult> = graphs
        .iter()
        .map(|g| decomposition_map_reference(g, &platform, &MapperConfig::sp_first_fit()))
        .collect();
    // Engine baselines, run serially: decision counters are
    // thread-count-invariant, so concurrent runs must reproduce them
    // exactly (the reference path reports zeros, so it cannot pin them).
    let engine_refs: Vec<MapperResult> = graphs
        .iter()
        .map(|g| decomposition_map(g, &platform, &mapper_cfg(ENGINE_THREADS)))
        .collect();
    let ga_refs: Vec<GaResult> = graphs
        .iter()
        .enumerate()
        .map(|(i, g)| nsga2_map_reference(g, &platform, &ga_cfg(1, 900 + i as u64)))
        .collect();

    for shards in [Some(1usize), Some(2), None] {
        let pool = Arc::new(match shards {
            Some(n) => Pool::with_shards(n),
            None => Pool::new(), // the SPMAP_SHARDS / auto default
        });
        for backend in [ParBackend::Pool, ParBackend::Scoped] {
            let tag = format!("shards {:?}, backend {backend:?}", shards);
            std::thread::scope(|scope| {
                for (i, g) in graphs.iter().enumerate() {
                    let pool = Arc::clone(&pool);
                    let platform = &platform;
                    let mapper_want = &mapper_refs[i];
                    let engine_want = &engine_refs[i];
                    let ga_want = &ga_refs[i];
                    let tag = &tag;
                    scope.spawn(move || {
                        // Thread-local knobs must be installed on the
                        // submitter thread itself.
                        with_pool(&pool, || {
                            with_backend(backend, || {
                                if i % 2 == 0 {
                                    let r =
                                        decomposition_map(g, platform, &mapper_cfg(ENGINE_THREADS));
                                    assert_mapper_identical(
                                        &format!("{tag}, mapper {i}"),
                                        &r,
                                        mapper_want,
                                    );
                                    assert_eq!(
                                        r.batch, engine_want.batch,
                                        "{tag}, mapper {i}: decision counters \
                                         not concurrency-invariant"
                                    );
                                    let r2 = nsga2_map(
                                        g,
                                        platform,
                                        &ga_cfg(ENGINE_THREADS, 900 + i as u64),
                                    );
                                    assert_ga_identical(&format!("{tag}, ga {i}"), &r2, ga_want);
                                } else {
                                    let r2 = nsga2_map(
                                        g,
                                        platform,
                                        &ga_cfg(ENGINE_THREADS, 900 + i as u64),
                                    );
                                    assert_ga_identical(&format!("{tag}, ga {i}"), &r2, ga_want);
                                    let r =
                                        decomposition_map(g, platform, &mapper_cfg(ENGINE_THREADS));
                                    assert_mapper_identical(
                                        &format!("{tag}, mapper {i}"),
                                        &r,
                                        mapper_want,
                                    );
                                    assert_eq!(
                                        r.batch, engine_want.batch,
                                        "{tag}, mapper {i}: decision counters \
                                         not concurrency-invariant"
                                    );
                                }
                            })
                        });
                    });
                }
            });
        }
    }
}

/// Cold build, warm cache hit and a byte-starved always-evicting cache
/// all return the same bits; the hit/miss accounting tells the paths
/// apart.
#[test]
fn artifact_cache_temperature_cannot_change_results() {
    let platform = Arc::new(Platform::reference());
    let requests: Vec<MapRequest> = (0..4u64)
        .map(|case| {
            MapRequest::from_mapper_config(
                Arc::new(graph_case(case)),
                Arc::clone(&platform),
                &mapper_cfg(2),
            )
        })
        .collect();
    let references: Vec<MapperResult> = requests
        .iter()
        .map(|r| decomposition_map_reference(&r.graph, &r.platform, &MapperConfig::sp_first_fit()))
        .collect();

    let roomy = MapService::new(ServiceConfig::default());
    let starved = MapService::new(ServiceConfig {
        cache_budget_bytes: 1, // every insert immediately evicts
        ..ServiceConfig::default()
    });
    for (i, req) in requests.iter().enumerate() {
        let cold = roomy.map(req).expect("admitted");
        let warm = roomy.map(req).expect("admitted");
        let evicting = starved.map(req).expect("admitted");
        assert!(!cold.cache_hit, "first sight of graph {i} must build");
        assert!(warm.cache_hit, "second sight of graph {i} must hit");
        assert_eq!(cold.artifact_key, warm.artifact_key);
        assert_mapper_identical(&format!("cold {i}"), &cold.result, &references[i]);
        assert_mapper_identical(&format!("warm {i}"), &warm.result, &references[i]);
        assert_mapper_identical(&format!("evicting {i}"), &evicting.result, &references[i]);
    }
    let stats = roomy.stats();
    assert_eq!(stats.cache.hits as usize, requests.len());
    assert_eq!(stats.cache.misses as usize, requests.len());
    let starved_stats = starved.stats();
    assert_eq!(
        starved_stats.cache.hits, 0,
        "a 1-byte budget can never serve a hit"
    );
    assert!(starved_stats.cache.evictions >= requests.len() as u64 - 1);
}

/// The admission gate under concurrent load: `peak_inflight` stays at
/// or under the configured bound while queued submitters drain, and a
/// zero-queue service rejects (with accurate occupancy) instead of
/// buffering.
#[test]
fn admission_control_bounds_and_rejects() {
    let platform = Arc::new(Platform::reference());
    let req = MapRequest::from_mapper_config(
        Arc::new(graph_case(5)),
        Arc::clone(&platform),
        &mapper_cfg(2),
    );
    let reference =
        decomposition_map_reference(&req.graph, &req.platform, &MapperConfig::sp_first_fit());

    // 8 submitters through 2 slots + queue room for the rest.
    let service = Arc::new(MapService::new(ServiceConfig {
        max_inflight: 2,
        max_queued: 6,
        ..ServiceConfig::default()
    }));
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let service = Arc::clone(&service);
            let req = req.clone();
            let reference = &reference;
            scope.spawn(move || {
                let resp = service.map(&req).expect("queue has room for all");
                assert_mapper_identical("gated run", &resp.result, reference);
            });
        }
    });
    let stats = service.stats();
    assert_eq!(stats.completed, 8);
    assert_eq!(stats.rejected, 0);
    assert!(
        stats.peak_inflight <= 2,
        "admission bound exceeded: {} concurrent runs",
        stats.peak_inflight
    );
    assert!(stats.peak_queued <= 6);

    // Zero queue, one slot, four racing submitters: losers must be
    // rejected with accurate occupancy, never buffered, and every
    // admitted run still returns the reference bits.  (Whether a given
    // submit wins or loses is timing-dependent; the assertions hold
    // either way, and the accounting below is checked exactly.)
    let tight = MapService::new(ServiceConfig {
        max_inflight: 1,
        max_queued: 0,
        ..ServiceConfig::default()
    });
    const RACERS: usize = 4;
    const TRIES: usize = 25;
    std::thread::scope(|scope| {
        for _ in 0..RACERS {
            let tight = &tight;
            let req = &req;
            let reference = &reference;
            scope.spawn(move || {
                for _ in 0..TRIES {
                    match tight.map(req) {
                        Ok(resp) => assert_mapper_identical("racer", &resp.result, reference),
                        Err(err) => assert!(
                            matches!(
                                err,
                                ServiceError::Overloaded {
                                    inflight: 1,
                                    queued: 0,
                                    retry_hint: 1,
                                }
                            ),
                            "rejection must report accurate occupancy, got {err:?}"
                        ),
                    }
                }
            });
        }
    });
    let stats = tight.stats();
    assert_eq!(stats.peak_inflight, 1, "zero-queue bound is hard");
    assert_eq!(
        stats.admitted + stats.rejected,
        (RACERS * TRIES) as u64,
        "every submit is either admitted or rejected"
    );
    assert_eq!(stats.completed, stats.admitted, "admitted runs all finish");
}

/// Each session's perturbation life: lose the GPU, take an arrival wired
/// to the sink, get the GPU back, retire one task.  Deterministic per
/// session index.
fn perturbation_sequence(i: usize, g: &TaskGraph) -> Vec<Vec<Perturbation>> {
    let n = g.node_count() as u32;
    let sub = random_sp_graph(&SpGenConfig::new(5, 400 + i as u64));
    vec![
        vec![Perturbation::DeviceLost(DeviceId(1))],
        vec![Perturbation::TaskArrived {
            subgraph: sub,
            attach: vec![AttachEdge::Into {
                from: NodeId(n - 1),
                to_new: 0,
                bytes: 1e6,
            }],
        }],
        vec![Perturbation::DeviceRestored(DeviceId(1))],
        vec![Perturbation::TaskFinished(vec![NodeId(i as u32 % n)])],
    ]
}

fn assert_outcomes_identical(tag: &str, got: &RemapOutcome, want: &RemapOutcome) {
    assert_eq!(got.mapping, want.mapping, "{tag}: mapping diverged");
    assert_eq!(got.makespan, want.makespan, "{tag}: makespan diverged");
    assert_eq!(got.history, want.history, "{tag}: history diverged");
    assert_eq!(
        got.iterations, want.iterations,
        "{tag}: iterations diverged"
    );
    assert_eq!(
        got.neighborhood_ops, want.neighborhood_ops,
        "{tag}: neighborhood diverged"
    );
    assert_eq!(
        got.session_key, want.session_key,
        "{tag}: session key diverged"
    );
    assert_eq!(got.warm, want.warm, "{tag}: path flag diverged");
    assert_eq!(got.noop, want.noop, "{tag}: noop flag diverged");
}

/// Session lifecycle under concurrency: one thread per session drives
/// its perturbation sequence through a shared service, across explicit
/// shard counts and both dispatch backends, and every remap outcome is
/// bit-identical to serially replaying the same sequence through a
/// fresh standalone [`RemapSession`].  Empty-perturbation remaps return
/// the incumbent bits at every point of the life cycle.
#[test]
fn concurrent_session_remaps_replay_bit_identically() {
    const SESSIONS: usize = 6;

    let platform = Arc::new(Platform::reference());
    let requests: Vec<MapRequest> = (0..SESSIONS as u64)
        .map(|case| {
            MapRequest::from_mapper_config(
                Arc::new(graph_case(case)),
                Arc::clone(&platform),
                &mapper_cfg(2),
            )
        })
        .collect();
    let sequences: Vec<Vec<Vec<Perturbation>>> = requests
        .iter()
        .enumerate()
        .map(|(i, r)| perturbation_sequence(i, &r.graph))
        .collect();

    // The serial replay references: a fresh standalone session per
    // request, stepped through the same sequence on this thread.
    let references: Vec<Vec<RemapOutcome>> = requests
        .iter()
        .zip(&sequences)
        .map(|(req, seq)| {
            let mut s = spmap::core::RemapSession::open(req, None).expect("reference session");
            seq.iter()
                .map(|batch| s.remap(batch).expect("reference remap"))
                .collect()
        })
        .collect();

    for shards in [1usize, 2] {
        let pool = Arc::new(Pool::with_shards(shards));
        for backend in [ParBackend::Pool, ParBackend::Scoped] {
            let tag = format!("shards {shards}, backend {backend:?}");
            let service = Arc::new(MapService::new(ServiceConfig {
                max_inflight: SESSIONS,
                max_queued: SESSIONS,
                ..ServiceConfig::default()
            }));
            std::thread::scope(|scope| {
                for (i, req) in requests.iter().enumerate() {
                    let pool = Arc::clone(&pool);
                    let service = Arc::clone(&service);
                    let seq = &sequences[i];
                    let want = &references[i];
                    let tag = &tag;
                    scope.spawn(move || {
                        with_pool(&pool, || {
                            with_backend(backend, || {
                                let opened = service.open_session(req).expect("open");
                                assert_eq!(
                                    opened.result.mapping,
                                    want_initial(req),
                                    "{tag}, session {i}: opening map diverged"
                                );
                                for (step, batch) in seq.iter().enumerate() {
                                    // An empty batch between real steps
                                    // must hand back the incumbent bits.
                                    let noop = service.remap(opened.id, &[]).expect("noop");
                                    assert!(noop.noop, "{tag}, session {i}: empty batch ran");
                                    let out = service.remap(opened.id, batch).expect("remap");
                                    assert_eq!(
                                        noop.mapping,
                                        if step == 0 {
                                            opened.result.mapping.clone()
                                        } else {
                                            want[step - 1].mapping.clone()
                                        },
                                        "{tag}, session {i}: noop changed bits"
                                    );
                                    assert_outcomes_identical(
                                        &format!("{tag}, session {i}, step {step}"),
                                        &out,
                                        &want[step],
                                    );
                                }
                                let closed = service.close_session(opened.id).expect("close");
                                let last = want.last().expect("non-empty sequence");
                                assert_eq!(closed.mapping, last.mapping);
                                assert_eq!(closed.makespan, last.makespan);
                            })
                        });
                    });
                }
            });
            let stats = service.stats();
            assert_eq!(stats.sessions_opened, SESSIONS as u64, "{tag}");
            assert_eq!(stats.sessions_closed, SESSIONS as u64, "{tag}");
            assert_eq!(stats.remaps, (SESSIONS * 4) as u64, "{tag}");
            assert_eq!(stats.remaps_noop, (SESSIONS * 4) as u64, "{tag}");
            assert_eq!(service.open_sessions(), 0, "{tag}");
        }
    }
}

/// The opening full map a session must reproduce — computed directly.
fn want_initial(req: &MapRequest) -> Mapping {
    let cfg = req.mapper_config().expect("decomposition family");
    decomposition_map(&req.graph, &req.platform, &cfg).mapping
}

/// `close_session` racing an inflight `remap`: the close removes the
/// registry entry first and then waits out the session lock, so the
/// race has exactly two legal outcomes — pinned here over repeated
/// barrier-synchronized rounds.
///
/// * The remap fetched the session before the close removed it: both
///   proceed, serialized by the session lock.  If the remap locked
///   first, the close reads the post-remap state (`remaps == 1`, final
///   mapping == the remap's); if the close locked first, it reads the
///   initial state and the remap still completes on its own handle,
///   bit-identical to the reference.
/// * The close removed the entry first: the remap gets a typed
///   `UnknownSession` refusal, never a panic or a torn state.
#[test]
fn close_session_racing_inflight_remap_has_exactly_two_outcomes() {
    const ROUNDS: usize = 20;

    let platform = Arc::new(Platform::reference());
    let req = MapRequest::from_mapper_config(
        Arc::new(graph_case(3)),
        Arc::clone(&platform),
        &mapper_cfg(2),
    );
    let batch = vec![Perturbation::DeviceLost(DeviceId(1))];
    // The remap's reference outcome: a fresh standalone session stepped
    // once (the racing remap, when it runs, always starts from the
    // session's initial state — it is the only remap the session sees).
    let reference = {
        let mut s = spmap::core::RemapSession::open(&req, None).expect("reference session");
        s.remap(&batch).expect("reference remap")
    };

    let service = Arc::new(MapService::new(ServiceConfig {
        max_inflight: 2,
        max_queued: 2,
        ..ServiceConfig::default()
    }));
    let mut remaps_ok = 0u64;
    let mut unknown = 0u64;
    for round in 0..ROUNDS {
        let opened = service.open_session(&req).expect("open");
        let initial = opened.result.mapping.clone();
        let barrier = std::sync::Barrier::new(2);
        let (remap_outcome, closed) = std::thread::scope(|scope| {
            let remapper = {
                let service = Arc::clone(&service);
                let barrier = &barrier;
                let batch = &batch;
                scope.spawn(move || {
                    barrier.wait();
                    service.remap(opened.id, batch)
                })
            };
            let closer = {
                let service = Arc::clone(&service);
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    service.close_session(opened.id).expect("single close")
                })
            };
            (
                remapper.join().expect("remap thread"),
                closer.join().expect("close thread"),
            )
        });

        assert!(!closed.poisoned, "round {round}: nothing panicked here");
        match remap_outcome {
            Ok(out) => {
                remaps_ok += 1;
                assert_outcomes_identical(&format!("round {round}"), &out, &reference);
                if closed.remaps == 1 {
                    // The remap locked first: the close read its commit.
                    assert_eq!(closed.mapping, out.mapping, "round {round}");
                    assert_eq!(closed.makespan, out.makespan, "round {round}");
                } else {
                    // The close locked first: it read the initial state
                    // and the remap finished on its own handle.
                    assert_eq!(closed.remaps, 0, "round {round}");
                    assert_eq!(closed.mapping, initial, "round {round}");
                }
            }
            Err(ServiceError::UnknownSession(id)) => {
                unknown += 1;
                assert_eq!(id, opened.id, "round {round}");
                assert_eq!(closed.remaps, 0, "round {round}");
                assert_eq!(closed.mapping, initial, "round {round}");
            }
            Err(other) => panic!("round {round}: unexpected remap outcome {other:?}"),
        }
    }

    let stats = service.stats();
    assert_eq!(stats.sessions_opened, ROUNDS as u64);
    assert_eq!(stats.sessions_closed, ROUNDS as u64);
    assert_eq!(stats.remaps, remaps_ok, "only Ok remaps are counted");
    assert_eq!(remaps_ok + unknown, ROUNDS as u64);
    assert_eq!(service.open_sessions(), 0);
    assert_eq!(
        stats.admitted,
        stats.completed + stats.failed,
        "accounting balances: a typed UnknownSession refusal is still a \
         completed request"
    );
}

//! Why series-parallel beats single-node mapping: the FPGA streaming
//! local minimum (paper §III-B/C).
//!
//! Builds a pipeline of serial, streamable tasks where offloading any
//! *single* task to the FPGA loses to the transfer cost, so the
//! single-node mapper is stuck at the pure-CPU mapping — while the
//! series-parallel mapper moves the whole chain at once and streams it.
//!
//! ```sh
//! cargo run --release --example fpga_streaming
//! ```

use spmap::prelude::*;

fn main() {
    // An 8-stage pipeline moving 1 GB between stages; every stage is
    // serial (p = 0) but streamable.
    let mut builder = GraphBuilder::new();
    let first = builder.add_task(Task::default());
    let mut prev = first;
    for _ in 1..8 {
        let t = builder.add_task(Task::default());
        builder.add_edge(prev, t, 1e9).unwrap();
        prev = t;
    }
    let mut graph = builder.build().unwrap();
    for v in graph.nodes().collect::<Vec<_>>() {
        *graph.task_mut(v) = Task {
            name: format!("stage{}", v.0),
            complexity: 20.0,
            data_points: 1.25e8,
            parallelizability: 0.0,
            streamability: 7.0,
            area: 120.0,
            ..Task::default()
        };
    }
    let platform = Platform::reference();
    let mut ev = Evaluator::new(&graph, &platform);
    let cpu_only = ev.cpu_only_makespan();
    println!("8-stage pipeline, pure CPU: {cpu_only:.2} s");

    // A single stage on the FPGA: transfers + slow un-streamed execution.
    let mut single = Mapping::all_default(&graph, &platform);
    single.set(NodeId(3), DeviceId(2));
    let ms = ev.makespan_bfs(&single).unwrap();
    println!(
        "one stage on the FPGA:      {ms:.2} s  ({}),",
        if ms > cpu_only {
            "worse — single moves are a local minimum"
        } else {
            "better"
        }
    );

    // The whole pipeline on the FPGA: stages stream into each other.
    let streamed = Mapping::uniform(graph.node_count(), DeviceId(2));
    let ms_streamed = ev.makespan_bfs(&streamed).unwrap();
    println!("whole pipeline streamed:    {ms_streamed:.2} s");

    // The single-node mapper cannot escape; the series-parallel mapper can.
    let sn = decomposition_map(&graph, &platform, &MapperConfig::single_node());
    let sp = decomposition_map(&graph, &platform, &MapperConfig::series_parallel());
    println!(
        "\nSingleNode mapper:     {:.2} s ({:.1}% improvement, {} iterations)",
        sn.makespan,
        100.0 * sn.relative_improvement(),
        sn.iterations
    );
    println!(
        "SeriesParallel mapper: {:.2} s ({:.1}% improvement, {} iterations)",
        sp.makespan,
        100.0 * sp.relative_improvement(),
        sp.iterations
    );
    assert!(sp.makespan < sn.makespan);
    println!("\nThe chain subgraph from the decomposition tree escapes the minimum.");

    // Visualize the streamed schedule: the pipeline stages overlap.
    let sched = ev
        .simulate(&sp.mapping, SchedulePolicy::Bfs)
        .expect("final mapping is feasible");
    println!("\nGantt of the series-parallel mapping:");
    print!(
        "{}",
        spmap::model::render_gantt(&graph, &platform, &sp.mapping, &sched, 72)
    );
}

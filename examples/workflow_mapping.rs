//! Map realistic scientific workflows (paper §IV-D / Table I).
//!
//! Generates WfCommons-style instances of three families and compares
//! HEFT, PEFT and the FirstFit decomposition mappers on each.
//!
//! ```sh
//! cargo run --release --example workflow_mapping
//! ```

use std::time::Instant;

use spmap::prelude::*;
use spmap::workflows::augment_ps;

fn main() {
    let platform = Platform::reference();
    for (family, tasks) in [
        (Family::Montage, 120),
        (Family::Epigenomics, 150),
        (Family::Seismology, 60),
    ] {
        let mut graph = family.generate(tasks, 7);
        augment_ps(&mut graph, 7);
        let mut ev = Evaluator::new(&graph, &platform);
        let cpu_only = ev
            .report_makespan(&Mapping::all_default(&graph, &platform), 100, 0)
            .unwrap();
        println!(
            "\n=== {} ({} tasks, {} edges) — pure CPU {:.2} s ===",
            family.name(),
            graph.node_count(),
            graph.edge_count(),
            cpu_only
        );
        let algos: Vec<(&str, Box<dyn Fn() -> Mapping>)> = vec![
            ("HEFT", Box::new(|| heft(&graph, &platform).mapping)),
            ("PEFT", Box::new(|| peft(&graph, &platform).mapping)),
            (
                "SNFirstFit",
                Box::new(|| {
                    decomposition_map(&graph, &platform, &MapperConfig::sn_first_fit()).mapping
                }),
            ),
            (
                "SPFirstFit",
                Box::new(|| {
                    decomposition_map(&graph, &platform, &MapperConfig::sp_first_fit()).mapping
                }),
            ),
        ];
        for (name, run) in algos {
            let t = Instant::now();
            let mapping = run();
            let elapsed = t.elapsed();
            let ms = ev
                .report_makespan(&mapping, 100, 0)
                .unwrap_or(cpu_only)
                .min(cpu_only);
            println!(
                "  {:<12} improvement {:>5.1}%  ({:?})",
                name,
                100.0 * relative_improvement(cpu_only, ms),
                elapsed
            );
        }
    }
    println!("\n(seismology is transfer-dominated: no algorithm accelerates it — paper §IV-D)");
}

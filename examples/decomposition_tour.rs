//! A tour of series-parallel decomposition: reproduces the paper's Fig. 1
//! (decomposition tree of an SP graph) and Fig. 2 (decomposition *forest*
//! of a non-SP graph, under both cut policies), and prints the resulting
//! candidate subgraph sets.
//!
//! ```sh
//! cargo run --release --example decomposition_tour
//! ```

use spmap::prelude::*;

fn print_forest(graph: &TaskGraph, policy: CutPolicy, label: &str) {
    let norm = spmap::graph::ops::normalize_terminals(graph);
    let result = decompose_forest(&norm.graph, norm.source, norm.sink, policy);
    println!(
        "{label}: {} tree(s), {} cut(s){}",
        result.forest.roots.len(),
        result.cuts,
        if result.is_series_parallel() {
            " — graph is series-parallel"
        } else {
            ""
        }
    );
    for (i, &root) in result.forest.roots.iter().enumerate() {
        let kind = if root == result.core { "core" } else { "cut" };
        println!("tree {i} ({kind}):");
        print!("{}", result.forest.format_tree(root, &norm.graph));
    }
    println!();
}

fn print_subgraphs(graph: &TaskGraph, label: &str) {
    let set = series_parallel_subgraphs(graph, CutPolicy::default());
    let mut rendered: Vec<String> = set
        .iter()
        .map(|sg| {
            let ids: Vec<String> = sg.iter().map(|v| v.0.to_string()).collect();
            format!("{{{}}}", ids.join(","))
        })
        .collect();
    rendered.sort();
    println!("{label} subgraph set S = {}", rendered.join(", "));
    println!();
}

fn main() {
    // ----- Fig. 1: the series-parallel graph 0-1-2-3-4-5 -----
    let fig1 = fig1_graph(100e6);
    println!("=== paper Fig. 1: series-parallel graph ===");
    print_forest(&fig1, CutPolicy::default(), "decomposition");
    // The paper's §III-C example set:
    // {{0},{1},{2},{3},{4},{5},{1,2,3},{0,1,2,3,4,5}}.
    print_subgraphs(&fig1, "paper §III-C:");

    // ----- Fig. 2: the same graph plus the conflicting edge 1-4 -----
    let fig2 = fig2_graph(100e6);
    println!("=== paper Fig. 2: non-series-parallel graph (extra edge 1-4) ===");
    print_forest(
        &fig2,
        CutPolicy::LargestSubtree,
        "cutting the largest subtree (the forest drawn in the paper)",
    );
    print_forest(
        &fig2,
        CutPolicy::SmallestSubtree,
        "cutting the smallest subtree (the paper's 'arguably better' forest)",
    );

    // ----- A random almost-SP graph -----
    let g = almost_sp_graph(&SpGenConfig::new(30, 42), 8);
    println!(
        "=== random almost-SP graph: {} tasks, {} edges ===",
        g.node_count(),
        g.edge_count()
    );
    print_forest(&g, CutPolicy::default(), "decomposition");
}

//! Online remapping: open a session on the mapping service, perturb the
//! system (device loss, task arrival/departure, device recovery), and
//! warm-start each re-map from the surviving incumbent instead of
//! mapping from scratch.
//!
//! ```sh
//! cargo run --release --example remap_session
//! ```

use std::sync::Arc;

use spmap::prelude::*;

fn main() {
    // The steady-state workload: a 40-task augmented SP graph on the
    // paper's reference platform (CPU + GPU + FPGA).
    let mut graph = random_sp_graph(&SpGenConfig::new(40, 7));
    augment(&mut graph, &AugmentConfig::default(), 7);
    let platform = Arc::new(Platform::reference());
    let request = MapRequest::new(Arc::new(graph), Arc::clone(&platform));

    let service = MapService::new(ServiceConfig::default());
    let opened = service.open_session(&request).expect("open session");
    println!(
        "opened {}: {} tasks mapped, makespan {:.3} s (cpu-only {:.3} s)\n",
        opened.id,
        opened.result.mapping.len(),
        opened.result.makespan,
        opened.result.cpu_only_makespan,
    );
    println!(
        "{:<28} {:>12} {:>14} {:>12}",
        "perturbation", "makespan", "neighborhood", "iterations"
    );
    let show = |name: &str, out: &RemapOutcome| {
        println!(
            "{:<28} {:>10.3} s {:>9}/{:<4} {:>12}",
            name, out.makespan, out.neighborhood_ops, out.op_count, out.iterations
        );
    };

    // The GPU dies: every task mapped there is repaired onto the CPU and
    // the search warm-starts around the repaired neighborhood only.
    let gpu = DeviceId(1);
    let lost = service
        .remap(opened.id, &[Perturbation::DeviceLost(gpu)])
        .expect("remap after device loss");
    show("GPU lost", &lost);

    // Five new tasks arrive as a small chain attached to task 0.
    let mut b = GraphBuilder::new();
    for i in 0..5 {
        b.add_task(Task {
            name: format!("arrival{i}"),
            complexity: 8.0,
            data_points: 2e7,
            parallelizability: 1.0,
            streamability: 4.0,
            area: 120.0,
        });
        if i > 0 {
            b.add_edge(NodeId(i - 1), NodeId(i), 1e8)
                .expect("chain edge");
        }
    }
    let arrivals = b.build().expect("arrival subgraph");
    let arrived = service
        .remap(
            opened.id,
            &[Perturbation::TaskArrived {
                subgraph: arrivals,
                attach: vec![AttachEdge::Into {
                    from: NodeId(0),
                    to_new: 0,
                    bytes: 5e7,
                }],
            }],
        )
        .expect("remap after arrival");
    show("5 tasks arrived", &arrived);

    // The GPU comes back; only its candidate columns need revisiting.
    let restored = service
        .remap(opened.id, &[Perturbation::DeviceRestored(gpu)])
        .expect("remap after recovery");
    show("GPU restored", &restored);

    // The first three tasks complete and leave the graph.
    let finished = service
        .remap(
            opened.id,
            &[Perturbation::TaskFinished(vec![
                NodeId(0),
                NodeId(1),
                NodeId(2),
            ])],
        )
        .expect("remap after completion");
    show("3 tasks finished", &finished);

    // One task's profile shifts drastically — a case where most of the
    // incumbent is suspect, so the caller picks the from-scratch
    // fallback instead of the warm path.
    let full = service
        .remap_full(
            opened.id,
            &[Perturbation::AttributesChanged {
                nodes: vec![(
                    NodeId(5),
                    Task {
                        name: "reprofiled".into(),
                        complexity: 40.0,
                        data_points: 1e8,
                        parallelizability: 1.0,
                        streamability: 16.0,
                        area: 400.0,
                    },
                )],
            }],
        )
        .expect("full re-map");
    show("1 task reprofiled (full)", &full);

    let closed = service.close_session(opened.id).expect("close session");
    let stats = service.stats();
    println!(
        "\nclosed {}: final makespan {:.3} s after {} remaps \
         (service: {} warm, {} full, {} no-op)",
        closed.id,
        closed.makespan,
        closed.remaps,
        stats.remaps,
        stats.remaps_full,
        stats.remaps_noop
    );
}

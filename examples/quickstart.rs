//! Quickstart: generate a task graph, map it with every algorithm family,
//! and print a comparison table.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::time::Instant;

use spmap::prelude::*;

fn main() {
    // A 40-task random series-parallel graph with the paper's §IV-B
    // attribute augmentation (complexity/streamability ~ LogNormal(2, .5),
    // 50 % perfectly parallelizable tasks, 100 MB data flows).
    let mut graph = random_sp_graph(&SpGenConfig::new(40, 7));
    augment(&mut graph, &AugmentConfig::default(), 7);

    // The paper's reference platform: 16-core CPU + GPU + streaming FPGA.
    let platform = Platform::reference();
    let mut evaluator = Evaluator::new(&graph, &platform);
    let cpu_only = evaluator
        .report_makespan(&Mapping::all_default(&graph, &platform), 100, 0)
        .unwrap();
    println!(
        "graph: {} tasks, {} edges — pure-CPU makespan {:.3} s\n",
        graph.node_count(),
        graph.edge_count(),
        cpu_only
    );
    println!(
        "{:<22} {:>12} {:>14} {:>12}",
        "algorithm", "makespan", "improvement", "time"
    );

    let mut show = |name: &str, mapping: &Mapping, elapsed: std::time::Duration| {
        let ms = evaluator
            .report_makespan(mapping, 100, 0)
            .unwrap_or(cpu_only)
            .min(cpu_only);
        println!(
            "{:<22} {:>10.3} s {:>13.1}% {:>12?}",
            name,
            ms,
            100.0 * relative_improvement(cpu_only, ms),
            elapsed
        );
    };

    // List schedulers.
    for (name, f) in [("HEFT", heft as fn(&_, &_) -> _), ("PEFT", peft)] {
        let t = Instant::now();
        let r = f(&graph, &platform);
        show(name, &r.mapping, t.elapsed());
    }
    // Decomposition mapping (the paper's contribution).
    for (name, cfg) in [
        ("SingleNode", MapperConfig::single_node()),
        ("SeriesParallel", MapperConfig::series_parallel()),
        ("SNFirstFit", MapperConfig::sn_first_fit()),
        ("SPFirstFit", MapperConfig::sp_first_fit()),
    ] {
        let t = Instant::now();
        let r = decomposition_map(&graph, &platform, &cfg);
        show(name, &r.mapping, t.elapsed());
    }
    // Genetic algorithm (reduced generations for the demo).
    let t = Instant::now();
    let r = nsga2_map(&graph, &platform, &GaConfig::with_generations(100, 1));
    show("NSGA-II (100 gen)", &r.mapping, t.elapsed());
    // MILPs (small time budgets for the demo).
    let opts = SolveOptions {
        time_limit: std::time::Duration::from_secs(5),
        ..SolveOptions::default()
    };
    let t = Instant::now();
    let r = solve_wgdp_device(&graph, &platform, &opts);
    show("WGDP-Device (5s)", &r.mapping, t.elapsed());
    let t = Instant::now();
    let r = solve_wgdp_time(&graph, &platform, &opts);
    show("WGDP-Time (5s)", &r.mapping, t.elapsed());
}

//! Persistent deterministic worker pool.
//!
//! [`par_map_with_threads_scoped`](crate::par_map_with_threads_scoped)
//! spawns its workers with `std::thread::scope` on **every** call.  That
//! is the right shape for a handful of large batches (the experiment
//! harness), but the search loops dispatch *many small* batches — the GA
//! submits roughly one per generation, for hundreds of generations — and
//! there the per-call spawn/join cost dominates the useful work.  This
//! module keeps the workers alive instead: threads are created once
//! (lazily, growing to the largest batch ever requested), park on a
//! condvar between batches, and are woken by batch submission.
//!
//! ## Determinism
//!
//! A pooled batch reuses the *exact* work-distribution logic of the
//! scoped path: items are claimed from a shared atomic counter, every
//! participant collects `(index, result)` pairs, and the caller restores
//! input order afterwards.  Participant `k` of a call receives exclusive
//! `&mut` access to state slot `k` of the caller's [`WorkerStates`]
//! arena — the same slot-exclusivity contract as the scoped path — and
//! the caller itself is participant 0, so the serial fast path and slot
//! 0 semantics are unchanged.  Which OS thread executes which item can
//! differ run to run (exactly as with scoped spawns); everything
//! observable — results, their order, slot exclusivity — is identical,
//! which is why the engines built on top stay bit-identical across
//! {serial, scoped, pool} × thread counts (`tests/equivalence.rs`).
//!
//! ## Panic protocol
//!
//! A panicking item poisons the **batch**, not the pool: the panic
//! payload is captured on the worker, the batch is drained (remaining
//! items may still run), and the payload is re-raised on the calling
//! thread once every participant has finished — the same observable
//! behavior as a scoped spawn whose join propagates the panic.  The
//! workers themselves return to their parking loop and the pool stays
//! usable for the next batch.
//!
//! ## Nesting
//!
//! A `par_map` call *from inside* a pooled worker (or re-entrantly from
//! a caller that is itself driving a pooled batch) falls back to the
//! serial path instead of submitting: the pool's workers are already
//! busy, and blocking on them from within would deadlock.  Results are
//! unaffected — the serial path is the specification.
//!
//! ## Shutdown
//!
//! Dropping a [`Pool`] wakes every parked worker with a shutdown flag
//! and joins them all; no thread outlives its pool.  The process-wide
//! [`global`] pool intentionally lives for the whole process.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

use crate::{bump_dispatch, serial_map, WorkerStates};

thread_local! {
    /// Set for the whole lifetime of a pool worker thread.
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Set on a caller thread while it is driving a pooled batch.
    static DRIVING_BATCH: Cell<bool> = const { Cell::new(false) };
}

/// `true` on threads that may not submit pooled batches: pool workers
/// (always), and callers currently driving a pooled batch (submission
/// is re-entrant work — the pool is already saturated).  Nested
/// `par_map` calls on such threads run serially instead of deadlocking.
pub fn in_pool_worker() -> bool {
    IN_POOL_WORKER.get() || DRIVING_BATCH.get()
}

/// A type-erased batch runner: `run(data, participant_index)`.
///
/// `data` points at a stack-allocated, fully concrete `MapCtx` in the
/// submitting call; the function pointer re-instantiates the generics.
// SAFETY: calling a `RunFn` is sound only while the submitting call is
// blocked (so the `MapCtx` behind `data` is alive and of the matching
// concrete type) and with a participant index that is unique within
// the batch and `< states.len()` — see `run_participant`.
type RunFn = unsafe fn(*const (), usize);

/// One posted batch.  The raw pointer is only dereferenced between
/// submission and the caller's completion wait, during which the caller
/// is blocked inside the same call that owns the pointee — that
/// discipline is what the manual `Send` asserts.
struct Job {
    run: RunFn,
    data: *const (),
    /// Pool-side participants (the caller is participant 0 on top).
    participants: usize,
}

// SAFETY: `data` outlives the batch (the submitting call blocks until
// every participant has finished before its context drops), and the
// participant index hands each worker a disjoint state slot.
unsafe impl Send for Job {}

struct PoolState {
    job: Option<Job>,
    /// Participant slots of the current job already claimed.
    claimed: usize,
    /// Participants still running (claimed or not yet claimed).
    active: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers park here between batches.
    work_cv: Condvar,
    /// The submitting caller parks here until `active == 0`.
    done_cv: Condvar,
}

/// Survive mutex poisoning: the protected state is a counter protocol
/// whose invariants are maintained before any user code runs, so a
/// poisoned lock (a panic on another thread mid-batch) is still sound
/// to read — and refusing would wedge the pool forever.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(|e| e.into_inner())
}

/// A persistent worker pool.  Workers are spawned lazily on first use
/// and grow to the widest batch ever submitted; between batches they
/// park on a condvar.  Dropping the pool joins every worker.
pub struct Pool {
    shared: Arc<Shared>,
    /// Serializes batch submission: one batch in flight at a time.
    submission: Mutex<()>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Default for Pool {
    fn default() -> Self {
        Self::new()
    }
}

impl Pool {
    /// An empty pool; workers are spawned on demand by the first batch.
    pub fn new() -> Self {
        Self {
            shared: Arc::new(Shared {
                state: Mutex::new(PoolState {
                    job: None,
                    claimed: 0,
                    active: 0,
                    shutdown: false,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
            }),
            submission: Mutex::new(()),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// Number of worker threads currently alive (grows on demand, never
    /// shrinks before `Drop`).
    pub fn worker_count(&self) -> usize {
        lock(&self.handles).len()
    }

    /// Grow the pool to at least `needed` workers; returns how many are
    /// actually available (spawn failure degrades the batch width
    /// instead of wedging it).
    fn ensure_workers(&self, needed: usize) -> usize {
        let mut handles = lock(&self.handles);
        while handles.len() < needed {
            let shared = Arc::clone(&self.shared);
            let spawned = std::thread::Builder::new()
                .name(format!("spmap-pool-{}", handles.len()))
                .spawn(move || worker_loop(shared));
            match spawned {
                Ok(h) => {
                    handles.push(h);
                    bump_dispatch(|d| d.pool_workers_spawned += 1);
                }
                Err(_) => break,
            }
        }
        handles.len().min(needed)
    }

    /// Post one batch for `requested` pool-side participants, run
    /// `caller_work` (participant 0) on this thread, and block until
    /// every pool-side participant has finished.  Returns the number of
    /// pool participants actually engaged.
    fn run_batch(
        &self,
        requested: usize,
        run: RunFn,
        data: *const (),
        caller_work: impl FnOnce(),
    ) -> usize {
        let _submission = lock(&self.submission);
        let participants = self.ensure_workers(requested);
        if participants == 0 {
            caller_work();
            return 0;
        }
        {
            let mut st = lock(&self.shared.state);
            debug_assert!(st.job.is_none() && st.active == 0, "batches are serialized");
            st.job = Some(Job {
                run,
                data,
                participants,
            });
            st.claimed = 0;
            st.active = participants;
            self.shared.work_cv.notify_all();
        }
        caller_work();
        let mut st = lock(&self.shared.state);
        while st.active > 0 {
            st = wait(&self.shared.done_cv, st);
        }
        // The SAFETY arguments of this module all lean on the drain
        // protocol: once the caller wakes here, no participant can
        // still hold the job or a claim on it.
        #[cfg(feature = "strict-invariants")]
        {
            assert!(
                st.job.is_none(),
                "strict-invariants: drained batch still posted"
            );
            assert_eq!(
                st.claimed, participants,
                "strict-invariants: drained batch has unclaimed participants"
            );
        }
        participants
    }

    /// [`crate::par_map_with_threads`] executed on this pool: identical
    /// chunk claiming, order restoration and `WorkerStates` slot
    /// exclusivity as the scoped path, with parked persistent workers
    /// instead of per-call spawns.  Calls from inside a pool worker (or
    /// re-entrant calls from a batch-driving thread) run serially — see
    /// the module docs on nesting.
    pub fn par_map_with_threads<S, T, R, F>(
        &self,
        threads: usize,
        states: &mut WorkerStates<S>,
        items: &[T],
        f: F,
    ) -> Vec<R>
    where
        S: Send,
        T: Sync,
        R: Send,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        let threads = threads.min(items.len().max(1)).min(states.len());
        if threads <= 1 || items.len() <= 1 {
            bump_dispatch(|d| d.serial_batches += 1);
            return serial_map(states, items, f);
        }
        if in_pool_worker() {
            bump_dispatch(|d| {
                d.serial_batches += 1;
                d.nested_serial += 1;
            });
            return serial_map(states, items, f);
        }

        let next = AtomicUsize::new(0);
        let parts: Vec<Mutex<Vec<(usize, R)>>> =
            (0..threads).map(|_| Mutex::new(Vec::new())).collect();
        let panic_slot: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
        #[cfg(feature = "strict-invariants")]
        let slot_live: Vec<std::sync::atomic::AtomicBool> = (0..threads)
            .map(|_| std::sync::atomic::AtomicBool::new(false))
            .collect();
        let ctx = MapCtx {
            next: &next,
            items,
            f: &f,
            states: states.states.as_mut_ptr(),
            parts: &parts,
            panic: &panic_slot,
            #[cfg(feature = "strict-invariants")]
            slot_live: &slot_live,
        };
        let data = &raw const ctx as *const ();
        let run = run_participant::<S, T, R, F> as RunFn;
        // The caller is participant 0 (state slot 0), pool workers take
        // participants 1..threads.  `DRIVING_BATCH` makes re-entrant
        // par_map calls from inside `f` on this thread fall back to
        // serial instead of self-deadlocking on the submission lock.
        DRIVING_BATCH.with(|flag| {
            debug_assert!(!flag.get());
            flag.set(true);
        });
        let engaged = self.run_batch(threads - 1, run, data, || {
            // SAFETY: participant 0 is never handed to a pool worker,
            // so slot 0 is exclusively ours; `ctx` outlives `run_batch`.
            unsafe { run(data, 0) };
        });
        DRIVING_BATCH.with(|flag| flag.set(false));
        bump_dispatch(|d| {
            d.pool_batches += 1;
            d.pool_dispatches += engaged as u64;
        });

        // A panic anywhere in the batch (worker or caller) surfaces here,
        // after every participant finished — batch poisoned, pool intact.
        if let Some(payload) = lock(&panic_slot).take() {
            resume_unwind(payload);
        }
        let parts: Vec<Vec<(usize, R)>> = parts
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
            .collect();
        crate::merge_parts(items.len(), parts)
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in lock(&self.handles).drain(..) {
            let _ = h.join();
        }
    }
}

/// The process-wide pool used by [`crate::par_map_with_threads`] when
/// the pool backend is selected.  Created on first use; its workers
/// live for the rest of the process.
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(Pool::new)
}

/// The fully concrete batch context a `RunFn` re-interprets.  Lives on
/// the submitting call's stack; every reference outlives the batch
/// because the caller blocks until all participants finish.
struct MapCtx<'a, S, T, R, F> {
    next: &'a AtomicUsize,
    items: &'a [T],
    f: &'a F,
    /// Base pointer of the caller's `WorkerStates` slots; participant
    /// `k` exclusively uses slot `k` (`k < threads <= states.len()`).
    states: *mut S,
    parts: &'a [Mutex<Vec<(usize, R)>>],
    panic: &'a Mutex<Option<Box<dyn Any + Send>>>,
    /// Runtime check of the slot-exclusivity contract: flag `k` is
    /// held for exactly the span participant `k` borrows slot `k`.
    #[cfg(feature = "strict-invariants")]
    slot_live: &'a [std::sync::atomic::AtomicBool],
}

/// Run one participant of a posted batch: claim items from the shared
/// counter until exhaustion, collecting `(index, result)` pairs —
/// exactly the scoped path's worker loop.
///
/// # Safety
///
/// `data` must point at a live `MapCtx<S, T, R, F>` of matching type
/// parameters, and `part` must be a participant index unique within the
/// current batch and `< states.len()` of the submitting call.
unsafe fn run_participant<S, T, R, F>(data: *const (), part: usize)
where
    S: Send,
    T: Sync,
    R: Send,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    // SAFETY: the caller (pool submission or participant 0) passes a
    // pointer to the submitting call's live `MapCtx` of exactly these
    // type parameters, and that caller blocks until `active` drains —
    // the pointee outlives every participant's run.
    let ctx = unsafe { &*(data as *const MapCtx<'_, S, T, R, F>) };
    // SAFETY: participant indices are unique per batch, so this slot is
    // not aliased for the duration of the participant's run.
    let state = unsafe { &mut *ctx.states.add(part) };
    // Runtime proof of that uniqueness claim: entering a participant
    // index that is already live means two threads share one `&mut`
    // slot — abort loudly before any user code runs on it.
    #[cfg(feature = "strict-invariants")]
    {
        let was = ctx.slot_live[part].swap(true, Ordering::SeqCst);
        assert!(
            !was,
            "strict-invariants: state slot {part} claimed twice within one batch"
        );
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut local: Vec<(usize, R)> = Vec::new();
        loop {
            let i = ctx.next.fetch_add(1, Ordering::Relaxed);
            if i >= ctx.items.len() {
                break;
            }
            local.push((i, (ctx.f)(state, i, &ctx.items[i])));
        }
        local
    }));
    #[cfg(feature = "strict-invariants")]
    ctx.slot_live[part].store(false, Ordering::SeqCst);
    match outcome {
        Ok(local) => *lock(&ctx.parts[part]) = local,
        Err(payload) => {
            let mut slot = lock(ctx.panic);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
    }
}

/// The parked-worker loop: wait for a job, claim a participant slot,
/// run it, signal completion, park again — until shutdown.
fn worker_loop(shared: Arc<Shared>) {
    IN_POOL_WORKER.with(|flag| flag.set(true));
    loop {
        let (run, data, part) = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(job) = st.job.as_ref() {
                    let (run, data, participants) = (job.run, job.data, job.participants);
                    let part = st.claimed + 1; // participant 0 is the caller
                    st.claimed += 1;
                    if st.claimed == participants {
                        // Fully claimed: clear the slot so late wakers
                        // (and this worker, once done) park again.
                        st.job = None;
                    }
                    break (run, data, part);
                }
                st = wait(&shared.work_cv, st);
            }
        };
        // SAFETY: the submitting caller blocks until `active` drains, so
        // `data` is alive; `part` was claimed exclusively above.  The
        // participant fn catches panics internally, so `active` is
        // always decremented and the protocol cannot wedge.
        unsafe { run(data, part) };
        let mut st = lock(&shared.state);
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{par_map_with_threads_scoped, ParBackend};
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pooled_matches_scoped_bit_for_bit() {
        let pool = Pool::new();
        let items: Vec<u64> = (0..500).collect();
        for threads in [2usize, 3, 4, 8] {
            let mut sp = WorkerStates::new(threads, |_| 0u64);
            let mut pp = WorkerStates::new(threads, |_| 0u64);
            let f = |s: &mut u64, i: usize, &x: &u64| {
                *s += 1;
                x.wrapping_mul(31).wrapping_add(i as u64)
            };
            let scoped = par_map_with_threads_scoped(threads, &mut sp, &items, f);
            let pooled = pool.par_map_with_threads(threads, &mut pp, &items, f);
            assert_eq!(scoped, pooled, "t{threads}");
            assert_eq!(
                sp.iter().sum::<u64>(),
                pp.iter().sum::<u64>(),
                "every item processed exactly once either way"
            );
        }
    }

    #[test]
    fn pool_reuses_workers_across_batches() {
        let pool = Pool::new();
        let items: Vec<u32> = (0..64).collect();
        let mut states = WorkerStates::new(4, |_| ());
        for round in 0..10u32 {
            let out = pool.par_map_with_threads(4, &mut states, &items, |_, _, &x| x + round);
            assert_eq!(out[10], 10 + round);
        }
        assert_eq!(pool.worker_count(), 3, "threads-1 workers, created once");
    }

    #[test]
    fn worker_state_slots_stay_exclusive_and_persistent() {
        let pool = Pool::new();
        let mut states = WorkerStates::new(4, |_| 0usize);
        let items: Vec<u32> = (0..100).collect();
        let out = pool.par_map_with_threads(4, &mut states, &items, |s, i, &x| {
            *s += 1;
            (i as u32, x + 1)
        });
        for (i, &(idx, v)) in out.iter().enumerate() {
            assert_eq!(idx as usize, i);
            assert_eq!(v, i as u32 + 1);
        }
        assert_eq!(states.iter().sum::<usize>(), 100);
        pool.par_map_with_threads(4, &mut states, &items, |s, _, _| *s += 1);
        assert_eq!(
            states.iter().sum::<usize>(),
            200,
            "arena survives across batches"
        );
    }

    #[test]
    fn drop_joins_every_worker() {
        let pool = Pool::new();
        let items: Vec<u32> = (0..32).collect();
        let mut states = WorkerStates::new(6, |_| ());
        pool.par_map_with_threads(6, &mut states, &items, |_, _, &x| x);
        assert_eq!(pool.worker_count(), 5);
        let weak = Arc::downgrade(&pool.shared);
        drop(pool);
        // Every worker held a strong reference to the shared state; a
        // dead weak pointer proves they all exited and were joined.
        assert_eq!(weak.strong_count(), 0, "a worker outlived Drop");
    }

    #[test]
    fn panic_poisons_the_batch_but_not_the_pool() {
        let pool = Pool::new();
        let items: Vec<u32> = (0..64).collect();
        let mut states = WorkerStates::new(4, |_| ());
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map_with_threads(4, &mut states, &items, |_, _, &x| {
                if x == 13 {
                    panic!("boom at {x}");
                }
                x
            })
        }));
        let payload = caught.expect_err("the panicking item must propagate to the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("boom at 13"),
            "original payload preserved: {msg}"
        );
        // The pool must stay fully usable for the next batch.
        let out = pool.par_map_with_threads(4, &mut states, &items, |_, _, &x| x * 2);
        assert_eq!(out.len(), 64);
        assert_eq!(out[20], 40);
    }

    #[test]
    fn caller_side_panic_is_also_contained() {
        // Participant 0 runs on the calling thread; its panic must wait
        // for the pool-side participants before unwinding (they borrow
        // the caller's stack) and the pool must survive.
        let pool = Pool::new();
        let items: Vec<u32> = (0..256).collect();
        let mut states = WorkerStates::new(2, |_| ());
        for _ in 0..3 {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                pool.par_map_with_threads(2, &mut states, &items, |_, i, &x| {
                    if i == 0 {
                        panic!("first item");
                    }
                    x
                })
            }));
            assert!(caught.is_err());
        }
        let ok = pool.par_map_with_threads(2, &mut states, &items, |_, _, &x| x);
        assert_eq!(ok, items);
    }

    #[test]
    fn nested_par_map_inside_a_pooled_worker_runs_serial() {
        let pool = Pool::new();
        let items: Vec<u32> = (0..16).collect();
        let mut states = WorkerStates::new(4, |_| ());
        let nested_parallel = AtomicU64::new(0);
        let out = pool.par_map_with_threads(4, &mut states, &items, |_, _, &x| {
            // A pool-backend inner call must complete (no deadlock) and
            // must stay on the current thread (serial fallback).  The
            // backend is pinned because the ambient `SPMAP_POOL` may
            // select scoped spawns (CI matrix), where nested calls are
            // legitimately allowed to go parallel — only the pool must
            // demote them.
            let me = std::thread::current().id();
            crate::with_backend(ParBackend::Pool, || {
                let inner: Vec<u32> = crate::par_map(&[1u32, 2, 3, 4, 5, 6, 7, 8], |_, &y| {
                    if std::thread::current().id() != me {
                        nested_parallel.fetch_add(1, Ordering::Relaxed);
                    }
                    y * 10
                });
                assert_eq!(inner, vec![10, 20, 30, 40, 50, 60, 70, 80]);
            });
            x
        });
        assert_eq!(out, items);
        assert_eq!(
            nested_parallel.load(Ordering::Relaxed),
            0,
            "nested calls must not escape the current thread"
        );
    }

    #[test]
    fn nested_call_through_the_global_pool_does_not_deadlock() {
        // Same property through the public dispatcher with the pool
        // backend forced: outer pooled batch, inner par_map from every
        // participant (including the batch-driving caller thread).
        crate::with_backend(ParBackend::Pool, || {
            let items: Vec<u32> = (0..12).collect();
            let out = crate::par_map(&items, |_, &x| {
                let inner: u32 = crate::par_map(&[x, x + 1], |_, &y| y).iter().sum();
                inner
            });
            assert_eq!(out[3], 3 + 4);
        });
    }

    #[test]
    fn worker_count_capped_by_state_slots_and_items() {
        let pool = Pool::new();
        let mut states = WorkerStates::new(2, |_| 0usize);
        let items: Vec<u32> = (0..40).collect();
        let out = pool.par_map_with_threads(8, &mut states, &items, |s, _, &x| {
            *s += 1;
            x
        });
        assert_eq!(out, items);
        assert_eq!(states.iter().sum::<usize>(), 40);
        assert!(
            pool.worker_count() <= 1,
            "2 effective workers -> at most 1 spawned"
        );
    }

    #[test]
    fn odd_thread_counts_work() {
        let pool = Pool::new();
        for threads in [3usize, 5, 7] {
            let mut states = WorkerStates::new(threads, |_| ());
            let items: Vec<u64> = (0..101).collect();
            let out = pool.par_map_with_threads(threads, &mut states, &items, |_, _, &x| x + 7);
            assert_eq!(out.len(), 101);
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, i as u64 + 7);
            }
        }
    }

    #[test]
    fn empty_and_single_inputs_stay_serial() {
        let pool = Pool::new();
        let mut states = WorkerStates::new(4, |_| ());
        let empty: Vec<u32> = vec![];
        assert!(pool
            .par_map_with_threads(4, &mut states, &empty, |_, _, &x| x)
            .is_empty());
        assert_eq!(
            pool.par_map_with_threads(4, &mut states, &[9u32], |_, _, &x| x + 1),
            vec![10]
        );
        assert_eq!(pool.worker_count(), 0, "serial fast path spawns nothing");
    }
}

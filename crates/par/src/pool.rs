//! Persistent deterministic worker pool, sharded for concurrent callers.
//!
//! [`par_map_with_threads_scoped`](crate::par_map_with_threads_scoped)
//! spawns its workers with `std::thread::scope` on **every** call.  That
//! is the right shape for a handful of large batches (the experiment
//! harness), but the search loops dispatch *many small* batches — the GA
//! submits roughly one per generation, for hundreds of generations — and
//! there the per-call spawn/join cost dominates the useful work.  This
//! module keeps the workers alive instead: threads are created once
//! (lazily, growing to the largest batch ever requested), park on a
//! condvar between batches, and are woken by batch submission.
//!
//! ## Sharding
//!
//! The pool is split into N independent **shards**
//! ([`crate::num_shards`]; `SPMAP_SHARDS` overrides the auto count).
//! Each shard has its own submission lock, job slot and worker set, so N
//! concurrent callers can each drive a batch without serializing on one
//! process-wide submission mutex — the bottleneck that made two
//! simultaneous mapper runs take turns.  A submitting caller sweeps the
//! shards' submission locks with `try_lock` (lowest index first — a lone
//! caller always lands on shard 0, preserving the single-shard worker
//! footprint) and only blocks, counted as a *submission wait*, when
//! every shard is busy.
//!
//! Idle workers of **all** shards park on one shared condvar and scan
//! every shard for unclaimed participant slots, preferring their home
//! shard: a worker claiming from a foreign shard is a *steal*, which
//! keeps a shard's batch moving even while its own workers are busy
//! elsewhere.  Steals move only *which thread* executes a participant,
//! never what it computes — the participant index, state slot and chunk
//! claiming stay per-batch.
//!
//! ## Determinism
//!
//! A pooled batch reuses the *exact* work-distribution logic of the
//! scoped path: items are claimed from a shared atomic counter, every
//! participant collects `(index, result)` pairs, and the caller restores
//! input order afterwards.  Participant `k` of a call receives exclusive
//! `&mut` access to state slot `k` of the caller's [`WorkerStates`]
//! arena — the same slot-exclusivity contract as the scoped path — and
//! the caller itself is participant 0, so the serial fast path and slot
//! 0 semantics are unchanged.  Which OS thread executes which item can
//! differ run to run (exactly as with scoped spawns), and sharding only
//! widens that freedom; everything observable — results, their order,
//! slot exclusivity — is identical, which is why the engines built on
//! top stay bit-identical across {serial, scoped, pool} × thread counts
//! × shard counts (`tests/equivalence.rs`, `tests/service.rs`).
//!
//! ## Panic protocol
//!
//! A panicking item poisons the **batch**, not the pool: the panic
//! payload is captured on the worker, the batch is drained (remaining
//! items may still run), and the payload is re-raised on the calling
//! thread once every participant has finished — the same observable
//! behavior as a scoped spawn whose join propagates the panic.  The
//! workers themselves return to their parking loop and the pool stays
//! usable for the next batch.
//!
//! ## Nesting
//!
//! A `par_map` call *from inside* a pooled worker (or re-entrantly from
//! a caller that is itself driving a pooled batch) falls back to the
//! serial path instead of submitting: the pool's workers are already
//! busy, and blocking on them from within would deadlock.  Results are
//! unaffected — the serial path is the specification.
//!
//! ## Shutdown
//!
//! Dropping a [`Pool`] wakes every parked worker with a shutdown flag
//! and joins them all; no thread outlives its pool.  The process-wide
//! [`global`] pool intentionally lives for the whole process.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, TryLockError};

use crate::{bump_dispatch, serial_map, WorkerStates, MAX_SHARDS};

thread_local! {
    /// Set for the whole lifetime of a pool worker thread.
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Set on a caller thread while it is driving a pooled batch.
    static DRIVING_BATCH: Cell<bool> = const { Cell::new(false) };
}

/// `true` on threads that may not submit pooled batches: pool workers
/// (always), and callers currently driving a pooled batch (submission
/// is re-entrant work — the pool is already saturated).  Nested
/// `par_map` calls on such threads run serially instead of deadlocking.
pub fn in_pool_worker() -> bool {
    IN_POOL_WORKER.get() || DRIVING_BATCH.get()
}

/// Clears this thread's `DRIVING_BATCH` flag on drop, so the flag
/// cannot stay latched if the guarded batch submission unwinds (a
/// latched flag would silently demote every later batch on the thread
/// to serial dispatch).
struct DrivingBatchGuard;

impl Drop for DrivingBatchGuard {
    fn drop(&mut self) {
        DRIVING_BATCH.with(|flag| flag.set(false));
    }
}

/// Clears a strict-invariants slot-exclusivity flag on drop — every
/// exit path from a participant frame, including an unwind, releases
/// the slot it claimed.
#[cfg(feature = "strict-invariants")]
struct SlotFlagGuard<'a>(&'a std::sync::atomic::AtomicBool);

#[cfg(feature = "strict-invariants")]
impl Drop for SlotFlagGuard<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::SeqCst);
    }
}

/// A type-erased batch runner: `run(data, participant_index)`.
///
/// `data` points at a stack-allocated, fully concrete `MapCtx` in the
/// submitting call; the function pointer re-instantiates the generics.
// SAFETY: calling a `RunFn` is sound only while the submitting call is
// blocked (so the `MapCtx` behind `data` is alive and of the matching
// concrete type) and with a participant index that is unique within
// the batch and `< states.len()` — see `run_participant`.
type RunFn = unsafe fn(*const (), usize);

/// One posted batch.  The raw pointer is only dereferenced between
/// submission and the caller's completion wait, during which the caller
/// is blocked inside the same call that owns the pointee — that
/// discipline is what the manual `Send` asserts.
struct Job {
    run: RunFn,
    data: *const (),
    /// Pool-side participants (the caller is participant 0 on top).
    participants: usize,
}

// SAFETY: `data` outlives the batch (the submitting call blocks until
// every participant has finished before its context drops), and the
// participant index hands each worker a disjoint state slot.
unsafe impl Send for Job {}

/// Per-shard batch state: the posted job plus the claim/drain counters
/// of the shard's current batch.  One batch per shard at a time — the
/// shard's submission lock serializes posts.
struct ShardState {
    job: Option<Job>,
    /// Participant slots of the current job already claimed.
    claimed: usize,
    /// Participants still running (claimed or not yet claimed).
    active: usize,
    /// Participant slots of the current batch claimed by workers homed
    /// on *other* shards; read by the submitter at drain.
    steals: u64,
}

/// One shard: a job slot with its drain condvar, a submission lock and
/// a home worker set.
struct Shard {
    state: Mutex<ShardState>,
    /// The submitting caller parks here until `active == 0`.
    done_cv: Condvar,
    /// Serializes batch submission *on this shard*: one batch in flight
    /// per shard at a time; other shards proceed independently.
    submission: Mutex<()>,
    /// Workers homed on this shard (spawned lazily, growing to the
    /// widest batch this shard ever saw).
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Shard {
    fn new() -> Self {
        Self {
            state: Mutex::new(ShardState {
                job: None,
                claimed: 0,
                active: 0,
                steals: 0,
            }),
            done_cv: Condvar::new(),
            submission: Mutex::new(()),
            handles: Mutex::new(Vec::new()),
        }
    }
}

/// State shared by every worker and submitter of one pool.
struct Shared {
    shards: Vec<Shard>,
    /// Guards the shutdown flag and orders job posts against workers
    /// about to park — a worker holds this lock from its (empty) shard
    /// scan through falling asleep on `work_cv`, so a submitter that
    /// acquires it after posting is guaranteed to either be seen by the
    /// scan or to wake the sleeper.  Lock order: `idle` → `Shard::state`
    /// (never the reverse).
    idle: Mutex<bool>,
    /// Workers of all shards park here between batches.
    work_cv: Condvar,
}

/// One claimed participant slot, carried from the claim (under locks)
/// to the execution (outside them).
struct Claim {
    run: RunFn,
    data: *const (),
    part: usize,
    shard: usize,
}

/// Survive mutex poisoning: the protected state is a counter protocol
/// whose invariants are maintained before any user code runs, so a
/// poisoned lock (a panic on another thread mid-batch) is still sound
/// to read — and refusing would wedge the pool forever.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(|e| e.into_inner())
}

/// What one pooled batch reports back to the dispatch-stat plumbing.
struct BatchOutcome {
    /// Pool-side participants actually engaged (0 = degraded to serial).
    engaged: usize,
    /// Shard the batch ran on.
    shard: usize,
    /// Participant slots claimed by foreign-shard workers.
    steals: u64,
    /// Whether submission had to block for a busy shard.
    waited: bool,
}

/// A persistent sharded worker pool.  Workers are spawned lazily on
/// first use and grow per shard to the widest batch that shard ever
/// submitted; between batches they park on a shared condvar and steal
/// across shards.  Dropping the pool joins every worker.
pub struct Pool {
    shared: Arc<Shared>,
    /// Rotates the blocking fallback across shards when every
    /// submission lock is busy, so waiting callers spread out instead
    /// of convoying on shard 0.
    next_fallback: AtomicUsize,
}

impl Default for Pool {
    fn default() -> Self {
        Self::new()
    }
}

impl Pool {
    /// An empty pool with [`crate::num_shards`] shards; workers are
    /// spawned on demand by the first batches.
    pub fn new() -> Self {
        Self::with_shards(crate::num_shards())
    }

    /// An empty pool with an explicit shard count (clamped to
    /// `1..=`[`MAX_SHARDS`]).  `1` reproduces the one-batch-at-a-time
    /// pool exactly; tests and benchmarks combine this with
    /// [`crate::with_pool`] to pin shard counts inside one process.
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.clamp(1, MAX_SHARDS);
        Self {
            shared: Arc::new(Shared {
                shards: (0..shards).map(|_| Shard::new()).collect(),
                idle: Mutex::new(false),
                work_cv: Condvar::new(),
            }),
            next_fallback: AtomicUsize::new(0),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// Number of worker threads currently alive across all shards
    /// (grows on demand, never shrinks before `Drop`).
    pub fn worker_count(&self) -> usize {
        self.shared
            .shards
            .iter()
            .map(|s| lock(&s.handles).len())
            .sum()
    }

    /// Grow shard `shard`'s home worker set to at least `needed`
    /// workers; returns how many are actually available (spawn failure
    /// degrades the batch width instead of wedging it).
    fn ensure_workers(&self, shard: usize, needed: usize) -> usize {
        let mut handles = lock(&self.shared.shards[shard].handles);
        while handles.len() < needed {
            let shared = Arc::clone(&self.shared);
            let spawned = std::thread::Builder::new()
                .name(format!("spmap-pool-s{shard}-{}", handles.len()))
                .spawn(move || worker_loop(shared, shard));
            match spawned {
                Ok(h) => {
                    handles.push(h);
                    bump_dispatch(|d| d.pool_workers_spawned += 1);
                }
                Err(_) => break,
            }
        }
        handles.len().min(needed)
    }

    /// Acquire a shard for submission: sweep the submission locks with
    /// `try_lock` (lowest index first — a lone caller stays on shard
    /// 0), falling back to a blocking acquire on a rotating shard when
    /// every shard is busy.  Returns the shard index, the held guard
    /// and whether the caller had to block.
    fn acquire_shard(&self) -> (usize, MutexGuard<'_, ()>, bool) {
        for (i, shard) in self.shared.shards.iter().enumerate() {
            match shard.submission.try_lock() {
                Ok(g) => return (i, g, false),
                Err(TryLockError::Poisoned(g)) => return (i, g.into_inner(), false),
                Err(TryLockError::WouldBlock) => {}
            }
        }
        let i = self.next_fallback.fetch_add(1, Ordering::Relaxed) % self.shared.shards.len();
        (i, lock(&self.shared.shards[i].submission), true)
    }

    /// Post one batch for `requested` pool-side participants on a free
    /// shard, run `caller_work` (participant 0) on this thread, and
    /// block until every pool-side participant has finished.
    fn run_batch(
        &self,
        requested: usize,
        run: RunFn,
        data: *const (),
        caller_work: impl FnOnce(),
    ) -> BatchOutcome {
        let (shard_idx, _submission, waited) = self.acquire_shard();
        let shard = &self.shared.shards[shard_idx];
        let participants = self.ensure_workers(shard_idx, requested);
        if participants == 0 {
            caller_work();
            return BatchOutcome {
                engaged: 0,
                shard: shard_idx,
                steals: 0,
                waited,
            };
        }
        {
            let mut st = lock(&shard.state);
            // Job-slot exclusivity per shard: the shard's submission
            // lock serializes its batches, so a posted-or-draining job
            // here means two batches share one slot.
            debug_assert!(
                st.job.is_none() && st.active == 0,
                "batches are serialized per shard"
            );
            #[cfg(feature = "strict-invariants")]
            assert!(
                st.job.is_none() && st.active == 0,
                "strict-invariants: shard {shard_idx} job slot not exclusive \
                 (job posted or {} participants still active)",
                st.active
            );
            st.job = Some(Job {
                run,
                data,
                participants,
            });
            st.claimed = 0;
            st.active = participants;
            st.steals = 0;
        }
        {
            // Wake parked workers of every shard.  Holding `idle` here
            // orders the post above against any worker that scanned
            // before it and is about to park — see `Shared::idle`.
            let _idle = lock(&self.shared.idle);
            self.shared.work_cv.notify_all();
        }
        caller_work();
        let mut st = lock(&shard.state);
        while st.active > 0 {
            st = wait(&shard.done_cv, st);
        }
        // The SAFETY arguments of this module all lean on the drain
        // protocol: once the caller wakes here, no participant can
        // still hold the job or a claim on it.
        #[cfg(feature = "strict-invariants")]
        {
            assert!(
                st.job.is_none(),
                "strict-invariants: drained batch still posted"
            );
            assert_eq!(
                st.claimed, participants,
                "strict-invariants: drained batch has unclaimed participants"
            );
        }
        BatchOutcome {
            engaged: participants,
            shard: shard_idx,
            steals: st.steals,
            waited,
        }
    }

    /// [`crate::par_map_with_threads`] executed on this pool: identical
    /// chunk claiming, order restoration and `WorkerStates` slot
    /// exclusivity as the scoped path, with parked persistent workers
    /// instead of per-call spawns.  Calls from inside a pool worker (or
    /// re-entrant calls from a batch-driving thread) run serially — see
    /// the module docs on nesting.
    pub fn par_map_with_threads<S, T, R, F>(
        &self,
        threads: usize,
        states: &mut WorkerStates<S>,
        items: &[T],
        f: F,
    ) -> Vec<R>
    where
        S: Send,
        T: Sync,
        R: Send,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        let threads = threads.min(items.len().max(1)).min(states.len());
        if threads <= 1 || items.len() <= 1 {
            bump_dispatch(|d| d.serial_batches += 1);
            return serial_map(states, items, f);
        }
        if in_pool_worker() {
            bump_dispatch(|d| {
                d.serial_batches += 1;
                d.nested_serial += 1;
            });
            return serial_map(states, items, f);
        }

        let next = AtomicUsize::new(0);
        let parts: Vec<Mutex<Vec<(usize, R)>>> =
            (0..threads).map(|_| Mutex::new(Vec::new())).collect();
        let panic_slot: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
        #[cfg(feature = "strict-invariants")]
        let slot_live: Vec<std::sync::atomic::AtomicBool> = (0..threads)
            .map(|_| std::sync::atomic::AtomicBool::new(false))
            .collect();
        let ctx = MapCtx {
            next: &next,
            items,
            f: &f,
            states: states.states.as_mut_ptr(),
            parts: &parts,
            panic: &panic_slot,
            #[cfg(feature = "strict-invariants")]
            slot_live: &slot_live,
        };
        let data = &raw const ctx as *const ();
        let run = run_participant::<S, T, R, F> as RunFn;
        // The caller is participant 0 (state slot 0), pool workers take
        // participants 1..threads.  `DRIVING_BATCH` makes re-entrant
        // par_map calls from inside `f` on this thread fall back to
        // serial instead of self-deadlocking on the submission lock.
        DRIVING_BATCH.with(|flag| {
            debug_assert!(!flag.get());
            flag.set(true);
        });
        // Reset via drop-guard, not a trailing store: if `run_batch`
        // unwinds (e.g. a strict-invariants assert on the submission
        // path), a latched flag would silently demote every later batch
        // on this thread to serial.
        let driving = DrivingBatchGuard;
        let outcome = self.run_batch(threads - 1, run, data, || {
            // SAFETY: participant 0 is never handed to a pool worker,
            // so slot 0 is exclusively ours; `ctx` outlives `run_batch`.
            unsafe { run(data, 0) };
        });
        drop(driving);
        bump_dispatch(|d| {
            d.pool_batches += 1;
            d.pool_dispatches += outcome.engaged as u64;
            d.pool_steals += outcome.steals;
            d.pool_submission_waits += outcome.waited as u64;
            d.pool_shard_batches[outcome.shard.min(MAX_SHARDS - 1)] += 1;
        });

        // A panic anywhere in the batch (worker or caller) surfaces here,
        // after every participant finished — batch poisoned, pool intact.
        if let Some(payload) = lock(&panic_slot).take() {
            resume_unwind(payload);
        }
        let parts: Vec<Vec<(usize, R)>> = parts
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
            .collect();
        crate::merge_parts(items.len(), parts)
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut shutdown = lock(&self.shared.idle);
            *shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for shard in &self.shared.shards {
            for h in lock(&shard.handles).drain(..) {
                let _ = h.join();
            }
        }
    }
}

/// The process-wide pool used by [`crate::par_map_with_threads`] when
/// the pool backend is selected (and no [`crate::with_pool`] override
/// is active).  Created on first use with [`crate::num_shards`] shards;
/// its workers live for the rest of the process.
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(Pool::new)
}

/// The fully concrete batch context a `RunFn` re-interprets.  Lives on
/// the submitting call's stack; every reference outlives the batch
/// because the caller blocks until all participants finish.
struct MapCtx<'a, S, T, R, F> {
    next: &'a AtomicUsize,
    items: &'a [T],
    f: &'a F,
    /// Base pointer of the caller's `WorkerStates` slots; participant
    /// `k` exclusively uses slot `k` (`k < threads <= states.len()`).
    states: *mut S,
    parts: &'a [Mutex<Vec<(usize, R)>>],
    panic: &'a Mutex<Option<Box<dyn Any + Send>>>,
    /// Runtime check of the slot-exclusivity contract: flag `k` is
    /// held for exactly the span participant `k` borrows slot `k`.
    #[cfg(feature = "strict-invariants")]
    slot_live: &'a [std::sync::atomic::AtomicBool],
}

/// Run one participant of a posted batch: claim items from the shared
/// counter until exhaustion, collecting `(index, result)` pairs —
/// exactly the scoped path's worker loop.
///
/// # Safety
///
/// `data` must point at a live `MapCtx<S, T, R, F>` of matching type
/// parameters, and `part` must be a participant index unique within the
/// current batch and `< states.len()` of the submitting call.
unsafe fn run_participant<S, T, R, F>(data: *const (), part: usize)
where
    S: Send,
    T: Sync,
    R: Send,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    // SAFETY: the caller (pool submission or participant 0) passes a
    // pointer to the submitting call's live `MapCtx` of exactly these
    // type parameters, and that caller blocks until `active` drains —
    // the pointee outlives every participant's run.
    let ctx = unsafe { &*(data as *const MapCtx<'_, S, T, R, F>) };
    // SAFETY: participant indices are unique per batch, so this slot is
    // not aliased for the duration of the participant's run.
    let state = unsafe { &mut *ctx.states.add(part) };
    // Runtime proof of that uniqueness claim: entering a participant
    // index that is already live means two threads share one `&mut`
    // slot — abort loudly before any user code runs on it.  The flag
    // clears via drop-guard so it cannot stay latched on *any* exit
    // path from this frame and fail the next batch's assert for a
    // panic that already surfaced elsewhere.
    #[cfg(feature = "strict-invariants")]
    let _slot_flag = {
        let was = ctx.slot_live[part].swap(true, Ordering::SeqCst);
        assert!(
            !was,
            "strict-invariants: state slot {part} claimed twice within one batch"
        );
        SlotFlagGuard(&ctx.slot_live[part])
    };
    // CONTAINMENT: a panic in `f` is caught per participant; the first
    // payload wins the batch's panic slot, every other participant
    // drains the item counter normally, and the submitting caller
    // re-raises the payload after the batch fully quiesces — batch
    // poisoned, pool workers and every other batch intact
    // (docs/PERF.md, docs/ROBUSTNESS.md).
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut local: Vec<(usize, R)> = Vec::new();
        loop {
            let i = ctx.next.fetch_add(1, Ordering::Relaxed);
            if i >= ctx.items.len() {
                break;
            }
            local.push((i, (ctx.f)(state, i, &ctx.items[i])));
        }
        local
    }));
    match outcome {
        Ok(local) => *lock(&ctx.parts[part]) = local,
        Err(payload) => {
            let mut slot = lock(ctx.panic);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
    }
}

/// Scan every shard for an unclaimed participant slot, starting at the
/// worker's home shard.  Claiming from a foreign shard counts a steal
/// on that shard's current batch.
fn try_claim(shared: &Shared, home: usize) -> Option<Claim> {
    let n = shared.shards.len();
    for k in 0..n {
        let idx = (home + k) % n;
        let mut st = lock(&shared.shards[idx].state);
        if let Some(job) = st.job.as_ref() {
            let (run, data, participants) = (job.run, job.data, job.participants);
            let part = st.claimed + 1; // participant 0 is the caller
            st.claimed += 1;
            if st.claimed == participants {
                // Fully claimed: clear the slot so late wakers (and
                // this worker, once done) park again.
                st.job = None;
            }
            if idx != home {
                st.steals += 1;
            }
            return Some(Claim {
                run,
                data,
                part,
                shard: idx,
            });
        }
    }
    None
}

/// The parked-worker loop: scan all shards for a job (home shard
/// first), claim a participant slot, run it, signal that shard's
/// completion, park again — until shutdown.
fn worker_loop(shared: Arc<Shared>, home: usize) {
    IN_POOL_WORKER.with(|flag| flag.set(true));
    loop {
        let claim = {
            let mut shutdown = lock(&shared.idle);
            loop {
                if *shutdown {
                    return;
                }
                if let Some(c) = try_claim(&shared, home) {
                    break c;
                }
                shutdown = wait(&shared.work_cv, shutdown);
            }
        };
        // SAFETY: the submitting caller blocks until its shard's
        // `active` drains, so `data` is alive; `part` was claimed
        // exclusively above.  The participant fn catches panics
        // internally, so `active` is always decremented and the
        // protocol cannot wedge.
        unsafe { (claim.run)(claim.data, claim.part) };
        let shard = &shared.shards[claim.shard];
        let mut st = lock(&shard.state);
        st.active -= 1;
        if st.active == 0 {
            shard.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{par_map_with_threads_scoped, ParBackend};
    use std::sync::atomic::{AtomicBool, AtomicU64};

    #[test]
    fn pooled_matches_scoped_bit_for_bit() {
        let pool = Pool::new();
        let items: Vec<u64> = (0..500).collect();
        for threads in [2usize, 3, 4, 8] {
            let mut sp = WorkerStates::new(threads, |_| 0u64);
            let mut pp = WorkerStates::new(threads, |_| 0u64);
            let f = |s: &mut u64, i: usize, &x: &u64| {
                *s += 1;
                x.wrapping_mul(31).wrapping_add(i as u64)
            };
            let scoped = par_map_with_threads_scoped(threads, &mut sp, &items, f);
            let pooled = pool.par_map_with_threads(threads, &mut pp, &items, f);
            assert_eq!(scoped, pooled, "t{threads}");
            assert_eq!(
                sp.iter().sum::<u64>(),
                pp.iter().sum::<u64>(),
                "every item processed exactly once either way"
            );
        }
    }

    #[test]
    fn shard_counts_are_bit_identical() {
        // Same batch on 1, 2 and 4 shards: results, order and state
        // totals must not move — shard choice only picks threads.
        let items: Vec<u64> = (0..300).collect();
        let f = |s: &mut u64, i: usize, &x: &u64| {
            *s += 1;
            x.wrapping_mul(0x9E3779B9).wrapping_add(i as u64)
        };
        let mut reference = None;
        for shards in [1usize, 2, 4] {
            let pool = Pool::with_shards(shards);
            assert_eq!(pool.shard_count(), shards);
            let mut states = WorkerStates::new(4, |_| 0u64);
            let out = pool.par_map_with_threads(4, &mut states, &items, f);
            assert_eq!(states.iter().sum::<u64>(), 300, "s{shards}");
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(r, &out, "s{shards}"),
            }
        }
    }

    #[test]
    fn pool_reuses_workers_across_batches() {
        let pool = Pool::new();
        let items: Vec<u32> = (0..64).collect();
        let mut states = WorkerStates::new(4, |_| ());
        for round in 0..10u32 {
            let out = pool.par_map_with_threads(4, &mut states, &items, |_, _, &x| x + round);
            assert_eq!(out[10], 10 + round);
        }
        assert_eq!(
            pool.worker_count(),
            3,
            "threads-1 workers, created once — a lone caller stays on shard 0"
        );
    }

    #[test]
    fn concurrent_submitters_land_on_distinct_shards() {
        // Thread A drives a batch whose items spin until released; the
        // main thread then submits its own batch, whose items do the
        // releasing.  With ≥ 2 shards the main thread's try_lock sweep
        // must skip A's busy shard 0 and proceed on shard 1 — no
        // deadlock, no submission wait, and the shard histogram shows
        // both shards used.
        let pool = Arc::new(Pool::with_shards(2));
        let a_started = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let items: Vec<u32> = (0..8).collect();

        let a = {
            let pool = Arc::clone(&pool);
            let a_started = Arc::clone(&a_started);
            let release = Arc::clone(&release);
            let items = items.clone();
            std::thread::spawn(move || {
                let mut states = WorkerStates::new(2, |_| ());
                let base = crate::dispatch_stats();
                let out = pool.par_map_with_threads(2, &mut states, &items, |_, _, &x| {
                    a_started.store(true, Ordering::SeqCst);
                    while !release.load(Ordering::SeqCst) {
                        std::hint::spin_loop();
                    }
                    x * 2
                });
                (out, crate::dispatch_stats().since(&base))
            })
        };

        while !a_started.load(Ordering::SeqCst) {
            std::hint::spin_loop();
        }
        let mut states = WorkerStates::new(2, |_| ());
        let base = crate::dispatch_stats();
        let out = pool.par_map_with_threads(2, &mut states, &items, |_, _, &x| {
            release.store(true, Ordering::SeqCst);
            x + 1
        });
        let mine = crate::dispatch_stats().since(&base);
        assert_eq!(out, (1..=8).collect::<Vec<u32>>());
        assert_eq!(mine.pool_submission_waits, 0, "shard 1 was free");
        assert_eq!(mine.pool_shard_batches[1], 1, "A held shard 0");

        let (a_out, a_stats) = a.join().expect("thread A");
        assert_eq!(a_out, (0..8).map(|x| x * 2).collect::<Vec<u32>>());
        assert_eq!(a_stats.pool_shard_batches[0], 1);
    }

    #[test]
    fn busy_single_shard_counts_a_submission_wait() {
        // Same overlap as above, but with one shard the main thread's
        // sweep finds every submission lock busy and must block —
        // counted as a submission wait.  The release is delegated to a
        // third thread because the blocked submitter cannot run items
        // until A's batch drains.
        let pool = Arc::new(Pool::with_shards(1));
        let a_started = Arc::new(AtomicBool::new(false));
        let b_submitting = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let items: Vec<u32> = (0..8).collect();

        let a = {
            let pool = Arc::clone(&pool);
            let a_started = Arc::clone(&a_started);
            let release = Arc::clone(&release);
            let items = items.clone();
            std::thread::spawn(move || {
                let mut states = WorkerStates::new(2, |_| ());
                pool.par_map_with_threads(2, &mut states, &items, |_, _, &x| {
                    a_started.store(true, Ordering::SeqCst);
                    while !release.load(Ordering::SeqCst) {
                        std::hint::spin_loop();
                    }
                    x
                })
            })
        };
        while !a_started.load(Ordering::SeqCst) {
            std::hint::spin_loop();
        }
        let releaser = {
            let b_submitting = Arc::clone(&b_submitting);
            let release = Arc::clone(&release);
            std::thread::spawn(move || {
                while !b_submitting.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
                // Give the submitter a moment to reach (and fail) the
                // try_lock sweep before releasing A's batch.  Worst
                // case a pathological preemption makes the wait count
                // 0 and the assertion below catches nothing false —
                // the sweep-vs-release order is why this is 200ms and
                // not a barrier (a blocked submitter can't signal).
                std::thread::sleep(std::time::Duration::from_millis(200));
                release.store(true, Ordering::SeqCst);
            })
        };
        let mut states = WorkerStates::new(2, |_| ());
        let base = crate::dispatch_stats();
        b_submitting.store(true, Ordering::SeqCst);
        let out = pool.par_map_with_threads(2, &mut states, &items, |_, _, &x| x + 1);
        let mine = crate::dispatch_stats().since(&base);
        assert_eq!(out, (1..=8).collect::<Vec<u32>>());
        assert_eq!(mine.pool_submission_waits, 1, "single shard was busy");
        assert_eq!(mine.pool_shard_batches[0], 1);
        a.join().expect("thread A");
        releaser.join().expect("releaser");
    }

    #[test]
    fn worker_state_slots_stay_exclusive_and_persistent() {
        let pool = Pool::new();
        let mut states = WorkerStates::new(4, |_| 0usize);
        let items: Vec<u32> = (0..100).collect();
        let out = pool.par_map_with_threads(4, &mut states, &items, |s, i, &x| {
            *s += 1;
            (i as u32, x + 1)
        });
        for (i, &(idx, v)) in out.iter().enumerate() {
            assert_eq!(idx as usize, i);
            assert_eq!(v, i as u32 + 1);
        }
        assert_eq!(states.iter().sum::<usize>(), 100);
        pool.par_map_with_threads(4, &mut states, &items, |s, _, _| *s += 1);
        assert_eq!(
            states.iter().sum::<usize>(),
            200,
            "arena survives across batches"
        );
    }

    #[test]
    fn drop_joins_every_worker() {
        let pool = Pool::new();
        let items: Vec<u32> = (0..32).collect();
        let mut states = WorkerStates::new(6, |_| ());
        pool.par_map_with_threads(6, &mut states, &items, |_, _, &x| x);
        assert_eq!(pool.worker_count(), 5);
        let weak = Arc::downgrade(&pool.shared);
        drop(pool);
        // Every worker held a strong reference to the shared state; a
        // dead weak pointer proves they all exited and were joined.
        assert_eq!(weak.strong_count(), 0, "a worker outlived Drop");
    }

    #[test]
    fn drop_joins_workers_of_every_shard() {
        let pool = Pool::with_shards(4);
        // Drive batches from two overlapping submitters so at least
        // two shards spawn workers, then drop.
        let items: Vec<u32> = (0..64).collect();
        let a_started = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let pool = Arc::new(pool);
        let a = {
            let pool = Arc::clone(&pool);
            let a_started = Arc::clone(&a_started);
            let release = Arc::clone(&release);
            let items = items.clone();
            std::thread::spawn(move || {
                let mut states = WorkerStates::new(2, |_| ());
                pool.par_map_with_threads(2, &mut states, &items, |_, _, &x| {
                    a_started.store(true, Ordering::SeqCst);
                    while !release.load(Ordering::SeqCst) {
                        std::hint::spin_loop();
                    }
                    x
                })
            })
        };
        while !a_started.load(Ordering::SeqCst) {
            std::hint::spin_loop();
        }
        let mut states = WorkerStates::new(3, |_| ());
        pool.par_map_with_threads(3, &mut states, &items, |_, _, &x| {
            release.store(true, Ordering::SeqCst);
            x
        });
        a.join().expect("thread A");
        assert!(pool.worker_count() >= 2, "two shards spawned workers");
        let weak = Arc::downgrade(&pool.shared);
        drop(Arc::into_inner(pool).expect("sole owner"));
        assert_eq!(weak.strong_count(), 0, "a worker outlived Drop");
    }

    #[test]
    fn panic_poisons_the_batch_but_not_the_pool() {
        let pool = Pool::new();
        let items: Vec<u32> = (0..64).collect();
        let mut states = WorkerStates::new(4, |_| ());
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map_with_threads(4, &mut states, &items, |_, _, &x| {
                if x == 13 {
                    panic!("boom at {x}");
                }
                x
            })
        }));
        let payload = caught.expect_err("the panicking item must propagate to the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("boom at 13"),
            "original payload preserved: {msg}"
        );
        // The pool must stay fully usable for the next batch.
        let out = pool.par_map_with_threads(4, &mut states, &items, |_, _, &x| x * 2);
        assert_eq!(out.len(), 64);
        assert_eq!(out[20], 40);
    }

    #[test]
    fn caller_side_panic_is_also_contained() {
        // Participant 0 runs on the calling thread; its panic must wait
        // for the pool-side participants before unwinding (they borrow
        // the caller's stack) and the pool must survive.
        let pool = Pool::new();
        let items: Vec<u32> = (0..256).collect();
        let mut states = WorkerStates::new(2, |_| ());
        for _ in 0..3 {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                pool.par_map_with_threads(2, &mut states, &items, |_, i, &x| {
                    if i == 0 {
                        panic!("first item");
                    }
                    x
                })
            }));
            assert!(caught.is_err());
        }
        let ok = pool.par_map_with_threads(2, &mut states, &items, |_, _, &x| x);
        assert_eq!(ok, items);
    }

    #[test]
    fn nested_par_map_inside_a_pooled_worker_runs_serial() {
        let pool = Pool::new();
        let items: Vec<u32> = (0..16).collect();
        let mut states = WorkerStates::new(4, |_| ());
        let nested_parallel = AtomicU64::new(0);
        let out = pool.par_map_with_threads(4, &mut states, &items, |_, _, &x| {
            // A pool-backend inner call must complete (no deadlock) and
            // must stay on the current thread (serial fallback).  The
            // backend is pinned because the ambient `SPMAP_POOL` may
            // select scoped spawns (CI matrix), where nested calls are
            // legitimately allowed to go parallel — only the pool must
            // demote them.
            let me = std::thread::current().id();
            crate::with_backend(ParBackend::Pool, || {
                let inner: Vec<u32> = crate::par_map(&[1u32, 2, 3, 4, 5, 6, 7, 8], |_, &y| {
                    if std::thread::current().id() != me {
                        nested_parallel.fetch_add(1, Ordering::Relaxed);
                    }
                    y * 10
                });
                assert_eq!(inner, vec![10, 20, 30, 40, 50, 60, 70, 80]);
            });
            x
        });
        assert_eq!(out, items);
        assert_eq!(
            nested_parallel.load(Ordering::Relaxed),
            0,
            "nested calls must not escape the current thread"
        );
    }

    #[test]
    fn nested_call_through_the_global_pool_does_not_deadlock() {
        // Same property through the public dispatcher with the pool
        // backend forced: outer pooled batch, inner par_map from every
        // participant (including the batch-driving caller thread).
        crate::with_backend(ParBackend::Pool, || {
            let items: Vec<u32> = (0..12).collect();
            let out = crate::par_map(&items, |_, &x| {
                let inner: u32 = crate::par_map(&[x, x + 1], |_, &y| y).iter().sum();
                inner
            });
            assert_eq!(out[3], 3 + 4);
        });
    }

    #[test]
    fn worker_count_capped_by_state_slots_and_items() {
        let pool = Pool::new();
        let mut states = WorkerStates::new(2, |_| 0usize);
        let items: Vec<u32> = (0..40).collect();
        let out = pool.par_map_with_threads(8, &mut states, &items, |s, _, &x| {
            *s += 1;
            x
        });
        assert_eq!(out, items);
        assert_eq!(states.iter().sum::<usize>(), 40);
        assert!(
            pool.worker_count() <= 1,
            "2 effective workers -> at most 1 spawned"
        );
    }

    #[test]
    fn odd_thread_counts_work() {
        let pool = Pool::new();
        for threads in [3usize, 5, 7] {
            let mut states = WorkerStates::new(threads, |_| ());
            let items: Vec<u64> = (0..101).collect();
            let out = pool.par_map_with_threads(threads, &mut states, &items, |_, _, &x| x + 7);
            assert_eq!(out.len(), 101);
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, i as u64 + 7);
            }
        }
    }

    #[test]
    fn empty_and_single_inputs_stay_serial() {
        let pool = Pool::new();
        let mut states = WorkerStates::new(4, |_| ());
        let empty: Vec<u32> = vec![];
        assert!(pool
            .par_map_with_threads(4, &mut states, &empty, |_, _, &x| x)
            .is_empty());
        assert_eq!(
            pool.par_map_with_threads(4, &mut states, &[9u32], |_, _, &x| x + 1),
            vec![10]
        );
        assert_eq!(pool.worker_count(), 0, "serial fast path spawns nothing");
    }
}

//! # spmap-par — scoped parallel map with reusable per-worker state
//!
//! Two layers of the workspace lean on this crate:
//!
//! * the experiment harness maps hundreds of independent
//!   (graph, algorithm) cells ([`par_map`]),
//! * the candidate-evaluation engine in `spmap-core` maps thousands of
//!   candidate moves per mapper iteration, each needing a mutable
//!   evaluation scratch ([`par_map_with`] + [`WorkerStates`]).
//!
//! Work items are claimed through a shared atomic counter, so long-running
//! items (e.g. a MILP solve) do not stall the remaining workers.  Threads
//! are `std::thread::scope` scoped — no global pool, no dependencies —
//! while the expensive part of a worker, its state `S`, lives in a
//! [`WorkerStates`] arena that is reused across any number of calls.
//!
//! `SPMAP_THREADS=1` (or a single-item input) is a true serial fast path:
//! the closure runs on the calling thread and **zero** threads are
//! spawned.
//!
//! Measurement note: per-item *execution times* reported by the harness
//! are measured inside the item closure, so wall-clock parallelism of the
//! sweep does not distort per-algorithm timing (beyond the usual
//! multi-core interference, which also affected the paper's C++ harness).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use: `SPMAP_THREADS` if set, otherwise the
/// machine's available parallelism.
///
/// The env var is parsed defensively (see [`parse_threads`]): `0` and
/// garbage values clamp to the serial path (1 worker) instead of
/// panicking or spawning zero workers, and an empty value counts as
/// unset.  An explicitly configured-but-broken override falling back to
/// *full* machine parallelism would silently oversubscribe the exact
/// runs (benchmarks, CI) that set the variable to contain parallelism —
/// serial is the safe interpretation.
pub fn num_threads() -> usize {
    let machine = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    match std::env::var_os("SPMAP_THREADS") {
        // Non-UTF-8 bytes are garbage, not "unset": clamp to serial like
        // any other unparseable override.
        Some(v) => match v.to_str() {
            Some(s) => parse_threads(s).unwrap_or_else(machine),
            None => 1,
        },
        None => machine(),
    }
}

/// Interpret one `SPMAP_THREADS` value:
///
/// * a positive integer (surrounding whitespace tolerated) is honored,
/// * `0` and garbage (`banana`, `-3`, `1.5`, …) clamp to `Some(1)` — the
///   serial path; never a panic, never zero workers,
/// * an empty / whitespace-only value is `None` — treated as unset.
pub fn parse_threads(raw: &str) -> Option<usize> {
    let t = raw.trim();
    if t.is_empty() {
        return None;
    }
    Some(match t.parse::<usize>() {
        Ok(0) | Err(_) => 1,
        Ok(n) => n,
    })
}

/// An arena of per-worker states, built once and reused across many
/// [`par_map_with`] calls.  Worker `k` of a call always receives exclusive
/// `&mut` access to one slot; slots never migrate mid-call.
#[derive(Debug)]
pub struct WorkerStates<S> {
    states: Vec<S>,
}

impl<S> WorkerStates<S> {
    /// `count` states built by `init(slot_index)`.
    pub fn new(count: usize, init: impl FnMut(usize) -> S) -> Self {
        assert!(count > 0, "need at least one worker state");
        Self {
            states: (0..count).map(init).collect(),
        }
    }

    /// One state per configured thread ([`num_threads`]).
    pub fn per_thread(init: impl FnMut(usize) -> S) -> Self {
        Self::new(num_threads(), init)
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` if there are no slots (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The slot the serial fast path uses.
    pub fn first_mut(&mut self) -> &mut S {
        &mut self.states[0]
    }

    /// Iterate over all slots, e.g. to aggregate per-worker statistics.
    pub fn iter(&self) -> impl Iterator<Item = &S> {
        self.states.iter()
    }

    /// Mutably iterate over all slots.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut S> {
        self.states.iter_mut()
    }
}

/// Apply `f(state, index, item)` to every item with `threads` workers,
/// preserving input order in the result.  Worker count is further capped
/// by the item count and the number of state slots.  `threads <= 1` runs
/// entirely on the calling thread with `states` slot 0 and spawns nothing.
pub fn par_map_with_threads<S, T, R, F>(
    threads: usize,
    states: &mut WorkerStates<S>,
    items: &[T],
    f: F,
) -> Vec<R>
where
    S: Send,
    T: Sync,
    R: Send,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let threads = threads.min(items.len().max(1)).min(states.len());
    if threads <= 1 || items.len() <= 1 {
        let s = states.first_mut();
        return items.iter().enumerate().map(|(i, t)| f(s, i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let worker = |s: &mut S| {
        let mut local: Vec<(usize, R)> = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= items.len() {
                break;
            }
            local.push((i, f(s, i, &items[i])));
        }
        local
    };
    let mut parts: Vec<Vec<(usize, R)>> = Vec::with_capacity(threads);
    let (mine, rest) = states.states.split_at_mut(1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = rest[..threads - 1]
            .iter_mut()
            .map(|s| scope.spawn(|| worker(s)))
            .collect();
        // The calling thread is worker 0 — one fewer spawn per call.
        parts.push(worker(&mut mine[0]));
        for h in handles {
            parts.push(h.join().expect("worker panicked"));
        }
    });
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for part in parts {
        for (i, r) in part {
            debug_assert!(out[i].is_none());
            out[i] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("every index claimed exactly once"))
        .collect()
}

/// [`par_map_with_threads`] with the environment-configured thread count.
pub fn par_map_with<S, T, R, F>(states: &mut WorkerStates<S>, items: &[T], f: F) -> Vec<R>
where
    S: Send,
    T: Sync,
    R: Send,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    par_map_with_threads(num_threads(), states, items, f)
}

/// Apply `f` to every item, in parallel, preserving input order in the
/// result.  `f` receives `(index, &item)`.  Stateless convenience wrapper
/// over [`par_map_with`].
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = num_threads();
    let mut states = WorkerStates::new(threads, |_| ());
    par_map_with_threads(threads, &mut states, items, |_, i, t| f(i, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |_, &x| x * 2);
        assert_eq!(out.len(), 1000);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, 2 * i as u64);
        }
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn index_argument_matches_position() {
        let items = vec!["a", "b", "c"];
        let out = par_map(&items, |i, &s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn unbalanced_work_completes() {
        // One expensive item must not serialize the rest.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |_, &x| {
            if x == 0 {
                // Busy-work instead of sleeping to keep the test fast.
                (0..200_000u64).fold(0, |a, b| a ^ b.wrapping_mul(x + 1))
            } else {
                x
            }
        });
        assert_eq!(out.len(), 64);
        assert_eq!(out[5], 5);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn parse_threads_accepts_positive_integers() {
        assert_eq!(parse_threads("1"), Some(1));
        assert_eq!(parse_threads("8"), Some(8));
        assert_eq!(parse_threads(" 4 "), Some(4), "whitespace tolerated");
        assert_eq!(parse_threads("128"), Some(128));
    }

    #[test]
    fn parse_threads_clamps_zero_and_garbage_to_serial() {
        // Regression: `SPMAP_THREADS=0` must not configure zero workers,
        // and garbage must not fall through to full machine parallelism
        // (the var is usually set precisely to *limit* parallelism).
        assert_eq!(parse_threads("0"), Some(1));
        assert_eq!(parse_threads("banana"), Some(1));
        assert_eq!(parse_threads("-3"), Some(1));
        assert_eq!(parse_threads("1.5"), Some(1));
        assert_eq!(parse_threads("8 threads"), Some(1));
        assert_eq!(parse_threads("99999999999999999999999999"), Some(1), "overflow is garbage");
    }

    #[test]
    fn parse_threads_empty_is_unset() {
        assert_eq!(parse_threads(""), None);
        assert_eq!(parse_threads("   "), None);
    }

    #[test]
    fn with_state_preserves_order_and_reuses_slots() {
        // Each worker state accumulates how many items it processed;
        // across two calls the *same* arena keeps accumulating.
        let mut states = WorkerStates::new(4, |_| 0usize);
        let items: Vec<u32> = (0..100).collect();
        let out = par_map_with_threads(4, &mut states, &items, |s, i, &x| {
            *s += 1;
            (i as u32, x + 1)
        });
        for (i, &(idx, v)) in out.iter().enumerate() {
            assert_eq!(idx as usize, i);
            assert_eq!(v, i as u32 + 1);
        }
        let first_total: usize = states.iter().sum();
        assert_eq!(first_total, 100, "every item processed exactly once");
        par_map_with_threads(4, &mut states, &items, |s, _, _| *s += 1);
        let second_total: usize = states.iter().sum();
        assert_eq!(second_total, 200, "state survives across calls");
    }

    #[test]
    fn single_thread_is_serial_on_calling_thread() {
        // threads = 1 must run everything on the caller with slot 0 and
        // spawn no threads — observable through thread ids.
        let me = std::thread::current().id();
        let mut states = WorkerStates::new(3, |_| Vec::new());
        let items: Vec<u32> = (0..50).collect();
        par_map_with_threads(1, &mut states, &items, |s, _, _| {
            s.push(std::thread::current().id());
        });
        let (slot0, others) = {
            let mut it = states.iter();
            (it.next().unwrap().clone(), it.map(|v| v.len()).sum::<usize>())
        };
        assert_eq!(slot0.len(), 50, "all items on slot 0");
        assert!(slot0.iter().all(|&id| id == me), "no thread was spawned");
        assert_eq!(others, 0, "no other slot touched");
    }

    #[test]
    fn parallel_uses_multiple_threads_when_asked() {
        // With enough slow items, at least one item must land on a thread
        // other than the caller (the caller is itself one of the workers).
        let me = std::thread::current().id();
        let mut states = WorkerStates::new(4, |_| ());
        let items: Vec<u32> = (0..64).collect();
        let ids = par_map_with_threads(4, &mut states, &items, |_, _, _| {
            std::hint::black_box((0..100_000u64).fold(0u64, |a, b| a.wrapping_add(b)));
            std::thread::current().id()
        });
        assert!(ids.iter().any(|&id| id != me), "expected a spawned worker");
    }

    #[test]
    fn worker_count_capped_by_state_slots() {
        // 8 threads requested but only 2 slots: must still complete with
        // every item processed exactly once.
        let mut states = WorkerStates::new(2, |_| 0usize);
        let items: Vec<u32> = (0..40).collect();
        let out = par_map_with_threads(8, &mut states, &items, |s, _, &x| {
            *s += 1;
            x
        });
        assert_eq!(out, items);
        assert_eq!(states.iter().sum::<usize>(), 40);
    }
}

//! # spmap-par — parallel map for experiment sweeps
//!
//! The experiment harness evaluates hundreds of independent
//! (graph, algorithm) cells; this crate provides a small self-balancing
//! parallel map on top of `crossbeam`'s scoped threads (no global thread
//! pool, no extra dependencies).  Work items are claimed through a shared
//! atomic counter, so long-running items (e.g. a MILP solve) do not stall
//! the remaining workers.
//!
//! Measurement note: per-item *execution times* reported by the harness
//! are measured inside the item closure, so wall-clock parallelism of the
//! sweep does not distort per-algorithm timing (beyond the usual
//! multi-core interference, which also affected the paper's C++ harness).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use: `SPMAP_THREADS` if set, otherwise the
/// machine's available parallelism.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("SPMAP_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Apply `f` to every item, in parallel, preserving input order in the
/// result.  `f` receives `(index, &item)`.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut parts: Vec<Vec<(usize, R)>> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            let f = &f;
            handles.push(scope.spawn(move |_| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                local
            }));
        }
        for h in handles {
            parts.push(h.join().expect("worker panicked"));
        }
    })
    .expect("scope panicked");
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for part in parts {
        for (i, r) in part {
            debug_assert!(out[i].is_none());
            out[i] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |_, &x| x * 2);
        assert_eq!(out.len(), 1000);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, 2 * i as u64);
        }
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn index_argument_matches_position() {
        let items = vec!["a", "b", "c"];
        let out = par_map(&items, |i, &s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn unbalanced_work_completes() {
        // One expensive item must not serialize the rest.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |_, &x| {
            if x == 0 {
                // Busy-work instead of sleeping to keep the test fast.
                (0..200_000u64).fold(0, |a, b| a ^ b.wrapping_mul(x + 1))
            } else {
                x
            }
        });
        assert_eq!(out.len(), 64);
        assert_eq!(out[5], 5);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }
}

//! # spmap-par — scoped parallel map with reusable per-worker state
//!
//! Two layers of the workspace lean on this crate:
//!
//! * the experiment harness maps hundreds of independent
//!   (graph, algorithm) cells ([`par_map`]),
//! * the candidate-evaluation engine in `spmap-core` maps thousands of
//!   candidate moves per mapper iteration, each needing a mutable
//!   evaluation scratch ([`par_map_with`] + [`WorkerStates`]).
//!
//! Work items are claimed through a shared atomic counter, so long-running
//! items (e.g. a MILP solve) do not stall the remaining workers.  The
//! expensive part of a worker, its state `S`, lives in a [`WorkerStates`]
//! arena that is reused across any number of calls.
//!
//! Two execution backends share that exact work-distribution logic:
//!
//! * **pool** (default) — a process-wide [persistent worker
//!   pool](crate::pool): threads are created once, park between batches
//!   and are woken by submission.  Small batches — the search loops
//!   dispatch roughly one per GA generation or candidate wave — no
//!   longer pay a spawn/join per call.
//! * **scoped** (`SPMAP_POOL=0`) — per-call `std::thread::scope` spawns,
//!   the original implementation, kept as the executable specification
//!   ([`par_map_with_threads_scoped`]).
//!
//! Results are bit-identical across {serial, scoped, pool} × thread
//! counts: both backends claim items from the same atomic counter,
//! restore input order the same way, and hand participant `k` exclusive
//! `&mut` access to state slot `k`.  [`with_backend`] overrides the env
//! selection for the current thread (benchmarks, tests).
//!
//! `SPMAP_THREADS=1` (or a single-item input) is a true serial fast path:
//! the closure runs on the calling thread and **zero** threads are
//! spawned or woken.
//!
//! Per-thread [`DispatchStats`] counters record how batches were
//! dispatched (serial / scoped spawns / pool wakes); the engines in
//! `spmap-core` surface them per run.
//!
//! Measurement note: per-item *execution times* reported by the harness
//! are measured inside the item closure, so wall-clock parallelism of the
//! sweep does not distort per-algorithm timing (beyond the usual
//! multi-core interference, which also affected the paper's C++ harness).

pub mod pool;

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

pub use pool::{global as global_pool, in_pool_worker, Pool};

/// Number of worker threads to use: `SPMAP_THREADS` if set, otherwise the
/// machine's available parallelism.
///
/// The env var is parsed defensively (see [`parse_threads`]): `0` and
/// garbage values clamp to the serial path (1 worker) instead of
/// panicking or spawning zero workers, and an empty value counts as
/// unset.  An explicitly configured-but-broken override falling back to
/// *full* machine parallelism would silently oversubscribe the exact
/// runs (benchmarks, CI) that set the variable to contain parallelism —
/// serial is the safe interpretation.
pub fn num_threads() -> usize {
    let machine = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    match std::env::var_os("SPMAP_THREADS") {
        // Non-UTF-8 bytes are garbage, not "unset": clamp to serial like
        // any other unparseable override.
        Some(v) => match v.to_str() {
            Some(s) => parse_threads(s).unwrap_or_else(machine),
            None => 1,
        },
        None => machine(),
    }
}

/// Upper bound on pool shards (and the length of the per-shard batch
/// counters in [`DispatchStats`]).  Shards multiply *submission*
/// concurrency, not per-batch parallelism, and more concurrent
/// submitters than cores just contend on the same CPUs — a small fixed
/// cap keeps the stats `Copy` and the shard scan cheap.
pub const MAX_SHARDS: usize = 16;

/// Interpret one `SPMAP_SHARDS` value:
///
/// * a positive integer (surrounding whitespace tolerated) is honored,
///   capped at [`MAX_SHARDS`],
/// * `0` and garbage (`banana`, `-3`, `1.5`, …) clamp to `Some(1)` — a
///   single shard, i.e. the one-batch-at-a-time pool of PR 4; never a
///   panic, never zero shards,
/// * an empty / whitespace-only value is `None` — treated as unset
///   (auto from core count).
///
/// The clamp direction mirrors [`parse_threads`]: an explicitly
/// configured-but-broken override means the operator reached for the
/// knob, and the conservative reading is *less* concurrency, not the
/// machine-wide default.
pub fn parse_shards(raw: &str) -> Option<usize> {
    let t = raw.trim();
    if t.is_empty() {
        return None;
    }
    Some(match t.parse::<usize>() {
        Ok(0) | Err(_) => 1,
        Ok(n) => n.min(MAX_SHARDS),
    })
}

/// Number of pool shards: `SPMAP_SHARDS` if set (see [`parse_shards`]),
/// otherwise the machine's available parallelism, capped at
/// [`MAX_SHARDS`].  Each shard accepts one batch at a time; N shards
/// let N concurrent callers dispatch batches in parallel.
pub fn num_shards() -> usize {
    let machine = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(MAX_SHARDS)
    };
    match std::env::var_os("SPMAP_SHARDS") {
        // Non-UTF-8 bytes are garbage, not "unset": clamp to one shard
        // like any other unparseable override.
        Some(v) => match v.to_str() {
            Some(s) => parse_shards(s).unwrap_or_else(machine),
            None => 1,
        },
        None => machine(),
    }
}

/// Which execution backend [`par_map_with_threads`] uses for batches
/// that actually go parallel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ParBackend {
    /// The persistent worker pool (parked threads, woken per batch).
    #[default]
    Pool,
    /// Per-call `std::thread::scope` spawns — the executable spec.
    Scoped,
}

thread_local! {
    static BACKEND_OVERRIDE: Cell<Option<ParBackend>> = const { Cell::new(None) };
    static POOL_OVERRIDE: std::cell::RefCell<Option<std::sync::Arc<Pool>>> =
        const { std::cell::RefCell::new(None) };
    static DISPATCH: Cell<DispatchStats> = const { Cell::new(DispatchStats::new()) };
}

/// The backend the current thread's `par_map` calls will use: the
/// [`with_backend`] override if one is active, otherwise `SPMAP_POOL`
/// (`0`/`off`/`false`/`no` = scoped; `1`/`on`/`true`/`yes` = pool;
/// unset/empty = pool).  Like `SPMAP_THREADS`, a configured-but-garbage
/// value clamps to the *conservative* interpretation — the scoped
/// executable-spec path — instead of being ignored.
pub fn backend() -> ParBackend {
    if let Some(b) = BACKEND_OVERRIDE.with(Cell::get) {
        return b;
    }
    match std::env::var_os("SPMAP_POOL") {
        Some(v) => match v.to_str() {
            Some(s) => parse_pool(s).unwrap_or(ParBackend::Scoped),
            None => ParBackend::Scoped,
        },
        None => ParBackend::Pool,
    }
}

/// Interpret one `SPMAP_POOL` value:
///
/// * `0`, `off`, `false`, `no` (any case) select [`ParBackend::Scoped`],
/// * `1`, `on`, `true`, `yes` select [`ParBackend::Pool`],
/// * an empty / whitespace-only value is `None` — treated as unset
///   (the pool default applies),
/// * anything else clamps to `Scoped`: an explicitly configured but
///   unparseable override means the operator tried to turn the pool
///   *off*-or-*on*; the scoped path is the conservative reading.
pub fn parse_pool(raw: &str) -> Option<ParBackend> {
    let t = raw.trim();
    if t.is_empty() {
        return None;
    }
    Some(match t.to_ascii_lowercase().as_str() {
        "1" | "on" | "true" | "yes" | "pool" => ParBackend::Pool,
        _ => ParBackend::Scoped,
    })
}

/// Run `f` with the current thread's backend pinned to `backend`,
/// overriding `SPMAP_POOL`; restored afterwards (panic-safe).  Used by
/// benchmarks (pool-vs-scoped rows) and the equivalence suite.
pub fn with_backend<R>(backend: ParBackend, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<ParBackend>);
    impl Drop for Restore {
        fn drop(&mut self) {
            BACKEND_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(BACKEND_OVERRIDE.with(|c| c.replace(Some(backend))));
    f()
}

/// Run `f` with the current thread's pool-backend batches routed to
/// `pool` instead of the process-wide [`global_pool`]; restored
/// afterwards (panic-safe).  Lets tests and benchmarks exercise several
/// shard counts ([`Pool::with_shards`]) inside one process — the global
/// pool reads `SPMAP_SHARDS` once and cannot be reconfigured.
pub fn with_pool<R>(pool: &std::sync::Arc<Pool>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<std::sync::Arc<Pool>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            POOL_OVERRIDE.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let _restore = Restore(POOL_OVERRIDE.with(|c| c.replace(Some(std::sync::Arc::clone(pool)))));
    f()
}

/// The pool the current thread's pool-backend batches run on: the
/// [`with_pool`] override if one is active, otherwise `None` (the
/// process-wide [`global_pool`]).
fn pool_override() -> Option<std::sync::Arc<Pool>> {
    POOL_OVERRIDE.with(|c| c.borrow().clone())
}

/// How this thread's `par_map` batches were dispatched, accumulated
/// since thread start.  Callers snapshot before/after a run and diff
/// with [`DispatchStats::since`]; the engines in `spmap-core` surface
/// the per-run deltas on their results.
///
/// Deliberately **not** part of the engines' decision-counter structs:
/// decision counters are thread-count-invariant (pinned by the
/// equivalence suite), dispatch counters intentionally are not — they
/// exist to show the spawn overhead a given configuration paid.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Batches run entirely on the calling thread (1 worker, ≤ 1 item,
    /// or a nested call demoted to serial).
    pub serial_batches: u64,
    /// Nested calls demoted to serial (subset of `serial_batches`):
    /// `par_map` from inside a pool worker or a batch-driving thread.
    pub nested_serial: u64,
    /// Batches dispatched through per-call scoped spawns.
    pub scoped_batches: u64,
    /// Threads spawned by scoped batches (`workers − 1` each — the
    /// caller is always worker 0).
    pub scoped_spawns: u64,
    /// Batches dispatched through the persistent pool.
    pub pool_batches: u64,
    /// Parked pool workers engaged across pool batches (`workers − 1`
    /// per batch; wakes, not spawns).
    pub pool_dispatches: u64,
    /// Pool worker threads created (amortized across the pool's whole
    /// lifetime — this is the count scoped dispatch would pay per call).
    pub pool_workers_spawned: u64,
    /// Participant slots of this thread's pool batches claimed by a
    /// worker *homed on another shard* (work stealing: idle workers
    /// scan all shards, preferring their own).
    pub pool_steals: u64,
    /// Pool batches that found every shard's submission lock busy and
    /// had to block for one — the contention signal the sharded pool
    /// exists to drive to zero for up to [`num_shards`] concurrent
    /// callers.
    pub pool_submission_waits: u64,
    /// Pool batches submitted per shard (index = shard; shard ids past
    /// [`MAX_SHARDS`] − 1 — impossible via [`num_shards`] — fold into
    /// the last bucket).  A single-threaded caller lands everything on
    /// shard 0; concurrent callers spread out, which is exactly what
    /// this histogram is for (shard utilization in `perf_report
    /// --service`).
    pub pool_shard_batches: [u64; MAX_SHARDS],
}

impl DispatchStats {
    const fn new() -> Self {
        Self {
            serial_batches: 0,
            nested_serial: 0,
            scoped_batches: 0,
            scoped_spawns: 0,
            pool_batches: 0,
            pool_dispatches: 0,
            pool_workers_spawned: 0,
            pool_steals: 0,
            pool_submission_waits: 0,
            pool_shard_batches: [0; MAX_SHARDS],
        }
    }

    /// Field-wise `self − earlier`: the dispatches between two
    /// [`dispatch_stats`] snapshots of the same thread.  Saturating:
    /// counters are thread-local, so diffing a snapshot taken on a
    /// *different* thread (e.g. an engine constructed on one thread and
    /// driven on another) yields zeros instead of underflowing.
    pub fn since(&self, earlier: &DispatchStats) -> DispatchStats {
        let mut pool_shard_batches = [0u64; MAX_SHARDS];
        for (out, (now, then)) in pool_shard_batches.iter_mut().zip(
            self.pool_shard_batches
                .iter()
                .zip(earlier.pool_shard_batches.iter()),
        ) {
            *out = now.saturating_sub(*then);
        }
        DispatchStats {
            serial_batches: self.serial_batches.saturating_sub(earlier.serial_batches),
            nested_serial: self.nested_serial.saturating_sub(earlier.nested_serial),
            scoped_batches: self.scoped_batches.saturating_sub(earlier.scoped_batches),
            scoped_spawns: self.scoped_spawns.saturating_sub(earlier.scoped_spawns),
            pool_batches: self.pool_batches.saturating_sub(earlier.pool_batches),
            pool_dispatches: self.pool_dispatches.saturating_sub(earlier.pool_dispatches),
            pool_workers_spawned: self
                .pool_workers_spawned
                .saturating_sub(earlier.pool_workers_spawned),
            pool_steals: self.pool_steals.saturating_sub(earlier.pool_steals),
            pool_submission_waits: self
                .pool_submission_waits
                .saturating_sub(earlier.pool_submission_waits),
            pool_shard_batches,
        }
    }

    /// All batches that went parallel (either backend).
    pub fn parallel_batches(&self) -> u64 {
        self.scoped_batches + self.pool_batches
    }
}

/// The calling thread's dispatch counters so far.
pub fn dispatch_stats() -> DispatchStats {
    DISPATCH.with(Cell::get)
}

/// Apply `f` to the calling thread's dispatch counters.
pub(crate) fn bump_dispatch(f: impl FnOnce(&mut DispatchStats)) {
    DISPATCH.with(|c| {
        let mut d = c.get();
        f(&mut d);
        c.set(d);
    });
}

/// Interpret one `SPMAP_THREADS` value:
///
/// * a positive integer (surrounding whitespace tolerated) is honored,
/// * `0` and garbage (`banana`, `-3`, `1.5`, …) clamp to `Some(1)` — the
///   serial path; never a panic, never zero workers,
/// * an empty / whitespace-only value is `None` — treated as unset.
pub fn parse_threads(raw: &str) -> Option<usize> {
    let t = raw.trim();
    if t.is_empty() {
        return None;
    }
    Some(match t.parse::<usize>() {
        Ok(0) | Err(_) => 1,
        Ok(n) => n,
    })
}

/// An arena of per-worker states, built once and reused across many
/// [`par_map_with`] calls.  Worker `k` of a call always receives exclusive
/// `&mut` access to one slot; slots never migrate mid-call.
#[derive(Debug)]
pub struct WorkerStates<S> {
    states: Vec<S>,
}

impl<S> WorkerStates<S> {
    /// `count` states built by `init(slot_index)`.
    pub fn new(count: usize, init: impl FnMut(usize) -> S) -> Self {
        assert!(count > 0, "need at least one worker state");
        Self {
            states: (0..count).map(init).collect(),
        }
    }

    /// One state per configured thread ([`num_threads`]).
    pub fn per_thread(init: impl FnMut(usize) -> S) -> Self {
        Self::new(num_threads(), init)
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` if there are no slots (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The slot the serial fast path uses.
    pub fn first_mut(&mut self) -> &mut S {
        &mut self.states[0]
    }

    /// Iterate over all slots, e.g. to aggregate per-worker statistics.
    pub fn iter(&self) -> impl Iterator<Item = &S> {
        self.states.iter()
    }

    /// Mutably iterate over all slots.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut S> {
        self.states.iter_mut()
    }
}

/// Run the whole batch on the calling thread with state slot 0 — the
/// shared serial fast path of every backend.
pub(crate) fn serial_map<S, T, R, F>(states: &mut WorkerStates<S>, items: &[T], f: F) -> Vec<R>
where
    F: Fn(&mut S, usize, &T) -> R,
{
    let s = states.first_mut();
    items.iter().enumerate().map(|(i, t)| f(s, i, t)).collect()
}

/// Restore input order from per-participant `(index, result)` parts —
/// the shared order-restoring tail of every parallel backend.
pub(crate) fn merge_parts<R>(len: usize, parts: Vec<Vec<(usize, R)>>) -> Vec<R> {
    let mut out: Vec<Option<R>> = (0..len).map(|_| None).collect();
    for part in parts {
        for (i, r) in part {
            debug_assert!(out[i].is_none());
            out[i] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("every index claimed exactly once"))
        .collect()
}

/// Apply `f(state, index, item)` to every item with `threads` workers,
/// preserving input order in the result.  Worker count is further capped
/// by the item count and the number of state slots.  `threads <= 1` runs
/// entirely on the calling thread with `states` slot 0 and spawns
/// nothing.
///
/// Parallel batches are executed by the [`backend`] selected for this
/// thread: the persistent [`pool`] by default, per-call scoped spawns
/// under `SPMAP_POOL=0` ([`par_map_with_threads_scoped`]).  Results are
/// bit-identical either way.
pub fn par_map_with_threads<S, T, R, F>(
    threads: usize,
    states: &mut WorkerStates<S>,
    items: &[T],
    f: F,
) -> Vec<R>
where
    S: Send,
    T: Sync,
    R: Send,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let threads = threads.min(items.len().max(1)).min(states.len());
    if threads <= 1 || items.len() <= 1 {
        bump_dispatch(|d| d.serial_batches += 1);
        return serial_map(states, items, f);
    }
    match backend() {
        ParBackend::Pool => match pool_override() {
            Some(p) => p.par_map_with_threads(threads, states, items, f),
            None => pool::global().par_map_with_threads(threads, states, items, f),
        },
        ParBackend::Scoped => par_map_with_threads_scoped(threads, states, items, f),
    }
}

/// [`par_map_with_threads`] on per-call `std::thread::scope` spawns —
/// the original implementation, kept as the executable specification
/// the pool backend is verified against (`tests/equivalence.rs` pins
/// bit-identical results across {serial, scoped, pool} × thread
/// counts).  Scoped dispatch still wins for a handful of long batches
/// where spawn cost is noise and parked workers would only hold memory;
/// the search loops' many small batches belong on the pool.
pub fn par_map_with_threads_scoped<S, T, R, F>(
    threads: usize,
    states: &mut WorkerStates<S>,
    items: &[T],
    f: F,
) -> Vec<R>
where
    S: Send,
    T: Sync,
    R: Send,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let threads = threads.min(items.len().max(1)).min(states.len());
    if threads <= 1 || items.len() <= 1 {
        bump_dispatch(|d| d.serial_batches += 1);
        return serial_map(states, items, f);
    }
    bump_dispatch(|d| {
        d.scoped_batches += 1;
        d.scoped_spawns += (threads - 1) as u64;
    });
    let next = AtomicUsize::new(0);
    let worker = |s: &mut S| {
        let mut local: Vec<(usize, R)> = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= items.len() {
                break;
            }
            local.push((i, f(s, i, &items[i])));
        }
        local
    };
    let mut parts: Vec<Vec<(usize, R)>> = Vec::with_capacity(threads);
    let (mine, rest) = states.states.split_at_mut(1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = rest[..threads - 1]
            .iter_mut()
            .map(|s| scope.spawn(|| worker(s)))
            .collect();
        // The calling thread is worker 0 — one fewer spawn per call.
        parts.push(worker(&mut mine[0]));
        for h in handles {
            // Re-raise a worker's panic with its *original* payload —
            // the same observable behavior as the pool backend (which
            // captures the first payload and resumes it on the caller).
            match h.join() {
                Ok(part) => parts.push(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    merge_parts(items.len(), parts)
}

/// [`par_map_with_threads`] forced onto the persistent pool, regardless
/// of the thread's [`backend`] selection: the [`with_pool`] override if
/// one is active, otherwise the process-wide pool.
pub fn par_map_with_threads_pooled<S, T, R, F>(
    threads: usize,
    states: &mut WorkerStates<S>,
    items: &[T],
    f: F,
) -> Vec<R>
where
    S: Send,
    T: Sync,
    R: Send,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    match pool_override() {
        Some(p) => p.par_map_with_threads(threads, states, items, f),
        None => pool::global().par_map_with_threads(threads, states, items, f),
    }
}

/// [`par_map_with_threads`] with the environment-configured thread count.
pub fn par_map_with<S, T, R, F>(states: &mut WorkerStates<S>, items: &[T], f: F) -> Vec<R>
where
    S: Send,
    T: Sync,
    R: Send,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    par_map_with_threads(num_threads(), states, items, f)
}

/// Apply `f` to every item, in parallel, preserving input order in the
/// result.  `f` receives `(index, &item)`.  Stateless convenience wrapper
/// over [`par_map_with`].
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = num_threads();
    let mut states = WorkerStates::new(threads, |_| ());
    par_map_with_threads(threads, &mut states, items, |_, i, t| f(i, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |_, &x| x * 2);
        assert_eq!(out.len(), 1000);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, 2 * i as u64);
        }
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn index_argument_matches_position() {
        let items = vec!["a", "b", "c"];
        let out = par_map(&items, |i, &s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn unbalanced_work_completes() {
        // One expensive item must not serialize the rest.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |_, &x| {
            if x == 0 {
                // Busy-work instead of sleeping to keep the test fast.
                (0..200_000u64).fold(0, |a, b| a ^ b.wrapping_mul(x + 1))
            } else {
                x
            }
        });
        assert_eq!(out.len(), 64);
        assert_eq!(out[5], 5);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn parse_threads_accepts_positive_integers() {
        assert_eq!(parse_threads("1"), Some(1));
        assert_eq!(parse_threads("8"), Some(8));
        assert_eq!(parse_threads(" 4 "), Some(4), "whitespace tolerated");
        assert_eq!(parse_threads("128"), Some(128));
    }

    #[test]
    fn parse_threads_clamps_zero_and_garbage_to_serial() {
        // Regression: `SPMAP_THREADS=0` must not configure zero workers,
        // and garbage must not fall through to full machine parallelism
        // (the var is usually set precisely to *limit* parallelism).
        assert_eq!(parse_threads("0"), Some(1));
        assert_eq!(parse_threads("banana"), Some(1));
        assert_eq!(parse_threads("-3"), Some(1));
        assert_eq!(parse_threads("1.5"), Some(1));
        assert_eq!(parse_threads("8 threads"), Some(1));
        assert_eq!(
            parse_threads("99999999999999999999999999"),
            Some(1),
            "overflow is garbage"
        );
    }

    #[test]
    fn parse_threads_empty_is_unset() {
        assert_eq!(parse_threads(""), None);
        assert_eq!(parse_threads("   "), None);
    }

    #[test]
    fn with_state_preserves_order_and_reuses_slots() {
        // Each worker state accumulates how many items it processed;
        // across two calls the *same* arena keeps accumulating.
        let mut states = WorkerStates::new(4, |_| 0usize);
        let items: Vec<u32> = (0..100).collect();
        let out = par_map_with_threads(4, &mut states, &items, |s, i, &x| {
            *s += 1;
            (i as u32, x + 1)
        });
        for (i, &(idx, v)) in out.iter().enumerate() {
            assert_eq!(idx as usize, i);
            assert_eq!(v, i as u32 + 1);
        }
        let first_total: usize = states.iter().sum();
        assert_eq!(first_total, 100, "every item processed exactly once");
        par_map_with_threads(4, &mut states, &items, |s, _, _| *s += 1);
        let second_total: usize = states.iter().sum();
        assert_eq!(second_total, 200, "state survives across calls");
    }

    #[test]
    fn single_thread_is_serial_on_calling_thread() {
        // threads = 1 must run everything on the caller with slot 0 and
        // spawn no threads — observable through thread ids.
        let me = std::thread::current().id();
        let mut states = WorkerStates::new(3, |_| Vec::new());
        let items: Vec<u32> = (0..50).collect();
        par_map_with_threads(1, &mut states, &items, |s, _, _| {
            s.push(std::thread::current().id());
        });
        let (slot0, others) = {
            let mut it = states.iter();
            (
                it.next().unwrap().clone(),
                it.map(|v| v.len()).sum::<usize>(),
            )
        };
        assert_eq!(slot0.len(), 50, "all items on slot 0");
        assert!(slot0.iter().all(|&id| id == me), "no thread was spawned");
        assert_eq!(others, 0, "no other slot touched");
    }

    #[test]
    fn parallel_uses_multiple_threads_when_asked() {
        // With enough slow items, at least one item must land on a thread
        // other than the caller (the caller is itself one of the workers).
        let me = std::thread::current().id();
        let mut states = WorkerStates::new(4, |_| ());
        let items: Vec<u32> = (0..64).collect();
        let ids = par_map_with_threads(4, &mut states, &items, |_, _, _| {
            std::hint::black_box((0..100_000u64).fold(0u64, |a, b| a.wrapping_add(b)));
            std::thread::current().id()
        });
        assert!(ids.iter().any(|&id| id != me), "expected a spawned worker");
    }

    #[test]
    fn both_backends_propagate_the_original_panic_payload() {
        // A panicking item must surface its *own* payload to the caller
        // under either backend — not a synthesized join-failure string.
        // (Regression: the scoped path used `join().expect(..)`, which
        // destroyed the payload the pool backend preserves.)
        for b in [ParBackend::Scoped, ParBackend::Pool] {
            let items: Vec<u32> = (0..64).collect();
            let mut states = WorkerStates::new(4, |_| ());
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                with_backend(b, || {
                    par_map_with_threads(4, &mut states, &items, |_, _, &x| {
                        if x == 21 {
                            panic!("payload {x}");
                        }
                        x
                    })
                })
            }));
            let payload = caught.expect_err("panic must propagate");
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(
                msg.contains("payload 21"),
                "{b:?}: payload lost, got {msg:?}"
            );
        }
    }

    #[test]
    fn parse_pool_selects_backends() {
        assert_eq!(parse_pool("0"), Some(ParBackend::Scoped));
        assert_eq!(parse_pool("off"), Some(ParBackend::Scoped));
        assert_eq!(parse_pool("False"), Some(ParBackend::Scoped));
        assert_eq!(parse_pool("no"), Some(ParBackend::Scoped));
        assert_eq!(parse_pool("1"), Some(ParBackend::Pool));
        assert_eq!(parse_pool("on"), Some(ParBackend::Pool));
        assert_eq!(parse_pool("TRUE"), Some(ParBackend::Pool));
        assert_eq!(
            parse_pool(" pool "),
            Some(ParBackend::Pool),
            "whitespace tolerated"
        );
    }

    #[test]
    fn parse_pool_garbage_clamps_to_scoped_and_empty_is_unset() {
        // A configured-but-broken override means the operator reached
        // for the switch: the conservative executable-spec path wins,
        // mirroring SPMAP_THREADS' clamp-to-serial philosophy.
        assert_eq!(parse_pool("banana"), Some(ParBackend::Scoped));
        assert_eq!(parse_pool("2"), Some(ParBackend::Scoped));
        assert_eq!(parse_pool(""), None);
        assert_eq!(parse_pool("   "), None);
    }

    #[test]
    fn with_backend_overrides_and_restores() {
        let before = backend();
        with_backend(ParBackend::Scoped, || {
            assert_eq!(backend(), ParBackend::Scoped);
            with_backend(ParBackend::Pool, || {
                assert_eq!(backend(), ParBackend::Pool);
            });
            assert_eq!(backend(), ParBackend::Scoped, "inner override restored");
        });
        assert_eq!(backend(), before, "outer override restored");
    }

    #[test]
    fn with_backend_restores_on_panic() {
        let before = backend();
        let caught = std::panic::catch_unwind(|| {
            with_backend(ParBackend::Scoped, || panic!("interrupted"));
        });
        assert!(caught.is_err());
        assert_eq!(backend(), before, "override must not leak past a panic");
    }

    #[test]
    fn dispatch_stats_count_each_backend() {
        let items: Vec<u32> = (0..64).collect();
        let mut states = WorkerStates::new(3, |_| ());

        let base = dispatch_stats();
        par_map_with_threads(1, &mut states, &items, |_, _, &x| x);
        let serial = dispatch_stats().since(&base);
        assert_eq!(serial.serial_batches, 1);
        assert_eq!(serial.parallel_batches(), 0);

        let base = dispatch_stats();
        with_backend(ParBackend::Scoped, || {
            par_map_with_threads(3, &mut states, &items, |_, _, &x| x);
        });
        let scoped = dispatch_stats().since(&base);
        assert_eq!(scoped.scoped_batches, 1);
        assert_eq!(
            scoped.scoped_spawns, 2,
            "workers - 1 spawns per scoped batch"
        );
        assert_eq!(scoped.pool_batches, 0);

        let base = dispatch_stats();
        with_backend(ParBackend::Pool, || {
            par_map_with_threads(3, &mut states, &items, |_, _, &x| x);
            par_map_with_threads(3, &mut states, &items, |_, _, &x| x);
        });
        let pooled = dispatch_stats().since(&base);
        assert_eq!(pooled.pool_batches, 2);
        assert_eq!(
            pooled.pool_dispatches, 4,
            "workers - 1 wakes per pool batch"
        );
        assert_eq!(pooled.scoped_batches, 0);
        assert!(
            pooled.pool_workers_spawned <= 2,
            "pool threads are created at most once, then reused"
        );
    }

    #[test]
    fn parse_shards_accepts_positive_integers_and_caps() {
        assert_eq!(parse_shards("1"), Some(1));
        assert_eq!(parse_shards("8"), Some(8));
        assert_eq!(parse_shards(" 4 "), Some(4), "whitespace tolerated");
        assert_eq!(
            parse_shards("999"),
            Some(MAX_SHARDS),
            "large counts cap at MAX_SHARDS"
        );
    }

    #[test]
    fn parse_shards_clamps_zero_and_garbage_to_one() {
        // A broken override means the operator reached for the knob;
        // one shard (the serialized PR 4 pool) is the conservative
        // reading, mirroring parse_threads' clamp-to-serial.
        assert_eq!(parse_shards("0"), Some(1));
        assert_eq!(parse_shards("banana"), Some(1));
        assert_eq!(parse_shards("-2"), Some(1));
        assert_eq!(parse_shards("1.5"), Some(1));
        assert_eq!(parse_shards(""), None);
        assert_eq!(parse_shards("   "), None);
    }

    #[test]
    fn num_shards_is_positive_and_capped() {
        let n = num_shards();
        assert!(n >= 1 && n <= MAX_SHARDS);
    }

    #[test]
    fn with_pool_overrides_and_restores() {
        // Batches inside the override must run on the given pool (its
        // worker count grows), not the global one; outside, the
        // override must be gone — including after a panic.
        let pool = std::sync::Arc::new(Pool::with_shards(1));
        let items: Vec<u32> = (0..64).collect();
        let mut states = WorkerStates::new(3, |_| ());
        with_backend(ParBackend::Pool, || {
            with_pool(&pool, || {
                let out = par_map_with_threads(3, &mut states, &items, |_, _, &x| x + 1);
                assert_eq!(out[5], 6);
            });
        });
        assert_eq!(pool.worker_count(), 2, "batch ran on the override pool");
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_pool(&pool, || panic!("interrupted"));
        }));
        assert!(caught.is_err());
        assert!(
            POOL_OVERRIDE.with(|c| c.borrow().is_none()),
            "override must not leak past a panic"
        );
    }

    #[test]
    fn pool_dispatch_counts_shard_batches() {
        let pool = std::sync::Arc::new(Pool::with_shards(2));
        let items: Vec<u32> = (0..64).collect();
        let mut states = WorkerStates::new(3, |_| ());
        let base = dispatch_stats();
        with_backend(ParBackend::Pool, || {
            with_pool(&pool, || {
                par_map_with_threads(3, &mut states, &items, |_, _, &x| x);
                par_map_with_threads(3, &mut states, &items, |_, _, &x| x);
            });
        });
        let d = dispatch_stats().since(&base);
        assert_eq!(d.pool_batches, 2);
        assert_eq!(
            d.pool_shard_batches.iter().sum::<u64>(),
            2,
            "every pool batch lands in exactly one shard bucket"
        );
        assert_eq!(d.pool_shard_batches[0], 2, "a lone caller stays on shard 0");
        assert_eq!(d.pool_submission_waits, 0);
    }

    #[test]
    fn worker_count_capped_by_state_slots() {
        // 8 threads requested but only 2 slots: must still complete with
        // every item processed exactly once.
        let mut states = WorkerStates::new(2, |_| 0usize);
        let items: Vec<u32> = (0..40).collect();
        let out = par_map_with_threads(8, &mut states, &items, |s, _, &x| {
            *s += 1;
            x
        });
        assert_eq!(out, items);
        assert_eq!(states.iter().sum::<usize>(), 40);
    }
}

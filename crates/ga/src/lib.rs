//! # spmap-ga — single-objective NSGA-II task mapping
//!
//! The metaheuristic baseline of the paper's evaluation (§IV-A):
//! a single-objective variant of NSGA-II (Deb et al.; paper ref. 14)
//! with the paper's parameterization:
//!
//! * population of 100 individuals,
//! * single-point crossover with 90 % crossover rate on a genome ordered
//!   by a topological sort of the tasks,
//! * per-gene mutation rate `1/n`,
//! * a repair function restoring FPGA area feasibility after variation,
//! * 500 generations by default,
//! * fitness = the same model-based makespan evaluation the decomposition
//!   mappers use (the paper stresses this for fairness).
//!
//! In a single-objective setting NSGA-II's non-dominated sorting
//! degenerates to sorting by fitness, and crowding distance is
//! meaningless; survivor selection is therefore the (µ + λ) elitist
//! truncation of the combined parent/offspring population — which is
//! exactly what NSGA-II does when every front is a singleton chain.
//!
//! ## Two implementations, one result
//!
//! [`nsga2_map`] scores every generation through the incremental +
//! parallel population engine (`spmap_core::PopulationEval`): offspring
//! are described as deltas against their prefix parent (fingerprints
//! maintained in `O(k)` per child), fitness values memoize across
//! generations under the mapping-content memo, and the engine walks
//! each generation's offspring in a prefix-sharing genome-trie order
//! (`EvalOrder::PrefixTrie`) — siblings sharing a genome prefix replay
//! only their divergent schedule suffix off one rolling checkpoint
//! trail, falling back to the nearest cached base trail wherever that
//! windows deeper — and surviving simulations run in parallel over the
//! trie's subtrees.  None of that can change
//! a fitness bit — the simulator is a pure function of the mapping — so
//! the run is **bit-identical per seed** to [`nsga2_map_reference`],
//! the original strictly serial implementation kept as the executable
//! specification (one full simulation per fitness call).  The
//! equivalence suite (`tests/equivalence.rs`) proves it across seeds
//! and thread counts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spmap_core::{
    DeltaCandidate, DispatchStats, EvalOrder, Numbering, PopBase, PopulationConfig, PopulationEval,
    PopulationStats,
};
use spmap_graph::{ops, NodeId, TaskGraph};
use spmap_model::{DeviceId, Evaluator, Mapping, MappingFingerprint, Platform};

/// NSGA-II parameters (defaults = the paper's §IV-A values).
#[derive(Clone, Debug)]
pub struct GaConfig {
    /// Population size (paper: 100).
    pub population: usize,
    /// Number of generations (paper: 500 unless stated otherwise).
    pub generations: usize,
    /// Single-point crossover probability (paper: 0.9).
    pub crossover_rate: f64,
    /// Per-gene mutation probability; `None` = `1/n` (paper).
    pub mutation_rate: Option<f64>,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads of the engine-backed [`nsga2_map`]; `None` reads
    /// `SPMAP_THREADS` / machine parallelism.  Ignored by the serial
    /// reference path.
    pub threads: Option<usize>,
    /// Fitness-memo entry cap of the engine-backed path
    /// (generation-stamped LRU; `0` = unbounded).
    pub memo_capacity: usize,
    /// Trail-cache slot cap of the engine-backed path (`0` = the
    /// engine's memory-budget heuristic).  Eviction only ever costs
    /// re-simulation — it cannot change a result.
    pub trail_cache_capacity: usize,
    /// Evaluation-order policy of the engine-backed path: the
    /// prefix-sharing trie order (default) or the flat nearest-base
    /// order kept as the PR 3 executable spec.  Either way every
    /// fitness bit matches [`nsga2_map_reference`]; only the amount of
    /// schedule replayed per offspring differs.
    pub eval_order: EvalOrder,
    /// Node numbering of the engine's evaluation tables (layout only —
    /// results are bit-identical; see `spmap_core::Numbering`).
    pub numbering: Numbering,
    /// Pin the engine's checkpoint trails to the dense snapshot layout
    /// (ablation / bit-identity cells; suffix-sparse is the default
    /// under pop-order numbering and halves trail bytes).
    pub dense_checkpoints: bool,
    /// Per-trail checkpoint byte budget of the engine-backed path
    /// (`0` = the 32 MiB default).  Widens the snapshot interval —
    /// a memory/replay-length trade that never changes results.
    pub checkpoint_budget_bytes: usize,
}

impl Default for GaConfig {
    fn default() -> Self {
        Self {
            population: 100,
            generations: 500,
            crossover_rate: 0.9,
            mutation_rate: None,
            seed: 0,
            threads: None,
            memo_capacity: spmap_core::DEFAULT_MEMO_CAPACITY,
            trail_cache_capacity: 0,
            eval_order: EvalOrder::PrefixTrie,
            numbering: Numbering::default(),
            dense_checkpoints: false,
            checkpoint_budget_bytes: 0,
        }
    }
}

impl GaConfig {
    /// Paper defaults with a specific generation count and seed.
    pub fn with_generations(generations: usize, seed: u64) -> Self {
        Self {
            generations,
            seed,
            ..Self::default()
        }
    }
}

/// Result of a GA run.
#[derive(Clone, Debug)]
pub struct GaResult {
    /// Best mapping found.
    pub mapping: Mapping,
    /// Its makespan under the breadth-first schedule.
    pub makespan: f64,
    /// Makespan of the all-CPU default mapping.
    pub cpu_only_makespan: f64,
    /// Total number of model evaluations.  For the engine-backed path
    /// this counts actual simulations (full, windowed and trail runs);
    /// memo-answered fitness calls run none.
    pub evaluations: u64,
    /// Total schedule positions those evaluations stepped (each full
    /// simulation steps `n`; windowed replays step only their suffix
    /// after the restored snapshot) — the honest work measure of the
    /// windowing machinery.
    pub positions: u64,
    /// Best fitness after each generation (non-increasing).
    pub best_per_generation: Vec<f64>,
    /// Population-engine decision counters (zero for the serial
    /// reference path).  Thread-count-invariant — pinned by the
    /// equivalence suite.
    pub engine: PopulationStats,
    /// How the engine's parallel batches were dispatched (serial fast
    /// path / scoped spawns / persistent-pool wakes; zero for the
    /// serial reference path).  Varies with the thread count and the
    /// `SPMAP_POOL` backend by design — the GA dispatches roughly one
    /// small batch per generation, so these counters are exactly the
    /// spawn overhead the persistent pool exists to amortize.
    pub dispatch: DispatchStats,
    /// Largest single checkpoint trail the engine held (bytes; zero for
    /// the serial reference path).  The number
    /// `GaConfig::checkpoint_budget_bytes` gates.
    pub checkpoint_peak_bytes: u64,
}

impl GaResult {
    /// Relative improvement over the pure-CPU mapping, truncated at zero.
    pub fn relative_improvement(&self) -> f64 {
        spmap_model::relative_improvement(self.cpu_only_makespan, self.makespan)
    }
}

/// Write `genome` into `mapping` (position `i` = task `topo[i]`); every
/// task is assigned, so any previous content is fully overwritten — the
/// buffer is reusable across decodes (no per-fitness-call allocation).
fn decode_into(mapping: &mut Mapping, genome: &[u8], topo: &[NodeId]) {
    for (i, &gene) in genome.iter().enumerate() {
        mapping.set(topo[i], DeviceId(gene as u32));
    }
}

/// Repair: evict tasks from over-full FPGAs, largest area first, until
/// the budget holds.  Deterministic, so equal seeds give equal runs.
fn repair(
    graph: &TaskGraph,
    platform: &Platform,
    topo: &[NodeId],
    default_gene: u8,
    genome: &mut [u8],
) {
    for d in platform.device_ids() {
        if !platform.is_fpga(d) {
            continue;
        }
        let cap = platform.device(d).area_capacity();
        let mut used: f64 = genome
            .iter()
            .enumerate()
            .filter(|&(_, &gene)| gene as u32 == d.0)
            .map(|(i, _)| graph.task(topo[i]).area)
            .sum();
        while used > cap + 1e-9 {
            let (worst, area) = genome
                .iter()
                .enumerate()
                .filter(|&(_, &gene)| gene as u32 == d.0)
                .map(|(i, _)| (i, graph.task(topo[i]).area))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("over-full device has at least one task");
            genome[worst] = default_gene;
            used -= area;
        }
    }
}

/// How many of the fittest population members (beyond the two parents)
/// the window-base search considers per child.
const WINDOW_BASE_POOL: usize = 20;

/// Probe budget of the capped shortlisting walk (the winner gets one
/// uncapped walk for its exact window start).
const WINDOW_WALK_CAP: usize = 96;

/// A sound window start for `genome` against `base`: a breadth-first
/// pop position such that the two mappings agree on every task read
/// before it.  Walks positions in ascending earliest-read order, so
/// the first difference yields the *exact* (latest sound) start;
/// hitting the probe `cap` without a difference yields a conservative
/// lower bound instead (all diffs lie at later-read positions).
fn window_start(
    genome: &[u8],
    base: &[u8],
    scan_order: &[u32],
    earliest_read: &[usize],
    cap: usize,
) -> usize {
    let lim = cap.min(scan_order.len());
    for &i in &scan_order[..lim] {
        let i = i as usize;
        if genome[i] != base[i] {
            return earliest_read[i];
        }
    }
    if lim < scan_order.len() {
        earliest_read[scan_order[lim] as usize]
    } else {
        genome.len()
    }
}

/// Binary tournament over a fitness slice: two uniform picks, the
/// better (lower) fitness wins, ties to the first pick.
fn tournament(fitness: &[f64], rng: &mut StdRng) -> usize {
    let a = rng.gen_range(0..fitness.len());
    let b = rng.gen_range(0..fitness.len());
    if fitness[a] <= fitness[b] {
        a
    } else {
        b
    }
}

/// One individual of the engine-backed population: genome, fitness, and
/// the decoded mapping with its content fingerprint (maintained
/// incrementally, so offspring cost `O(k)` fingerprint work).
struct EngineIndividual {
    genome: Vec<u8>,
    fitness: f64,
    mapping: Mapping,
    fp: MappingFingerprint,
}

/// Run an [`Algo::Ga`](spmap_core::Algo::Ga) [`MapRequest`] through the
/// engine-backed NSGA-II mapper — the GA half of the unified request
/// surface (`spmap_core::map_request` handles the decomposition
/// families and refuses this one, pointing here).
///
/// The request's [`GaParams`](spmap_core::GaParams) name the algorithm;
/// engine-side knobs (threads, numbering, checkpoint layout/budget)
/// come from `limits.engine`, and the remaining `GaConfig` fields keep
/// their defaults.  Bit-identical to [`nsga2_map`] with the equivalent
/// `GaConfig`.
///
/// `limits.devices` restrictions are not supported by the genome
/// encoding (it spans every platform device) and are refused with
/// [`MapperError::UnsupportedAlgo`](spmap_core::MapperError).
pub fn nsga2_map_request(
    req: &spmap_core::MapRequest,
) -> Result<GaResult, spmap_core::MapperError> {
    let spmap_core::Algo::Ga(p) = req.algo else {
        return Err(spmap_core::MapperError::UnsupportedAlgo {
            algo: "decomposition (route through spmap_core::map_request)",
        });
    };
    if req.limits.devices.is_some() {
        return Err(spmap_core::MapperError::UnsupportedAlgo {
            algo: "nsga2 with a device restriction",
        });
    }
    let cfg = GaConfig {
        population: p.population,
        generations: p.generations,
        crossover_rate: p.crossover_rate,
        mutation_rate: p.mutation_rate,
        seed: p.seed,
        threads: req.limits.engine.threads,
        numbering: req.limits.engine.numbering,
        dense_checkpoints: req.limits.engine.dense_checkpoints,
        checkpoint_budget_bytes: req.limits.engine.checkpoint_budget_bytes,
        ..GaConfig::default()
    };
    Ok(nsga2_map(&req.graph, &req.platform, &cfg))
}

/// Run the single-objective NSGA-II mapper through the population
/// evaluation engine.
///
/// Bit-identical per seed to [`nsga2_map_reference`] in mapping,
/// makespan, baseline and per-generation history (the engine only
/// changes *how much work* each fitness value costs, never its bits);
/// `evaluations` counts actual simulations and is therefore lower.
pub fn nsga2_map(graph: &TaskGraph, platform: &Platform, cfg: &GaConfig) -> GaResult {
    assert!(cfg.population >= 2, "population must be >= 2");
    assert!(
        platform.device_count() <= u8::MAX as usize,
        "genome encodes devices as u8"
    );
    let n = graph.node_count();
    let m = platform.device_count() as u8;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut engine = PopulationEval::new(
        graph,
        platform,
        PopulationConfig {
            threads: cfg.threads,
            memo_capacity: cfg.memo_capacity,
            trail_cache_capacity: cfg.trail_cache_capacity,
            order: cfg.eval_order,
            numbering: cfg.numbering,
            dense_checkpoints: cfg.dense_checkpoints,
            checkpoint_budget_bytes: cfg.checkpoint_budget_bytes,
        },
    );
    let mutation_rate = cfg.mutation_rate.unwrap_or(1.0 / n.max(1) as f64);
    let topo: Vec<NodeId> = ops::topo_order(graph).expect("task graphs are DAGs");
    let default_gene = platform.default_device().0 as u8;

    // Initial population: the pure-CPU individual plus random genomes
    // (identical RNG consumption to the reference — fitness evaluation
    // never draws from the stream, so batching it is invisible).
    let mut genomes: Vec<Vec<u8>> = Vec::with_capacity(cfg.population);
    genomes.push(vec![default_gene; n]);
    while genomes.len() < cfg.population {
        let mut genome: Vec<u8> = (0..n).map(|_| rng.gen_range(0..m)).collect();
        repair(graph, platform, &topo, default_gene, &mut genome);
        genomes.push(genome);
    }
    let mut pop: Vec<EngineIndividual> = genomes
        .into_iter()
        .map(|genome| {
            let mut mapping = Mapping::uniform(n, platform.default_device());
            decode_into(&mut mapping, &genome, &topo);
            let fp = MappingFingerprint::of(&mapping);
            EngineIndividual {
                genome,
                fitness: f64::NAN,
                mapping,
                fp,
            }
        })
        .collect();
    {
        let cands: Vec<DeltaCandidate<'_>> = pop
            .iter()
            .map(|ind| DeltaCandidate {
                mapping: &ind.mapping,
                fingerprint: ind.fp.value(),
                base: None,
                window_start: 0,
            })
            .collect();
        let fits = engine.evaluate(&[], &cands);
        drop(cands);
        for (ind, f) in pop.iter_mut().zip(fits) {
            ind.fitness = f.expect("repaired genomes are area-feasible");
        }
    }
    // Earliest-read position per *genome position* (gene `i` is task
    // `topo[i]`), plus genome positions sorted by ascending earliest
    // read: walking two genomes in that order, the first differing
    // position *is* their shared window start — so the nearest-base
    // search pays only one short walk per dissimilar base.
    let earliest_read: Vec<usize> = topo
        .iter()
        .map(|&v| engine.tables().earliest_read_pos(v))
        .collect();
    let mut scan_order: Vec<u32> = (0..n as u32).collect();
    scan_order.sort_by_key(|&i| (earliest_read[i as usize], i));
    let cpu_only_makespan = pop[0].fitness;
    pop.sort_by(|a, b| a.fitness.total_cmp(&b.fitness));

    // Recycled buffers: mappings of truncated individuals become the
    // next generation's offspring buffers — zero steady-state
    // allocation of mapping storage.
    let mut spare: Vec<Mapping> = Vec::new();
    let mut fitness_view: Vec<f64> = Vec::with_capacity(cfg.population);
    let mut best_per_generation = Vec::with_capacity(cfg.generations);
    for _ in 0..cfg.generations {
        // Variation: binary tournaments, single-point crossover,
        // mutation — the exact RNG stream of the reference loop.
        fitness_view.clear();
        fitness_view.extend(pop.iter().map(|i| i.fitness));
        let mut staged: Vec<(Vec<u8>, usize, usize)> = Vec::with_capacity(cfg.population);
        while staged.len() < cfg.population {
            let pa = tournament(&fitness_view, &mut rng);
            let pb = tournament(&fitness_view, &mut rng);
            let (mut ca, mut cb) = if n >= 2 && rng.gen_bool(cfg.crossover_rate) {
                let cut = rng.gen_range(1..n);
                let mut ca = pop[pa].genome.clone();
                let mut cb = pop[pb].genome.clone();
                for i in cut..n {
                    std::mem::swap(&mut ca[i], &mut cb[i]);
                }
                (ca, cb)
            } else {
                (pop[pa].genome.clone(), pop[pb].genome.clone())
            };
            for child in [&mut ca, &mut cb] {
                for gene in child.iter_mut() {
                    if rng.gen_bool(mutation_rate) {
                        *gene = rng.gen_range(0..m);
                    }
                }
                repair(graph, platform, &topo, default_gene, child);
            }
            for (genome, prefix_parent, suffix_parent) in [(ca, pa, pb), (cb, pb, pa)] {
                if staged.len() < cfg.population {
                    staged.push((genome, prefix_parent, suffix_parent));
                }
            }
        }
        // Decode offspring as parent-relative deltas: mapping copy +
        // O(k) fingerprint toggles from the prefix parent, plus the
        // best window base among {prefix parent, suffix parent, the
        // incumbent pop[0]} — the one whose diff is first read latest
        // in the breadth-first schedule.  The choice only affects how
        // much of the schedule is replayed, never a fitness bit.
        let mut off: Vec<EngineIndividual> = Vec::with_capacity(staged.len());
        let mut off_base: Vec<usize> = Vec::with_capacity(staged.len());
        let mut off_pos: Vec<usize> = Vec::with_capacity(staged.len());
        for (genome, prefix_parent, suffix_parent) in staged {
            let parent = &pop[prefix_parent];
            let mut mapping = match spare.pop() {
                Some(mut buf) => {
                    buf.copy_from(&parent.mapping);
                    buf
                }
                None => parent.mapping.clone(),
            };
            let mut fp = parent.fp;
            for i in 0..n {
                if genome[i] != parent.genome[i] {
                    let v = topo[i];
                    fp.toggle(
                        v,
                        DeviceId(parent.genome[i] as u32),
                        DeviceId(genome[i] as u32),
                    );
                    mapping.set(v, DeviceId(genome[i] as u32));
                }
            }
            // Window base: the nearest neighbor (latest first-read
            // difference) among both parents and the fittest survivors
            // — converged populations cluster around the elite, so an
            // elite trail windows most children late.  Capped walks
            // shortlist; only the winner pays an uncapped walk for its
            // exact window start.
            let mut short: [(usize, usize); 2] = [(0, prefix_parent), (0, suffix_parent)];
            for b in (0..pop.len().min(WINDOW_BASE_POOL)).chain([prefix_parent, suffix_parent]) {
                let pos = window_start(
                    &genome,
                    &pop[b].genome,
                    &scan_order,
                    &earliest_read,
                    WINDOW_WALK_CAP,
                );
                if pos > short[0].0 {
                    short[1] = short[0];
                    short[0] = (pos, b);
                } else if pos > short[1].0 && b != short[0].1 {
                    short[1] = (pos, b);
                }
            }
            let mut base = short[0].1;
            let mut exact_pos = window_start(
                &genome,
                &pop[base].genome,
                &scan_order,
                &earliest_read,
                usize::MAX,
            );
            if short[1].1 != base {
                let second = window_start(
                    &genome,
                    &pop[short[1].1].genome,
                    &scan_order,
                    &earliest_read,
                    usize::MAX,
                );
                if second > exact_pos {
                    base = short[1].1;
                    exact_pos = second;
                }
            }
            off.push(EngineIndividual {
                genome,
                fitness: f64::NAN,
                mapping,
                fp,
            });
            off_base.push(base);
            off_pos.push(exact_pos);
        }
        {
            let bases: Vec<PopBase<'_>> = pop
                .iter()
                .map(|i| PopBase {
                    mapping: &i.mapping,
                    fingerprint: i.fp.value(),
                })
                .collect();
            let cands: Vec<DeltaCandidate<'_>> = off
                .iter()
                .zip(&off_base)
                .zip(&off_pos)
                .map(|((ind, &b), &pos)| DeltaCandidate {
                    mapping: &ind.mapping,
                    fingerprint: ind.fp.value(),
                    base: Some(b),
                    window_start: pos,
                })
                .collect();
            let fits = engine.evaluate(&bases, &cands);
            drop(cands);
            for (ind, f) in off.iter_mut().zip(fits) {
                ind.fitness = f.expect("repaired genomes are area-feasible");
            }
        }
        // (µ + λ) elitist truncation — single-objective NSGA-II survivor
        // selection (stable sort: identical key sequence => identical
        // permutation as the reference).
        pop.append(&mut off);
        pop.sort_by(|a, b| a.fitness.total_cmp(&b.fitness));
        spare.extend(pop.drain(cfg.population..).map(|i| i.mapping));
        best_per_generation.push(pop[0].fitness);
    }

    let best = &pop[0];
    GaResult {
        mapping: best.mapping.clone(),
        makespan: best.fitness,
        cpu_only_makespan,
        evaluations: engine.evaluations(),
        positions: engine.positions(),
        best_per_generation,
        engine: engine.stats(),
        dispatch: engine.dispatch(),
        checkpoint_peak_bytes: engine.checkpoint_peak_bytes(),
    }
}

struct Individual {
    genome: Vec<u8>,
    fitness: f64,
}

/// Run the single-objective NSGA-II mapper through the original strictly
/// serial loop — one full model simulation per fitness call, no
/// memoization, no windows, no threads.
///
/// This is the executable specification [`nsga2_map`] is verified
/// against (`tests/equivalence.rs`: identical mapping, makespan and
/// per-generation history for every seed), and the baseline
/// `perf_report --quick`'s `ga` rows measure speedups from.
pub fn nsga2_map_reference(graph: &TaskGraph, platform: &Platform, cfg: &GaConfig) -> GaResult {
    assert!(cfg.population >= 2, "population must be >= 2");
    assert!(
        platform.device_count() <= u8::MAX as usize,
        "genome encodes devices as u8"
    );
    let n = graph.node_count();
    let m = platform.device_count() as u8;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut evaluator = Evaluator::new(graph, platform);
    let mutation_rate = cfg.mutation_rate.unwrap_or(1.0 / n.max(1) as f64);

    // Genome position i corresponds to task topo[i]: crossover points cut
    // the genome into a topological prefix and suffix, giving crossover a
    // locality meaning on the DAG (paper: "topologically sorted genome").
    let topo: Vec<NodeId> = ops::topo_order(graph).expect("task graphs are DAGs");
    let default_gene = platform.default_device().0 as u8;

    // One reusable decode buffer for every fitness call of the run (the
    // hot loop used to allocate a fresh mapping per call).
    let mut scratch = Mapping::uniform(n, platform.default_device());
    let fitness_of = |genome: &[u8], ev: &mut Evaluator<'_>, scratch: &mut Mapping| -> f64 {
        decode_into(scratch, genome, &topo);
        ev.makespan_bfs(scratch)
            .expect("repaired genomes are area-feasible")
    };

    // Initial population: the pure-CPU individual plus random genomes.
    let mut pop: Vec<Individual> = Vec::with_capacity(cfg.population);
    {
        let genome = vec![default_gene; n];
        let fitness = fitness_of(&genome, &mut evaluator, &mut scratch);
        pop.push(Individual { genome, fitness });
    }
    let cpu_only_makespan = pop[0].fitness;
    while pop.len() < cfg.population {
        let mut genome: Vec<u8> = (0..n).map(|_| rng.gen_range(0..m)).collect();
        repair(graph, platform, &topo, default_gene, &mut genome);
        let fitness = fitness_of(&genome, &mut evaluator, &mut scratch);
        pop.push(Individual { genome, fitness });
    }
    pop.sort_by(|a, b| a.fitness.total_cmp(&b.fitness));

    let mut best_per_generation = Vec::with_capacity(cfg.generations);
    for _ in 0..cfg.generations {
        // Variation: binary tournaments, single-point crossover, mutation.
        let mut offspring: Vec<Individual> = Vec::with_capacity(cfg.population);
        while offspring.len() < cfg.population {
            let pa = tournament_ref(&pop, &mut rng);
            let pb = tournament_ref(&pop, &mut rng);
            let (mut ca, mut cb) = if n >= 2 && rng.gen_bool(cfg.crossover_rate) {
                let cut = rng.gen_range(1..n);
                let mut ca = pop[pa].genome.clone();
                let mut cb = pop[pb].genome.clone();
                for i in cut..n {
                    std::mem::swap(&mut ca[i], &mut cb[i]);
                }
                (ca, cb)
            } else {
                (pop[pa].genome.clone(), pop[pb].genome.clone())
            };
            for child in [&mut ca, &mut cb] {
                for gene in child.iter_mut() {
                    if rng.gen_bool(mutation_rate) {
                        *gene = rng.gen_range(0..m);
                    }
                }
                repair(graph, platform, &topo, default_gene, child);
            }
            for genome in [ca, cb] {
                if offspring.len() < cfg.population {
                    let fitness = fitness_of(&genome, &mut evaluator, &mut scratch);
                    offspring.push(Individual { genome, fitness });
                }
            }
        }
        // (µ + λ) elitist truncation — single-objective NSGA-II survivor
        // selection.
        pop.append(&mut offspring);
        pop.sort_by(|a, b| a.fitness.total_cmp(&b.fitness));
        pop.truncate(cfg.population);
        best_per_generation.push(pop[0].fitness);
    }

    let best = &pop[0];
    let mut mapping = Mapping::uniform(n, platform.default_device());
    decode_into(&mut mapping, &best.genome, &topo);
    GaResult {
        mapping,
        makespan: best.fitness,
        cpu_only_makespan,
        evaluations: evaluator.stats().evaluations,
        positions: evaluator.stats().positions,
        best_per_generation,
        engine: PopulationStats::default(),
        dispatch: DispatchStats::default(),
        checkpoint_peak_bytes: 0,
    }
}

fn tournament_ref(pop: &[Individual], rng: &mut StdRng) -> usize {
    let a = rng.gen_range(0..pop.len());
    let b = rng.gen_range(0..pop.len());
    if pop[a].fitness <= pop[b].fitness {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmap_graph::gen::{chain, random_sp_graph, SpGenConfig};
    use spmap_graph::{augment, AugmentConfig, Task};

    fn small_cfg(seed: u64) -> GaConfig {
        GaConfig {
            population: 24,
            generations: 30,
            seed,
            ..GaConfig::default()
        }
    }

    #[test]
    fn never_worse_than_cpu_only() {
        let p = Platform::reference();
        for seed in 0..4 {
            let mut g = random_sp_graph(&SpGenConfig::new(25, seed));
            augment(&mut g, &AugmentConfig::default(), seed);
            let r = nsga2_map(&g, &p, &small_cfg(seed));
            assert!(r.makespan <= r.cpu_only_makespan * (1.0 + 1e-9));
            assert!(r.mapping.is_area_feasible(&g, &p));
        }
    }

    #[test]
    fn finds_improvements_on_augmented_graphs() {
        let p = Platform::reference();
        let mut g = random_sp_graph(&SpGenConfig::new(30, 11));
        augment(&mut g, &AugmentConfig::default(), 11);
        let r = nsga2_map(&g, &p, &small_cfg(1));
        assert!(
            r.relative_improvement() > 0.02,
            "GA should find some improvement, got {}",
            r.relative_improvement()
        );
    }

    #[test]
    fn best_fitness_is_monotone() {
        let p = Platform::reference();
        let mut g = random_sp_graph(&SpGenConfig::new(20, 5));
        augment(&mut g, &AugmentConfig::default(), 5);
        let r = nsga2_map(&g, &p, &small_cfg(2));
        let mut prev = f64::INFINITY;
        for &b in &r.best_per_generation {
            assert!(b <= prev + 1e-12, "elitism violated");
            prev = b;
        }
        assert_eq!(r.best_per_generation.len(), 30);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = Platform::reference();
        let mut g = random_sp_graph(&SpGenConfig::new(20, 8));
        augment(&mut g, &AugmentConfig::default(), 8);
        let a = nsga2_map(&g, &p, &small_cfg(7));
        let b = nsga2_map(&g, &p, &small_cfg(7));
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.makespan, b.makespan);
        let c = nsga2_map(&g, &p, &small_cfg(8));
        // Different seeds explore differently (makespans may coincide, but
        // almost never across the full generation history).
        assert!(a.best_per_generation != c.best_per_generation || a.mapping == c.mapping);
    }

    #[test]
    fn engine_ga_matches_reference_bitwise() {
        // The headline guarantee in miniature (the full matrix lives in
        // tests/equivalence.rs): the engine-backed GA reproduces the
        // serial reference per seed, bit for bit.
        let p = Platform::reference();
        let mut g = random_sp_graph(&SpGenConfig::new(26, 13));
        augment(&mut g, &AugmentConfig::default(), 13);
        for seed in [0u64, 9] {
            let cfg = small_cfg(seed);
            let fast = nsga2_map(&g, &p, &cfg);
            let slow = nsga2_map_reference(&g, &p, &cfg);
            assert_eq!(fast.mapping, slow.mapping, "seed {seed}");
            assert_eq!(fast.makespan, slow.makespan, "seed {seed}");
            assert_eq!(
                fast.best_per_generation, slow.best_per_generation,
                "seed {seed}"
            );
            assert_eq!(
                fast.cpu_only_makespan, slow.cpu_only_makespan,
                "seed {seed}"
            );
            assert!(
                fast.engine.memo_hits > 0,
                "a converging GA must produce memo hits: {:?}",
                fast.engine
            );
        }
    }

    #[test]
    fn repair_handles_oversized_tasks() {
        // All tasks love the FPGA but only a few fit: repaired genomes
        // must stay feasible throughout.
        let mut g = chain(10, 1e6);
        for v in 0..10 {
            *g.task_mut(NodeId(v)) = Task {
                name: format!("t{v}"),
                complexity: 20.0,
                data_points: 1.25e8,
                parallelizability: 0.0,
                streamability: 16.0,
                area: 1000.0, // only 2 of 10 fit in 2400
                ..Task::default()
            };
        }
        let p = Platform::reference();
        let r = nsga2_map(&g, &p, &small_cfg(3));
        assert!(r.mapping.is_area_feasible(&g, &p));
        assert!(r.mapping.count_on(DeviceId(2)) <= 2);
    }

    #[test]
    fn evaluation_budget_matches_generations() {
        let p = Platform::reference();
        let mut g = random_sp_graph(&SpGenConfig::new(15, 2));
        augment(&mut g, &AugmentConfig::default(), 2);
        let cfg = small_cfg(4);
        // The reference pays exactly one simulation per fitness call:
        // initial population + offspring per generation.
        let r = nsga2_map_reference(&g, &p, &cfg);
        let expect = (cfg.population * (cfg.generations + 1)) as u64;
        assert_eq!(r.evaluations, expect);
        // The engine never pays more (memoization can only subtract
        // simulations; trail recordings are gated to pay for themselves).
        let e = nsga2_map(&g, &p, &cfg);
        assert!(
            e.evaluations <= expect,
            "engine ran more simulations than the reference: {} > {expect}",
            e.evaluations
        );
        assert_eq!(e.makespan, r.makespan);
    }

    #[test]
    fn request_entry_matches_direct_ga_and_refuses_decomposition() {
        use std::sync::Arc;

        use spmap_core::{Algo, GaParams, MapRequest, MapperError};

        let p = Platform::reference();
        let mut g = random_sp_graph(&SpGenConfig::new(22, 6));
        augment(&mut g, &AugmentConfig::default(), 6);
        let cfg = small_cfg(6);
        let direct = nsga2_map(&g, &p, &cfg);
        let req = MapRequest::new(Arc::new(g.clone()), Arc::new(p.clone())).with_algo(Algo::Ga(
            GaParams {
                population: cfg.population,
                generations: cfg.generations,
                crossover_rate: cfg.crossover_rate,
                mutation_rate: cfg.mutation_rate,
                seed: cfg.seed,
            },
        ));
        let via = nsga2_map_request(&req).expect("GA requests route here");
        assert_eq!(via.mapping, direct.mapping);
        assert_eq!(via.makespan, direct.makespan);
        assert_eq!(via.best_per_generation, direct.best_per_generation);

        let decomp = MapRequest::new(Arc::new(g.clone()), Arc::new(p.clone()));
        assert!(matches!(
            nsga2_map_request(&decomp),
            Err(MapperError::UnsupportedAlgo { .. })
        ));

        let mut restricted = req.clone();
        restricted.limits.devices = Some(vec![p.default_device()]);
        assert!(matches!(
            nsga2_map_request(&restricted),
            Err(MapperError::UnsupportedAlgo { .. })
        ));
    }

    #[test]
    fn more_generations_never_hurt() {
        let p = Platform::reference();
        let mut g = random_sp_graph(&SpGenConfig::new(25, 9));
        augment(&mut g, &AugmentConfig::default(), 9);
        let short = nsga2_map(
            &g,
            &p,
            &GaConfig {
                population: 24,
                generations: 5,
                seed: 5,
                ..GaConfig::default()
            },
        );
        let long = nsga2_map(
            &g,
            &p,
            &GaConfig {
                population: 24,
                generations: 60,
                seed: 5,
                ..GaConfig::default()
            },
        );
        assert!(long.makespan <= short.makespan + 1e-12);
    }
}

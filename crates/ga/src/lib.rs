//! # spmap-ga — single-objective NSGA-II task mapping
//!
//! The metaheuristic baseline of the paper's evaluation (§IV-A):
//! a single-objective variant of NSGA-II (Deb et al.; paper ref. 14)
//! with the paper's parameterization:
//!
//! * population of 100 individuals,
//! * single-point crossover with 90 % crossover rate on a genome ordered
//!   by a topological sort of the tasks,
//! * per-gene mutation rate `1/n`,
//! * a repair function restoring FPGA area feasibility after variation,
//! * 500 generations by default,
//! * fitness = the same model-based makespan evaluation the decomposition
//!   mappers use (the paper stresses this for fairness).
//!
//! In a single-objective setting NSGA-II's non-dominated sorting
//! degenerates to sorting by fitness, and crowding distance is
//! meaningless; survivor selection is therefore the (µ + λ) elitist
//! truncation of the combined parent/offspring population — which is
//! exactly what NSGA-II does when every front is a singleton chain.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spmap_graph::{ops, NodeId, TaskGraph};
use spmap_model::{DeviceId, Evaluator, Mapping, Platform};

/// NSGA-II parameters (defaults = the paper's §IV-A values).
#[derive(Clone, Debug)]
pub struct GaConfig {
    /// Population size (paper: 100).
    pub population: usize,
    /// Number of generations (paper: 500 unless stated otherwise).
    pub generations: usize,
    /// Single-point crossover probability (paper: 0.9).
    pub crossover_rate: f64,
    /// Per-gene mutation probability; `None` = `1/n` (paper).
    pub mutation_rate: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        Self {
            population: 100,
            generations: 500,
            crossover_rate: 0.9,
            mutation_rate: None,
            seed: 0,
        }
    }
}

impl GaConfig {
    /// Paper defaults with a specific generation count and seed.
    pub fn with_generations(generations: usize, seed: u64) -> Self {
        Self {
            generations,
            seed,
            ..Self::default()
        }
    }
}

/// Result of a GA run.
#[derive(Clone, Debug)]
pub struct GaResult {
    /// Best mapping found.
    pub mapping: Mapping,
    /// Its makespan under the breadth-first schedule.
    pub makespan: f64,
    /// Makespan of the all-CPU default mapping.
    pub cpu_only_makespan: f64,
    /// Total number of model evaluations.
    pub evaluations: u64,
    /// Best fitness after each generation (non-increasing).
    pub best_per_generation: Vec<f64>,
}

impl GaResult {
    /// Relative improvement over the pure-CPU mapping, truncated at zero.
    pub fn relative_improvement(&self) -> f64 {
        spmap_model::relative_improvement(self.cpu_only_makespan, self.makespan)
    }
}

struct Individual {
    genome: Vec<u8>,
    fitness: f64,
}

/// Run the single-objective NSGA-II mapper.
pub fn nsga2_map(graph: &TaskGraph, platform: &Platform, cfg: &GaConfig) -> GaResult {
    assert!(cfg.population >= 2, "population must be >= 2");
    assert!(
        platform.device_count() <= u8::MAX as usize,
        "genome encodes devices as u8"
    );
    let n = graph.node_count();
    let m = platform.device_count() as u8;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut evaluator = Evaluator::new(graph, platform);
    let mutation_rate = cfg.mutation_rate.unwrap_or(1.0 / n.max(1) as f64);

    // Genome position i corresponds to task topo[i]: crossover points cut
    // the genome into a topological prefix and suffix, giving crossover a
    // locality meaning on the DAG (paper: "topologically sorted genome").
    let topo: Vec<NodeId> = ops::topo_order(graph).expect("task graphs are DAGs");
    let default_gene = platform.default_device().0 as u8;

    let decode = |genome: &[u8]| -> Mapping {
        let mut mapping = Mapping::uniform(n, platform.default_device());
        for (i, &gene) in genome.iter().enumerate() {
            mapping.set(topo[i], DeviceId(gene as u32));
        }
        mapping
    };

    // Repair: evict tasks from over-full FPGAs, largest area first, until
    // the budget holds.  Deterministic, so equal seeds give equal runs.
    let repair = |genome: &mut [u8]| {
        for d in platform.device_ids() {
            if !platform.is_fpga(d) {
                continue;
            }
            let cap = platform.device(d).area_capacity();
            let mut used: f64 = genome
                .iter()
                .enumerate()
                .filter(|&(_, &gene)| gene as u32 == d.0)
                .map(|(i, _)| graph.task(topo[i]).area)
                .sum();
            while used > cap + 1e-9 {
                let (worst, area) = genome
                    .iter()
                    .enumerate()
                    .filter(|&(_, &gene)| gene as u32 == d.0)
                    .map(|(i, _)| (i, graph.task(topo[i]).area))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("over-full device has at least one task");
                genome[worst] = default_gene;
                used -= area;
            }
        }
    };

    let fitness_of = |genome: &[u8], ev: &mut Evaluator<'_>| -> f64 {
        ev.makespan_bfs(&decode(genome))
            .expect("repaired genomes are area-feasible")
    };

    // Initial population: the pure-CPU individual plus random genomes.
    let mut pop: Vec<Individual> = Vec::with_capacity(cfg.population);
    {
        let genome = vec![default_gene; n];
        let fitness = fitness_of(&genome, &mut evaluator);
        pop.push(Individual { genome, fitness });
    }
    let cpu_only_makespan = pop[0].fitness;
    while pop.len() < cfg.population {
        let mut genome: Vec<u8> = (0..n).map(|_| rng.gen_range(0..m)).collect();
        repair(&mut genome);
        let fitness = fitness_of(&genome, &mut evaluator);
        pop.push(Individual { genome, fitness });
    }
    pop.sort_by(|a, b| a.fitness.total_cmp(&b.fitness));

    let mut best_per_generation = Vec::with_capacity(cfg.generations);
    for _ in 0..cfg.generations {
        // Variation: binary tournaments, single-point crossover, mutation.
        let mut offspring: Vec<Individual> = Vec::with_capacity(cfg.population);
        while offspring.len() < cfg.population {
            let pa = tournament(&pop, &mut rng);
            let pb = tournament(&pop, &mut rng);
            let (mut ca, mut cb) = if n >= 2 && rng.gen_bool(cfg.crossover_rate) {
                let cut = rng.gen_range(1..n);
                let mut ca = pop[pa].genome.clone();
                let mut cb = pop[pb].genome.clone();
                for i in cut..n {
                    std::mem::swap(&mut ca[i], &mut cb[i]);
                }
                (ca, cb)
            } else {
                (pop[pa].genome.clone(), pop[pb].genome.clone())
            };
            for child in [&mut ca, &mut cb] {
                for gene in child.iter_mut() {
                    if rng.gen_bool(mutation_rate) {
                        *gene = rng.gen_range(0..m);
                    }
                }
                repair(child);
            }
            for genome in [ca, cb] {
                if offspring.len() < cfg.population {
                    let fitness = fitness_of(&genome, &mut evaluator);
                    offspring.push(Individual { genome, fitness });
                }
            }
        }
        // (µ + λ) elitist truncation — single-objective NSGA-II survivor
        // selection.
        pop.append(&mut offspring);
        pop.sort_by(|a, b| a.fitness.total_cmp(&b.fitness));
        pop.truncate(cfg.population);
        best_per_generation.push(pop[0].fitness);
    }

    let best = &pop[0];
    GaResult {
        mapping: decode(&best.genome),
        makespan: best.fitness,
        cpu_only_makespan,
        evaluations: evaluator.stats().evaluations,
        best_per_generation,
    }
}

fn tournament(pop: &[Individual], rng: &mut StdRng) -> usize {
    let a = rng.gen_range(0..pop.len());
    let b = rng.gen_range(0..pop.len());
    if pop[a].fitness <= pop[b].fitness {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmap_graph::gen::{chain, random_sp_graph, SpGenConfig};
    use spmap_graph::{augment, AugmentConfig, Task};

    fn small_cfg(seed: u64) -> GaConfig {
        GaConfig {
            population: 24,
            generations: 30,
            seed,
            ..GaConfig::default()
        }
    }

    #[test]
    fn never_worse_than_cpu_only() {
        let p = Platform::reference();
        for seed in 0..4 {
            let mut g = random_sp_graph(&SpGenConfig::new(25, seed));
            augment(&mut g, &AugmentConfig::default(), seed);
            let r = nsga2_map(&g, &p, &small_cfg(seed));
            assert!(r.makespan <= r.cpu_only_makespan * (1.0 + 1e-9));
            assert!(r.mapping.is_area_feasible(&g, &p));
        }
    }

    #[test]
    fn finds_improvements_on_augmented_graphs() {
        let p = Platform::reference();
        let mut g = random_sp_graph(&SpGenConfig::new(30, 11));
        augment(&mut g, &AugmentConfig::default(), 11);
        let r = nsga2_map(&g, &p, &small_cfg(1));
        assert!(
            r.relative_improvement() > 0.02,
            "GA should find some improvement, got {}",
            r.relative_improvement()
        );
    }

    #[test]
    fn best_fitness_is_monotone() {
        let p = Platform::reference();
        let mut g = random_sp_graph(&SpGenConfig::new(20, 5));
        augment(&mut g, &AugmentConfig::default(), 5);
        let r = nsga2_map(&g, &p, &small_cfg(2));
        let mut prev = f64::INFINITY;
        for &b in &r.best_per_generation {
            assert!(b <= prev + 1e-12, "elitism violated");
            prev = b;
        }
        assert_eq!(r.best_per_generation.len(), 30);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = Platform::reference();
        let mut g = random_sp_graph(&SpGenConfig::new(20, 8));
        augment(&mut g, &AugmentConfig::default(), 8);
        let a = nsga2_map(&g, &p, &small_cfg(7));
        let b = nsga2_map(&g, &p, &small_cfg(7));
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.makespan, b.makespan);
        let c = nsga2_map(&g, &p, &small_cfg(8));
        // Different seeds explore differently (makespans may coincide, but
        // almost never across the full generation history).
        assert!(
            a.best_per_generation != c.best_per_generation || a.mapping == c.mapping
        );
    }

    #[test]
    fn repair_handles_oversized_tasks() {
        // All tasks love the FPGA but only a few fit: repaired genomes
        // must stay feasible throughout.
        let mut g = chain(10, 1e6);
        for v in 0..10 {
            *g.task_mut(NodeId(v)) = Task {
                name: format!("t{v}"),
                complexity: 20.0,
                data_points: 1.25e8,
                parallelizability: 0.0,
                streamability: 16.0,
                area: 1000.0, // only 2 of 10 fit in 2400
                ..Task::default()
            };
        }
        let p = Platform::reference();
        let r = nsga2_map(&g, &p, &small_cfg(3));
        assert!(r.mapping.is_area_feasible(&g, &p));
        assert!(r.mapping.count_on(DeviceId(2)) <= 2);
    }

    #[test]
    fn evaluation_budget_matches_generations() {
        let p = Platform::reference();
        let mut g = random_sp_graph(&SpGenConfig::new(15, 2));
        augment(&mut g, &AugmentConfig::default(), 2);
        let cfg = small_cfg(4);
        let r = nsga2_map(&g, &p, &cfg);
        // Initial population + offspring per generation.
        let expect = (cfg.population * (cfg.generations + 1)) as u64;
        assert_eq!(r.evaluations, expect);
    }

    #[test]
    fn more_generations_never_hurt() {
        let p = Platform::reference();
        let mut g = random_sp_graph(&SpGenConfig::new(25, 9));
        augment(&mut g, &AugmentConfig::default(), 9);
        let short = nsga2_map(
            &g,
            &p,
            &GaConfig {
                population: 24,
                generations: 5,
                seed: 5,
                ..GaConfig::default()
            },
        );
        let long = nsga2_map(
            &g,
            &p,
            &GaConfig {
                population: 24,
                generations: 60,
                seed: 5,
                ..GaConfig::default()
            },
        );
        assert!(long.makespan <= short.makespan + 1e-12);
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this workspace ships
//! the small subset of the `rand 0.8` API its crates actually use:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range`, `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but every consumer in this
//! workspace only relies on *seeded determinism* and uniformity, never on
//! a specific stream.  All sequences are stable across platforms and
//! releases of this workspace.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Deterministically derive a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their full "unit" domain via
/// [`Rng::gen`]: `f64` in `[0, 1)`, integers over their full range, `bool`
/// as a fair coin.
pub trait Standard: Sized {
    /// Draw one sample from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the tiny bias of
                // the plain product-high method is irrelevant for the
                // experiment workloads this workspace generates.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A sample from the type's unit domain (see [`Standard`]).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// The pieces `use rand::prelude::*` pulls in upstream.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_and_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_float_in_range_and_uniform_ish() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_int_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let x = rng.gen_range(3usize..9);
            assert!((3..9).contains(&x));
            seen_lo |= x == 3;
            seen_hi |= x == 8;
        }
        assert!(seen_lo && seen_hi, "both ends reachable");
        for _ in 0..200 {
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
        assert_eq!(rng.gen_range(4u8..5), 4, "singleton range");
    }

    #[test]
    fn gen_range_float_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(-10.0..10.0_f64);
            assert!((-10.0..10.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so `cargo bench` runs
//! against this small API-compatible subset: benchmark groups, the
//! `Bencher::iter` protocol, and the `criterion_group!`/`criterion_main!`
//! macros.  Measurement is a fixed warm-up followed by timed batches; each
//! benchmark prints `group/id ... mean ns/iter` on stdout.  It is not a
//! statistics engine — it exists so the workspace's micro-benchmarks stay
//! runnable and comparable between commits in this offline environment.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark inside a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to every benchmark closure; runs and times the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` back-to-back executions of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (upstream default is 100;
    /// this shim's default is 20 to keep offline runs quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark `f`, passing `input` through.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmark `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, |b| f(b));
        self
    }

    /// End the group (upstream writes reports here; the shim has already
    /// printed every line).
    pub fn finish(self) {}
}

/// Entry point handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), 20, |b| f(b));
        self
    }
}

fn run_benchmark(label: &str, samples: usize, mut run: impl FnMut(&mut Bencher)) {
    // Calibrate: grow the per-sample iteration count until one sample
    // takes ~2 ms, so cheap benchmarks aren't all timer noise.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        run(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        run(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() * 1e9 / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let median = per_iter[per_iter.len() / 2];
    println!("{label:<44} mean {mean:>12.1} ns/iter   median {median:>12.1} ns/iter");
}

/// Collect benchmark functions into a runnable group, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Produce the `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_work() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        let mut calls = 0u64;
        g.bench_function("count", |b| b.iter(|| calls += 1));
        g.finish();
        assert!(calls > 0);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(50).to_string(), "50");
    }
}

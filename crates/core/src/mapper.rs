//! The decomposition mapping loop (paper §III-A/B/C).
//!
//! Candidate evaluation — the inner loop that dominates the runtime —
//! goes through the incremental + parallel engine in [`crate::batch`];
//! [`decomposition_map_reference`] keeps the original strictly serial
//! probe loop as an executable specification that the engine is tested
//! against (identical mappings, makespans and history, bit for bit).

use std::fmt;

use spmap_decomp::{series_parallel_subgraphs, single_node_subgraphs, CutPolicy};
use spmap_graph::{NodeId, TaskGraph};
use spmap_model::{DeviceId, Evaluator, Mapping, Platform};
use spmap_par::DispatchStats;

use crate::batch::{BatchStats, CandidateBatch, EngineConfig};
use crate::threshold::gamma_threshold_search;

/// Which makespan the mapper minimizes (and reports).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CostModel {
    /// Makespan under the deterministic breadth-first schedule — the
    /// optimizers' classic inner-loop cost function.
    #[default]
    Bfs,
    /// The paper's reporting metric (§IV-A): the minimum makespan over
    /// the breadth-first schedule and `schedules` seeded random
    /// topological schedules.  Each candidate evaluation is a *sweep* of
    /// `schedules + 1` simulations; the engine checkpoints and windows
    /// every schedule (docs/PERF.md).
    Report {
        /// Number of random topological schedules on top of BFS.
        schedules: usize,
        /// Base seed; schedule `i` uses `seed + i`.
        seed: u64,
    },
}

/// A typed failure of a mapper run.
///
/// The searches order candidates by improvement deltas; a NaN delta (an
/// upstream NaN or `∞ − ∞` makespan, e.g. from non-finite task
/// attributes) has no place in that order — every comparison against it
/// is silently false, so the priority queue would degrade into an
/// arbitrary scan.  Instead of mis-searching, the run aborts with this
/// error (infinite makespans are fine: `±∞` deltas order correctly and
/// are handled as "no improvement" / "always an improvement").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum MapperError {
    /// Candidate `op` evaluated to a NaN improvement delta.
    NanDelta {
        /// The offending operation id (`subgraph * device_count + device`).
        op: OpId,
    },
    /// The request names an algorithm family this entry point cannot
    /// execute — e.g. a [`crate::Algo::Ga`] request handed to the
    /// decomposition mapper instead of `spmap_ga::nsga2_map_request`.
    UnsupportedAlgo {
        /// The requested algorithm family.
        algo: &'static str,
    },
}

impl fmt::Display for MapperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapperError::NanDelta { op } => write!(
                f,
                "candidate operation {op} evaluated to a NaN makespan improvement \
                 (non-finite task attributes or an ∞ − ∞ makespan delta); \
                 the search order would be meaningless"
            ),
            MapperError::UnsupportedAlgo { algo } => write!(
                f,
                "algorithm family '{algo}' is not executable by this entry point \
                 (route Algo::Ga requests through spmap_ga::nsga2_map_request)"
            ),
        }
    }
}

impl std::error::Error for MapperError {}

/// Which candidate subgraph set to use (paper §III-B vs. §III-C).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SubgraphStrategy {
    /// Every task alone.
    SingleNode,
    /// Single nodes plus the operations of the series-parallel
    /// decomposition forest.
    SeriesParallel {
        /// Conflict-cut policy for non-series-parallel graphs.
        cut_policy: CutPolicy,
    },
}

/// How to search the operation space in each iteration (paper §III-D).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SearchHeuristic {
    /// Re-evaluate every operation every iteration (the basic variant).
    Exhaustive,
    /// Priority-queue look-ahead pruned by expected improvements; `γ = 1`
    /// is the FirstFit heuristic.
    GammaThreshold {
        /// Look-ahead divisor (≥ 1).
        gamma: f64,
    },
}

impl SearchHeuristic {
    /// The paper's FirstFit heuristic (`γ = 1`).
    pub fn first_fit() -> Self {
        SearchHeuristic::GammaThreshold { gamma: 1.0 }
    }
}

/// Full mapper configuration.
#[derive(Clone, Copy, Debug)]
pub struct MapperConfig {
    /// Candidate subgraph set.
    pub strategy: SubgraphStrategy,
    /// Per-iteration search heuristic.
    pub heuristic: SearchHeuristic,
    /// Maximum number of improvement iterations; `None` uses the paper's
    /// suggested cap of `n` (the task count).
    pub iteration_cap: Option<usize>,
    /// The makespan the search minimizes: the breadth-first schedule
    /// (default) or the paper's multi-schedule reporting metric.
    pub cost: CostModel,
    /// Candidate-engine tuning (threads, pruning, memoization).  The
    /// defaults are right for production use; benchmarks and tests use
    /// the switches for ablations.
    pub engine: EngineConfig,
}

impl MapperConfig {
    /// `SingleNode` with exhaustive search (paper's "SingleNode").
    pub fn single_node() -> Self {
        Self {
            strategy: SubgraphStrategy::SingleNode,
            heuristic: SearchHeuristic::Exhaustive,
            iteration_cap: None,
            cost: CostModel::Bfs,
            engine: EngineConfig::default(),
        }
    }

    /// This configuration with the `report_makespan` cost model:
    /// minimize the best makespan over BFS plus `schedules` random
    /// topological schedules seeded from `seed`.
    pub fn with_report_cost(mut self, schedules: usize, seed: u64) -> Self {
        self.cost = CostModel::Report { schedules, seed };
        self
    }

    /// `SeriesParallel` with exhaustive search (paper's "SeriesParallel").
    pub fn series_parallel() -> Self {
        Self {
            strategy: SubgraphStrategy::SeriesParallel {
                cut_policy: CutPolicy::default(),
            },
            heuristic: SearchHeuristic::Exhaustive,
            iteration_cap: None,
            cost: CostModel::Bfs,
            engine: EngineConfig::default(),
        }
    }

    /// Paper's "SNFirstFit".
    pub fn sn_first_fit() -> Self {
        Self {
            heuristic: SearchHeuristic::first_fit(),
            ..Self::single_node()
        }
    }

    /// Paper's "SPFirstFit".
    pub fn sp_first_fit() -> Self {
        Self {
            heuristic: SearchHeuristic::first_fit(),
            ..Self::series_parallel()
        }
    }
}

/// Result of a decomposition-mapping run.
#[derive(Clone, Debug)]
pub struct MapperResult {
    /// The final mapping.
    pub mapping: Mapping,
    /// Makespan of the final mapping under the breadth-first schedule.
    pub makespan: f64,
    /// Makespan of the all-CPU default mapping (the improvement baseline).
    pub cpu_only_makespan: f64,
    /// Number of applied improvement iterations.
    pub iterations: usize,
    /// Number of full model evaluations performed.
    pub evaluations: u64,
    /// Size of the candidate subgraph set.
    pub subgraph_count: usize,
    /// Makespan after each applied iteration (strictly decreasing).
    pub history: Vec<f64>,
    /// Candidate-engine decision counters (zero for the serial
    /// reference path).  Thread-count-invariant — pinned by the
    /// equivalence suite.
    pub batch: BatchStats,
    /// How the engine's parallel batches were dispatched (serial fast
    /// path / scoped spawns / persistent-pool wakes; zero for the
    /// serial reference path).  Unlike [`MapperResult::batch`] these
    /// counters intentionally vary with the thread count and the
    /// `SPMAP_POOL` backend: they price the dispatch overhead the run
    /// paid.  Covers every search path — exhaustive sweeps and the
    /// γ-threshold speculative waves both dispatch through the same
    /// engine.
    pub dispatch: DispatchStats,
    /// Largest single checkpoint trail the engine held (bytes; zero for
    /// the serial reference path, which keeps no snapshot trails).  The
    /// number `EngineConfig::checkpoint_budget_bytes` gates; purely
    /// informational for results — snapshot layout never changes bits.
    pub checkpoint_peak_bytes: u64,
}

impl MapperResult {
    /// Relative improvement over the pure-CPU mapping (≥ 0 by design).
    pub fn relative_improvement(&self) -> f64 {
        spmap_model::relative_improvement(self.cpu_only_makespan, self.makespan)
    }
}

/// Relative improvement threshold below which a candidate is not
/// considered an improvement (guards against float noise cycles).
pub(crate) const REL_EPS: f64 = 1e-9;

/// An operation index: `subgraph * device_count + device`.
pub type OpId = usize;

/// The candidate subgraph set of `strategy` on `graph`.
pub(crate) fn build_subgraphs(graph: &TaskGraph, strategy: SubgraphStrategy) -> Vec<Vec<NodeId>> {
    match strategy {
        SubgraphStrategy::SingleNode => single_node_subgraphs(graph).subgraphs().to_vec(),
        SubgraphStrategy::SeriesParallel { cut_policy } => {
            series_parallel_subgraphs(graph, cut_policy)
                .subgraphs()
                .to_vec()
        }
    }
}

/// Run decomposition-based mapping (paper §III) on `graph` over
/// `platform` through the incremental + parallel candidate engine,
/// returning the typed error instead of panicking on NaN deltas.
pub fn try_decomposition_map(
    graph: &TaskGraph,
    platform: &Platform,
    cfg: &MapperConfig,
) -> Result<MapperResult, MapperError> {
    try_decomposition_map_on(graph, platform, cfg, None)
}

/// The shared owned-tables driver behind [`try_decomposition_map`] and
/// [`crate::map_request`]: optionally restricts the candidate device
/// list (a `None` restriction means every platform device).  Restricting
/// devices is exact — an avoided device contributes no exec, link or
/// area term — and is how availability-limited requests (device loss)
/// are executed without platform surgery.
pub(crate) fn try_decomposition_map_on(
    graph: &TaskGraph,
    platform: &Platform,
    cfg: &MapperConfig,
    devices: Option<&[DeviceId]>,
) -> Result<MapperResult, MapperError> {
    let subgraphs = build_subgraphs(graph, cfg.strategy);
    let devices: Vec<DeviceId> = match devices {
        Some(ds) => ds.to_vec(),
        None => platform.device_ids().collect(),
    };
    let engine =
        CandidateBatch::with_cost(graph, platform, subgraphs, devices, cfg.engine, cfg.cost);
    drive_search(engine, cfg)
}

/// Run decomposition-based mapping on *pre-built* shared evaluation
/// tables (e.g. from a service's artifact cache), skipping table
/// construction.  Graph and platform are recovered from the tables; the
/// run is bit-identical to [`try_decomposition_map`] on the same inputs
/// — the tables are immutable and everything downstream of them is
/// per-run state.
///
/// # Panics
///
/// If `cfg.engine.numbering` disagrees with the numbering the tables
/// were built under (see [`CandidateBatch::with_shared_tables`]).
#[deprecated(
    note = "route requests through spmap_core::map_request / MapService::map; \
            this free function bypasses the unified request surface"
)]
pub fn try_decomposition_map_with_tables<'g>(
    tables: &'g spmap_model::EvalTables<'g>,
    cfg: &MapperConfig,
) -> Result<MapperResult, MapperError> {
    try_decomposition_map_with_tables_on(tables, cfg, None)
}

/// The shared pre-built-tables driver behind the service and session
/// paths: [`try_decomposition_map_with_tables`] with an optional
/// candidate-device restriction (see [`try_decomposition_map_on`] for
/// the exactness argument).
pub(crate) fn try_decomposition_map_with_tables_on<'g>(
    tables: &'g spmap_model::EvalTables<'g>,
    cfg: &MapperConfig,
    devices: Option<&[DeviceId]>,
) -> Result<MapperResult, MapperError> {
    let graph = tables.graph();
    let subgraphs = build_subgraphs(graph, cfg.strategy);
    let devices: Vec<DeviceId> = match devices {
        Some(ds) => ds.to_vec(),
        None => tables.platform().device_ids().collect(),
    };
    let engine =
        CandidateBatch::with_shared_tables(tables, subgraphs, devices, cfg.engine, cfg.cost);
    drive_search(engine, cfg)
}

/// The search loop shared by the owned-tables and shared-tables entry
/// points: identical decisions regardless of where the tables came from.
fn drive_search(
    mut engine: CandidateBatch<'_>,
    cfg: &MapperConfig,
) -> Result<MapperResult, MapperError> {
    let cpu_only = engine.current_makespan();
    let cap = cfg
        .iteration_cap
        .unwrap_or(engine.tables().graph().node_count().max(1));

    let (iterations, history) = match cfg.heuristic {
        SearchHeuristic::Exhaustive => exhaustive_search(&mut engine, cap, cfg.engine.prune)?,
        SearchHeuristic::GammaThreshold { gamma } => {
            assert!(gamma >= 1.0, "gamma must be >= 1");
            gamma_threshold_search(&mut engine, cap, gamma)?
        }
    };

    Ok(MapperResult {
        makespan: engine.current_makespan(),
        cpu_only_makespan: cpu_only,
        iterations,
        evaluations: engine.evaluations(),
        subgraph_count: engine.subgraphs().len(),
        history,
        batch: engine.stats(),
        dispatch: engine.dispatch(),
        checkpoint_peak_bytes: engine.checkpoint_peak_bytes(),
        mapping: engine.mapping().clone(),
    })
}

/// Run decomposition-based mapping (paper §III) on `graph` over
/// `platform` through the incremental + parallel candidate engine.
///
/// Panics on [`MapperError`] (NaN improvement deltas from non-finite
/// task attributes); use [`try_decomposition_map`] to handle that as a
/// value.
pub fn decomposition_map(
    graph: &TaskGraph,
    platform: &Platform,
    cfg: &MapperConfig,
) -> MapperResult {
    try_decomposition_map(graph, platform, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// The basic variant: evaluate every operation in every iteration and
/// commit the best one (paper §III-A steps 2–4), one engine batch per
/// iteration.
fn exhaustive_search(
    engine: &mut CandidateBatch<'_>,
    cap: usize,
    prune: bool,
) -> Result<(usize, Vec<f64>), MapperError> {
    let ops: Vec<OpId> = (0..engine.op_count()).collect();
    let mut history = Vec::new();
    let mut iterations = 0;
    while iterations < cap {
        let deltas = engine.evaluate_ops(&ops, prune);
        // Serial reduce in candidate-index order: ties go to the lowest
        // index, exactly like the serial reference — thread arrival
        // order cannot influence the choice.
        let mut best: Option<(OpId, f64)> = None;
        for (op, &delta) in deltas.iter().enumerate() {
            if delta.is_nan() {
                return Err(MapperError::NanDelta { op });
            }
            if engine.improves(delta) && best.is_none_or(|(_, b)| delta > b) {
                best = Some((op, delta));
            }
        }
        match best {
            Some((op, _)) => {
                engine.commit(op);
                history.push(engine.current_makespan());
                iterations += 1;
            }
            None => break,
        }
    }
    Ok((iterations, history))
}

/// Run decomposition-based mapping through the original strictly serial
/// candidate scan, returning the typed error instead of panicking on NaN
/// deltas.  See [`decomposition_map_reference`].
pub fn try_decomposition_map_reference(
    graph: &TaskGraph,
    platform: &Platform,
    cfg: &MapperConfig,
) -> Result<MapperResult, MapperError> {
    let subgraphs = build_subgraphs(graph, cfg.strategy);
    let devices: Vec<DeviceId> = platform.device_ids().collect();
    let mut ctx = RefCtx {
        evaluator: Evaluator::new(graph, platform),
        mapping: Mapping::all_default(graph, platform),
        cur: 0.0,
        undo: Vec::with_capacity(graph.node_count()),
        cost: cfg.cost,
        subgraphs,
        devices,
    };
    ctx.cur = ctx.cost_makespan().expect("default mapping is feasible");
    let cpu_only = ctx.cur;
    let cap = cfg.iteration_cap.unwrap_or(graph.node_count().max(1));

    let (iterations, history) = match cfg.heuristic {
        SearchHeuristic::Exhaustive => ctx.exhaustive(cap)?,
        SearchHeuristic::GammaThreshold { gamma } => {
            assert!(gamma >= 1.0, "gamma must be >= 1");
            ctx.gamma_threshold(cap, gamma)?
        }
    };

    let subgraph_count = ctx.subgraphs.len();
    Ok(MapperResult {
        makespan: ctx.cur,
        cpu_only_makespan: cpu_only,
        iterations,
        evaluations: ctx.evaluator.stats().evaluations,
        subgraph_count,
        history,
        batch: BatchStats::default(),
        dispatch: DispatchStats::default(),
        checkpoint_peak_bytes: 0,
        mapping: ctx.mapping,
    })
}

/// Run decomposition-based mapping through the original strictly serial
/// candidate scan — one probe (full simulation, or one full sweep of
/// `schedules + 1` simulations under [`CostModel::Report`]) per candidate
/// per iteration, no pruning, no memoization, no threads.
///
/// This is the executable specification the engine is verified against:
/// `decomposition_map` must produce the identical mapping, makespan and
/// history for every input (see `tests/equivalence.rs`).  It is also the
/// baseline that `perf_report` measures speedups from.
pub fn decomposition_map_reference(
    graph: &TaskGraph,
    platform: &Platform,
    cfg: &MapperConfig,
) -> MapperResult {
    try_decomposition_map_reference(graph, platform, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Shared state of one serial reference run.
struct RefCtx<'g> {
    evaluator: Evaluator<'g>,
    subgraphs: Vec<Vec<NodeId>>,
    devices: Vec<DeviceId>,
    mapping: Mapping,
    cur: f64,
    undo: Vec<(NodeId, DeviceId)>,
    cost: CostModel,
}

impl RefCtx<'_> {
    fn op_count(&self) -> usize {
        self.subgraphs.len() * self.devices.len()
    }

    /// The configured cost of the working mapping, exactly as the seed
    /// implementation computed it (`report_makespan` re-derives every
    /// random rank vector on each call).
    fn cost_makespan(&mut self) -> Option<f64> {
        match self.cost {
            CostModel::Bfs => self.evaluator.makespan_bfs(&self.mapping),
            CostModel::Report { schedules, seed } => {
                self.evaluator
                    .report_makespan(&self.mapping, schedules, seed)
            }
        }
    }

    /// Apply `op` to the working mapping, recording undo info.  Returns
    /// `false` (and records nothing) if the operation is a no-op.
    fn apply(&mut self, op: OpId) -> bool {
        let m = self.devices.len();
        let d = self.devices[op % m];
        let sub = &self.subgraphs[op / m];
        self.undo.clear();
        for &v in sub {
            let old = self.mapping.device(v);
            if old != d {
                self.undo.push((v, old));
                self.mapping.set(v, d);
            }
        }
        !self.undo.is_empty()
    }

    fn revert(&mut self) {
        for &(v, d) in self.undo.iter().rev() {
            self.mapping.set(v, d);
        }
        self.undo.clear();
    }

    /// Evaluate the improvement of `op` against the current makespan and
    /// revert.  Returns `NEG_INFINITY` for no-ops and infeasible mappings.
    fn probe(&mut self, op: OpId) -> f64 {
        if !self.apply(op) {
            return f64::NEG_INFINITY;
        }
        let delta = match self.cost_makespan() {
            Some(ms) => self.cur - ms,
            None => f64::NEG_INFINITY,
        };
        self.revert();
        delta
    }

    /// Apply `op` permanently and update the current makespan.
    fn commit(&mut self, op: OpId) {
        let changed = self.apply(op);
        debug_assert!(changed, "committing a no-op");
        self.undo.clear();
        self.cur = self
            .cost_makespan()
            .expect("committed operations are feasible");
    }

    fn improves(&self, delta: f64) -> bool {
        delta > self.cur * REL_EPS
    }

    fn exhaustive(&mut self, cap: usize) -> Result<(usize, Vec<f64>), MapperError> {
        let mut history = Vec::new();
        let mut iterations = 0;
        while iterations < cap {
            let mut best: Option<(OpId, f64)> = None;
            for op in 0..self.op_count() {
                let delta = self.probe(op);
                if delta.is_nan() {
                    return Err(MapperError::NanDelta { op });
                }
                if self.improves(delta) && best.is_none_or(|(_, b)| delta > b) {
                    best = Some((op, delta));
                }
            }
            match best {
                Some((op, _)) => {
                    self.commit(op);
                    history.push(self.cur);
                    iterations += 1;
                }
                None => break,
            }
        }
        Ok((iterations, history))
    }

    /// The original serial γ-threshold search (see `crate::threshold` for
    /// the algorithm description; the engine version replays exactly this
    /// decision sequence).
    fn gamma_threshold(
        &mut self,
        cap: usize,
        gamma: f64,
    ) -> Result<(usize, Vec<f64>), MapperError> {
        use crate::threshold::Key;
        use std::collections::BinaryHeap;

        let op_count = self.op_count();
        let mut expected = vec![f64::INFINITY; op_count];
        let mut evaluated = vec![false; op_count];
        let mut history = Vec::new();
        let mut iterations = 0;

        while iterations < cap {
            let mut heap: BinaryHeap<(Key, OpId)> = BinaryHeap::with_capacity(op_count);
            for (op, &exp) in expected.iter().enumerate() {
                heap.push((Key::new(exp).map_err(|_| MapperError::NanDelta { op })?, op));
            }
            evaluated.iter_mut().for_each(|e| *e = false);
            let mut found: Option<(OpId, f64)> = None;

            while let Some((key, op)) = heap.pop() {
                let exp = key.get();
                if evaluated[op] {
                    continue;
                }
                if let Some((_, delta)) = found {
                    if exp <= delta / gamma {
                        break;
                    }
                }
                evaluated[op] = true;
                let delta = self.probe(op);
                if delta.is_nan() {
                    return Err(MapperError::NanDelta { op });
                }
                expected[op] = delta;
                if self.improves(delta) && found.is_none_or(|(_, best)| delta > best) {
                    found = Some((op, delta));
                }
            }

            match found {
                Some((op, _)) => {
                    self.commit(op);
                    history.push(self.cur);
                    iterations += 1;
                }
                None => break,
            }
        }
        Ok((iterations, history))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmap_graph::gen::{chain, fork_join, random_sp_graph, SpGenConfig};
    use spmap_graph::{augment, AugmentConfig, Task};
    use spmap_model::relative_improvement;

    const CPU: DeviceId = DeviceId(0);
    const GPU: DeviceId = DeviceId(1);
    const FPGA: DeviceId = DeviceId(2);

    /// A chain whose interior profits from FPGA streaming but where a
    /// *single* task offload loses to the transfer cost: the scenario of
    /// paper §III-B's local-minimum discussion.
    fn streaming_chain() -> TaskGraph {
        let mut g = chain(6, 1e9);
        for v in 0..6 {
            let t = g.task_mut(NodeId(v));
            *t = Task {
                name: format!("t{v}"),
                complexity: 20.0,
                data_points: 1.25e8,
                parallelizability: 0.0,
                streamability: 7.0,
                area: 120.0,
                ..Task::default()
            };
        }
        g
    }

    #[test]
    fn single_node_gets_stuck_in_local_minimum() {
        let g = streaming_chain();
        let p = Platform::reference();
        let r = decomposition_map(&g, &p, &MapperConfig::single_node());
        // Every single-task move costs more in transfers than it saves.
        assert_eq!(r.iterations, 0, "single-node must find no improvement");
        assert_eq!(r.relative_improvement(), 0.0);
        assert_eq!(r.makespan, r.cpu_only_makespan);
    }

    #[test]
    fn series_parallel_escapes_via_chain_move() {
        let g = streaming_chain();
        let p = Platform::reference();
        let r = decomposition_map(&g, &p, &MapperConfig::series_parallel());
        assert!(
            r.relative_improvement() > 0.25,
            "chain offload must be a large win, got {}",
            r.relative_improvement()
        );
        // The interior of the chain moved to the FPGA.  (The endpoints may
        // follow in later single-node iterations: once the interior
        // streams, joining the stream is free transfer-wise.)
        for v in 1..5 {
            assert_eq!(r.mapping.device(NodeId(v)), FPGA, "task {v}");
        }
        let _ = CPU;
    }

    #[test]
    fn gpu_wins_perfectly_parallel_independent_tasks() {
        let mut g = fork_join(4, 1e6);
        for v in 0..6 {
            let t = g.task_mut(NodeId(v));
            t.complexity = 20.0;
            t.data_points = 1.25e8;
            t.parallelizability = 1.0;
            t.streamability = 1.0;
            t.area = 160.0;
        }
        let p = Platform::reference();
        let r = decomposition_map(&g, &p, &MapperConfig::single_node());
        assert!(r.relative_improvement() > 0.1);
        // At least one middle task lands on the GPU.
        let on_gpu = (1..5)
            .filter(|&v| r.mapping.device(NodeId(v)) == GPU)
            .count();
        assert!(
            on_gpu >= 1,
            "expected GPU offload, mapping: {:?}",
            r.mapping
        );
    }

    #[test]
    fn never_worse_than_cpu_only_and_always_feasible() {
        let p = Platform::reference();
        for seed in 0..8 {
            let mut g = random_sp_graph(&SpGenConfig::new(30, seed));
            augment(&mut g, &AugmentConfig::default(), seed);
            for cfg in [
                MapperConfig::single_node(),
                MapperConfig::series_parallel(),
                MapperConfig::sn_first_fit(),
                MapperConfig::sp_first_fit(),
            ] {
                let r = decomposition_map(&g, &p, &cfg);
                assert!(
                    r.makespan <= r.cpu_only_makespan * (1.0 + 1e-9),
                    "worse than baseline (seed {seed}, {cfg:?})"
                );
                assert!(r.mapping.is_area_feasible(&g, &p));
                // History strictly decreasing.
                let mut prev = r.cpu_only_makespan;
                for &h in &r.history {
                    assert!(h < prev, "history not decreasing");
                    prev = h;
                }
                assert_eq!(r.history.len(), r.iterations);
            }
        }
    }

    #[test]
    fn first_fit_matches_exhaustive_quality_with_fewer_evals() {
        let p = Platform::reference();
        let mut worse = 0;
        let mut eval_savings = 0i64;
        for seed in 20..28 {
            let mut g = random_sp_graph(&SpGenConfig::new(40, seed));
            augment(&mut g, &AugmentConfig::default(), seed);
            // Compare candidate *decisions* (work per heuristic), not raw
            // simulations: pruning shrinks both sides' simulation counts.
            let ex = decomposition_map(&g, &p, &MapperConfig::series_parallel());
            let ff = decomposition_map(&g, &p, &MapperConfig::sp_first_fit());
            let ex_imp = relative_improvement(ex.cpu_only_makespan, ex.makespan);
            let ff_imp = relative_improvement(ff.cpu_only_makespan, ff.makespan);
            if ff_imp < ex_imp - 0.05 {
                worse += 1;
            }
            eval_savings += ex.batch.total() as i64 - ff.batch.total() as i64;
        }
        assert!(worse <= 2, "FirstFit quality collapsed on {worse}/8 graphs");
        assert!(
            eval_savings > 0,
            "FirstFit must save evaluations overall (saved {eval_savings})"
        );
    }

    #[test]
    fn iteration_cap_respected() {
        let mut g = random_sp_graph(&SpGenConfig::new(40, 2));
        augment(&mut g, &AugmentConfig::default(), 2);
        let p = Platform::reference();
        let cfg = MapperConfig {
            iteration_cap: Some(2),
            ..MapperConfig::single_node()
        };
        let r = decomposition_map(&g, &p, &cfg);
        assert!(r.iterations <= 2);
    }

    #[test]
    fn deterministic() {
        let mut g = random_sp_graph(&SpGenConfig::new(35, 6));
        augment(&mut g, &AugmentConfig::default(), 6);
        let p = Platform::reference();
        for cfg in [
            MapperConfig::series_parallel(),
            MapperConfig::sp_first_fit(),
        ] {
            let a = decomposition_map(&g, &p, &cfg);
            let b = decomposition_map(&g, &p, &cfg);
            assert_eq!(a.mapping, b.mapping);
            assert_eq!(a.makespan, b.makespan);
            assert_eq!(a.evaluations, b.evaluations);
            assert_eq!(a.batch, b.batch);
        }
    }

    #[test]
    fn cpu_only_platform_yields_no_ops() {
        let mut g = random_sp_graph(&SpGenConfig::new(20, 1));
        augment(&mut g, &AugmentConfig::default(), 1);
        let p = Platform::cpu_only();
        let r = decomposition_map(&g, &p, &MapperConfig::series_parallel());
        assert_eq!(r.iterations, 0);
        assert_eq!(r.mapping, Mapping::all_default(&g, &p));
    }

    #[test]
    fn gamma_above_one_explores_at_least_first_fit() {
        let mut g = random_sp_graph(&SpGenConfig::new(40, 9));
        augment(&mut g, &AugmentConfig::default(), 9);
        let p = Platform::reference();
        let ff = decomposition_map(&g, &p, &MapperConfig::sp_first_fit());
        let gamma2 = decomposition_map(
            &g,
            &p,
            &MapperConfig {
                heuristic: SearchHeuristic::GammaThreshold { gamma: 2.0 },
                ..MapperConfig::series_parallel()
            },
        );
        assert!(gamma2.batch.total() >= ff.batch.total());
        assert!(gamma2.makespan <= ff.makespan * (1.0 + 1e-6) || gamma2.makespan <= ff.makespan);
    }

    #[test]
    fn report_mode_engine_matches_reference() {
        // Same headline guarantee under the report_makespan cost model:
        // engine and serial reference agree bit for bit on the final
        // mapping, the *report* makespan and the history.
        let p = Platform::reference();
        for seed in [1u64, 7] {
            let mut g = random_sp_graph(&SpGenConfig::new(25, seed));
            augment(&mut g, &AugmentConfig::default(), seed);
            for base in [
                MapperConfig::series_parallel(),
                MapperConfig::sp_first_fit(),
            ] {
                let cfg = base.with_report_cost(3, 42);
                let engine_cfg = MapperConfig {
                    engine: EngineConfig {
                        threads: Some(4),
                        ..EngineConfig::default()
                    },
                    ..cfg
                };
                let fast = decomposition_map(&g, &p, &engine_cfg);
                let slow = decomposition_map_reference(&g, &p, &cfg);
                assert_eq!(fast.mapping, slow.mapping, "seed {seed}");
                assert_eq!(fast.makespan, slow.makespan, "seed {seed}");
                assert_eq!(fast.history, slow.history, "seed {seed}");
                assert_eq!(fast.cpu_only_makespan, slow.cpu_only_makespan);
            }
        }
    }

    #[test]
    fn report_mode_result_is_the_report_metric_of_the_final_mapping() {
        // The `makespan` field of a report-mode run must be exactly the
        // paper's reporting metric of the returned mapping (bitwise),
        // and — min over a superset of schedules — it can never exceed
        // the BFS makespan of that same mapping.  Likewise the baseline:
        // the report metric of the all-CPU mapping never exceeds its
        // BFS makespan.
        let p = Platform::reference();
        let mut g = random_sp_graph(&SpGenConfig::new(30, 4));
        augment(&mut g, &AugmentConfig::default(), 4);
        let (k, seed) = (4usize, 11u64);
        let rep = decomposition_map(
            &g,
            &p,
            &MapperConfig::series_parallel().with_report_cost(k, seed),
        );
        let mut ev = Evaluator::new(&g, &p);
        assert_eq!(
            ev.report_makespan(&rep.mapping, k, seed),
            Some(rep.makespan),
            "result field must be the report metric of the final mapping"
        );
        let bfs_of_final = ev.makespan_bfs(&rep.mapping).unwrap();
        assert!(
            rep.makespan <= bfs_of_final,
            "min over a schedule superset: {} > {}",
            rep.makespan,
            bfs_of_final
        );
        let bfs = decomposition_map(&g, &p, &MapperConfig::series_parallel());
        assert!(
            rep.cpu_only_makespan <= bfs.cpu_only_makespan,
            "report baseline must not exceed the BFS baseline"
        );
    }

    /// A graph whose every execution time is ∞ produces an ∞ baseline
    /// makespan and ∞ candidate makespans, so every improvement delta is
    /// `∞ − ∞ = NaN` — the regression scenario for the Key-ordering
    /// audit.  All search paths must surface the typed error instead of
    /// silently mis-searching (or panicking deep in a heap).
    fn nan_graph() -> TaskGraph {
        let mut g = fork_join(3, 1e6);
        for v in 0..g.node_count() {
            let t = g.task_mut(NodeId(v as u32));
            t.complexity = f64::INFINITY;
            t.data_points = 1e7;
            t.parallelizability = 0.5;
            t.streamability = 1.0;
            t.area = 10.0;
        }
        g
    }

    #[test]
    fn nan_deltas_surface_as_typed_errors_not_misordering() {
        let g = nan_graph();
        let p = Platform::reference();
        for cfg in [
            MapperConfig::single_node(),
            MapperConfig::sn_first_fit(),
            MapperConfig {
                heuristic: SearchHeuristic::GammaThreshold { gamma: 2.0 },
                ..MapperConfig::single_node()
            },
        ] {
            let err = try_decomposition_map(&g, &p, &cfg)
                .expect_err("NaN deltas must be a typed error (engine path)");
            assert!(matches!(err, MapperError::NanDelta { .. }), "{err}");
            // The error is descriptive and displayable.
            assert!(err.to_string().contains("NaN"));
            let err = try_decomposition_map_reference(&g, &p, &cfg)
                .expect_err("NaN deltas must be a typed error (reference path)");
            assert!(matches!(err, MapperError::NanDelta { .. }), "{err}");
        }
    }

    #[test]
    fn finite_runs_report_no_error() {
        let mut g = random_sp_graph(&SpGenConfig::new(20, 3));
        augment(&mut g, &AugmentConfig::default(), 3);
        let p = Platform::reference();
        assert!(try_decomposition_map(&g, &p, &MapperConfig::sp_first_fit()).is_ok());
        assert!(try_decomposition_map_reference(&g, &p, &MapperConfig::series_parallel()).is_ok());
    }

    #[test]
    fn engine_matches_reference_on_all_heuristics() {
        // The headline guarantee, in miniature (the full randomized
        // version lives in tests/equivalence.rs): engine and serial
        // reference agree bit for bit on mapping, makespan and history.
        let p = Platform::reference();
        for seed in [0, 3, 14] {
            let mut g = random_sp_graph(&SpGenConfig::new(30, seed));
            augment(&mut g, &AugmentConfig::default(), seed);
            for cfg in [
                MapperConfig::series_parallel(),
                MapperConfig::single_node(),
                MapperConfig::sp_first_fit(),
                MapperConfig {
                    heuristic: SearchHeuristic::GammaThreshold { gamma: 3.0 },
                    ..MapperConfig::series_parallel()
                },
            ] {
                let engine_cfg = MapperConfig {
                    engine: EngineConfig {
                        threads: Some(4),
                        ..EngineConfig::default()
                    },
                    ..cfg
                };
                let fast = decomposition_map(&g, &p, &engine_cfg);
                let slow = decomposition_map_reference(&g, &p, &cfg);
                assert_eq!(fast.mapping, slow.mapping, "seed {seed} {cfg:?}");
                assert_eq!(fast.makespan, slow.makespan, "seed {seed} {cfg:?}");
                assert_eq!(fast.history, slow.history, "seed {seed} {cfg:?}");
                assert_eq!(fast.iterations, slow.iterations);
            }
        }
    }
}

//! Mapping-as-a-service: a long-lived front end over the decomposition
//! mapper for concurrent callers.
//!
//! A [`MapService`] wraps two pieces of shared state:
//!
//! * an **admission gate** — a bounded request queue with
//!   reject-over-buffer semantics: at most `max_inflight` requests run
//!   concurrently, at most `max_queued` more wait for a slot, and
//!   anything beyond that is rejected immediately with
//!   [`ServiceError::Overloaded`] (unbounded buffering would trade an
//!   honest error for silent latency collapse);
//! * an **artifact cache** — a content-addressed, byte-budgeted LRU of
//!   [`EvalArtifact`]s (`spmap_model::artifact`), so a repeat graph +
//!   platform skips [`EvalTables`](spmap_model::EvalTables) construction
//!   entirely and shares one immutable build across all concurrent
//!   requests that need it.
//!
//! Requests execute *on the caller's thread* ([`MapService::submit`] is
//! synchronous); the service adds no threads of its own.  Parallelism
//! inside each request comes from the candidate engine exactly as in a
//! direct [`decomposition_map`](crate::decomposition_map) call, so the
//! sharded worker pool in `spmap-par` serves co-running requests from
//! distinct shards.
//!
//! ## Determinism
//!
//! A response is a pure function of its request.  The cache can only
//! substitute a *bit-identical* table build (the content key covers
//! every table input — see `spmap_model::artifact` on key soundness),
//! and admission control delays or rejects requests but never alters
//! one.  Cold cache, warm cache, any shard count, any co-runner mix:
//! same mapping, same makespan, bit for bit.  The service reads no
//! clocks; latency measurement belongs to the benchmark harness.

use std::sync::{Arc, Condvar, Mutex};

use spmap_graph::TaskGraph;
use spmap_model::{artifact_key, ArtifactCache, ArtifactCacheStats, EvalArtifact, Platform};

use crate::mapper::{try_decomposition_map_with_tables, MapperConfig, MapperError, MapperResult};

/// Sizing of a [`MapService`].  The all-zero default defers every
/// bound to its runtime-derived value.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceConfig {
    /// Maximum requests executing concurrently.  `0` selects the shard
    /// count of the parallel runtime — one running request per pool
    /// shard keeps engine batches from queuing on a shared shard.
    pub max_inflight: usize,
    /// Maximum requests waiting for an execution slot beyond
    /// `max_inflight`; the next request is rejected, not buffered.
    pub max_queued: usize,
    /// Byte budget of the artifact cache (`0` selects
    /// [`spmap_model::DEFAULT_ARTIFACT_BUDGET_BYTES`]).
    pub cache_budget_bytes: usize,
}

/// A typed failure of one service request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// Admission control rejected the request: the run slots and the
    /// bounded wait queue were both full at arrival.
    Overloaded {
        /// Requests running when this one was rejected.
        inflight: usize,
        /// Requests already waiting when this one was rejected.
        queued: usize,
    },
    /// The mapper itself failed (NaN improvement deltas).
    Mapper(MapperError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded { inflight, queued } => write!(
                f,
                "service overloaded: {inflight} requests in flight and {queued} queued; \
                 retry later or raise ServiceConfig::max_queued"
            ),
            ServiceError::Mapper(e) => write!(f, "mapper failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<MapperError> for ServiceError {
    fn from(e: MapperError) -> Self {
        ServiceError::Mapper(e)
    }
}

/// One mapping request: the inputs of a
/// [`decomposition_map`](crate::decomposition_map) call, with graph and
/// platform behind `Arc` so the cache can keep them alive past the
/// request.
#[derive(Clone)]
pub struct MapRequest {
    /// The task graph to map.
    pub graph: Arc<TaskGraph>,
    /// The platform to map onto.
    pub platform: Arc<Platform>,
    /// Full mapper configuration (strategy, heuristic, engine tuning).
    pub config: MapperConfig,
}

/// One successful service response.
#[derive(Clone, Debug)]
pub struct MapResponse {
    /// The mapper's result, bit-identical to a direct
    /// [`decomposition_map`](crate::decomposition_map) call with the
    /// request's inputs (including the dispatch counters' shard lane).
    pub result: MapperResult,
    /// Whether the evaluation tables came from the artifact cache
    /// (`true`) or were built — and cached — by this request (`false`).
    /// Diagnostic only: both paths produce identical results.
    pub cache_hit: bool,
    /// The content key the tables are cached under.
    pub artifact_key: u128,
}

/// Lifetime counters of a [`MapService`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests admitted (ran or started waiting for a slot).
    pub admitted: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Requests completed (successfully or with a mapper error).
    pub completed: u64,
    /// High-water mark of concurrently running requests — never exceeds
    /// `ServiceConfig::max_inflight` (the stress suite pins this).
    pub peak_inflight: usize,
    /// High-water mark of waiting requests — never exceeds
    /// `ServiceConfig::max_queued`.
    pub peak_queued: usize,
    /// Artifact-cache counters (hits, misses, evictions, peaks).
    pub cache: ArtifactCacheStats,
}

/// Admission state behind the gate mutex.
struct Gate {
    inflight: usize,
    queued: usize,
    admitted: u64,
    rejected: u64,
    completed: u64,
    peak_inflight: usize,
    peak_queued: usize,
}

/// A long-lived mapping service; see the module docs.  Cheap to share
/// (`Arc<MapService>`) and safe to call from any number of threads.
pub struct MapService {
    max_inflight: usize,
    max_queued: usize,
    gate: Mutex<Gate>,
    /// Signalled when a run slot frees up.
    slot_cv: Condvar,
    cache: Mutex<ArtifactCache>,
}

impl MapService {
    /// A service sized by `cfg` (see [`ServiceConfig`] for the `0` =
    /// auto conventions).
    pub fn new(cfg: ServiceConfig) -> Self {
        let max_inflight = if cfg.max_inflight == 0 {
            spmap_par::num_shards()
        } else {
            cfg.max_inflight
        };
        Self {
            max_inflight,
            max_queued: cfg.max_queued,
            gate: Mutex::new(Gate {
                inflight: 0,
                queued: 0,
                admitted: 0,
                rejected: 0,
                completed: 0,
                peak_inflight: 0,
                peak_queued: 0,
            }),
            slot_cv: Condvar::new(),
            cache: Mutex::new(ArtifactCache::new(cfg.cache_budget_bytes)),
        }
    }

    /// The effective concurrent-execution bound.
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Execute `request` on the calling thread, waiting for an
    /// execution slot if all are busy and queue room remains.
    ///
    /// Returns [`ServiceError::Overloaded`] without blocking when both
    /// the run slots and the bounded wait queue are full, and
    /// [`ServiceError::Mapper`] if the mapper itself fails; either way
    /// the slot accounting is restored.
    pub fn submit(&self, request: &MapRequest) -> Result<MapResponse, ServiceError> {
        self.admit()?;
        let outcome = self.run(request);
        self.release();
        outcome
    }

    /// Lifetime counters (gate and cache), taken atomically per lock.
    pub fn stats(&self) -> ServiceStats {
        let g = self.gate.lock().expect("service gate poisoned");
        let cache = self.cache.lock().expect("artifact cache poisoned").stats();
        ServiceStats {
            admitted: g.admitted,
            rejected: g.rejected,
            completed: g.completed,
            peak_inflight: g.peak_inflight,
            peak_queued: g.peak_queued,
            cache,
        }
    }

    /// Acquire a run slot or reject.
    fn admit(&self) -> Result<(), ServiceError> {
        let mut g = self.gate.lock().expect("service gate poisoned");
        if g.inflight >= self.max_inflight {
            if g.queued >= self.max_queued {
                g.rejected += 1;
                return Err(ServiceError::Overloaded {
                    inflight: g.inflight,
                    queued: g.queued,
                });
            }
            g.admitted += 1;
            g.queued += 1;
            g.peak_queued = g.peak_queued.max(g.queued);
            while g.inflight >= self.max_inflight {
                g = self.slot_cv.wait(g).expect("service gate poisoned");
            }
            g.queued -= 1;
        } else {
            g.admitted += 1;
        }
        g.inflight += 1;
        g.peak_inflight = g.peak_inflight.max(g.inflight);
        Ok(())
    }

    /// Return a run slot and wake one waiter.
    fn release(&self) {
        let mut g = self.gate.lock().expect("service gate poisoned");
        g.inflight -= 1;
        g.completed += 1;
        drop(g);
        self.slot_cv.notify_one();
    }

    /// The cached-or-built artifact path plus the mapper run.
    fn run(&self, request: &MapRequest) -> Result<MapResponse, ServiceError> {
        let key = artifact_key(
            &request.graph,
            &request.platform,
            request.config.engine.numbering,
        );
        let (artifact, cache_hit) = {
            let hit = self
                .cache
                .lock()
                .expect("artifact cache poisoned")
                .lookup(key);
            match hit {
                Some(a) => (a, true),
                None => {
                    // Build outside the cache lock — table construction
                    // is the expensive part, and a concurrent request
                    // for a *different* graph must not wait behind it.
                    // A racing builder of the same key is resolved by
                    // `insert`: the first resident build wins and both
                    // requests share it.
                    let built = Arc::new(EvalArtifact::build(
                        Arc::clone(&request.graph),
                        Arc::clone(&request.platform),
                        request.config.engine.numbering,
                    ));
                    let shared = self
                        .cache
                        .lock()
                        .expect("artifact cache poisoned")
                        .insert(built);
                    (shared, false)
                }
            }
        };
        let result = try_decomposition_map_with_tables(artifact.tables(), &request.config)?;
        Ok(MapResponse {
            result,
            cache_hit,
            artifact_key: key,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::decomposition_map;
    use spmap_graph::gen::{random_sp_graph, SpGenConfig};
    use spmap_graph::{augment, AugmentConfig};

    fn request(seed: u64) -> MapRequest {
        let mut g = random_sp_graph(&SpGenConfig::new(24, seed));
        augment(&mut g, &AugmentConfig::default(), seed);
        MapRequest {
            graph: Arc::new(g),
            platform: Arc::new(Platform::reference()),
            config: MapperConfig::sp_first_fit(),
        }
    }

    #[test]
    fn service_matches_direct_mapper_cold_and_warm() {
        let svc = MapService::new(ServiceConfig::default());
        let req = request(3);
        let direct = decomposition_map(&req.graph, &req.platform, &req.config);
        let cold = svc.submit(&req).expect("cold run");
        let warm = svc.submit(&req).expect("warm run");
        assert!(!cold.cache_hit);
        assert!(warm.cache_hit, "second identical request must hit");
        for r in [&cold, &warm] {
            assert_eq!(r.result.mapping, direct.mapping);
            assert_eq!(r.result.makespan, direct.makespan);
            assert_eq!(r.result.history, direct.history);
            assert_eq!(r.result.batch, direct.batch);
        }
        let stats = svc.stats();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 1);
    }

    #[test]
    fn zero_queue_service_rejects_over_capacity() {
        // max_inflight = 1, max_queued = 0: with a request holding the
        // slot, a second submission is rejected, not buffered.  The
        // holder is simulated through the internal gate so the test
        // needs no timing.
        let svc = MapService::new(ServiceConfig {
            max_inflight: 1,
            max_queued: 0,
            cache_budget_bytes: 0,
        });
        svc.admit().expect("first slot");
        let err = svc.submit(&request(1)).expect_err("must reject");
        assert_eq!(
            err,
            ServiceError::Overloaded {
                inflight: 1,
                queued: 0
            }
        );
        svc.release();
        assert!(svc.submit(&request(1)).is_ok(), "slot freed");
        let stats = svc.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.peak_inflight, 1);
    }

    #[test]
    fn queued_submissions_wait_and_complete() {
        // 4 threads through a 1-slot service with queue room for all:
        // everything completes, nothing rejected, inflight never
        // exceeds 1.
        let svc = Arc::new(MapService::new(ServiceConfig {
            max_inflight: 1,
            max_queued: 3,
            cache_budget_bytes: 0,
        }));
        let req = request(5);
        let direct = decomposition_map(&req.graph, &req.platform, &req.config);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let svc = Arc::clone(&svc);
                let req = req.clone();
                std::thread::spawn(move || svc.submit(&req).expect("admitted"))
            })
            .collect();
        for h in handles {
            let resp = h.join().expect("no panic");
            assert_eq!(resp.result.mapping, direct.mapping);
            assert_eq!(resp.result.makespan, direct.makespan);
        }
        let stats = svc.stats();
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.peak_inflight, 1, "gate must serialize");
        assert!(stats.peak_queued <= 3);
        assert_eq!(stats.cache.misses, 1, "one build, three hits");
        assert_eq!(stats.cache.hits, 3);
    }

    #[test]
    fn mapper_errors_release_the_slot() {
        use spmap_graph::{GraphBuilder, Task};
        let mut b = GraphBuilder::new();
        b.add_task(Task {
            complexity: f64::INFINITY,
            data_points: 1e7,
            parallelizability: 0.5,
            streamability: 1.0,
            area: 10.0,
            ..Task::default()
        });
        let req = MapRequest {
            graph: Arc::new(b.build().unwrap()),
            platform: Arc::new(Platform::reference()),
            config: MapperConfig::single_node(),
        };
        let svc = MapService::new(ServiceConfig {
            max_inflight: 1,
            max_queued: 0,
            cache_budget_bytes: 0,
        });
        let err = svc.submit(&req).expect_err("NaN deltas must surface");
        assert!(matches!(
            err,
            ServiceError::Mapper(MapperError::NanDelta { .. })
        ));
        // The slot was released despite the error.
        assert!(svc.submit(&request(2)).is_ok());
        assert_eq!(svc.stats().completed, 2);
    }
}

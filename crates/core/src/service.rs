//! Mapping-as-a-service: a long-lived front end over the decomposition
//! mapper for concurrent callers — one-shot requests and stateful
//! remapping sessions behind one admission discipline.
//!
//! A [`MapService`] wraps three pieces of shared state:
//!
//! * an **admission gate** — a bounded request queue with
//!   reject-over-buffer semantics: at most `max_inflight` requests run
//!   concurrently, at most `max_queued` more wait for a slot, and
//!   anything beyond that is rejected immediately with
//!   [`ServiceError::Overloaded`] (unbounded buffering would trade an
//!   honest error for silent latency collapse).  Rejections carry a
//!   clock-free `retry_hint`: how many completions the service must
//!   record before a retry could reach an execution slot.
//! * an **artifact cache** — a content-addressed, byte-budgeted LRU of
//!   [`EvalArtifact`]s (`spmap_model::artifact`), so a repeat graph +
//!   platform skips [`EvalTables`](spmap_model::EvalTables) construction
//!   entirely and shares one immutable build across all concurrent
//!   requests *and sessions* that need it;
//! * a **session registry** — live [`RemapSession`]s opened through
//!   [`MapService::open_session`], each serialized by its own lock so
//!   remaps on *distinct* sessions run concurrently while remaps on the
//!   same session queue behind each other.
//!
//! Requests execute *on the caller's thread* ([`MapService::map`] is
//! synchronous); the service adds no threads of its own.  Parallelism
//! inside each request comes from the candidate engine exactly as in a
//! direct [`decomposition_map`](crate::decomposition_map) call, so the
//! sharded worker pool in `spmap-par` serves co-running requests from
//! distinct shards.  A [`RuntimeConfig`] in [`ServiceConfig`] lets
//! embeddings pin threads/backend/shards programmatically; `None`
//! fields defer to the ambient environment (precedence: explicit >
//! environment > default — docs/PERF.md).
//!
//! ## Determinism
//!
//! A response is a pure function of its request (and, for remaps, the
//! session's perturbation history).  The cache can only substitute a
//! *bit-identical* table build (the content key covers every table
//! input — see `spmap_model::artifact` on key soundness), and admission
//! control delays or rejects requests but never alters one.  Cold
//! cache, warm cache, any shard count, any co-runner mix: same mapping,
//! same makespan, bit for bit.  The service reads no clocks — even the
//! overload `retry_hint` is denominated in completions, not time;
//! latency measurement belongs to the benchmark harness.
//!
//! ## Fault containment
//!
//! Every fault inside an admitted request is **caller-local** (the full
//! model and proof obligations live in docs/ROBUSTNESS.md):
//!
//! * the request boundary is a `catch_unwind`; an escaping panic comes
//!   back as [`ServiceError::Internal`] to *that* caller only,
//! * admission slots are RAII drop-guards, so a panicking request can
//!   never strand `inflight`/`queued` accounting or a condvar waiter —
//!   `admitted == completed + failed` holds at quiescence no matter how
//!   requests die,
//! * the gate / registry / cache mutexes **recover and continue** on
//!   poison: every critical section over them is straight-line
//!   arithmetic or a content-addressed cache op whose invariants hold
//!   at every statement, so the state a panicking thread left behind is
//!   always consistent,
//! * a *session* mutex poisoned mid-operation is different — the
//!   operation may have died between compile and commit — so the
//!   session degrades to a typed [`ServiceError::SessionPoisoned`]
//!   state.  [`MapService::remap_full`] is the designated recovery
//!   path: it rebuilds the session's derived state from scratch
//!   ([`RemapSession::rebuild`]) and clears the poison on success;
//!   [`MapService::close_session`] still works (disposal needs no
//!   derived state) and reports the flag.
//!
//! The chaos suite (`tests/chaos.rs`, `fault-injection` feature) proves
//! all of this under deterministic fault injection.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use spmap_model::{artifact_key, ArtifactCache, ArtifactCacheStats, EvalArtifact, Mapping};

use crate::mapper::{try_decomposition_map_with_tables_on, MapperError, MapperResult};
use crate::request::MapRequest;
use crate::runtime::RuntimeConfig;
use crate::session::{Perturbation, RemapError, RemapOutcome, RemapSession};

/// Sizing of a [`MapService`].  The all-zero default defers every
/// bound to its runtime-derived value.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceConfig {
    /// Maximum requests executing concurrently.  `0` selects the shard
    /// count of the parallel runtime — one running request per pool
    /// shard keeps engine batches from queuing on a shared shard.
    pub max_inflight: usize,
    /// Maximum requests waiting for an execution slot beyond
    /// `max_inflight`; the next request is rejected, not buffered.
    pub max_queued: usize,
    /// Byte budget of the artifact cache (`0` selects
    /// [`spmap_model::DEFAULT_ARTIFACT_BUDGET_BYTES`]).
    pub cache_budget_bytes: usize,
    /// Typed runtime knobs (threads, backend, shards).  The default
    /// defers every field to the ambient `SPMAP_*` environment;
    /// explicit fields override it for every request this service runs.
    pub runtime: RuntimeConfig,
}

/// Handle of one open remapping session.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session#{}", self.0)
    }
}

/// A typed failure of one service request.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServiceError {
    /// Admission control rejected the request: the run slots and the
    /// bounded wait queue were both full at arrival.
    Overloaded {
        /// Requests running when this one was rejected.
        inflight: usize,
        /// Requests already waiting when this one was rejected.
        queued: usize,
        /// Completions the service must record before a retry could
        /// drain the current queue and reach an execution slot — a
        /// clock-free backoff hint (the service never reads time).
        retry_hint: u64,
    },
    /// The mapper itself failed (NaN improvement deltas, or an
    /// algorithm family this service cannot execute).
    Mapper(MapperError),
    /// A session operation failed (invalid perturbation, graph patch
    /// error); the session survives and stays usable.
    Session(RemapError),
    /// No open session has this id (never opened, or already closed).
    UnknownSession(SessionId),
    /// A panic escaped the mapping engine while this request ran.  The
    /// fault is contained: the admission slot was released by its drop
    /// guard, shared mutexes recover on their next lock, and concurrent
    /// requests are unaffected (docs/ROBUSTNESS.md).
    Internal {
        /// The service entry point that contained the panic
        /// (`"map"`, `"open_session"`, `"remap"`, `"remap_full"`).
        site: &'static str,
        /// The stringified panic payload.
        payload: String,
    },
    /// The session's lock was poisoned by a panic during a previous
    /// operation on it.  Warm remaps refuse the state;
    /// [`MapService::remap_full`] is the designated recovery path (it
    /// rebuilds the session's derived state from scratch and clears the
    /// poison), and [`MapService::close_session`] disposes of it.
    SessionPoisoned(SessionId),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded {
                inflight,
                queued,
                retry_hint,
            } => write!(
                f,
                "service overloaded: {inflight} requests in flight and {queued} queued; \
                 retry after {retry_hint} completions or raise ServiceConfig::max_queued"
            ),
            ServiceError::Mapper(e) => write!(f, "mapper failed: {e}"),
            ServiceError::Session(e) => write!(f, "session operation failed: {e}"),
            ServiceError::UnknownSession(id) => write!(f, "unknown {id}"),
            ServiceError::Internal { site, payload } => {
                write!(f, "internal fault contained at service {site}: {payload}")
            }
            ServiceError::SessionPoisoned(id) => write!(
                f,
                "{id} is poisoned by a panic in a previous operation; \
                 recover it with remap_full or dispose of it with close_session"
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<MapperError> for ServiceError {
    fn from(e: MapperError) -> Self {
        ServiceError::Mapper(e)
    }
}

impl From<RemapError> for ServiceError {
    fn from(e: RemapError) -> Self {
        match e {
            RemapError::Mapper(m) => ServiceError::Mapper(m),
            other => ServiceError::Session(other),
        }
    }
}

/// One successful one-shot response.
#[derive(Clone, Debug)]
pub struct MapResponse {
    /// The mapper's result, bit-identical to a direct
    /// [`decomposition_map`](crate::decomposition_map) call with the
    /// request's inputs (including the dispatch counters' shard lane).
    pub result: MapperResult,
    /// Whether the evaluation tables came from the artifact cache
    /// (`true`) or were built — and cached — by this request (`false`).
    /// Diagnostic only: both paths produce identical results.
    pub cache_hit: bool,
    /// The content key the tables are cached under.
    pub artifact_key: u128,
}

/// The response of [`MapService::open_session`]: the session handle and
/// its opening full-map result.
#[derive(Clone, Debug)]
pub struct SessionResponse {
    /// Handle for [`MapService::remap`] / [`MapService::close_session`].
    pub id: SessionId,
    /// The initial full map the session's incumbent starts from.
    pub result: MapperResult,
    /// Whether the opening artifact came from the shared cache.
    pub cache_hit: bool,
    /// The session's identity key (the artifact key, re-keyed under the
    /// availability mask when the opening request restricted devices).
    pub session_key: u128,
}

/// The final state a closed session handed back.
#[derive(Clone, Debug)]
pub struct SessionClose {
    /// The closed handle.
    pub id: SessionId,
    /// The session's final incumbent mapping.
    pub mapping: Mapping,
    /// Its makespan under the session's cost model.
    pub makespan: f64,
    /// Remaps the session executed over its lifetime.
    pub remaps: u64,
    /// Whether the session's lock was poisoned (a previous operation on
    /// it panicked) when it was closed.  The returned incumbent is
    /// still the last *committed* one — sessions mutate only at their
    /// commit boundary, never mid-search (docs/ROBUSTNESS.md).
    pub poisoned: bool,
}

/// Lifetime counters of a [`MapService`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests admitted (ran or started waiting for a slot).
    pub admitted: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Requests completed (successfully or with a typed mapper/session
    /// error — a typed refusal is still a completed request).
    pub completed: u64,
    /// Requests that died with a contained panic
    /// ([`ServiceError::Internal`]).  At quiescence,
    /// `admitted == completed + failed` — the chaos suite pins it.
    pub failed: u64,
    /// High-water mark of concurrently running requests — never exceeds
    /// `ServiceConfig::max_inflight` (the stress suite pins this).
    pub peak_inflight: usize,
    /// High-water mark of waiting requests — never exceeds
    /// `ServiceConfig::max_queued`.
    pub peak_queued: usize,
    /// Sessions opened over the service lifetime.
    pub sessions_opened: u64,
    /// Sessions closed over the service lifetime.
    pub sessions_closed: u64,
    /// Warm remaps executed (including empty-neighborhood commits,
    /// excluding pure no-ops).
    pub remaps: u64,
    /// Empty-perturbation remaps (incumbent returned untouched).
    pub remaps_noop: u64,
    /// From-scratch fallback remaps ([`MapService::remap_full`]).
    pub remaps_full: u64,
    /// Artifact-cache counters (hits, misses, evictions, peaks).
    pub cache: ArtifactCacheStats,
}

/// Admission state behind the gate mutex.
struct Gate {
    inflight: usize,
    queued: usize,
    admitted: u64,
    rejected: u64,
    completed: u64,
    failed: u64,
    peak_inflight: usize,
    peak_queued: usize,
    sessions_opened: u64,
    sessions_closed: u64,
    remaps: u64,
    remaps_noop: u64,
    remaps_full: u64,
}

/// The session registry: a plain `Vec` keyed by monotone ids (a map
/// would need hash-order pragmas; the registry holds few live entries
/// and the scan is trivial next to any mapping work).
struct Sessions {
    next: u64,
    live: Vec<(u64, Arc<Mutex<RemapSession>>)>,
}

/// Recover-and-continue lock discipline for the service's shared
/// mutexes (gate, session registry, artifact cache): every critical
/// section over them keeps its invariants at every statement
/// (straight-line counter arithmetic, content-addressed cache ops), so
/// a poison flag left by a panicking thread carries no information and
/// the state is safe to keep using (docs/ROBUSTNESS.md).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Stringify a panic payload (the `&str` / `String` cases cover every
/// `panic!` in this workspace; anything else is labeled opaquely).
fn panic_payload(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The service's containment boundary: convert an escaping panic into a
/// caller-local [`ServiceError::Internal`].
fn contain<R>(
    site: &'static str,
    f: impl FnOnce() -> Result<R, ServiceError>,
) -> Result<R, ServiceError> {
    // CONTAINMENT: panics unwind into `ServiceError::Internal { site }`
    // for this caller only.  Recovery: the admission slot is released
    // by its `SlotGuard` drop during the unwind; gate/registry/cache
    // mutexes recover-and-continue on their next `lock()`; a session
    // mutex caught mid-operation surfaces as `SessionPoisoned` and is
    // recovered by `remap_full` (rebuild-from-scratch) or disposed by
    // `close_session`.  `AssertUnwindSafe` is sound under exactly that
    // policy: no state observed after the catch can be mid-mutation
    // (docs/ROBUSTNESS.md).
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(outcome) => outcome,
        Err(payload) => Err(ServiceError::Internal {
            site,
            payload: panic_payload(payload.as_ref()),
        }),
    }
}

/// One held admission slot.  Dropping it releases the slot, records the
/// outcome (`completed` by default, `failed` after
/// [`SlotGuard::mark_failed`]) and wakes one queued waiter — on *every*
/// exit path, including an unwind, which is what makes the admission
/// accounting panic-proof.
struct SlotGuard<'a> {
    svc: &'a MapService,
    failed: bool,
}

impl SlotGuard<'_> {
    /// Record this request as `failed` (contained panic) instead of
    /// `completed` when the slot is released.
    fn mark_failed(&mut self) {
        self.failed = true;
    }
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        let mut g = lock(&self.svc.gate);
        g.inflight -= 1;
        if self.failed {
            g.failed += 1;
        } else {
            g.completed += 1;
        }
        drop(g);
        self.svc.slot_cv.notify_one();
    }
}

/// What a session operation does when it finds the session's mutex
/// poisoned by a previous panic.
enum PoisonPolicy {
    /// Return [`ServiceError::SessionPoisoned`]; the caller must route
    /// through [`MapService::remap_full`] (or close the session).
    Refuse,
    /// Rebuild the session's derived state from scratch
    /// ([`RemapSession::rebuild`]) and clear the poison on success.
    Recover,
}

/// A long-lived mapping service; see the module docs.  Cheap to share
/// (`Arc<MapService>`) and safe to call from any number of threads.
pub struct MapService {
    max_inflight: usize,
    max_queued: usize,
    runtime: RuntimeConfig,
    gate: Mutex<Gate>,
    /// Signalled when a run slot frees up.
    slot_cv: Condvar,
    cache: Arc<Mutex<ArtifactCache>>,
    sessions: Mutex<Sessions>,
}

impl MapService {
    /// A service sized by `cfg` (see [`ServiceConfig`] for the `0` =
    /// auto conventions).
    pub fn new(cfg: ServiceConfig) -> Self {
        let max_inflight = if cfg.max_inflight == 0 {
            cfg.runtime.shards()
        } else {
            cfg.max_inflight
        };
        Self {
            max_inflight,
            max_queued: cfg.max_queued,
            runtime: cfg.runtime,
            gate: Mutex::new(Gate {
                inflight: 0,
                queued: 0,
                admitted: 0,
                rejected: 0,
                completed: 0,
                failed: 0,
                peak_inflight: 0,
                peak_queued: 0,
                sessions_opened: 0,
                sessions_closed: 0,
                remaps: 0,
                remaps_noop: 0,
                remaps_full: 0,
            }),
            slot_cv: Condvar::new(),
            cache: Arc::new(Mutex::new(ArtifactCache::new(cfg.cache_budget_bytes))),
            sessions: Mutex::new(Sessions {
                next: 0,
                live: Vec::new(),
            }),
        }
    }

    /// The effective concurrent-execution bound.
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Execute the one-shot `request` on the calling thread, waiting
    /// for an execution slot if all are busy and queue room remains.
    ///
    /// Returns [`ServiceError::Overloaded`] without blocking when both
    /// the run slots and the bounded wait queue are full, and
    /// [`ServiceError::Mapper`] if the mapper itself fails (or the
    /// request names an algorithm family this service cannot run —
    /// [`Algo::Ga`](crate::Algo::Ga) routes through
    /// `spmap_ga::nsga2_map_request`); either way the slot accounting
    /// is restored.  A panic inside the engine is contained to this
    /// caller as [`ServiceError::Internal`] — the slot guard releases
    /// during the unwind, so concurrent requests are unaffected.
    pub fn map(&self, request: &MapRequest) -> Result<MapResponse, ServiceError> {
        let mut slot = self.admit()?;
        let outcome = contain("map", || self.with_runtime_backend(|| self.run(request)));
        if matches!(outcome, Err(ServiceError::Internal { .. })) {
            slot.mark_failed();
        }
        outcome
    }

    /// The pre-PR-9 name of [`MapService::map`].
    #[deprecated(note = "renamed to MapService::map — the unified MapRequest surface")]
    pub fn submit(&self, request: &MapRequest) -> Result<MapResponse, ServiceError> {
        self.map(request)
    }

    /// Open a remapping session: run `request`'s initial full map under
    /// admission control and register the session that owns its result.
    /// The session shares this service's artifact cache, so sessions
    /// over the same graph reuse one table build — and a later one-shot
    /// [`MapService::map`] of that graph hits too.
    pub fn open_session(&self, request: &MapRequest) -> Result<SessionResponse, ServiceError> {
        let mut slot = self.admit()?;
        let outcome = contain("open_session", || {
            let session = self
                .with_runtime_backend(|| RemapSession::open(request, Some(Arc::clone(&self.cache))))
                .map_err(ServiceError::from)?;
            let result = session.initial().clone();
            let cache_hit = session.initial_cache_hit();
            let session_key = session.session_key();
            let id = {
                let mut s = lock(&self.sessions);
                let id = s.next;
                s.next += 1;
                s.live.push((id, Arc::new(Mutex::new(session))));
                SessionId(id)
            };
            lock(&self.gate).sessions_opened += 1;
            Ok(SessionResponse {
                id,
                result,
                cache_hit,
                session_key,
            })
        });
        if matches!(outcome, Err(ServiceError::Internal { .. })) {
            slot.mark_failed();
        }
        outcome
    }

    /// Warm-start remap session `id` against `perturbations` (see
    /// [`RemapSession::remap`]), under the same admission discipline as
    /// one-shot requests.  Remaps on distinct sessions run concurrently;
    /// remaps on the same session serialize on its lock.
    ///
    /// A session whose lock a previous panic poisoned is refused with
    /// [`ServiceError::SessionPoisoned`] — recover it through
    /// [`MapService::remap_full`].
    pub fn remap(
        &self,
        id: SessionId,
        perturbations: &[Perturbation],
    ) -> Result<RemapOutcome, ServiceError> {
        let mut slot = self.admit()?;
        let outcome = contain("remap", || {
            self.run_on_session(id, PoisonPolicy::Refuse, |s| s.remap(perturbations))
        });
        match &outcome {
            Ok(out) => {
                let mut g = lock(&self.gate);
                if out.noop {
                    g.remaps_noop += 1;
                } else {
                    g.remaps += 1;
                }
            }
            Err(ServiceError::Internal { .. }) => slot.mark_failed(),
            Err(_) => {}
        }
        outcome
    }

    /// The from-scratch fallback on session `id`'s patched state (see
    /// [`RemapSession::remap_full`]): same compiled perturbations, no
    /// warm start.  The benchmark harness races this against
    /// [`MapService::remap`]; production callers want it when a
    /// perturbation invalidates most of the incumbent.
    ///
    /// This is also the designated recovery path for a session whose
    /// lock a previous panic poisoned: the session's derived state is
    /// rebuilt from scratch ([`RemapSession::rebuild`]) and the poison
    /// cleared before the remap runs (docs/ROBUSTNESS.md).
    pub fn remap_full(
        &self,
        id: SessionId,
        perturbations: &[Perturbation],
    ) -> Result<RemapOutcome, ServiceError> {
        let mut slot = self.admit()?;
        let outcome = contain("remap_full", || {
            self.run_on_session(id, PoisonPolicy::Recover, |s| s.remap_full(perturbations))
        });
        match &outcome {
            Ok(out) => {
                let mut g = lock(&self.gate);
                if out.noop {
                    g.remaps_noop += 1;
                } else {
                    g.remaps_full += 1;
                }
            }
            Err(ServiceError::Internal { .. }) => slot.mark_failed(),
            Err(_) => {}
        }
        outcome
    }

    /// Close session `id`, returning its final incumbent.  Cheap (no
    /// mapping work), so it bypasses admission control; a remap already
    /// running on the session finishes on its own handle but the
    /// registry entry is gone either way.
    pub fn close_session(&self, id: SessionId) -> Result<SessionClose, ServiceError> {
        let entry = {
            let mut s = lock(&self.sessions);
            match s.live.iter().position(|(sid, _)| *sid == id.0) {
                None => return Err(ServiceError::UnknownSession(id)),
                Some(i) => s.live.remove(i).1,
            }
        };
        let closed = {
            // Disposal needs no derived state, so a poisoned session is
            // still closeable: the session mutates only at its commit
            // boundary, so the incumbent read here is the last
            // committed one even after a mid-operation panic.  The flag
            // is reported, not hidden.
            let (sess, poisoned) = match entry.lock() {
                Ok(g) => (g, false),
                Err(p) => (p.into_inner(), true),
            };
            SessionClose {
                id,
                mapping: sess.incumbent().clone(),
                makespan: sess.incumbent_makespan(),
                remaps: sess.remaps(),
                poisoned,
            }
        };
        lock(&self.gate).sessions_closed += 1;
        Ok(closed)
    }

    /// Live session count (diagnostic).
    pub fn open_sessions(&self) -> usize {
        lock(&self.sessions).live.len()
    }

    /// Lifetime counters (gate and cache), taken atomically per lock.
    pub fn stats(&self) -> ServiceStats {
        let g = lock(&self.gate);
        let cache = lock(&self.cache).stats();
        ServiceStats {
            admitted: g.admitted,
            rejected: g.rejected,
            completed: g.completed,
            failed: g.failed,
            peak_inflight: g.peak_inflight,
            peak_queued: g.peak_queued,
            sessions_opened: g.sessions_opened,
            sessions_closed: g.sessions_closed,
            remaps: g.remaps,
            remaps_noop: g.remaps_noop,
            remaps_full: g.remaps_full,
            cache,
        }
    }

    /// Run `f` under this service's configured dispatch backend.  A
    /// `None` backend preserves the caller's ambient parallel context
    /// (explicit > environment precedence lives in `spmap-par`);
    /// backend choice cannot change results, only dispatch counters.
    fn with_runtime_backend<R>(&self, f: impl FnOnce() -> R) -> R {
        match self.runtime.backend {
            Some(b) => spmap_par::with_backend(b, f),
            None => f(),
        }
    }

    /// Find session `id` and run `f` on it under its lock and the
    /// configured backend.  `poison` picks what to do when a previous
    /// panic poisoned the session's lock: refuse with
    /// [`ServiceError::SessionPoisoned`], or rebuild-and-recover.
    fn run_on_session<R>(
        &self,
        id: SessionId,
        poison: PoisonPolicy,
        f: impl FnOnce(&mut RemapSession) -> Result<R, RemapError>,
    ) -> Result<R, ServiceError> {
        let entry = {
            let s = lock(&self.sessions);
            match s.live.iter().find(|(sid, _)| *sid == id.0) {
                None => return Err(ServiceError::UnknownSession(id)),
                Some((_, sess)) => Arc::clone(sess),
            }
        };
        let mut sess = match entry.lock() {
            Ok(guard) => guard,
            Err(poisoned) => match poison {
                PoisonPolicy::Refuse => return Err(ServiceError::SessionPoisoned(id)),
                PoisonPolicy::Recover => {
                    // Rebuild the session's derived state from scratch
                    // before trusting it; the poison is cleared only on
                    // a successful rebuild, so a failed recovery leaves
                    // the session refusable (and retryable) rather than
                    // silently half-recovered.
                    let mut guard = poisoned.into_inner();
                    self.with_runtime_backend(|| guard.rebuild())
                        .map_err(ServiceError::from)?;
                    entry.clear_poison();
                    guard
                }
            },
        };
        let out = self.with_runtime_backend(|| f(&mut sess));
        out.map_err(ServiceError::from)
    }

    /// Acquire a run slot or reject; the returned guard releases the
    /// slot on drop (on every exit path, including unwinds).
    fn admit(&self) -> Result<SlotGuard<'_>, ServiceError> {
        let mut g = lock(&self.gate);
        if g.inflight >= self.max_inflight {
            if g.queued >= self.max_queued {
                g.rejected += 1;
                return Err(ServiceError::Overloaded {
                    inflight: g.inflight,
                    queued: g.queued,
                    // The whole queue plus this request must drain
                    // through execution slots before a retry runs.
                    retry_hint: g.queued as u64 + 1,
                });
            }
            g.admitted += 1;
            g.queued += 1;
            g.peak_queued = g.peak_queued.max(g.queued);
            while g.inflight >= self.max_inflight {
                g = self.slot_cv.wait(g).unwrap_or_else(|e| e.into_inner());
            }
            g.queued -= 1;
        } else {
            g.admitted += 1;
        }
        g.inflight += 1;
        g.peak_inflight = g.peak_inflight.max(g.inflight);
        Ok(SlotGuard {
            svc: self,
            failed: false,
        })
    }

    /// The cached-or-built artifact path plus the mapper run.
    fn run(&self, request: &MapRequest) -> Result<MapResponse, ServiceError> {
        let mut cfg = request.mapper_config()?;
        // Precedence: explicit request > service runtime > environment.
        if cfg.engine.threads.is_none() {
            cfg.engine.threads = self.runtime.threads;
        }
        if cfg.engine.checkpoint_budget_bytes == 0 {
            cfg.engine.checkpoint_budget_bytes = self.runtime.checkpoint_budget_bytes;
        }
        let key = artifact_key(&request.graph, &request.platform, cfg.engine.numbering);
        let (artifact, cache_hit) = {
            let hit = lock(&self.cache).lookup(key);
            match hit {
                Some(a) => (a, true),
                None => {
                    // Build outside the cache lock — table construction
                    // is the expensive part, and a concurrent request
                    // for a *different* graph must not wait behind it.
                    // A racing builder of the same key is resolved by
                    // `insert`: the first resident build wins and both
                    // requests share it.
                    crate::faults::fault_point(crate::faults::FaultSite::ArtifactBuild);
                    let built = Arc::new(EvalArtifact::build(
                        Arc::clone(&request.graph),
                        Arc::clone(&request.platform),
                        cfg.engine.numbering,
                    ));
                    let shared = lock(&self.cache).insert(built);
                    (shared, false)
                }
            }
        };
        let result = try_decomposition_map_with_tables_on(
            artifact.tables(),
            &cfg,
            request.limits.devices.as_deref(),
        )?;
        Ok(MapResponse {
            result,
            cache_hit,
            artifact_key: key,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{decomposition_map, MapperConfig};
    use spmap_graph::gen::{random_sp_graph, SpGenConfig};
    use spmap_graph::{augment, AugmentConfig};
    use spmap_model::Platform;

    fn request(seed: u64) -> MapRequest {
        let mut g = random_sp_graph(&SpGenConfig::new(24, seed));
        augment(&mut g, &AugmentConfig::default(), seed);
        MapRequest::from_mapper_config(
            Arc::new(g),
            Arc::new(Platform::reference()),
            &MapperConfig::sp_first_fit(),
        )
    }

    #[test]
    fn service_matches_direct_mapper_cold_and_warm() {
        let svc = MapService::new(ServiceConfig::default());
        let req = request(3);
        let cfg = req.mapper_config().expect("decomposition family");
        let direct = decomposition_map(&req.graph, &req.platform, &cfg);
        let cold = svc.map(&req).expect("cold run");
        let warm = svc.map(&req).expect("warm run");
        assert!(!cold.cache_hit);
        assert!(warm.cache_hit, "second identical request must hit");
        for r in [&cold, &warm] {
            assert_eq!(r.result.mapping, direct.mapping);
            assert_eq!(r.result.makespan, direct.makespan);
            assert_eq!(r.result.history, direct.history);
            assert_eq!(r.result.batch, direct.batch);
        }
        let stats = svc.stats();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 1);
    }

    #[test]
    fn zero_queue_service_rejects_over_capacity() {
        // max_inflight = 1, max_queued = 0: with a request holding the
        // slot, a second submission is rejected, not buffered.  The
        // holder is simulated through the internal gate so the test
        // needs no timing.
        let svc = MapService::new(ServiceConfig {
            max_inflight: 1,
            max_queued: 0,
            ..ServiceConfig::default()
        });
        let slot = svc.admit().expect("first slot");
        let err = svc.map(&request(1)).expect_err("must reject");
        assert_eq!(
            err,
            ServiceError::Overloaded {
                inflight: 1,
                queued: 0,
                retry_hint: 1,
            }
        );
        drop(slot);
        assert!(svc.map(&request(1)).is_ok(), "slot freed");
        let stats = svc.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.peak_inflight, 1);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.admitted, stats.completed + stats.failed);
    }

    #[test]
    fn queued_submissions_wait_and_complete() {
        // 4 threads through a 1-slot service with queue room for all:
        // everything completes, nothing rejected, inflight never
        // exceeds 1.
        let svc = Arc::new(MapService::new(ServiceConfig {
            max_inflight: 1,
            max_queued: 3,
            ..ServiceConfig::default()
        }));
        let req = request(5);
        let cfg = req.mapper_config().expect("decomposition family");
        let direct = decomposition_map(&req.graph, &req.platform, &cfg);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let svc = Arc::clone(&svc);
                let req = req.clone();
                std::thread::spawn(move || svc.map(&req).expect("admitted"))
            })
            .collect();
        for h in handles {
            let resp = h.join().expect("no panic");
            assert_eq!(resp.result.mapping, direct.mapping);
            assert_eq!(resp.result.makespan, direct.makespan);
        }
        let stats = svc.stats();
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.peak_inflight, 1, "gate must serialize");
        assert!(stats.peak_queued <= 3);
        assert_eq!(stats.cache.misses, 1, "one build, three hits");
        assert_eq!(stats.cache.hits, 3);
    }

    #[test]
    fn mapper_errors_release_the_slot() {
        use spmap_graph::{GraphBuilder, Task};
        let mut b = GraphBuilder::new();
        b.add_task(Task {
            complexity: f64::INFINITY,
            data_points: 1e7,
            parallelizability: 0.5,
            streamability: 1.0,
            area: 10.0,
            ..Task::default()
        });
        let req = MapRequest::from_mapper_config(
            Arc::new(b.build().unwrap()),
            Arc::new(Platform::reference()),
            &MapperConfig::single_node(),
        );
        let svc = MapService::new(ServiceConfig {
            max_inflight: 1,
            max_queued: 0,
            ..ServiceConfig::default()
        });
        let err = svc.map(&req).expect_err("NaN deltas must surface");
        assert!(matches!(
            err,
            ServiceError::Mapper(MapperError::NanDelta { .. })
        ));
        // The slot was released despite the error.
        assert!(svc.map(&request(2)).is_ok());
        assert_eq!(svc.stats().completed, 2);
    }

    #[test]
    fn session_lifecycle_counts_and_shares_the_cache() {
        let svc = MapService::new(ServiceConfig::default());
        let req = request(7);
        let opened = svc.open_session(&req).expect("open");
        assert!(!opened.cache_hit, "first build is a miss");
        assert_eq!(svc.open_sessions(), 1);
        // A one-shot map of the same graph hits the session's build.
        let shot = svc.map(&req).expect("one-shot");
        assert!(shot.cache_hit);
        assert_eq!(shot.result.mapping, opened.result.mapping);
        // Empty remap: incumbent bits, counted as a no-op.
        let noop = svc.remap(opened.id, &[]).expect("noop");
        assert!(noop.noop);
        assert_eq!(noop.mapping, opened.result.mapping);
        let closed = svc.close_session(opened.id).expect("close");
        assert_eq!(closed.mapping, opened.result.mapping);
        assert_eq!(svc.open_sessions(), 0);
        assert!(matches!(
            svc.remap(opened.id, &[]),
            Err(ServiceError::UnknownSession(_))
        ));
        let stats = svc.stats();
        assert_eq!(stats.sessions_opened, 1);
        assert_eq!(stats.sessions_closed, 1);
        assert_eq!(stats.remaps_noop, 1);
        assert_eq!(stats.remaps, 0);
    }

    #[test]
    fn ga_requests_are_refused_with_a_typed_error() {
        use crate::request::{Algo, GaParams};
        let svc = MapService::new(ServiceConfig::default());
        let req = request(4).with_algo(Algo::Ga(GaParams::default()));
        assert!(matches!(
            svc.map(&req),
            Err(ServiceError::Mapper(MapperError::UnsupportedAlgo { .. }))
        ));
        // The slot was released despite the refusal.
        assert!(svc.map(&request(4)).is_ok());
    }
}

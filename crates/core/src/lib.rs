//! # spmap-core — decomposition-based task mapping
//!
//! The paper's primary contribution (§III): a greedy mapping loop that
//!
//! 1. starts from the all-CPU default mapping,
//! 2. evaluates, with the *full model-based evaluator*, every candidate
//!    operation "map subgraph S to device d" from a linear-size subgraph
//!    set,
//! 3. applies the operation with the highest makespan improvement,
//! 4. repeats until no operation improves the makespan.
//!
//! Subgraph sets come from `spmap-decomp`: every single node (§III-B,
//! [`SubgraphStrategy::SingleNode`]) or the series-parallel decomposition
//! operations (§III-C, [`SubgraphStrategy::SeriesParallel`]).
//!
//! Search variants (§III-D):
//!
//! * [`SearchHeuristic::Exhaustive`] — re-evaluate every operation in
//!   every iteration (the "basic" variant of the paper's figures),
//! * [`SearchHeuristic::GammaThreshold`] — order operations by their
//!   *expected* improvement (from the previous evaluation) in a priority
//!   queue and, once an actual improvement `Δ` is found, only look ahead
//!   at operations whose expectation exceeds `Δ/γ`.  `γ = 1` is the
//!   paper's **FirstFit** mapping.
//!
//! Because the evaluator is deterministic and every applied operation
//! strictly improves the makespan, the algorithm terminates; an iteration
//! cap of `n` bounds degenerate cases (§III-A).
//!
//! ## The candidate evaluation engine
//!
//! Both heuristics route their inner loop through [`CandidateBatch`]
//! (module [`batch`]): all candidate moves of one iteration are settled
//! as a batch using content-keyed memoization, exact lower-bound
//! pruning, and parallel *windowed* re-simulation (each candidate
//! replays only the schedule suffix it can affect, aborting as soon as
//! it provably cannot beat the incumbent).  Results are bit-identical
//! to the serial scan — [`decomposition_map_reference`] keeps the
//! original implementation as the executable specification, and
//! `tests/equivalence.rs` plus `docs/PERF.md` carry the proof burden.

pub mod batch;
pub mod faults;
pub mod mapper;
pub mod population;
pub mod request;
pub mod runtime;
pub mod service;
pub mod session;
pub mod threshold;

pub use batch::{
    BatchStats, CandidateBatch, DeltaOp, EngineConfig, TablesSource, DEFAULT_MEMO_CAPACITY,
    MAX_SCHEDULES,
};
pub use faults::{FaultKind, FaultSchedule, FaultSite, INJECTED_PANIC_PREFIX};
#[allow(deprecated)]
pub use mapper::try_decomposition_map_with_tables;
pub use mapper::{
    decomposition_map, decomposition_map_reference, try_decomposition_map,
    try_decomposition_map_reference, CostModel, MapperConfig, MapperError, MapperResult, OpId,
    SearchHeuristic, SubgraphStrategy,
};
pub use population::{
    trie_order, DeltaCandidate, EvalOrder, PopBase, PopulationConfig, PopulationEval,
    PopulationStats,
};
pub use request::{map_request, Algo, GaParams, Limits, MapRequest};
pub use runtime::RuntimeConfig;
pub use service::{
    MapResponse, MapService, ServiceConfig, ServiceError, ServiceStats, SessionClose, SessionId,
    SessionResponse,
};
pub use session::{AttachEdge, Perturbation, RemapError, RemapOutcome, RemapSession};
// Dispatch-counter surface of the parallel runtime, re-exported so
// downstream crates (e.g. `spmap-ga`) can carry the counters on their
// results without a direct `spmap-par` dependency.
pub use spmap_par::DispatchStats;
// Table-layout knob of the evaluation kernel, re-exported so engine
// configs can be built without a direct `spmap-model` dependency.
pub use spmap_model::Numbering;

//! The incremental + parallel candidate evaluation engine.
//!
//! Both search heuristics of the decomposition mapper spend essentially
//! all of their time evaluating candidate operations "map subgraph `S` to
//! device `d`" against the full model-based evaluator.  The seed
//! implementation ran one strictly serial `O((V+E) log V)` simulation per
//! candidate per iteration.  [`CandidateBatch`] replaces that inner loop
//! with three stacked optimizations, none of which changes any result
//! (see `docs/PERF.md` for the exactness arguments):
//!
//! 1. **Memoization by mapping content.**  The evaluator is a pure
//!    function of the full mapping, so makespans are memoized under the
//!    mapping's Zobrist fingerprint (`spmap_model::MappingFingerprint`),
//!    maintained in `O(k)` per candidate with `k` remapped tasks.  A memo
//!    entry can never go stale — keying by content is the sound
//!    refinement of "invalidate when an applied move intersects the
//!    candidate's region": after a committed move, a candidate hits
//!    exactly when its resulting full mapping was already evaluated
//!    (e.g. every device-variant and every enclosing subgraph of the
//!    committed operation).
//! 2. **Exact lower-bound pruning.**  A candidate is skipped without
//!    simulation when a cheap lower bound on its resulting makespan
//!    already proves it cannot *strictly* beat the incumbent improvement
//!    (or the improvement threshold).  The bound combines per-device
//!    serialization loads, per-link transfer loads and single-task spans,
//!    all maintained incrementally — and is deflated by a relative safety
//!    margin so float drift can never flip a true improvement into a
//!    prune.  Ties are therefore never pruned, and the serial
//!    first-lowest-index tie-break is preserved bit for bit.
//! 3. **Parallel simulation.**  Candidates that survive 1–2 are simulated
//!    in fixed-size chunks through `spmap_par::par_map_with`, one
//!    reusable [`spmap_model::EvalScratch`] (plus mapping copy) per
//!    worker against a shared immutable [`spmap_model::EvalTables`].
//!    Results are reduced serially in candidate-index order, so thread
//!    arrival order can never influence a tie-break, and
//!    `SPMAP_THREADS=1` degenerates to the serial fast path with zero
//!    thread spawns.
//!
//! All three layers generalize to the paper's *reporting metric*
//! (`CostModel::Report`): a candidate is then scored by the minimum
//! makespan over a fixed set of schedules (BFS + `k` seeded random
//! topological orders, [`spmap_model::ReportSchedules`]).  Each schedule
//! keeps its own base-mapping checkpoint trail
//! ([`spmap_model::CheckpointSet`]) so every schedule of a candidate's
//! sweep is windowed from its own earliest affected position; schedules
//! of one candidate run under a *running* cutoff (`min(incumbent
//! cutoff, best schedule so far)` — an aborted schedule provably cannot
//! be the reported minimum); and completed per-schedule makespans are
//! memoized under `(fingerprint, schedule)` so partially-swept mappings
//! resume where they left off.  The BFS cost model is simply the
//! single-schedule instance of the same path.

use std::collections::HashMap;

use spmap_graph::{NodeId, TaskGraph};
use spmap_model::{
    CheckpointSet, DeviceId, EvalScratch, EvalTables, Mapping, MappingFingerprint, Numbering,
    Platform, ReportSchedules, WindowSim,
};
use spmap_par::{par_map_with_threads, DispatchStats, WorkerStates};

use crate::mapper::{CostModel, OpId, REL_EPS};

/// Schedule-set size cap: candidates track their unresolved schedules in
/// a `u64` bitmask, so at most 63 random schedules ride on top of BFS.
/// Far beyond the paper's `k` (§IV-A uses a handful).
pub const MAX_SCHEDULES: usize = 64;

/// Relative safety margin by which candidate lower bounds are deflated
/// before they may prune: the incremental load bookkeeping performs a
/// handful of f64 adds per candidate (error ~1e-15 relative), so 1e-9
/// guarantees a bound can never exceed the true makespan's neighborhood
/// and flip a tie or a true improvement into a prune.
const BOUND_SLACK: f64 = 1e-9;

/// Default memo capacity: generous (a million entries is ~50 MB per memo)
/// but bounded, so multi-hour sweep runs on huge graphs cannot grow the
/// memos without limit.  `0` disables eviction entirely.
pub const DEFAULT_MEMO_CAPACITY: usize = 1 << 20;

/// A makespan memo with access-generation-stamped LRU eviction.
///
/// Every read and write stamps the entry with a monotonically increasing
/// access generation.  When an insert pushes the map past `capacity`, the
/// oldest half of the entries (by stamp) is evicted in one batch —
/// amortized `O(1)` bookkeeping per insert, and the map never exceeds
/// `capacity` entries.  Eviction can never change a result: memo entries
/// are pure values (the makespan of a mapping content), so losing one
/// merely costs a re-simulation.  All reads and writes happen on the
/// serial reduce path, so the stamp sequence — and with it the eviction
/// pattern — is deterministic and thread-invariant.
#[derive(Clone, Debug)]
pub(crate) struct BoundedMemo<K> {
    map: HashMap<K, (f64, u64)>,
    clock: u64,
    capacity: usize,
    evictions: u64,
    peak: usize,
}

impl<K: std::hash::Hash + Eq + Copy> BoundedMemo<K> {
    /// An empty memo holding at most `capacity` entries (`0` = unbounded).
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            clock: 0,
            capacity,
            evictions: 0,
            peak: 0,
        }
    }

    /// Look up `k`, refreshing its LRU stamp on a hit.
    pub(crate) fn get(&mut self, k: &K) -> Option<f64> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(k).map(|e| {
            e.1 = clock;
            e.0
        })
    }

    /// Insert (or refresh) `k -> v`.  When a new key would push the map
    /// past `capacity`, the oldest half of the entries is evicted first,
    /// so the map never exceeds `capacity` — not even transiently.
    pub(crate) fn insert(&mut self, k: K, v: f64) {
        self.clock += 1;
        if self.capacity != 0 && self.map.len() >= self.capacity && !self.map.contains_key(&k) {
            self.evict();
        }
        self.map.insert(k, (v, self.clock));
        if self.map.len() > self.peak {
            self.peak = self.map.len();
        }
        // The "never exceeds capacity, not even transiently" contract
        // above (docs/DETERMINISM.md).
        #[cfg(feature = "strict-invariants")]
        assert!(
            self.capacity == 0 || self.map.len() <= self.capacity,
            "strict-invariants: memo grew past its capacity ({} > {})",
            self.map.len(),
            self.capacity
        );
    }

    /// Drop the oldest entries so a new insert still fits: only the
    /// newest `capacity / 2` (at most `capacity - 1`) survive.  Stamps
    /// are unique (the clock increments on every touch), so the cutoff
    /// is exact and deterministic.
    fn evict(&mut self) {
        let keep = (self.capacity / 2).min(self.capacity - 1);
        let drop = self.map.len() - keep;
        // lint:allow(no-unordered-iteration): collecting stamps to select an exact cutoff — any visit order yields the same multiset, and stamps are unique.
        let mut stamps: Vec<u64> = self.map.values().map(|&(_, s)| s).collect();
        // Stamp uniqueness is what makes the eviction cutoff exact and
        // iteration-order-independent; a duplicate would make the set of
        // survivors depend on hash order (docs/DETERMINISM.md).
        #[cfg(feature = "strict-invariants")]
        {
            let mut sorted = stamps.clone();
            sorted.sort_unstable();
            let n = sorted.len();
            sorted.dedup();
            assert_eq!(
                sorted.len(),
                n,
                "strict-invariants: duplicate LRU stamps in memo eviction"
            );
        }
        let (_, &mut cutoff, _) = stamps.select_nth_unstable(drop - 1);
        // lint:allow(no-unordered-iteration): retain by a pure per-entry stamp predicate — the surviving set is order-independent.
        self.map.retain(|_, &mut (_, s)| s > cutoff);
        debug_assert_eq!(self.map.len(), keep);
        self.evictions += drop as u64;
    }

    /// Number of live entries.
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Total entries evicted over this memo's lifetime.
    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Largest entry count ever held (≤ capacity when one is set).
    pub(crate) fn peak(&self) -> usize {
        self.peak
    }
}

/// Tuning knobs of the candidate engine.  The defaults are what
/// `decomposition_map` uses; the ablation switches exist for benchmarks
/// and tests (e.g. the equivalence suite runs all 2×2 combinations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker thread count; `None` reads `SPMAP_THREADS` / the machine
    /// parallelism via `spmap_par::num_threads`.
    pub threads: Option<usize>,
    /// Candidates simulated per parallel dispatch.  Fixed (not derived
    /// from the thread count) so the exhaustive path's set of simulated
    /// candidates — and with it every statistic — is identical for any
    /// worker count.  (The γ-threshold search's *speculation wave* does
    /// scale with the worker count, so its counters are only
    /// reproducible for a fixed thread configuration; results are
    /// always identical.)
    pub chunk_size: usize,
    /// Enable exact lower-bound pruning.
    pub prune: bool,
    /// Enable content-keyed memoization.
    pub memo: bool,
    /// Entry cap for each of the two memos (the full-mapping memo and the
    /// `(fingerprint, schedule)` memo), enforced by generation-stamped
    /// LRU eviction; `0` = unbounded.  Eviction only ever costs
    /// re-simulation — it cannot change any result.
    pub memo_capacity: usize,
    /// Node numbering of the evaluation tables' per-node arrays.  A pure
    /// layout choice — results are bit-identical either way; the
    /// pop-order default keeps the simulation kernel near-sequential at
    /// 10k–100k nodes (see docs/PERF.md "Scale tier").
    pub numbering: Numbering,
    /// Pin every checkpoint store to the dense snapshot layout even when
    /// the numbering would allow suffix-sparse snapshots (ablation /
    /// bit-identity test cells; dense costs ~2× the snapshot bytes).
    pub dense_checkpoints: bool,
    /// Per-trail checkpoint byte budget: the snapshot interval widens
    /// until one schedule's snapshot trail fits (`0` = the 32 MiB
    /// default, [`spmap_model::DEFAULT_CHECKPOINT_BUDGET_BYTES`]).
    /// Purely a memory/replay-length trade — never affects results.
    pub checkpoint_budget_bytes: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: None,
            chunk_size: 64,
            prune: true,
            memo: true,
            memo_capacity: DEFAULT_MEMO_CAPACITY,
            numbering: Numbering::default(),
            dense_checkpoints: false,
            checkpoint_budget_bytes: 0,
        }
    }
}

impl EngineConfig {
    /// Effective worker count.  An explicit `Some(n)` is honored
    /// verbatim (tests rely on really getting `n` workers); only the
    /// `None` default is capped at the machine's parallelism, because
    /// candidate simulation is CPU-bound and oversubscribed workers
    /// only add scheduling overhead.
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            Some(n) => n.max(1),
            None => {
                let cores = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                spmap_par::num_threads().clamp(1, cores)
            }
        }
    }
}

/// Where the engine's candidate verdicts came from, accumulated over a
/// whole mapper run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Candidates settled by a full list-schedule simulation.
    pub simulated: u64,
    /// Candidates settled by a memoized makespan (no simulation).
    pub memo_hits: u64,
    /// Candidates skipped because their lower bound proved they cannot
    /// win the iteration.
    pub pruned: u64,
    /// Candidate simulations aborted mid-run by the makespan cutoff
    /// (`finish + up_min > cutoff`): strictly worse than the incumbent,
    /// proven before the schedule completed.
    pub aborted: u64,
    /// Candidates skipped without simulation as no-ops or FPGA-area
    /// infeasible (decided by incremental bookkeeping alone).
    pub trivial: u64,
    /// Individual schedule re-simulations run to completion (one
    /// candidate is a sweep of up to `schedules + 1` of these in
    /// `report_makespan` mode; exactly one in BFS mode).
    pub sched_simulated: u64,
    /// Individual schedule re-simulations aborted by the per-candidate
    /// *running* cutoff (`min(incumbent cutoff, best schedule so far)`).
    pub sched_aborted: u64,
    /// Schedule makespans answered by the `(fingerprint, schedule)` memo
    /// without re-simulation.
    pub sched_memo_hits: u64,
    /// Entries dropped from the full-mapping memo by LRU eviction.
    pub memo_evictions: u64,
    /// Entries dropped from the `(fingerprint, schedule)` memo by LRU
    /// eviction.
    pub sched_memo_evictions: u64,
    /// Largest entry count the full-mapping memo ever held (stays at or
    /// below `EngineConfig::memo_capacity` when a capacity is set).
    pub memo_peak: u64,
    /// Largest entry count the `(fingerprint, schedule)` memo ever held.
    pub sched_memo_peak: u64,
}

impl BatchStats {
    /// All candidate decisions made.
    pub fn total(&self) -> u64 {
        self.simulated + self.memo_hits + self.pruned + self.aborted + self.trivial
    }

    /// Fraction of non-trivial candidates answered from the memo.
    pub fn memo_hit_rate(&self) -> f64 {
        let denom = self.simulated + self.memo_hits;
        if denom == 0 {
            0.0
        } else {
            self.memo_hits as f64 / denom as f64
        }
    }
}

/// A multi-assignment candidate: reassign every listed node to its
/// paired device, relative to the engine's current base mapping.
///
/// This generalizes the engine's original "single op: subgraph → one
/// device" candidates — a [`DeltaOp`] may move different nodes to
/// different devices in one candidate.  Fingerprints, FPGA-area sums
/// and lower bounds are maintained in `O(k)` for `k` reassignments
/// (plus their incident edges), and windowed re-simulation starts at
/// the minimum earliest-read position over all changed nodes, per
/// schedule.  Entries whose node already sits on the listed device are
/// ignored; a node must appear at most once.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct DeltaOp {
    /// The `(node, new device)` reassignments of this candidate.
    pub changes: Vec<(NodeId, DeviceId)>,
}

impl DeltaOp {
    /// A delta moving every node of `changes` to its paired device.
    pub fn new(changes: Vec<(NodeId, DeviceId)>) -> Self {
        Self { changes }
    }
}

/// Per-worker state: an evaluation scratch plus a private mapping copy
/// that is lazily re-synced to the engine's base mapping.
struct Worker {
    scratch: EvalScratch,
    mapping: Mapping,
    undo: Vec<(NodeId, DeviceId)>,
    generation: u64,
}

/// A candidate evaluation awaiting simulation.
struct Pending {
    /// Position in the caller's op slice (for writing the delta back).
    slot: usize,
    op: OpId,
    fp: u128,
    /// Upper bound on the achievable improvement (`+inf` when pruning is
    /// off).
    bound: f64,
    /// Ordering key: the candidate's improvement when last evaluated
    /// (best-first scanning raises the incumbent — and with it the
    /// cutoff — as early as possible).
    expected: f64,
    /// Bitmask of schedules still needing a window simulation (bit `s` =
    /// schedule `s`); schedules answered by the `(fp, schedule)` memo
    /// are cleared.
    mask: u64,
    /// Minimum over the memo-answered schedules (`+inf` if none): the
    /// starting value of the candidate's running best.
    best_known: f64,
}

/// Worker-side outcome of one candidate's multi-schedule sweep.
struct CandidateSim {
    /// `min(best_known, completed schedule makespans)` — the candidate's
    /// exact report makespan whenever `aborted == 0` or the value is at
    /// or below the incumbent cutoff (see `evaluate_ops`).
    best: f64,
    /// Number of schedule simulations that ran to completion.
    completed: u32,
    /// `(schedule, makespan)` of the completed schedules, destined for
    /// the `(fp, schedule)` memo.  Populated only when banking is on
    /// (memoization enabled *and* more than one schedule); an empty
    /// `Vec` never allocates, so the single-schedule BFS hot path stays
    /// allocation-free per candidate.
    banked: Vec<(u32, f64)>,
    /// Schedule simulations aborted by the running cutoff.
    aborted: u32,
}

/// Where a [`CandidateBatch`]'s evaluation tables come from: built for
/// this run (the classic path) or borrowed from a shared, pre-built
/// artifact (the service path, where repeat graphs skip table
/// construction entirely).  `Deref` makes the two indistinguishable to
/// the engine — every `self.tables.…` site reads through it.
// One instance lives per engine (never in collections), so the size
// spread between the owned tables and the borrow is irrelevant.
#[allow(clippy::large_enum_variant)]
pub enum TablesSource<'g> {
    /// Tables built by and owned by this engine.
    Owned(EvalTables<'g>),
    /// Tables shared from a longer-lived owner (e.g. a cached
    /// `EvalArtifact`).  Immutable, so sharing cannot perturb results.
    Shared(&'g EvalTables<'g>),
}

impl<'g> std::ops::Deref for TablesSource<'g> {
    type Target = EvalTables<'g>;

    #[inline]
    fn deref(&self) -> &EvalTables<'g> {
        match self {
            TablesSource::Owned(t) => t,
            TablesSource::Shared(t) => t,
        }
    }
}

/// The candidate evaluation engine of one mapper run: shared immutable
/// [`EvalTables`], the current mapping with its fingerprint and load
/// aggregates, the makespan memo, and one worker state per thread.
pub struct CandidateBatch<'g> {
    tables: TablesSource<'g>,
    subgraphs: Vec<Vec<NodeId>>,
    devices: Vec<DeviceId>,
    cfg: EngineConfig,
    threads: usize,
    workers: WorkerStates<Worker>,
    mapping: Mapping,
    fingerprint: MappingFingerprint,
    generation: u64,
    /// Current (best committed) makespan under the configured cost model
    /// (BFS, or min over the report schedules).
    cur: f64,
    /// Exact cost-model makespans keyed by mapping fingerprint, bounded
    /// by `EngineConfig::memo_capacity` via LRU eviction.
    memo: BoundedMemo<u128>,
    /// The fixed schedule set the cost model sweeps: `[BFS]` in BFS mode,
    /// `[BFS, k random topological orders]` in `report_makespan` mode.
    schedules: ReportSchedules,
    /// Exact *per-schedule* makespans keyed by `(fingerprint, schedule)`
    /// — a candidate aborted under the running cutoff still banks every
    /// schedule value it did complete.  Unused (empty) with a single
    /// schedule, where `memo` already is the schedule-0 memo.  Bounded by
    /// `EngineConfig::memo_capacity` via LRU eviction.
    sched_memo: BoundedMemo<(u128, u32)>,
    /// Per-schedule makespans of the current base mapping.
    base_sched: Vec<f64>,
    // --- incrementally maintained aggregates of the base mapping ---
    /// Per *temporal* device: sum of mapped execution times (0 for FPGAs).
    dev_load: Vec<f64>,
    /// Per directed link `from*m+to`: sum of crossing transfer times.
    link_load: Vec<f64>,
    /// Per FPGA device: mapped area (0 for others).
    area_used: Vec<f64>,
    /// Static bound: `max_v min_d exec(v, d)` — some task must run.
    max_min_exec: f64,
    /// Critical-path scores of the base mapping, sorted descending:
    /// `(path_floor(v) + span(v, base device), v)`.  The best score whose
    /// node is *outside* a candidate's region is a sound path bound that
    /// survives the candidate unchanged.
    path_scores: Vec<(f64, u32)>,
    /// Base state snapshots, one store per schedule (rebuilt on every
    /// commit), for windowed candidate re-simulation under any schedule.
    checkpoints: CheckpointSet,
    /// Per-op improvement when last evaluated (`+inf` before the first
    /// evaluation) — the best-first scan order of `evaluate_ops`.
    expected: Vec<f64>,
    /// Region membership stamps for O(1) "is node in candidate" tests.
    mark: Vec<u64>,
    /// Target device of each node stamped in the current candidate
    /// region (valid only where `mark[v] == mark_gen`): single-op
    /// candidates stamp one shared device, [`DeltaOp`] candidates stamp
    /// one device per reassigned node.
    target: Vec<DeviceId>,
    mark_gen: u64,
    stats: BatchStats,
    /// The engine thread's `spmap_par` dispatch counters at
    /// construction; [`Self::dispatch`] diffs against this to report how
    /// this run's batches were dispatched (serial / scoped / pool).
    dispatch_base: DispatchStats,
}

impl<'g> CandidateBatch<'g> {
    /// Build the BFS-cost engine for one run: tables, the all-default
    /// base mapping, and its aggregates.
    pub fn new(
        graph: &'g TaskGraph,
        platform: &'g Platform,
        subgraphs: Vec<Vec<NodeId>>,
        devices: Vec<DeviceId>,
        cfg: EngineConfig,
    ) -> Self {
        Self::with_cost(graph, platform, subgraphs, devices, cfg, CostModel::Bfs)
    }

    /// Build the engine for one run under an explicit cost model.  With
    /// [`CostModel::Report`], every candidate is scored by the minimum
    /// makespan over the fixed schedule set, each schedule windowed from
    /// its own checkpoint trail.
    pub fn with_cost(
        graph: &'g TaskGraph,
        platform: &'g Platform,
        subgraphs: Vec<Vec<NodeId>>,
        devices: Vec<DeviceId>,
        cfg: EngineConfig,
        cost: CostModel,
    ) -> Self {
        let tables = EvalTables::with_numbering(graph, platform, cfg.numbering);
        Self::from_source(
            TablesSource::Owned(tables),
            subgraphs,
            devices,
            cfg,
            cost,
            None,
        )
    }

    /// Build the engine on *pre-built* shared tables (e.g. from a cached
    /// `EvalArtifact`), skipping table construction.  Because the tables
    /// are immutable and every engine input beyond them is per-run, an
    /// engine on shared tables is bit-identical to one that built its
    /// own — cold and warm cache cannot diverge.
    ///
    /// # Panics
    ///
    /// If `cfg.numbering` disagrees with the numbering the tables were
    /// laid out under (a mismatched artifact would silently evaluate a
    /// different interior order).
    pub fn with_shared_tables(
        tables: &'g EvalTables<'g>,
        subgraphs: Vec<Vec<NodeId>>,
        devices: Vec<DeviceId>,
        cfg: EngineConfig,
        cost: CostModel,
    ) -> Self {
        assert_eq!(
            cfg.numbering,
            tables.numbering(),
            "shared tables were built under a different numbering than the engine config"
        );
        Self::from_source(
            TablesSource::Shared(tables),
            subgraphs,
            devices,
            cfg,
            cost,
            None,
        )
    }

    /// [`Self::with_shared_tables`], warm-started from an explicit base
    /// mapping instead of the all-default one.  The engine's incremental
    /// machinery is base-agnostic — aggregates, memo seeds and
    /// checkpoint trails are all rebuilt from whatever base it starts
    /// on — so a remapping session can resume search from an incumbent
    /// mapping with every exactness guarantee intact.
    ///
    /// # Panics
    ///
    /// If the numberings disagree (as in [`Self::with_shared_tables`]),
    /// if `base.len()` differs from the graph's node count, or if the
    /// base mapping is infeasible under the tables' platform.
    pub fn with_shared_tables_warm(
        tables: &'g EvalTables<'g>,
        subgraphs: Vec<Vec<NodeId>>,
        devices: Vec<DeviceId>,
        cfg: EngineConfig,
        cost: CostModel,
        base: Mapping,
    ) -> Self {
        assert_eq!(
            cfg.numbering,
            tables.numbering(),
            "shared tables were built under a different numbering than the engine config"
        );
        assert_eq!(
            base.len(),
            tables.graph().node_count(),
            "warm-start base mapping does not match the graph's node count"
        );
        Self::from_source(
            TablesSource::Shared(tables),
            subgraphs,
            devices,
            cfg,
            cost,
            Some(base),
        )
    }

    fn from_source(
        tables: TablesSource<'g>,
        subgraphs: Vec<Vec<NodeId>>,
        devices: Vec<DeviceId>,
        cfg: EngineConfig,
        cost: CostModel,
        base: Option<Mapping>,
    ) -> Self {
        let graph = tables.graph();
        let platform = tables.platform();
        let schedules = match cost {
            CostModel::Bfs => ReportSchedules::bfs_only(graph),
            CostModel::Report { schedules, seed } => {
                assert!(
                    schedules < MAX_SCHEDULES,
                    "at most {} random report schedules (got {schedules}); \
                     widen the candidate schedule bitmask in spmap-core/src/batch.rs",
                    MAX_SCHEDULES - 1
                );
                ReportSchedules::new(graph, schedules, seed)
            }
        };
        let threads = cfg.effective_threads();
        let mapping = base.unwrap_or_else(|| Mapping::all_default(graph, platform));
        let workers = WorkerStates::new(threads, |_| Worker {
            scratch: EvalScratch::for_tables(&tables),
            mapping: mapping.clone(),
            undo: Vec::with_capacity(graph.node_count()),
            generation: 0,
        });
        let max_min_exec = graph
            .nodes()
            .map(|v| tables.min_exec_time(v))
            .fold(0.0, f64::max);
        let n = graph.node_count();
        let op_count = subgraphs.len() * devices.len();
        let mut engine = Self {
            fingerprint: MappingFingerprint::of(&mapping),
            generation: 1,
            cur: 0.0,
            memo: BoundedMemo::new(cfg.memo_capacity),
            sched_memo: BoundedMemo::new(cfg.memo_capacity),
            base_sched: vec![0.0; schedules.len()],
            dev_load: Vec::new(),
            link_load: Vec::new(),
            area_used: Vec::new(),
            max_min_exec,
            path_scores: Vec::new(),
            checkpoints: CheckpointSet::for_schedules_budgeted(
                &schedules,
                n,
                cfg.checkpoint_budget_bytes,
                cfg.dense_checkpoints,
            ),
            expected: vec![f64::INFINITY; op_count],
            mark: vec![0; n],
            target: vec![DeviceId(0); n],
            mark_gen: 0,
            stats: BatchStats::default(),
            dispatch_base: spmap_par::dispatch_stats(),
            tables,
            schedules,
            subgraphs,
            devices,
            cfg,
            threads,
            workers,
            mapping,
        };
        engine.rebuild_aggregates();
        engine.cur = engine.simulate_base().expect("base mapping is feasible");
        engine.memoize_base();
        engine
    }

    /// The shared evaluation tables.
    pub fn tables(&self) -> &EvalTables<'g> {
        &self.tables
    }

    /// The candidate subgraph set.
    pub fn subgraphs(&self) -> &[Vec<NodeId>] {
        &self.subgraphs
    }

    /// The device list.
    pub fn devices(&self) -> &[DeviceId] {
        &self.devices
    }

    /// Number of candidate operations (`subgraphs × devices`).
    pub fn op_count(&self) -> usize {
        self.subgraphs.len() * self.devices.len()
    }

    /// The `(subgraph, device)` of an operation id.
    #[inline]
    pub fn op_parts(&self, op: OpId) -> (&[NodeId], DeviceId) {
        let m = self.devices.len();
        (&self.subgraphs[op / m], self.devices[op % m])
    }

    /// Effective worker thread count of this engine.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The current base mapping.
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// The current (best committed) makespan.
    pub fn current_makespan(&self) -> f64 {
        self.cur
    }

    /// `true` if `delta` is a real improvement on the current makespan
    /// (guards against float-noise cycles, like the serial reference).
    #[inline]
    pub fn improves(&self, delta: f64) -> bool {
        delta > self.cur * REL_EPS
    }

    /// Candidate-decision counters accumulated so far (including the
    /// memos' live eviction counters and peak sizes).
    pub fn stats(&self) -> BatchStats {
        let mut s = self.stats;
        s.memo_evictions = self.memo.evictions();
        s.sched_memo_evictions = self.sched_memo.evictions();
        s.memo_peak = self.memo.peak() as u64;
        s.sched_memo_peak = self.sched_memo.peak() as u64;
        s
    }

    /// How this engine's parallel batches were dispatched so far
    /// (serial fast path / scoped spawns / persistent-pool wakes) —
    /// the calling thread's `spmap_par` counters since construction.
    /// Unlike [`Self::stats`], these counters *do* vary with the thread
    /// count and backend; that variation is their purpose (they price
    /// the dispatch overhead a configuration paid), which is why they
    /// live beside, not inside, the thread-invariant [`BatchStats`].
    pub fn dispatch(&self) -> DispatchStats {
        spmap_par::dispatch_stats().since(&self.dispatch_base)
    }

    /// Largest single checkpoint trail currently held (bytes) — the
    /// per-trail number [`EngineConfig::checkpoint_budget_bytes`]
    /// gates.  Shapes are fixed once the base schedules are recorded,
    /// so "current" is also the peak.
    pub fn checkpoint_peak_bytes(&self) -> u64 {
        self.checkpoints.max_store_bytes() as u64
    }

    /// Current entry count of the full-mapping memo.
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }

    /// Current entry count of the `(fingerprint, schedule)` memo.
    pub fn sched_memo_len(&self) -> usize {
        self.sched_memo.len()
    }

    /// Total full simulations run so far (all workers).
    pub fn evaluations(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| w.scratch.stats().evaluations)
            .sum()
    }

    /// Evaluate the improvement delta of every operation in `ops`
    /// against the current makespan, in one batch.
    ///
    /// Returns one delta per op, in input order: `cur - makespan(op)`,
    /// or `NEG_INFINITY` for no-ops, area-infeasible candidates and —
    /// when `prune` is on — candidates whose bound proves they cannot
    /// strictly beat the best delta of this batch (such candidates can
    /// never be committed, so the mapper's choice is unaffected).
    ///
    /// The returned deltas are bit-identical to serial re-simulation of
    /// every op; only the amount of work spent differs.
    pub fn evaluate_ops(&mut self, ops: &[OpId], prune: bool) -> Vec<f64> {
        // An Error-kind injected fault degrades the sweep into NaN
        // deltas, which every driver (full search, threshold search,
        // session warm remap) converts to a typed
        // `MapperError::NanDelta` — the engine's one typed error path.
        if crate::faults::fault_point(crate::faults::FaultSite::CandidateSweep) {
            return vec![f64::NAN; ops.len()];
        }
        let threshold = self.cur * REL_EPS;
        let mut deltas = vec![f64::NEG_INFINITY; ops.len()];
        let mut pending: Vec<Pending> = Vec::with_capacity(ops.len());
        // Incumbent: the best delta already known in this batch (memo
        // hits count — they are exact).  Only *strictly* better bounds
        // may prune, so ties always go to simulation and the
        // lowest-index winner is preserved.
        let mut incumbent = f64::NEG_INFINITY;
        for (slot, &op) in ops.iter().enumerate() {
            match self.classify(op, prune) {
                Verdict::Trivial => {
                    self.stats.trivial += 1;
                    if prune {
                        self.expected[op] = f64::NEG_INFINITY;
                    }
                }
                Verdict::Memoized(ms) => {
                    self.stats.memo_hits += 1;
                    let delta = self.cur - ms;
                    deltas[slot] = delta;
                    if prune {
                        self.expected[op] = delta;
                    }
                    if delta > incumbent {
                        incumbent = delta;
                    }
                }
                Verdict::Simulate {
                    fp,
                    bound,
                    mask,
                    best_known,
                } => {
                    pending.push(Pending {
                        slot,
                        op,
                        fp,
                        bound,
                        expected: self.expected[op],
                        mask,
                        best_known,
                    });
                }
            }
        }
        if prune {
            // Best-first by last-known improvement (index-ascending on
            // ties, so the order — and with it every statistic — is
            // deterministic): the incumbent and the simulation cutoff
            // tighten as early as possible.
            pending.sort_by(|a, b| b.expected.total_cmp(&a.expected).then(a.op.cmp(&b.op)));
        }
        let chunk_size = self.cfg.chunk_size.max(1);
        let mut next = 0usize;
        while next < pending.len() {
            let cut = max_beatable(threshold, incumbent);
            if prune {
                // A candidate is provably out when its bound cannot
                // strictly beat the incumbent, or cannot clear the
                // improvement threshold at all.  Equality with the
                // incumbent is NOT pruned: a lower-index tie must win.
                while next < pending.len() && cannot_win(pending[next].bound, incumbent, threshold)
                {
                    self.expected[pending[next].op] = pending[next].bound;
                    self.stats.pruned += 1;
                    next += 1;
                }
                if next >= pending.len() {
                    break;
                }
            }
            let mut end = (next + chunk_size).min(pending.len());
            if prune {
                // Trim the tail of the chunk likewise.
                while end > next + 1 && cannot_win(pending[end - 1].bound, incumbent, threshold) {
                    end -= 1;
                }
            }
            let chunk = &pending[next..end];
            // The cutoff a candidate must *strictly* exceed to be proven
            // useless; ties survive, so index-order tie-breaks hold.
            let cutoff = if prune { self.cur - cut } else { f64::INFINITY };
            let results = self.simulate_chunk(chunk, cutoff);
            for (p, r) in chunk.iter().zip(&results) {
                self.stats.sched_simulated += u64::from(r.completed);
                self.stats.sched_aborted += u64::from(r.aborted);
                // `banked` is populated only with memoization on and >1
                // schedule (empty otherwise).
                for &(s, ms) in &r.banked {
                    self.sched_memo.insert((p.fp, s), ms);
                }
                // The candidate's sweep minimum is exact when every
                // schedule resolved to a value, or when it lands at or
                // below the incumbent cutoff (every aborted schedule is
                // then *strictly* above it, so the min is unaffected —
                // the running-cutoff argument in docs/PERF.md).
                if r.aborted == 0 || r.best <= cutoff {
                    let delta = self.cur - r.best;
                    deltas[p.slot] = delta;
                    self.stats.simulated += 1;
                    if prune {
                        self.expected[p.op] = delta;
                    }
                    if self.cfg.memo {
                        self.memo.insert(p.fp, r.best);
                    }
                    if delta > incumbent {
                        incumbent = delta;
                    }
                } else {
                    // Every schedule proved > cutoff: delta < cut,
                    // strictly — never the winner.
                    self.stats.aborted += 1;
                    if prune {
                        self.expected[p.op] = p.bound.min(cut);
                    }
                }
            }
            next = end;
        }
        deltas
    }

    /// Evaluate the improvement of every multi-assignment candidate in
    /// `deltas` against the current base mapping, in one batch — the
    /// multi-move generalization of [`Self::evaluate_ops`].
    ///
    /// Returns one improvement per candidate, in input order: `cur -
    /// makespan(base with the delta applied)`, or `NEG_INFINITY` for
    /// no-op deltas, area-infeasible candidates and — when `prune` is
    /// on — candidates whose lower bound proves they cannot *strictly*
    /// beat the best improvement of this batch.  All the `evaluate_ops`
    /// guarantees carry over: every schedule of a candidate is windowed
    /// from the minimum earliest-read position over its changed nodes
    /// under that schedule, ties are never pruned, and every returned
    /// (non-pruned) improvement is bit-identical to a serial
    /// from-scratch re-simulation of the delta.
    pub fn evaluate_deltas(&mut self, deltas: &[DeltaOp], prune: bool) -> Vec<f64> {
        let threshold = self.cur * REL_EPS;
        let mut out = vec![f64::NEG_INFINITY; deltas.len()];
        let mut pending: Vec<Pending> = Vec::with_capacity(deltas.len());
        let mut incumbent = f64::NEG_INFINITY;
        for (slot, delta) in deltas.iter().enumerate() {
            match self.classify_delta(delta, prune) {
                Verdict::Trivial => self.stats.trivial += 1,
                Verdict::Memoized(ms) => {
                    self.stats.memo_hits += 1;
                    let d = self.cur - ms;
                    out[slot] = d;
                    if d > incumbent {
                        incumbent = d;
                    }
                }
                Verdict::Simulate {
                    fp,
                    bound,
                    mask,
                    best_known,
                } => {
                    // Deltas carry no persistent identity across calls,
                    // so the best-first scan orders by the bound itself.
                    pending.push(Pending {
                        slot,
                        op: slot,
                        fp,
                        bound,
                        expected: bound,
                        mask,
                        best_known,
                    });
                }
            }
        }
        if prune {
            pending.sort_by(|a, b| b.expected.total_cmp(&a.expected).then(a.op.cmp(&b.op)));
        }
        let chunk_size = self.cfg.chunk_size.max(1);
        let mut next = 0usize;
        while next < pending.len() {
            let cut = max_beatable(threshold, incumbent);
            if prune {
                while next < pending.len() && cannot_win(pending[next].bound, incumbent, threshold)
                {
                    self.stats.pruned += 1;
                    next += 1;
                }
                if next >= pending.len() {
                    break;
                }
            }
            let mut end = (next + chunk_size).min(pending.len());
            if prune {
                while end > next + 1 && cannot_win(pending[end - 1].bound, incumbent, threshold) {
                    end -= 1;
                }
            }
            let chunk = &pending[next..end];
            let cutoff = if prune { self.cur - cut } else { f64::INFINITY };
            let results = self.simulate_delta_chunk(chunk, deltas, cutoff);
            for (p, r) in chunk.iter().zip(&results) {
                self.stats.sched_simulated += u64::from(r.completed);
                self.stats.sched_aborted += u64::from(r.aborted);
                for &(s, ms) in &r.banked {
                    self.sched_memo.insert((p.fp, s), ms);
                }
                if r.aborted == 0 || r.best <= cutoff {
                    let d = self.cur - r.best;
                    out[p.slot] = d;
                    self.stats.simulated += 1;
                    if self.cfg.memo {
                        self.memo.insert(p.fp, r.best);
                    }
                    if d > incumbent {
                        incumbent = d;
                    }
                } else {
                    self.stats.aborted += 1;
                }
            }
            next = end;
        }
        out
    }

    /// Apply `op` permanently: update the mapping, fingerprint, load
    /// aggregates and current makespan.
    pub fn commit(&mut self, op: OpId) {
        let (sub, d) = self.op_parts(op);
        let changed: Vec<(NodeId, DeviceId)> = sub
            .iter()
            .filter_map(|&v| {
                let old = self.mapping.device(v);
                (old != d).then_some((v, old))
            })
            .collect();
        debug_assert!(!changed.is_empty(), "committing a no-op");
        for &(v, old) in &changed {
            self.fingerprint.toggle(v, old, d);
            self.mapping.set(v, d);
        }
        self.generation += 1;
        // Exact rebuild instead of incremental update: commits are rare
        // (≤ n per run) and a fresh O(V + E) accumulation keeps the load
        // aggregates free of float drift across iterations.  The base
        // simulation is always re-run (never memo-answered) because it
        // also records the per-schedule snapshot trails every window
        // needs.
        self.rebuild_aggregates();
        self.cur = self
            .simulate_base()
            .expect("committed operations are feasible");
        self.memoize_base();
    }

    /// Classify one candidate without simulating it.
    fn classify(&mut self, op: OpId, prune: bool) -> Verdict {
        let m = self.devices.len();
        let dm = self.tables.device_count();
        let d = self.devices[op % m];
        let sub = &self.subgraphs[op / m];
        // Mark the changed region and fold its effects in one pass.
        self.mark_gen += 1;
        let mark_gen = self.mark_gen;
        let mut fp = self.fingerprint;
        let mut any = false;
        let mut area = [0.0f64; 8];
        area[..dm].copy_from_slice(&self.area_used);
        for &v in sub {
            let old = self.mapping.device(v);
            if old == d {
                continue;
            }
            any = true;
            self.mark[v.index()] = mark_gen;
            self.target[v.index()] = d;
            fp.toggle(v, old, d);
            if self.tables.is_fpga_device(old) {
                area[old.index()] -= self.tables.task_area(v);
            }
            if self.tables.is_fpga_device(d) {
                area[d.index()] += self.tables.task_area(v);
            }
        }
        if !any {
            return Verdict::Trivial;
        }
        for (dev, &used) in area.iter().enumerate().take(dm) {
            let id = DeviceId(dev as u32);
            if !self.tables.is_fpga_device(id) {
                continue;
            }
            let limit = self.tables.area_capacity(id) + 1e-9;
            // The incremental sum and the evaluator's fresh node-order
            // sum can disagree in the last ulps.  Decisions far from the
            // limit are unaffected; hairline cases are re-decided with
            // the exact accumulation the reference path uses, so the
            // feasibility verdict can never diverge from it.
            let guard = 1e-12 * (1.0 + limit.abs());
            let over = if (used - limit).abs() <= guard {
                self.exact_candidate_area(id) > limit
            } else {
                used > limit
            };
            if over {
                return Verdict::Trivial;
            }
        }
        if self.cfg.memo {
            if let Some(ms) = self.memo.get(&fp.value()) {
                return Verdict::Memoized(ms);
            }
        }
        // Partial sweep reuse: any schedule whose makespan for this exact
        // mapping is already banked under `(fp, schedule)` is cleared
        // from the simulation mask; its value seeds the running best.
        let s_count = self.schedules.len();
        let mut mask: u64 = u64::MAX >> (64 - s_count as u32);
        let mut best_known = f64::INFINITY;
        if self.cfg.memo && s_count > 1 {
            for s in 0..s_count {
                if let Some(ms) = self.sched_memo.get(&(fp.value(), s as u32)) {
                    mask &= !(1 << s);
                    self.stats.sched_memo_hits += 1;
                    if ms < best_known {
                        best_known = ms;
                    }
                }
            }
            if mask == 0 {
                // Every schedule known: the min is the exact report
                // makespan — promote it to the full-mapping memo.
                self.memo.insert(fp.value(), best_known);
                return Verdict::Memoized(best_known);
            }
        }
        let bound = if prune {
            self.cur - self.candidate_lower_bound(sub.iter().map(|&v| (v, d))) * (1.0 - BOUND_SLACK)
        } else {
            f64::INFINITY
        };
        Verdict::Simulate {
            fp: fp.value(),
            bound,
            mask,
            best_known,
        }
    }

    /// Classify one [`DeltaOp`] candidate without simulating it — the
    /// multi-assignment generalization of [`Self::classify`], sharing
    /// the stamped-region bookkeeping, the memos and the lower bound.
    /// Fingerprint, area and bound maintenance are all `O(k)` in the
    /// number of reassigned nodes (plus their incident edges).
    ///
    /// The post-marking tail (area guard, memo probes, schedule mask,
    /// bound) deliberately mirrors [`Self::classify`] line for line
    /// instead of sharing a helper: the op path borrows its subgraph
    /// from `self.subgraphs` across the tail, so a `&mut self` helper
    /// cannot take the moved-node iterator without an allocation on the
    /// memo-hit fast path.  Changes to either tail must be applied to
    /// both.
    fn classify_delta(&mut self, delta: &DeltaOp, prune: bool) -> Verdict {
        let dm = self.tables.device_count();
        // Mark the changed region and fold its effects in one pass.
        self.mark_gen += 1;
        let mark_gen = self.mark_gen;
        let mut fp = self.fingerprint;
        let mut any = false;
        let mut area = [0.0f64; 8];
        area[..dm].copy_from_slice(&self.area_used);
        for &(v, d) in &delta.changes {
            // A real (non-no-op) reassignment of the same node twice
            // would silently corrupt the fingerprint and poison the
            // shared memo in release builds — fail loudly instead (the
            // compare is one load against an already-hot stamp line).
            assert!(
                self.mark[v.index()] != mark_gen,
                "DeltaOp reassigns node {v:?} twice"
            );
            let old = self.mapping.device(v);
            if old == d {
                continue;
            }
            any = true;
            self.mark[v.index()] = mark_gen;
            self.target[v.index()] = d;
            fp.toggle(v, old, d);
            if self.tables.is_fpga_device(old) {
                area[old.index()] -= self.tables.task_area(v);
            }
            if self.tables.is_fpga_device(d) {
                area[d.index()] += self.tables.task_area(v);
            }
        }
        if !any {
            return Verdict::Trivial;
        }
        for (dev, &used) in area.iter().enumerate().take(dm) {
            let id = DeviceId(dev as u32);
            if !self.tables.is_fpga_device(id) {
                continue;
            }
            let limit = self.tables.area_capacity(id) + 1e-9;
            let guard = 1e-12 * (1.0 + limit.abs());
            let over = if (used - limit).abs() <= guard {
                self.exact_candidate_area(id) > limit
            } else {
                used > limit
            };
            if over {
                return Verdict::Trivial;
            }
        }
        if self.cfg.memo {
            if let Some(ms) = self.memo.get(&fp.value()) {
                return Verdict::Memoized(ms);
            }
        }
        let s_count = self.schedules.len();
        let mut mask: u64 = u64::MAX >> (64 - s_count as u32);
        let mut best_known = f64::INFINITY;
        if self.cfg.memo && s_count > 1 {
            for s in 0..s_count {
                if let Some(ms) = self.sched_memo.get(&(fp.value(), s as u32)) {
                    mask &= !(1 << s);
                    self.stats.sched_memo_hits += 1;
                    if ms < best_known {
                        best_known = ms;
                    }
                }
            }
            if mask == 0 {
                self.memo.insert(fp.value(), best_known);
                return Verdict::Memoized(best_known);
            }
        }
        let bound = if prune {
            self.cur
                - self.candidate_lower_bound(delta.changes.iter().copied()) * (1.0 - BOUND_SLACK)
        } else {
            f64::INFINITY
        };
        Verdict::Simulate {
            fp: fp.value(),
            bound,
            mask,
            best_known,
        }
    }

    /// FPGA area of device `dev` under the current candidate (marked
    /// region moved to its stamped `target` devices), accumulated in
    /// node-index order — the exact sequence
    /// `EvalTables::area_feasible` uses, so the result is bit-identical
    /// to what the reference path would sum.
    fn exact_candidate_area(&self, dev: DeviceId) -> f64 {
        let mut used = 0.0f64;
        for (i, &base_d) in self.mapping.as_slice().iter().enumerate() {
            let d = if self.mark[i] == self.mark_gen {
                self.target[i]
            } else {
                base_d
            };
            if d == dev {
                used += self.tables.task_area(NodeId(i as u32));
            }
        }
        used
    }

    /// An exact lower bound on the makespan of the candidate mapping
    /// (base with every `(v, d_v)` of `moved` applied).  Callers must
    /// have stamped the changed region into `self.mark`/`self.target`
    /// with the current `mark_gen`; pairs whose node is unmarked (no-op
    /// reassignments) are skipped.  Single-op candidates pass every node
    /// with the same device; [`DeltaOp`] candidates pass one device per
    /// node — the arithmetic sequence is identical in the shared case.
    ///
    /// Three sound components, each `≤ makespan` of *any* schedule the
    /// evaluator can produce (see docs/PERF.md for the arguments):
    ///
    /// * temporal device load: tasks on a CPU/GPU serialize,
    /// * directed link load: transfers on one link serialize,
    /// * single-task spans: `max(max_v min_d exec, max_{v moved} exec)`.
    fn candidate_lower_bound<I>(&self, moved: I) -> f64
    where
        I: Iterator<Item = (NodeId, DeviceId)> + Clone,
    {
        let dm = self.tables.device_count();
        let mut dev_load = [0.0f64; 8];
        dev_load[..dm].copy_from_slice(&self.dev_load);
        let mut link_load = [0.0f64; 64];
        link_load[..dm * dm].copy_from_slice(&self.link_load);
        let mut moved_span: f64 = 0.0;
        for (v, d) in moved.clone() {
            if self.mark[v.index()] != self.mark_gen {
                continue; // already on d
            }
            let old = self.mapping.device(v);
            if !self.tables.is_fpga_device(old) {
                dev_load[old.index()] -= self.tables.exec_time(v, old);
            }
            let ev = self.tables.exec_time(v, d);
            if !self.tables.is_fpga_device(d) {
                dev_load[d.index()] += ev;
            }
            moved_span = moved_span.max(ev);
            // Re-route the transfer load of every incident edge.  Edges
            // with both endpoints in the region are handled once, from
            // their source side.
            let g = self.tables.graph();
            for &e in g.out_edges(v) {
                let edge = g.edge(e);
                let w = edge.dst;
                let old_to = self.mapping.device(w);
                let new_to = if self.mark[w.index()] == self.mark_gen {
                    self.target[w.index()]
                } else {
                    old_to
                };
                relink(
                    &mut link_load,
                    dm,
                    edge.bytes,
                    &self.tables,
                    (old, old_to),
                    (d, new_to),
                );
            }
            for &e in g.in_edges(v) {
                let edge = g.edge(e);
                let u = edge.src;
                if self.mark[u.index()] == self.mark_gen {
                    continue; // counted from u's out-edge loop
                }
                let du = self.mapping.device(u);
                relink(
                    &mut link_load,
                    dm,
                    edge.bytes,
                    &self.tables,
                    (du, old),
                    (du, d),
                );
            }
        }
        let mut lb = self.max_min_exec.max(moved_span);
        for &load in dev_load.iter().take(dm) {
            lb = lb.max(load);
        }
        for &load in link_load.iter().take(dm * dm) {
            lb = lb.max(load);
        }
        // Critical-path component.  For every node, `path_floor(v) +
        // span(v, its device)` is a sound makespan bound (docs/PERF.md);
        // nodes outside the region keep their base span, so the best
        // pre-sorted base score not in the region survives as-is, and
        // moved nodes contribute with their span on the target device.
        for &(score, v) in &self.path_scores {
            if score <= lb {
                break; // sorted descending: nothing better follows
            }
            if self.mark[v as usize] != self.mark_gen {
                lb = score;
                break;
            }
        }
        for (v, d) in moved {
            if self.mark[v.index()] != self.mark_gen {
                continue;
            }
            let target_fill = if self.tables.is_fpga_device(d) {
                self.tables.fill_fraction(d)
            } else {
                1.0
            };
            let span = target_fill * self.tables.exec_time(v, d);
            lb = lb.max(self.tables.path_floor(v) + span);
        }
        lb
    }

    /// Simulate the candidates of one chunk in parallel (or serially for
    /// one thread — zero spawns): each worker syncs its private mapping
    /// copy to the base, applies the candidate's moves, and sweeps the
    /// candidate's unresolved schedules — each windowed from the
    /// candidate's first affected position *under that schedule*, with a
    /// running cutoff `min(cutoff, best schedule so far)` (a schedule
    /// aborted by the running cutoff is strictly worse than some other
    /// schedule of the same candidate, so it can never be the reported
    /// minimum).  Returns outcomes in chunk order.  Area feasibility was
    /// prechecked.
    fn simulate_chunk(&mut self, chunk: &[Pending], cutoff: f64) -> Vec<CandidateSim> {
        let tables = &self.tables;
        let schedules = &self.schedules;
        let checkpoints = &self.checkpoints;
        let base = &self.mapping;
        let generation = self.generation;
        let m = self.devices.len();
        let subgraphs = &self.subgraphs;
        let devices = &self.devices;
        let bank = self.cfg.memo && self.schedules.len() > 1;
        par_map_with_threads(self.threads, &mut self.workers, chunk, |w, _, p| {
            // Fires *inside* a pool worker when threads ≥ 2, so an
            // injected panic exercises the pool's panic protocol
            // (first payload wins, batch drains, caller re-raises)
            // before the service boundary contains it.
            crate::faults::fault_point(crate::faults::FaultSite::PoolBatch);
            if w.generation != generation {
                w.mapping.copy_from(base);
                w.generation = generation;
            }
            let d = devices[p.op % m];
            let sub = &subgraphs[p.op / m];
            w.undo.clear();
            for &v in sub {
                let old = w.mapping.device(v);
                if old != d {
                    w.undo.push((v, old));
                    w.mapping.set(v, d);
                }
            }
            let sim = sweep_candidate(tables, schedules, checkpoints, w, p, cutoff, bank);
            for &(v, old) in w.undo.iter().rev() {
                w.mapping.set(v, old);
            }
            sim
        })
    }

    /// [`Self::simulate_chunk`] for [`DeltaOp`] candidates: identical
    /// sweep machinery, but each candidate's moves come from its delta's
    /// explicit `(node, device)` list (`Pending::op` indexes `deltas`).
    fn simulate_delta_chunk(
        &mut self,
        chunk: &[Pending],
        deltas: &[DeltaOp],
        cutoff: f64,
    ) -> Vec<CandidateSim> {
        let tables = &self.tables;
        let schedules = &self.schedules;
        let checkpoints = &self.checkpoints;
        let base = &self.mapping;
        let generation = self.generation;
        let bank = self.cfg.memo && self.schedules.len() > 1;
        par_map_with_threads(self.threads, &mut self.workers, chunk, |w, _, p| {
            if w.generation != generation {
                w.mapping.copy_from(base);
                w.generation = generation;
            }
            w.undo.clear();
            for &(v, d) in &deltas[p.op].changes {
                let old = w.mapping.device(v);
                if old != d {
                    w.undo.push((v, old));
                    w.mapping.set(v, d);
                }
            }
            let sim = sweep_candidate(tables, schedules, checkpoints, w, p, cutoff, bank);
            for &(v, old) in w.undo.iter().rev() {
                w.mapping.set(v, old);
            }
            sim
        })
    }

    /// Simulate the current base mapping on worker 0's scratch under
    /// *every* schedule of the set, recording each schedule's snapshot
    /// trail for windowed re-simulation; returns the cost-model makespan
    /// (min over schedules, folded in schedule order exactly like the
    /// reference metric).
    fn simulate_base(&mut self) -> Option<f64> {
        let scratch = &mut self.workers.first_mut().scratch;
        let mut best: Option<f64> = None;
        for s in 0..self.schedules.len() {
            let ms = self.tables.makespan_order_checkpointed(
                scratch,
                &self.mapping,
                self.schedules.order(s),
                self.checkpoints.get_mut(s),
            )?;
            self.base_sched[s] = ms;
            best = Some(match best {
                None => ms,
                Some(b) => b.min(ms),
            });
        }
        best
    }

    /// Bank the base mapping's exact makespans: the cost-model value
    /// under its fingerprint, and (with several schedules) every
    /// per-schedule value under `(fingerprint, schedule)`.
    fn memoize_base(&mut self) {
        if !self.cfg.memo {
            return;
        }
        let fp = self.fingerprint.value();
        self.memo.insert(fp, self.cur);
        if self.schedules.len() > 1 {
            for (s, &ms) in self.base_sched.iter().enumerate() {
                self.sched_memo.insert((fp, s as u32), ms);
            }
        }
    }

    /// Recompute the load aggregates of the base mapping from scratch.
    fn rebuild_aggregates(&mut self) {
        let dm = self.tables.device_count();
        let g = self.tables.graph();
        self.dev_load.clear();
        self.dev_load.resize(dm, 0.0);
        self.area_used.clear();
        self.area_used.resize(dm, 0.0);
        self.link_load.clear();
        self.link_load.resize(dm * dm, 0.0);
        for v in g.nodes() {
            let d = self.mapping.device(v);
            if self.tables.is_fpga_device(d) {
                self.area_used[d.index()] += self.tables.task_area(v);
            } else {
                self.dev_load[d.index()] += self.tables.exec_time(v, d);
            }
        }
        for e in g.edge_ids() {
            let edge = g.edge(e);
            let from = self.mapping.device(edge.src);
            let to = self.mapping.device(edge.dst);
            if from != to {
                self.link_load[from.index() * dm + to.index()] +=
                    self.tables.transfer_time(edge.bytes, from, to);
            }
        }
        self.path_scores.clear();
        for v in g.nodes() {
            let d = self.mapping.device(v);
            let span = if self.tables.is_fpga_device(d) {
                self.tables.fill_fraction(d) * self.tables.exec_time(v, d)
            } else {
                self.tables.exec_time(v, d)
            };
            self.path_scores
                .push((self.tables.path_floor(v) + span, v.0));
        }
        self.path_scores
            .sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    }
}

/// Sweep the unresolved schedules (`p.mask`) of one candidate whose
/// moves are already applied to `w.mapping` (undo log in `w.undo`):
/// each schedule is windowed from the candidate's minimum earliest-read
/// position over all changed nodes *under that schedule*, under the
/// running cutoff `min(cutoff, best schedule so far)`.  Shared by the
/// single-op and the [`DeltaOp`] simulation paths — the sweep never
/// cares how the moves were described, only which nodes changed.
fn sweep_candidate(
    tables: &EvalTables<'_>,
    schedules: &ReportSchedules,
    checkpoints: &CheckpointSet,
    w: &mut Worker,
    p: &Pending,
    cutoff: f64,
    bank: bool,
) -> CandidateSim {
    let mut best = p.best_known;
    let mut completed = 0u32;
    let mut banked: Vec<(u32, f64)> = Vec::new();
    let mut aborted = 0u32;
    for s in 0..schedules.len() {
        if p.mask & (1 << s) == 0 {
            continue;
        }
        let order = schedules.order(s);
        let from_pos = order.window_start_over(w.undo.iter().map(|&(v, _)| v));
        let running = if best < cutoff { best } else { cutoff };
        match tables.makespan_order_window(
            &mut w.scratch,
            &w.mapping,
            order,
            checkpoints.get(s),
            from_pos,
            running,
        ) {
            WindowSim::Done(ms) => {
                completed += 1;
                if bank {
                    banked.push((s as u32, ms));
                }
                if ms < best {
                    best = ms;
                }
            }
            WindowSim::Cutoff => aborted += 1,
        }
    }
    CandidateSim {
        best,
        completed,
        banked,
        aborted,
    }
}

/// The smallest delta a candidate must strictly beat to matter: the
/// improvement threshold, or the batch incumbent once one exists.
#[inline]
fn max_beatable(threshold: f64, incumbent: f64) -> f64 {
    incumbent.max(threshold)
}

/// `true` if a candidate with improvement upper bound `bound` provably
/// cannot be the committed winner: it cannot *strictly* beat the
/// incumbent (a tie loses to the incumbent only on higher index, so ties
/// must still be simulated), or it cannot clear the improvement
/// threshold (where ties are also non-improvements).
#[inline]
fn cannot_win(bound: f64, incumbent: f64, threshold: f64) -> bool {
    bound < incumbent || bound <= threshold
}

/// Move one edge's transfer-load contribution between links.
#[inline]
fn relink(
    link_load: &mut [f64],
    dm: usize,
    bytes: f64,
    tables: &EvalTables<'_>,
    old: (DeviceId, DeviceId),
    new: (DeviceId, DeviceId),
) {
    if old == new {
        return;
    }
    if old.0 != old.1 {
        link_load[old.0.index() * dm + old.1.index()] -= tables.transfer_time(bytes, old.0, old.1);
    }
    if new.0 != new.1 {
        link_load[new.0.index() * dm + new.1.index()] += tables.transfer_time(bytes, new.0, new.1);
    }
}

/// What the incremental bookkeeping decided about one candidate.
enum Verdict {
    /// No-op or area-infeasible: never an improvement.
    Trivial,
    /// Known cost-model makespan from the memo.
    Memoized(f64),
    /// Needs simulation of the schedules in `mask`; `bound` caps its
    /// achievable delta and `best_known` is the min over the
    /// memo-answered schedules.
    Simulate {
        fp: u128,
        bound: f64,
        mask: u64,
        best_known: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmap_decomp::{series_parallel_subgraphs, CutPolicy};
    use spmap_graph::gen::{random_sp_graph, SpGenConfig};
    use spmap_graph::{augment, AugmentConfig};
    use spmap_model::Evaluator;

    fn setup(seed: u64) -> (TaskGraph, Platform) {
        let mut g = random_sp_graph(&SpGenConfig::new(40, seed));
        augment(&mut g, &AugmentConfig::default(), seed);
        (g, Platform::reference())
    }

    fn engine<'g>(g: &'g TaskGraph, p: &'g Platform, cfg: EngineConfig) -> CandidateBatch<'g> {
        let subgraphs = series_parallel_subgraphs(g, CutPolicy::default())
            .subgraphs()
            .to_vec();
        let devices: Vec<DeviceId> = p.device_ids().collect();
        CandidateBatch::new(g, p, subgraphs, devices, cfg)
    }

    /// Reference deltas: serial probe of every op, exactly like the seed
    /// mapper's inner loop.
    fn reference_deltas(g: &TaskGraph, p: &Platform, eng: &CandidateBatch<'_>) -> Vec<f64> {
        let mut ev = Evaluator::new(g, p);
        let mut mapping = eng.mapping().clone();
        let cur = eng.current_makespan();
        (0..eng.op_count())
            .map(|op| {
                let (sub, d) = eng.op_parts(op);
                let undo: Vec<(NodeId, DeviceId)> = sub
                    .iter()
                    .filter_map(|&v| {
                        let old = mapping.device(v);
                        (old != d).then_some((v, old))
                    })
                    .collect();
                if undo.is_empty() {
                    return f64::NEG_INFINITY;
                }
                for &(v, _) in &undo {
                    mapping.set(v, d);
                }
                let delta = match ev.makespan_bfs(&mapping) {
                    Some(ms) => cur - ms,
                    None => f64::NEG_INFINITY,
                };
                for &(v, old) in undo.iter().rev() {
                    mapping.set(v, old);
                }
                delta
            })
            .collect()
    }

    #[test]
    fn unpruned_batch_matches_serial_probe_bitwise() {
        for seed in [1, 5, 9] {
            let (g, p) = setup(seed);
            let mut eng = engine(
                &g,
                &p,
                EngineConfig {
                    threads: Some(4),
                    memo: false,
                    prune: false,
                    ..EngineConfig::default()
                },
            );
            let ops: Vec<OpId> = (0..eng.op_count()).collect();
            let batch = eng.evaluate_ops(&ops, false);
            let reference = reference_deltas(&g, &p, &eng);
            assert_eq!(batch, reference, "seed {seed}");
        }
    }

    #[test]
    fn pruned_batch_preserves_the_winning_candidate() {
        for seed in [2, 6, 11] {
            let (g, p) = setup(seed);
            let mut eng = engine(
                &g,
                &p,
                EngineConfig {
                    threads: Some(4),
                    ..Default::default()
                },
            );
            let ops: Vec<OpId> = (0..eng.op_count()).collect();
            let pruned = eng.evaluate_ops(&ops, true);
            let reference = reference_deltas(&g, &p, &eng);
            let threshold = eng.current_makespan() * REL_EPS;
            let pick = |d: &[f64]| {
                d.iter().enumerate().filter(|(_, &x)| x > threshold).fold(
                    None::<(usize, f64)>,
                    |best, (i, &x)| {
                        if best.map_or(true, |(_, b)| x > b) {
                            Some((i, x))
                        } else {
                            best
                        }
                    },
                )
            };
            assert_eq!(pick(&pruned), pick(&reference), "seed {seed}");
            assert!(eng.stats().pruned > 0, "pruning fired (seed {seed})");
            // Every non-pruned delta is bit-identical to the reference.
            for (i, (&a, &b)) in pruned.iter().zip(&reference).enumerate() {
                if a != f64::NEG_INFINITY {
                    assert_eq!(a, b, "op {i} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn memo_hits_after_commit_are_exact() {
        let (g, p) = setup(3);
        let mut eng = engine(
            &g,
            &p,
            EngineConfig {
                threads: Some(2),
                ..Default::default()
            },
        );
        let ops: Vec<OpId> = (0..eng.op_count()).collect();
        let deltas = eng.evaluate_ops(&ops, false);
        let threshold = eng.current_makespan() * REL_EPS;
        let (best_op, best_delta) =
            deltas
                .iter()
                .enumerate()
                .fold(
                    (0, f64::NEG_INFINITY),
                    |acc, (i, &d)| {
                        if d > acc.1 {
                            (i, d)
                        } else {
                            acc
                        }
                    },
                );
        assert!(
            best_delta > threshold,
            "test graph must have an improvement"
        );
        let before = eng.current_makespan();
        eng.commit(best_op);
        let expected = before - best_delta;
        assert!(
            (eng.current_makespan() - expected).abs() <= 1e-12 * before,
            "cur after commit"
        );
        // Re-evaluating everything after the commit: results must again
        // match the serial probe, and the committed op's device-variants
        // (same subgraph, other devices) must be answered by the memo.
        let hits_before = eng.stats().memo_hits;
        let again = eng.evaluate_ops(&ops, false);
        let reference = reference_deltas(&g, &p, &eng);
        assert_eq!(again, reference);
        assert!(eng.stats().memo_hits > hits_before, "memo produced hits");
    }

    #[test]
    fn lower_bound_never_exceeds_true_makespan() {
        // The heart of the exactness argument: for every candidate,
        // bound >= true delta (equivalently LB <= true makespan).
        for seed in [4, 7, 13] {
            let (g, p) = setup(seed);
            let mut eng = engine(
                &g,
                &p,
                EngineConfig {
                    threads: Some(1),
                    ..Default::default()
                },
            );
            let reference = reference_deltas(&g, &p, &eng);
            for op in 0..eng.op_count() {
                let verdict = eng.classify(op, true);
                if let Verdict::Simulate { bound, .. } = verdict {
                    let true_delta = reference[op];
                    if true_delta != f64::NEG_INFINITY {
                        assert!(
                            bound >= true_delta,
                            "op {op} seed {seed}: bound {bound} < delta {true_delta}"
                        );
                    }
                }
            }
        }
    }

    fn report_engine<'g>(
        g: &'g TaskGraph,
        p: &'g Platform,
        cfg: EngineConfig,
        k: usize,
        seed: u64,
    ) -> CandidateBatch<'g> {
        let subgraphs = series_parallel_subgraphs(g, CutPolicy::default())
            .subgraphs()
            .to_vec();
        let devices: Vec<DeviceId> = p.device_ids().collect();
        CandidateBatch::with_cost(
            g,
            p,
            subgraphs,
            devices,
            cfg,
            CostModel::Report { schedules: k, seed },
        )
    }

    /// Reference report-mode deltas: serial sweep of every op through
    /// `Evaluator::report_makespan`, exactly like the seed metric.
    fn reference_report_deltas(
        g: &TaskGraph,
        p: &Platform,
        eng: &CandidateBatch<'_>,
        k: usize,
        seed: u64,
    ) -> Vec<f64> {
        let mut ev = Evaluator::new(g, p);
        let mut mapping = eng.mapping().clone();
        let cur = eng.current_makespan();
        (0..eng.op_count())
            .map(|op| {
                let (sub, d) = eng.op_parts(op);
                let undo: Vec<(NodeId, DeviceId)> = sub
                    .iter()
                    .filter_map(|&v| {
                        let old = mapping.device(v);
                        (old != d).then_some((v, old))
                    })
                    .collect();
                if undo.is_empty() {
                    return f64::NEG_INFINITY;
                }
                for &(v, _) in &undo {
                    mapping.set(v, d);
                }
                let delta = match ev.report_makespan(&mapping, k, seed) {
                    Some(ms) => cur - ms,
                    None => f64::NEG_INFINITY,
                };
                for &(v, old) in undo.iter().rev() {
                    mapping.set(v, old);
                }
                delta
            })
            .collect()
    }

    #[test]
    fn report_mode_unpruned_batch_matches_serial_sweep_bitwise() {
        for (seed, k) in [(1u64, 2usize), (5, 4), (9, 3)] {
            let (g, p) = setup(seed);
            let mut eng = report_engine(
                &g,
                &p,
                EngineConfig {
                    threads: Some(4),
                    memo: false,
                    prune: false,
                    ..EngineConfig::default()
                },
                k,
                seed ^ 0xabc,
            );
            let ops: Vec<OpId> = (0..eng.op_count()).collect();
            let batch = eng.evaluate_ops(&ops, false);
            let reference = reference_report_deltas(&g, &p, &eng, k, seed ^ 0xabc);
            assert_eq!(batch, reference, "seed {seed} k {k}");
            assert!(
                eng.stats().sched_aborted > 0,
                "running cutoff should abort some non-minimal schedules (seed {seed})"
            );
        }
    }

    #[test]
    fn report_mode_pruned_batch_preserves_the_winning_candidate() {
        for (seed, k) in [(2u64, 3usize), (6, 2)] {
            let (g, p) = setup(seed);
            let mut eng = report_engine(
                &g,
                &p,
                EngineConfig {
                    threads: Some(4),
                    ..Default::default()
                },
                k,
                seed,
            );
            let ops: Vec<OpId> = (0..eng.op_count()).collect();
            let pruned = eng.evaluate_ops(&ops, true);
            let reference = reference_report_deltas(&g, &p, &eng, k, seed);
            let threshold = eng.current_makespan() * REL_EPS;
            let pick = |d: &[f64]| {
                d.iter().enumerate().filter(|(_, &x)| x > threshold).fold(
                    None::<(usize, f64)>,
                    |best, (i, &x)| {
                        if best.is_none_or(|(_, b)| x > b) {
                            Some((i, x))
                        } else {
                            best
                        }
                    },
                )
            };
            assert_eq!(pick(&pruned), pick(&reference), "seed {seed} k {k}");
            for (i, (&a, &b)) in pruned.iter().zip(&reference).enumerate() {
                if a != f64::NEG_INFINITY {
                    assert_eq!(a, b, "op {i} seed {seed} k {k}");
                }
            }
        }
    }

    #[test]
    fn report_mode_schedule_memo_reuses_partial_sweeps() {
        let (g, p) = setup(3);
        let k = 3;
        let mut eng = report_engine(
            &g,
            &p,
            EngineConfig {
                threads: Some(2),
                ..Default::default()
            },
            k,
            77,
        );
        let ops: Vec<OpId> = (0..eng.op_count()).collect();
        let deltas = eng.evaluate_ops(&ops, false);
        let threshold = eng.current_makespan() * REL_EPS;
        let (best_op, best_delta) =
            deltas
                .iter()
                .enumerate()
                .fold(
                    (0, f64::NEG_INFINITY),
                    |acc, (i, &d)| {
                        if d > acc.1 {
                            (i, d)
                        } else {
                            acc
                        }
                    },
                );
        assert!(
            best_delta > threshold,
            "test graph must have an improvement"
        );
        eng.commit(best_op);
        // Re-evaluating after the commit must again match the serial
        // sweep bitwise, and the banked (fingerprint, schedule) values
        // must produce hits.
        let again = eng.evaluate_ops(&ops, false);
        let reference = reference_report_deltas(&g, &p, &eng, k, 77);
        assert_eq!(again, reference);
        assert!(
            eng.stats().memo_hits > 0 || eng.stats().sched_memo_hits > 0,
            "memoization produced no hits at all: {:?}",
            eng.stats()
        );
    }

    #[test]
    fn report_mode_thread_count_does_not_change_results() {
        let (g, p) = setup(8);
        let mut results = Vec::new();
        for threads in [1, 2, 8] {
            let mut eng = report_engine(
                &g,
                &p,
                EngineConfig {
                    threads: Some(threads),
                    ..Default::default()
                },
                3,
                8,
            );
            let ops: Vec<OpId> = (0..eng.op_count()).collect();
            let deltas = eng.evaluate_ops(&ops, true);
            results.push((deltas, eng.stats()));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2], "stats and deltas thread-invariant");
    }

    /// Deterministic multi-assignment deltas over a graph: mixes
    /// single-node moves, multi-node single-device moves and genuinely
    /// multi-device reassignments (different nodes to different
    /// devices), plus no-op entries.
    fn delta_zoo(g: &TaskGraph, p: &Platform) -> Vec<DeltaOp> {
        let n = g.node_count() as u32;
        let dm = p.device_count() as u32;
        let mut deltas = Vec::new();
        for t in 0..24u32 {
            let k = 1 + (t % 4) as usize;
            let changes: Vec<(NodeId, DeviceId)> = (0..k)
                .map(|j| {
                    let v = (t.wrapping_mul(13).wrapping_add(j as u32 * 29)) % n;
                    let d = (t + j as u32) % dm;
                    (NodeId(v), DeviceId(d))
                })
                .collect();
            // A node may repeat across deltas but not within one.
            let mut seen = Vec::new();
            let changes: Vec<_> = changes
                .into_iter()
                .filter(|&(v, _)| {
                    if seen.contains(&v) {
                        false
                    } else {
                        seen.push(v);
                        true
                    }
                })
                .collect();
            deltas.push(DeltaOp::new(changes));
        }
        deltas.push(DeltaOp::default()); // empty: trivially a no-op
        deltas
    }

    /// Reference improvements: serial probe of every delta against the
    /// engine's base mapping, exactly like the seed inner loop would.
    fn reference_delta_improvements(
        g: &TaskGraph,
        p: &Platform,
        eng: &CandidateBatch<'_>,
        deltas: &[DeltaOp],
    ) -> Vec<f64> {
        let mut ev = Evaluator::new(g, p);
        let mut mapping = eng.mapping().clone();
        let cur = eng.current_makespan();
        deltas
            .iter()
            .map(|delta| {
                let undo: Vec<(NodeId, DeviceId)> = delta
                    .changes
                    .iter()
                    .filter_map(|&(v, d)| {
                        let old = mapping.device(v);
                        (old != d).then_some((v, old))
                    })
                    .collect();
                if undo.is_empty() {
                    return f64::NEG_INFINITY;
                }
                for &(v, d) in &delta.changes {
                    mapping.set(v, d);
                }
                let imp = match ev.makespan_bfs(&mapping) {
                    Some(ms) => cur - ms,
                    None => f64::NEG_INFINITY,
                };
                for &(v, old) in undo.iter().rev() {
                    mapping.set(v, old);
                }
                imp
            })
            .collect()
    }

    #[test]
    fn unpruned_delta_batch_matches_serial_probe_bitwise() {
        for seed in [1u64, 6, 12] {
            let (g, p) = setup(seed);
            let mut eng = engine(
                &g,
                &p,
                EngineConfig {
                    threads: Some(4),
                    memo: false,
                    prune: false,
                    ..EngineConfig::default()
                },
            );
            let deltas = delta_zoo(&g, &p);
            let batch = eng.evaluate_deltas(&deltas, false);
            let reference = reference_delta_improvements(&g, &p, &eng, &deltas);
            assert_eq!(batch, reference, "seed {seed}");
        }
    }

    #[test]
    fn pruned_delta_batch_preserves_the_winning_candidate() {
        for seed in [3u64, 9] {
            let (g, p) = setup(seed);
            let mut eng = engine(
                &g,
                &p,
                EngineConfig {
                    threads: Some(4),
                    ..Default::default()
                },
            );
            let deltas = delta_zoo(&g, &p);
            let pruned = eng.evaluate_deltas(&deltas, true);
            let reference = reference_delta_improvements(&g, &p, &eng, &deltas);
            let threshold = eng.current_makespan() * REL_EPS;
            let pick = |d: &[f64]| {
                d.iter().enumerate().filter(|(_, &x)| x > threshold).fold(
                    None::<(usize, f64)>,
                    |best, (i, &x)| {
                        if best.is_none_or(|(_, b)| x > b) {
                            Some((i, x))
                        } else {
                            best
                        }
                    },
                )
            };
            assert_eq!(pick(&pruned), pick(&reference), "seed {seed}");
            for (i, (&a, &b)) in pruned.iter().zip(&reference).enumerate() {
                if a != f64::NEG_INFINITY {
                    assert_eq!(a, b, "delta {i} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn delta_batch_memoizes_and_commits_interoperate() {
        // Deltas and single ops share the memos: evaluating the single
        // ops first must answer matching deltas from the memo.
        let (g, p) = setup(4);
        let mut eng = engine(
            &g,
            &p,
            EngineConfig {
                threads: Some(2),
                ..Default::default()
            },
        );
        let ops: Vec<OpId> = (0..eng.op_count()).collect();
        let op_deltas = eng.evaluate_ops(&ops, false);
        // Build deltas mirroring the first few ops exactly.
        let deltas: Vec<DeltaOp> = ops
            .iter()
            .take(12)
            .map(|&op| {
                let (sub, d) = eng.op_parts(op);
                DeltaOp::new(sub.iter().map(|&v| (v, d)).collect())
            })
            .collect();
        let hits_before = eng.stats().memo_hits;
        let got = eng.evaluate_deltas(&deltas, false);
        assert!(
            eng.stats().memo_hits > hits_before,
            "op-path results must answer identical deltas"
        );
        for (i, (&a, &b)) in got.iter().zip(&op_deltas).enumerate() {
            assert_eq!(a, b, "delta {i} disagrees with its op twin");
        }
    }

    #[test]
    fn tiny_memo_capacity_is_respected_and_exact() {
        for seed in [2u64, 8] {
            let (g, p) = setup(seed);
            let run = |capacity: usize| {
                let mut eng = engine(
                    &g,
                    &p,
                    EngineConfig {
                        threads: Some(2),
                        memo_capacity: capacity,
                        ..EngineConfig::default()
                    },
                );
                let ops: Vec<OpId> = (0..eng.op_count()).collect();
                let mut all = Vec::new();
                for _ in 0..3 {
                    all.push(eng.evaluate_ops(&ops, false));
                }
                (all, eng.stats(), eng.memo_len())
            };
            let (unbounded, _, _) = run(0);
            let (tiny, stats, len) = run(8);
            assert_eq!(unbounded, tiny, "seed {seed}: eviction changed a delta");
            assert!(
                stats.memo_evictions > 0,
                "seed {seed}: capacity 8 must evict"
            );
            assert!(len <= 8, "seed {seed}: memo above capacity ({len})");
            assert!(
                stats.memo_peak <= 8,
                "seed {seed}: peak above capacity ({stats:?})"
            );
        }
    }

    #[test]
    fn report_mode_memo_capacity_is_respected_and_exact() {
        let (g, p) = setup(5);
        let k = 3;
        let run = |capacity: usize| {
            let mut eng = report_engine(
                &g,
                &p,
                EngineConfig {
                    threads: Some(2),
                    memo_capacity: capacity,
                    ..EngineConfig::default()
                },
                k,
                9,
            );
            let ops: Vec<OpId> = (0..eng.op_count()).collect();
            let mut all = Vec::new();
            for _ in 0..3 {
                all.push(eng.evaluate_ops(&ops, false));
            }
            (all, eng.stats(), eng.memo_len(), eng.sched_memo_len())
        };
        let (unbounded, _, _, _) = run(0);
        let (tiny, stats, len, sched_len) = run(16);
        assert_eq!(unbounded, tiny, "eviction changed a report-mode delta");
        assert!(
            stats.memo_evictions > 0 || stats.sched_memo_evictions > 0,
            "capacity 16 must evict in one of the memos: {stats:?}"
        );
        assert!(len <= 16 && sched_len <= 16, "a memo exceeded its capacity");
        assert!(stats.memo_peak <= 16 && stats.sched_memo_peak <= 16);
    }

    #[test]
    fn bounded_memo_is_lru_and_bounded() {
        let mut memo: BoundedMemo<u64> = BoundedMemo::new(4);
        for k in 0..4u64 {
            memo.insert(k, k as f64);
        }
        assert_eq!(memo.len(), 4);
        // Touch 0 and 1, then insert new keys: 2 and 3 must go first.
        assert_eq!(memo.get(&0), Some(0.0));
        assert_eq!(memo.get(&1), Some(1.0));
        memo.insert(4, 4.0);
        assert!(memo.len() <= 4);
        assert_eq!(memo.get(&2), None, "LRU entry must be evicted");
        assert_eq!(memo.get(&1), Some(1.0), "recently used entry survives");
        assert!(memo.evictions() > 0);
        assert!(memo.peak() <= 4);
        // Unbounded: never evicts.
        let mut unbounded: BoundedMemo<u64> = BoundedMemo::new(0);
        for k in 0..1000u64 {
            unbounded.insert(k, 0.0);
        }
        assert_eq!(unbounded.len(), 1000);
        assert_eq!(unbounded.evictions(), 0);
    }

    /// Eviction must not depend on `HashMap` iteration order: replaying
    /// one access sequence against a hash-free oracle (a `Vec` with the
    /// same stamp bookkeeping and the same oldest-half cutoff) must give
    /// identical hits, misses, survivors and eviction counts at every
    /// step.  Guards the unique-stamp `select_nth_unstable` argument in
    /// `BoundedMemo::evict` (docs/DETERMINISM.md).
    #[test]
    fn bounded_memo_eviction_is_hash_order_independent() {
        const CAPACITY: usize = 16;

        struct Oracle {
            entries: Vec<(u64, f64, u64)>, // (key, value, stamp)
            clock: u64,
            evictions: u64,
        }
        impl Oracle {
            fn get(&mut self, k: u64) -> Option<f64> {
                self.clock += 1;
                let clock = self.clock;
                self.entries.iter_mut().find(|e| e.0 == k).map(|e| {
                    e.2 = clock;
                    e.1
                })
            }
            fn insert(&mut self, k: u64, v: f64) {
                self.clock += 1;
                let known = self.entries.iter().any(|e| e.0 == k);
                if self.entries.len() >= CAPACITY && !known {
                    let keep = (CAPACITY / 2).min(CAPACITY - 1);
                    let drop = self.entries.len() - keep;
                    let mut stamps: Vec<u64> = self.entries.iter().map(|e| e.2).collect();
                    stamps.sort_unstable();
                    let cutoff = stamps[drop - 1];
                    self.entries.retain(|e| e.2 > cutoff);
                    self.evictions += drop as u64;
                }
                match self.entries.iter_mut().find(|e| e.0 == k) {
                    Some(e) => {
                        e.1 = v;
                        e.2 = self.clock;
                    }
                    None => self.entries.push((k, v, self.clock)),
                }
            }
        }

        let mut memo: BoundedMemo<u64> = BoundedMemo::new(CAPACITY);
        let mut oracle = Oracle {
            entries: Vec::new(),
            clock: 0,
            evictions: 0,
        };
        // Deterministic mixed get/insert stream over a key space ~4x the
        // capacity so eviction fires many times.
        let mut state = 0x9e3779b97f4a7c15u64;
        for step in 0..4000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (state >> 33) % (4 * CAPACITY as u64);
            if state & 1 == 0 {
                assert_eq!(memo.get(&key), oracle.get(key), "step {step} key {key}");
            } else {
                let v = step as f64;
                memo.insert(key, v);
                oracle.insert(key, v);
            }
            assert_eq!(memo.len(), oracle.entries.len(), "step {step}");
            assert_eq!(memo.evictions(), oracle.evictions, "step {step}");
        }
        // Final sweep: every key agrees on membership and value.
        for key in 0..4 * CAPACITY as u64 {
            assert_eq!(memo.get(&key), oracle.get(key), "final key {key}");
        }
        assert!(memo.evictions() > 0, "stream must have forced evictions");
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let (g, p) = setup(8);
        let mut results = Vec::new();
        for threads in [1, 2, 8] {
            let mut eng = engine(
                &g,
                &p,
                EngineConfig {
                    threads: Some(threads),
                    ..Default::default()
                },
            );
            let ops: Vec<OpId> = (0..eng.op_count()).collect();
            let deltas = eng.evaluate_ops(&ops, true);
            results.push((deltas, eng.stats()));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2], "stats and deltas thread-invariant");
    }
}

//! Typed runtime configuration: the `SPMAP_*` environment knobs as a
//! value.
//!
//! The parallel runtime reads `SPMAP_THREADS`, `SPMAP_POOL` and
//! `SPMAP_SHARDS` through the sanctioned helpers in `spmap-par` (the
//! only crate the determinism lint allows to touch `std::env`).  A
//! programmatic caller — a service embedding, a test harness — should
//! not have to mutate its own process environment to size the runtime;
//! [`RuntimeConfig`] carries the same knobs as plain fields instead.
//!
//! **Precedence: explicit > environment > default.**  A `Some` field
//! always wins; a `None` field defers to the environment-derived value
//! at the point of use (exactly what the helper would have returned);
//! the environment itself falls back to machine defaults.  The
//! [`RuntimeConfig::from_env`] constructor snapshots the environment
//! into explicit values, pinning a service to its construction-time
//! runtime even if the process environment later changes.
//!
//! None of these knobs can change a mapping result — thread counts,
//! backends and shard counts are bit-identical by the engine's
//! determinism regime (docs/DETERMINISM.md); checkpoint budgets trade
//! memory for replay length only.

use spmap_par::ParBackend;

/// Typed runtime knobs; `None` / `0` defer to the environment (see the
/// module docs for precedence).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Engine worker threads per request (`SPMAP_THREADS`).
    pub threads: Option<usize>,
    /// Parallel dispatch backend (`SPMAP_POOL`: the persistent worker
    /// pool or scoped spawning).
    pub backend: Option<ParBackend>,
    /// Worker-pool shard count (`SPMAP_SHARDS`); also the default
    /// `max_inflight` of a service sized with zeros.
    pub shards: Option<usize>,
    /// Per-trail checkpoint byte budget for engines run under this
    /// config (`0` = [`spmap_model::DEFAULT_CHECKPOINT_BUDGET_BYTES`]).
    pub checkpoint_budget_bytes: usize,
}

impl RuntimeConfig {
    /// Snapshot the environment-derived runtime into explicit values
    /// (the sanctioned `SPMAP_*` parse helpers in `spmap-par`).  The
    /// result is pinned: later environment changes no longer affect a
    /// config built here.
    pub fn from_env() -> Self {
        Self {
            threads: Some(spmap_par::num_threads()),
            backend: Some(spmap_par::backend()),
            shards: Some(spmap_par::num_shards()),
            checkpoint_budget_bytes: spmap_model::DEFAULT_CHECKPOINT_BUDGET_BYTES,
        }
    }

    /// The effective worker thread count.
    pub fn threads(&self) -> usize {
        self.threads.unwrap_or_else(spmap_par::num_threads)
    }

    /// The effective dispatch backend.
    pub fn backend(&self) -> ParBackend {
        self.backend.unwrap_or_else(spmap_par::backend)
    }

    /// The effective shard count.
    pub fn shards(&self) -> usize {
        self.shards.unwrap_or_else(spmap_par::num_shards)
    }

    /// The effective checkpoint budget in bytes.
    pub fn checkpoint_budget_bytes(&self) -> usize {
        if self.checkpoint_budget_bytes == 0 {
            spmap_model::DEFAULT_CHECKPOINT_BUDGET_BYTES
        } else {
            self.checkpoint_budget_bytes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_fields_win_over_the_environment() {
        let cfg = RuntimeConfig {
            threads: Some(3),
            backend: Some(ParBackend::Scoped),
            shards: Some(2),
            checkpoint_budget_bytes: 1 << 20,
        };
        assert_eq!(cfg.threads(), 3);
        assert_eq!(cfg.backend(), ParBackend::Scoped);
        assert_eq!(cfg.shards(), 2);
        assert_eq!(cfg.checkpoint_budget_bytes(), 1 << 20);
    }

    #[test]
    fn default_defers_and_from_env_pins() {
        let deferred = RuntimeConfig::default();
        let pinned = RuntimeConfig::from_env();
        // Whatever the environment says, the deferred accessors and the
        // pinned snapshot agree at the same instant.
        assert_eq!(deferred.threads(), pinned.threads());
        assert_eq!(deferred.backend(), pinned.backend());
        assert_eq!(deferred.shards(), pinned.shards());
        assert_eq!(
            deferred.checkpoint_budget_bytes(),
            spmap_model::DEFAULT_CHECKPOINT_BUDGET_BYTES
        );
        assert!(pinned.threads.is_some() && pinned.shards.is_some());
    }
}

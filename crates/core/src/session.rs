//! Online remapping sessions: warm-start incremental re-mapping.
//!
//! A [`RemapSession`] owns an incumbent [`Mapping`], the
//! [`EvalArtifact`] it was computed against, and the session's device
//! availability.  Runtime events arrive as typed [`Perturbation`]s —
//! a device fails or returns, tasks arrive or finish, task attributes
//! change — and [`RemapSession::remap`] reacts by *warm-starting* the
//! decomposition search from the incumbent instead of mapping from
//! scratch:
//!
//! 1. **Compile** the perturbation batch into a patched graph, an
//!    updated availability mask, a *repaired* incumbent (nodes stranded
//!    on a lost device fall back to the default device; arriving nodes
//!    start there too), and the set of **affected nodes** whose
//!    placement decisions the events invalidated.
//! 2. **Seed a neighborhood**: the candidate operations whose subgraph
//!    touches an affected node (plus, after a device restoration, every
//!    operation targeting the restored device).
//! 3. **Search** greedily over that neighborhood only, through the same
//!    windowed [`CandidateBatch`] engine as a full run — but
//!    warm-started on the repaired incumbent
//!    ([`CandidateBatch::with_shared_tables_warm`]), so unaffected
//!    regions of a large graph are never re-examined.
//!
//! [`RemapSession::remap_full`] keeps the from-scratch re-map as the
//! executable-spec fallback (same patched inputs, all-default start,
//! the configured full heuristic); `perf_report --remap` measures the
//! gap.  An **empty perturbation batch returns the incumbent bits** —
//! pinned by the service stress suite.
//!
//! ## Exactness and determinism
//!
//! Device loss never edits the platform: [`DeviceId`]s are positional,
//! and a mapping that avoids a device has the same makespan whether the
//! device exists or not (it contributes no exec, link or area term).
//! Loss is therefore a *candidate restriction* — the warm engine simply
//! never offers the lost device — and the evaluation tables stay
//! bit-for-bit, which is what lets a session reuse its artifact across
//! perturbations.  The session's identity is re-keyed through
//! [`masked_artifact_key`] so observers never confuse
//! availability-restricted state with the unrestricted build.
//!
//! A remap decision is a pure function of (incumbent, perturbation
//! batch, config): no clocks, no thread-count dependence (the engine's
//! bit-identity regime carries over verbatim).  Replaying the same
//! perturbation sequence through a fresh session reproduces every bit —
//! `tests/service.rs` pins this across shard counts and backends.

use std::sync::{Arc, Mutex};

use spmap_graph::{GraphError, NodeId, Task, TaskGraph};
use spmap_model::{
    artifact_key, masked_artifact_key, ArtifactCache, DeviceId, EvalArtifact, Mapping, Platform,
};

use crate::batch::{BatchStats, CandidateBatch};
use crate::mapper::{
    build_subgraphs, try_decomposition_map_with_tables_on, MapperConfig, MapperError, MapperResult,
};
use crate::request::MapRequest;

/// One runtime event a session reacts to.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum Perturbation {
    /// Device `d` became unavailable.  Nodes mapped to it are repaired
    /// onto the default device and their placement re-decided.
    DeviceLost(DeviceId),
    /// Device `d` became available again.  Every candidate operation
    /// targeting it joins the remap neighborhood.
    DeviceRestored(DeviceId),
    /// A new task subgraph arrived.  Its nodes are appended to the
    /// session graph (ids `n..n+k` in arrival order) and wired to the
    /// existing graph by `attach`; they start on the default device.
    TaskArrived {
        /// The arriving subgraph (its internal edges are preserved).
        subgraph: TaskGraph,
        /// Dependencies between existing nodes and arriving nodes.
        attach: Vec<AttachEdge>,
    },
    /// These tasks completed and leave the graph; surviving node ids
    /// compact downward in order (the session repairs its incumbent and
    /// affected bookkeeping across the renumbering).
    TaskFinished(Vec<NodeId>),
    /// Task attributes changed in place.  A node whose area demand
    /// *grew* is conservatively repaired onto the default device so the
    /// warm start can never be area-infeasible.
    AttributesChanged {
        /// `(node, new attributes)` pairs.
        nodes: Vec<(NodeId, Task)>,
    },
}

/// A dependency wiring an arriving subgraph into the session graph
/// (see [`Perturbation::TaskArrived`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AttachEdge {
    /// Existing node → arriving node (`to_new` indexes the arriving
    /// subgraph's nodes).
    Into {
        /// Producer in the session graph.
        from: NodeId,
        /// Consumer, as an index into the arriving subgraph.
        to_new: usize,
        /// Transfer volume in bytes.
        bytes: f64,
    },
    /// Arriving node → existing node.
    OutOf {
        /// Producer, as an index into the arriving subgraph.
        from_new: usize,
        /// Consumer in the session graph.
        to: NodeId,
        /// Transfer volume in bytes.
        bytes: f64,
    },
}

/// A typed failure of a session operation.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RemapError {
    /// The underlying mapper failed (or the opening request named an
    /// algorithm family sessions cannot run).
    Mapper(MapperError),
    /// A perturbation named a device the platform does not have.
    UnknownDevice(DeviceId),
    /// The default device cannot be lost or excluded — it is the repair
    /// target every fallback relies on.
    DefaultDeviceUnavailable(DeviceId),
    /// A perturbation named a node the session graph does not have.
    UnknownNode(NodeId),
    /// An attach edge indexed past the arriving subgraph.
    UnknownArrivingNode(usize),
    /// A graph patch was structurally invalid (cycle, self-loop).
    Graph(GraphError),
    /// The perturbation would leave the session with an empty graph;
    /// close the session instead.
    WouldEmptyGraph,
}

impl std::fmt::Display for RemapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemapError::Mapper(e) => write!(f, "remap search failed: {e}"),
            RemapError::UnknownDevice(d) => write!(f, "unknown device {d:?}"),
            RemapError::DefaultDeviceUnavailable(d) => write!(
                f,
                "device {d:?} is the default (repair) device and cannot be made unavailable"
            ),
            RemapError::UnknownNode(n) => write!(f, "unknown node {n:?}"),
            RemapError::UnknownArrivingNode(i) => {
                write!(f, "attach edge references arriving node {i} out of range")
            }
            RemapError::Graph(e) => write!(f, "graph patch invalid: {e}"),
            RemapError::WouldEmptyGraph => write!(
                f,
                "perturbation removes every task; close the session instead of remapping"
            ),
        }
    }
}

impl std::error::Error for RemapError {}

impl From<MapperError> for RemapError {
    fn from(e: MapperError) -> Self {
        RemapError::Mapper(e)
    }
}

impl From<GraphError> for RemapError {
    fn from(e: GraphError) -> Self {
        RemapError::Graph(e)
    }
}

/// The result of one [`RemapSession::remap`] (or
/// [`RemapSession::remap_full`]) call.
#[derive(Clone, Debug)]
pub struct RemapOutcome {
    /// The new incumbent mapping.
    pub mapping: Mapping,
    /// Its makespan under the session's cost model.
    pub makespan: f64,
    /// Makespan of the *repaired* incumbent the search started from —
    /// the quality a no-search repair would have shipped.
    pub warm_start_makespan: f64,
    /// Improvement iterations applied.
    pub iterations: usize,
    /// Makespan after each applied iteration.
    pub history: Vec<f64>,
    /// Nodes whose placement the perturbation invalidated.
    pub affected_nodes: usize,
    /// Candidate operations in the warm neighborhood (0 for
    /// [`RemapSession::remap_full`], which sweeps everything).
    pub neighborhood_ops: usize,
    /// Total candidate operations of the patched instance, for scale.
    pub op_count: usize,
    /// `true` iff the perturbation batch was empty: the incumbent bits
    /// were returned untouched, no engine was built.
    pub noop: bool,
    /// `true` for the warm-start path, `false` for the from-scratch
    /// fallback.
    pub warm: bool,
    /// Whether this remap had to rebuild (or re-fetch) evaluation
    /// tables because the graph changed.
    pub graph_rebuilt: bool,
    /// Whether a rebuilt artifact came out of the shared cache.
    pub cache_hit: bool,
    /// The session's identity key after this remap:
    /// [`masked_artifact_key`] of the artifact key under the current
    /// availability mask.
    pub session_key: u128,
    /// Engine decision counters of the remap search (zero for no-ops).
    pub batch: BatchStats,
}

/// Working state while a perturbation batch is compiled, before any of
/// it is committed back to the session.
struct Compiled {
    graph: Arc<TaskGraph>,
    graph_changed: bool,
    available: Vec<bool>,
    incumbent: Mapping,
    affected: Vec<bool>,
    restored: Vec<bool>,
}

/// A long-lived remapping session; see the module docs.
pub struct RemapSession {
    graph: Arc<TaskGraph>,
    platform: Arc<Platform>,
    cfg: MapperConfig,
    available: Vec<bool>,
    subgraphs: Vec<Vec<NodeId>>,
    artifact: Arc<EvalArtifact>,
    incumbent: Mapping,
    incumbent_makespan: f64,
    cache: Option<Arc<Mutex<ArtifactCache>>>,
    initial: MapperResult,
    initial_cache_hit: bool,
    remaps: u64,
}

impl RemapSession {
    /// Open a session by running `req`'s initial full map.  `cache`, if
    /// given, is shared for artifact lookups across sessions (a service
    /// passes its own); `req.limits.devices` seeds the availability
    /// mask (it must include the platform's default device).
    ///
    /// GA requests cannot open sessions — the warm-start engine is the
    /// decomposition engine — and return
    /// [`MapperError::UnsupportedAlgo`].
    pub fn open(
        req: &MapRequest,
        cache: Option<Arc<Mutex<ArtifactCache>>>,
    ) -> Result<Self, RemapError> {
        let cfg = req.mapper_config()?;
        let m = req.platform.device_count();
        let available = match &req.limits.devices {
            None => vec![true; m],
            Some(ds) => {
                let mut mask = vec![false; m];
                for &d in ds {
                    if d.index() >= m {
                        return Err(RemapError::UnknownDevice(d));
                    }
                    mask[d.index()] = true;
                }
                if !mask[req.platform.default_device().index()] {
                    return Err(RemapError::DefaultDeviceUnavailable(
                        req.platform.default_device(),
                    ));
                }
                mask
            }
        };
        let (artifact, cache_hit) = fetch_artifact(
            cache.as_ref(),
            Arc::clone(&req.graph),
            Arc::clone(&req.platform),
            &cfg,
        );
        let devices = device_list(&available);
        let initial =
            try_decomposition_map_with_tables_on(artifact.tables(), &cfg, Some(&devices))?;
        let subgraphs = build_subgraphs(&req.graph, cfg.strategy);
        Ok(Self {
            graph: Arc::clone(&req.graph),
            platform: Arc::clone(&req.platform),
            cfg,
            available,
            subgraphs,
            artifact,
            incumbent: initial.mapping.clone(),
            incumbent_makespan: initial.makespan,
            cache,
            initial,
            initial_cache_hit: cache_hit,
            remaps: 0,
        })
    }

    /// The session's current graph.
    pub fn graph(&self) -> &Arc<TaskGraph> {
        &self.graph
    }

    /// The session's platform (never patched; see the module docs).
    pub fn platform(&self) -> &Arc<Platform> {
        &self.platform
    }

    /// The current incumbent mapping.
    pub fn incumbent(&self) -> &Mapping {
        &self.incumbent
    }

    /// The incumbent's makespan under the session's cost model.
    pub fn incumbent_makespan(&self) -> f64 {
        self.incumbent_makespan
    }

    /// Per-device availability (indexed by [`DeviceId::index`]).
    pub fn available(&self) -> &[bool] {
        &self.available
    }

    /// The initial full-map result the session opened with.
    pub fn initial(&self) -> &MapperResult {
        &self.initial
    }

    /// Whether the opening artifact came from the shared cache.
    pub fn initial_cache_hit(&self) -> bool {
        self.initial_cache_hit
    }

    /// Remaps executed so far (warm or full, excluding no-ops).
    pub fn remaps(&self) -> u64 {
        self.remaps
    }

    /// The session's identity key: the artifact key re-keyed under the
    /// current availability mask ([`masked_artifact_key`]); equal to
    /// the plain artifact key while every device is available.
    pub fn session_key(&self) -> u128 {
        masked_artifact_key(
            self.artifact.key(),
            availability_mask(&self.available),
            self.available.len(),
        )
    }

    /// React to `perturbations` by warm-starting the search from the
    /// repaired incumbent over the affected neighborhood.  An empty
    /// batch returns the incumbent bits untouched.
    pub fn remap(&mut self, perturbations: &[Perturbation]) -> Result<RemapOutcome, RemapError> {
        if perturbations.is_empty() {
            return Ok(self.noop_outcome());
        }
        let c = self.compile(perturbations)?;
        let devices = device_list(&c.available);
        let (artifact, cache_hit) = self.artifact_for(&c);
        // Clone rather than take: an error mid-search must leave the
        // session state untouched and reusable.
        let subgraphs = if c.graph_changed {
            build_subgraphs(&c.graph, self.cfg.strategy)
        } else {
            self.subgraphs.clone()
        };

        // The warm neighborhood: operations whose subgraph touches an
        // affected node, plus every operation targeting a device
        // restored in this batch.  Ascending op ids keep evaluation
        // order deterministic.
        let m = devices.len();
        let restored_cols: Vec<usize> = devices
            .iter()
            .enumerate()
            .filter(|(_, d)| c.restored[d.index()])
            .map(|(j, _)| j)
            .collect();
        let mut ops: Vec<usize> = Vec::new();
        for (s, sub) in subgraphs.iter().enumerate() {
            if sub.iter().any(|v| c.affected[v.index()]) {
                ops.extend((0..m).map(|j| s * m + j));
            } else {
                ops.extend(restored_cols.iter().map(|&j| s * m + j));
            }
        }

        let affected_nodes = c.affected.iter().filter(|&&a| a).count();
        if ops.is_empty() && !c.graph_changed {
            // Nothing to re-decide and the instance is unchanged (e.g.
            // losing a device no task was mapped to): commit the
            // availability change and keep the incumbent bits.
            let outcome = RemapOutcome {
                mapping: c.incumbent.clone(),
                makespan: self.incumbent_makespan,
                warm_start_makespan: self.incumbent_makespan,
                iterations: 0,
                history: Vec::new(),
                affected_nodes,
                neighborhood_ops: 0,
                op_count: subgraphs.len() * m,
                noop: false,
                warm: true,
                graph_rebuilt: false,
                cache_hit: false,
                session_key: 0, // patched below
                batch: BatchStats::default(),
            };
            return Ok(self.commit_outcome(c, artifact, subgraphs, outcome));
        }

        let (mapping, makespan, warm_start, iterations, history, batch) = {
            let mut engine = CandidateBatch::with_shared_tables_warm(
                artifact.tables(),
                subgraphs.clone(),
                devices,
                self.cfg.engine,
                self.cfg.cost,
                c.incumbent.clone(),
            );
            let warm_start = engine.current_makespan();
            let cap = self
                .cfg
                .iteration_cap
                .unwrap_or(c.graph.node_count().max(1));
            let mut history = Vec::new();
            let mut iterations = 0;
            while iterations < cap {
                let deltas = engine.evaluate_ops(&ops, self.cfg.engine.prune);
                // Serial reduce in neighborhood order: ties go to the
                // lowest op id, exactly like the full search.
                let mut best: Option<(usize, f64)> = None;
                for (i, &delta) in deltas.iter().enumerate() {
                    if delta.is_nan() {
                        return Err(MapperError::NanDelta { op: ops[i] }.into());
                    }
                    if engine.improves(delta) && best.is_none_or(|(_, b)| delta > b) {
                        best = Some((i, delta));
                    }
                }
                match best {
                    Some((i, _)) => {
                        engine.commit(ops[i]);
                        history.push(engine.current_makespan());
                        iterations += 1;
                    }
                    None => break,
                }
            }
            (
                engine.mapping().clone(),
                engine.current_makespan(),
                warm_start,
                iterations,
                history,
                engine.stats(),
            )
        };

        let outcome = RemapOutcome {
            mapping,
            makespan,
            warm_start_makespan: warm_start,
            iterations,
            history,
            affected_nodes,
            neighborhood_ops: ops.len(),
            op_count: subgraphs.len() * m,
            noop: false,
            warm: true,
            graph_rebuilt: c.graph_changed,
            cache_hit,
            session_key: 0, // patched below
            batch,
        };
        Ok(self.commit_outcome(c, artifact, subgraphs, outcome))
    }

    /// The executable-spec fallback: compile the same perturbations,
    /// then re-map the patched instance *from scratch* with the
    /// session's full configuration (all-default start, full candidate
    /// sweep).  Same exactness, no warm start — this is what
    /// `perf_report --remap` races [`Self::remap`] against, and what a
    /// caller should prefer when a perturbation invalidates most of the
    /// incumbent anyway.
    pub fn remap_full(
        &mut self,
        perturbations: &[Perturbation],
    ) -> Result<RemapOutcome, RemapError> {
        if perturbations.is_empty() {
            return Ok(self.noop_outcome());
        }
        let c = self.compile(perturbations)?;
        let devices = device_list(&c.available);
        let (artifact, cache_hit) = self.artifact_for(&c);
        let subgraphs = if c.graph_changed {
            build_subgraphs(&c.graph, self.cfg.strategy)
        } else {
            self.subgraphs.clone()
        };
        let result =
            try_decomposition_map_with_tables_on(artifact.tables(), &self.cfg, Some(&devices))?;
        let outcome = RemapOutcome {
            mapping: result.mapping.clone(),
            makespan: result.makespan,
            warm_start_makespan: result.cpu_only_makespan,
            iterations: result.iterations,
            history: result.history,
            affected_nodes: c.affected.iter().filter(|&&a| a).count(),
            neighborhood_ops: 0,
            op_count: subgraphs.len() * devices.len(),
            noop: false,
            warm: false,
            graph_rebuilt: c.graph_changed,
            cache_hit,
            session_key: 0, // patched below
            batch: result.batch,
        };
        Ok(self.commit_outcome(c, artifact, subgraphs, outcome))
    }

    /// The empty-batch fast path: incumbent bits, no engine.
    fn noop_outcome(&self) -> RemapOutcome {
        RemapOutcome {
            mapping: self.incumbent.clone(),
            makespan: self.incumbent_makespan,
            warm_start_makespan: self.incumbent_makespan,
            iterations: 0,
            history: Vec::new(),
            affected_nodes: 0,
            neighborhood_ops: 0,
            op_count: self.subgraphs.len() * device_list(&self.available).len(),
            noop: true,
            warm: true,
            graph_rebuilt: false,
            cache_hit: false,
            session_key: self.session_key(),
            batch: BatchStats::default(),
        }
    }

    /// Commit compiled state + search outcome back into the session and
    /// stamp the outcome's session key.
    fn commit_outcome(
        &mut self,
        c: Compiled,
        artifact: Arc<EvalArtifact>,
        subgraphs: Vec<Vec<NodeId>>,
        mut outcome: RemapOutcome,
    ) -> RemapOutcome {
        crate::faults::fault_point(crate::faults::FaultSite::SessionCommit);
        // The one allocation (cloning the new incumbent) happens before
        // any field is assigned: the assignments below are plain moves
        // and stores that cannot unwind, so the session can never be
        // observed half-committed — the basis of the poison-recovery
        // policy in docs/ROBUSTNESS.md.
        let incumbent = outcome.mapping.clone();
        self.graph = c.graph;
        self.available = c.available;
        self.subgraphs = subgraphs;
        self.artifact = artifact;
        self.incumbent = incumbent;
        self.incumbent_makespan = outcome.makespan;
        self.remaps += 1;
        outcome.session_key = self.session_key();
        outcome
    }

    /// Re-derive every piece of session state a mid-operation panic
    /// could conceivably have been computing — subgraphs, incumbent,
    /// makespan — as a pure function of the committed inputs (graph,
    /// platform, artifact, availability).  The service's poison
    /// recovery ([`MapService::remap_full`](crate::MapService) on a
    /// poisoned session) calls this before clearing the poison; because
    /// sessions mutate only at their panic-free commit boundary, the
    /// committed inputs are always intact and the recovered session is
    /// bit-identical to a fresh one opened on the same patched state.
    pub fn rebuild(&mut self) -> Result<(), RemapError> {
        self.subgraphs = build_subgraphs(&self.graph, self.cfg.strategy);
        let devices = device_list(&self.available);
        let result = try_decomposition_map_with_tables_on(
            self.artifact.tables(),
            &self.cfg,
            Some(&devices),
        )?;
        self.incumbent = result.mapping;
        self.incumbent_makespan = result.makespan;
        Ok(())
    }

    /// The artifact serving `c`: the session's own while the graph is
    /// unchanged, else a (cached) rebuild for the patched graph.
    fn artifact_for(&self, c: &Compiled) -> (Arc<EvalArtifact>, bool) {
        if !c.graph_changed {
            return (Arc::clone(&self.artifact), false);
        }
        fetch_artifact(
            self.cache.as_ref(),
            Arc::clone(&c.graph),
            Arc::clone(&self.platform),
            &self.cfg,
        )
    }

    /// Compile a perturbation batch against the current session state.
    /// Pure: the session is untouched until [`Self::commit_outcome`].
    fn compile(&self, perturbations: &[Perturbation]) -> Result<Compiled, RemapError> {
        crate::faults::fault_point(crate::faults::FaultSite::SessionCompile);
        let m = self.platform.device_count();
        let default = self.platform.default_device();
        let mut c = Compiled {
            graph: Arc::clone(&self.graph),
            graph_changed: false,
            available: self.available.clone(),
            incumbent: self.incumbent.clone(),
            affected: vec![false; self.graph.node_count()],
            restored: vec![false; m],
        };
        for p in perturbations {
            match p {
                Perturbation::DeviceLost(d) => {
                    if d.index() >= m {
                        return Err(RemapError::UnknownDevice(*d));
                    }
                    if *d == default {
                        return Err(RemapError::DefaultDeviceUnavailable(*d));
                    }
                    c.available[d.index()] = false;
                    c.restored[d.index()] = false;
                    for v in c.graph.nodes() {
                        if c.incumbent.device(v) == *d {
                            c.incumbent.set(v, default);
                            c.affected[v.index()] = true;
                            for w in c.graph.successors(v).chain(c.graph.predecessors(v)) {
                                c.affected[w.index()] = true;
                            }
                        }
                    }
                }
                Perturbation::DeviceRestored(d) => {
                    if d.index() >= m {
                        return Err(RemapError::UnknownDevice(*d));
                    }
                    c.available[d.index()] = true;
                    c.restored[d.index()] = true;
                }
                Perturbation::TaskArrived { subgraph, attach } => {
                    let base = c.graph.node_count();
                    let k = subgraph.node_count();
                    let mut b = (*c.graph).clone().into_builder();
                    for v in subgraph.nodes() {
                        b.add_task(subgraph.task(v).clone());
                    }
                    for e in subgraph.edges() {
                        b.add_edge(
                            NodeId((base + e.src.index()) as u32),
                            NodeId((base + e.dst.index()) as u32),
                            e.bytes,
                        )?;
                    }
                    let mut attach_touched: Vec<NodeId> = Vec::new();
                    for a in attach {
                        match *a {
                            AttachEdge::Into {
                                from,
                                to_new,
                                bytes,
                            } => {
                                if from.index() >= base {
                                    return Err(RemapError::UnknownNode(from));
                                }
                                if to_new >= k {
                                    return Err(RemapError::UnknownArrivingNode(to_new));
                                }
                                b.add_edge(from, NodeId((base + to_new) as u32), bytes)?;
                                attach_touched.push(from);
                            }
                            AttachEdge::OutOf {
                                from_new,
                                to,
                                bytes,
                            } => {
                                if to.index() >= base {
                                    return Err(RemapError::UnknownNode(to));
                                }
                                if from_new >= k {
                                    return Err(RemapError::UnknownArrivingNode(from_new));
                                }
                                b.add_edge(NodeId((base + from_new) as u32), to, bytes)?;
                                attach_touched.push(to);
                            }
                        }
                    }
                    c.graph = Arc::new(b.build()?);
                    c.graph_changed = true;
                    let mut devices: Vec<DeviceId> = c.incumbent.as_slice().to_vec();
                    devices.resize(base + k, default);
                    c.incumbent = Mapping::from_vec(devices);
                    c.affected.resize(base + k, true);
                    for v in attach_touched {
                        c.affected[v.index()] = true;
                    }
                }
                Perturbation::TaskFinished(finished) => {
                    let n = c.graph.node_count();
                    let mut gone = vec![false; n];
                    for &v in finished {
                        if v.index() >= n {
                            return Err(RemapError::UnknownNode(v));
                        }
                        gone[v.index()] = true;
                    }
                    let survivors = n - gone.iter().filter(|&&g| g).count();
                    if survivors == 0 {
                        return Err(RemapError::WouldEmptyGraph);
                    }
                    // Survivors compact downward; neighbors of the
                    // departed get re-decided.
                    let mut renum = vec![usize::MAX; n];
                    let mut b =
                        spmap_graph::GraphBuilder::with_capacity(survivors, c.graph.edge_count());
                    let mut devices = Vec::with_capacity(survivors);
                    let mut affected = Vec::with_capacity(survivors);
                    for v in c.graph.nodes() {
                        if gone[v.index()] {
                            continue;
                        }
                        renum[v.index()] = b.add_task(c.graph.task(v).clone()).index();
                        devices.push(c.incumbent.device(v));
                        let orphaned = c
                            .graph
                            .successors(v)
                            .chain(c.graph.predecessors(v))
                            .any(|w| gone[w.index()]);
                        affected.push(c.affected[v.index()] || orphaned);
                    }
                    for e in c.graph.edges() {
                        let (u, w) = (renum[e.src.index()], renum[e.dst.index()]);
                        if u != usize::MAX && w != usize::MAX {
                            b.add_edge(NodeId(u as u32), NodeId(w as u32), e.bytes)?;
                        }
                    }
                    c.graph = Arc::new(b.build()?);
                    c.graph_changed = true;
                    c.incumbent = Mapping::from_vec(devices);
                    c.affected = affected;
                }
                Perturbation::AttributesChanged { nodes } => {
                    let n = c.graph.node_count();
                    let mut g = (*c.graph).clone();
                    for (v, task) in nodes {
                        if v.index() >= n {
                            return Err(RemapError::UnknownNode(*v));
                        }
                        // An area-grown node might no longer fit where
                        // it sits; repairing it onto the default device
                        // keeps the warm-start base feasible (the
                        // default device is area-unconstrained).
                        if task.area > g.task(*v).area {
                            c.incumbent.set(*v, default);
                        }
                        *g.task_mut(*v) = task.clone();
                        c.affected[v.index()] = true;
                        for w in g.successors(*v).chain(g.predecessors(*v)) {
                            c.affected[w.index()] = true;
                        }
                    }
                    c.graph = Arc::new(g);
                    c.graph_changed = true;
                }
            }
        }
        Ok(c)
    }
}

/// The session's availability as a bitmask (bit `i` = device `i`).
fn availability_mask(available: &[bool]) -> u64 {
    available
        .iter()
        .enumerate()
        .take(64)
        .fold(0u64, |acc, (i, &a)| if a { acc | (1 << i) } else { acc })
}

/// The candidate device list of an availability mask, in id order.
fn device_list(available: &[bool]) -> Vec<DeviceId> {
    available
        .iter()
        .enumerate()
        .filter(|(_, &a)| a)
        .map(|(i, _)| DeviceId(i as u32))
        .collect()
}

/// Look up or build the artifact for `(graph, platform, numbering)`,
/// optionally through a shared cache (the same first-resident-build-wins
/// discipline as the service path).
fn fetch_artifact(
    cache: Option<&Arc<Mutex<ArtifactCache>>>,
    graph: Arc<TaskGraph>,
    platform: Arc<Platform>,
    cfg: &MapperConfig,
) -> (Arc<EvalArtifact>, bool) {
    let numbering = cfg.engine.numbering;
    // Recover-and-continue on cache poison: builds happen outside the
    // lock, so no panic can leave a half-mutated cache behind
    // (docs/ROBUSTNESS.md).
    fn lock_cache(c: &Mutex<ArtifactCache>) -> std::sync::MutexGuard<'_, ArtifactCache> {
        c.lock().unwrap_or_else(|e| e.into_inner())
    }
    match cache {
        None => {
            crate::faults::fault_point(crate::faults::FaultSite::ArtifactBuild);
            (
                Arc::new(EvalArtifact::build(graph, platform, numbering)),
                false,
            )
        }
        Some(cache) => {
            let key = artifact_key(&graph, &platform, numbering);
            let hit = lock_cache(cache).lookup(key);
            match hit {
                Some(a) => (a, true),
                None => {
                    // Build outside the cache lock, exactly like the
                    // service path: a racing builder of the same key is
                    // resolved by `insert` (first resident build wins).
                    crate::faults::fault_point(crate::faults::FaultSite::ArtifactBuild);
                    let built = Arc::new(EvalArtifact::build(graph, platform, numbering));
                    let shared = lock_cache(cache).insert(built);
                    (shared, false)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::MapRequest;
    use spmap_graph::gen::{random_sp_graph, SpGenConfig};
    use spmap_graph::{augment, AugmentConfig};

    fn session_request(nodes: usize, seed: u64) -> MapRequest {
        let mut g = random_sp_graph(&SpGenConfig::new(nodes, seed));
        augment(&mut g, &AugmentConfig::default(), seed);
        MapRequest::new(Arc::new(g), Arc::new(Platform::reference()))
    }

    fn non_default_device(p: &Platform, mapping: &Mapping) -> DeviceId {
        let counts = mapping
            .as_slice()
            .iter()
            .filter(|&&d| d != p.default_device())
            .count();
        assert!(counts > 0, "test graph must use an accelerator");
        *mapping
            .as_slice()
            .iter()
            .find(|&&d| d != p.default_device())
            .unwrap()
    }

    #[test]
    fn empty_perturbation_returns_incumbent_bits() {
        let mut s = RemapSession::open(&session_request(28, 5), None).expect("open");
        let before = s.incumbent().clone();
        let key = s.session_key();
        let out = s.remap(&[]).expect("noop remap");
        assert!(out.noop);
        assert_eq!(out.mapping, before);
        assert_eq!(out.makespan, s.incumbent_makespan());
        assert_eq!(out.iterations, 0);
        assert_eq!(out.session_key, key);
        assert_eq!(s.remaps(), 0);
    }

    #[test]
    fn device_loss_vacates_the_device_and_rekeys_the_session() {
        let req = session_request(30, 9);
        let mut s = RemapSession::open(&req, None).expect("open");
        let lost = non_default_device(&req.platform, s.incumbent());
        let plain_key = s.session_key();
        let out = s.remap(&[Perturbation::DeviceLost(lost)]).expect("remap");
        assert!(out.warm && !out.noop);
        assert!(s.incumbent().as_slice().iter().all(|&d| d != lost));
        assert_ne!(out.session_key, plain_key, "loss must re-key the session");
        assert!(!s.available()[lost.index()]);
        // Restoration returns to the plain key; the warm search may
        // move work back onto the restored device.
        let back = s
            .remap(&[Perturbation::DeviceRestored(lost)])
            .expect("restore");
        assert_eq!(back.session_key, plain_key);
        assert!(back.makespan <= out.makespan);
    }

    #[test]
    fn device_loss_matches_full_remap_quality_or_explains_itself() {
        // Warm remap after a device loss must produce a *feasible*
        // mapping that avoids the device; the full fallback on the same
        // perturbation is the executable spec for the patched instance.
        let req = session_request(26, 11);
        let mut warm = RemapSession::open(&req, None).expect("open");
        let mut full = RemapSession::open(&req, None).expect("open");
        let lost = non_default_device(&req.platform, warm.incumbent());
        let w = warm.remap(&[Perturbation::DeviceLost(lost)]).expect("warm");
        let f = full
            .remap_full(&[Perturbation::DeviceLost(lost)])
            .expect("full");
        assert!(w.mapping.as_slice().iter().all(|&d| d != lost));
        assert!(f.mapping.as_slice().iter().all(|&d| d != lost));
        // Both beat (or match) the no-search repair the warm path
        // started from.
        assert!(w.makespan <= w.warm_start_makespan);
        assert!(f.makespan <= w.warm_start_makespan);
    }

    #[test]
    fn task_arrival_extends_the_graph_and_maps_new_work() {
        let req = session_request(24, 3);
        let n = req.graph.node_count();
        let mut s = RemapSession::open(&req, None).expect("open");
        let sub = random_sp_graph(&SpGenConfig::new(6, 77));
        let out = s
            .remap(&[Perturbation::TaskArrived {
                subgraph: sub.clone(),
                attach: vec![AttachEdge::Into {
                    from: NodeId((n - 1) as u32),
                    to_new: 0,
                    bytes: 1e6,
                }],
            }])
            .expect("arrival");
        assert!(out.graph_rebuilt);
        assert_eq!(s.graph().node_count(), n + sub.node_count());
        assert_eq!(s.incumbent().len(), n + sub.node_count());
        assert!(out.makespan <= out.warm_start_makespan);
    }

    #[test]
    fn task_finish_compacts_ids_and_preserves_survivor_placement_topology() {
        let req = session_request(24, 13);
        let mut s = RemapSession::open(&req, None).expect("open");
        let n = req.graph.node_count();
        let finished = vec![NodeId(0), NodeId((n / 2) as u32)];
        let out = s
            .remap(&[Perturbation::TaskFinished(finished.clone())])
            .expect("finish");
        assert!(out.graph_rebuilt);
        assert_eq!(s.graph().node_count(), n - finished.len());
        assert_eq!(s.incumbent().len(), n - finished.len());
        // Survivors whose neighborhood did not change keep their device
        // unless the warm search found an improvement — at minimum the
        // renumbering must have carried placements over coherently:
        // every surviving device assignment is a legal device.
        let m = req.platform.device_count();
        assert!(s.incumbent().as_slice().iter().all(|d| d.index() < m));
        assert!(out.makespan.is_finite());
    }

    #[test]
    fn attribute_growth_repairs_onto_the_default_device_before_search() {
        let req = session_request(24, 21);
        let mut s = RemapSession::open(&req, None).expect("open");
        let v = NodeId(2);
        let mut task = s.graph().task(v).clone();
        task.area = task.area * 4.0 + 100.0;
        let out = s
            .remap(&[Perturbation::AttributesChanged {
                nodes: vec![(v, task)],
            }])
            .expect("attrs");
        assert!(out.graph_rebuilt);
        assert!(out.makespan.is_finite());
    }

    #[test]
    fn losing_the_default_device_is_refused() {
        let req = session_request(20, 2);
        let default = req.platform.default_device();
        let mut s = RemapSession::open(&req, None).expect("open");
        assert!(matches!(
            s.remap(&[Perturbation::DeviceLost(default)]),
            Err(RemapError::DefaultDeviceUnavailable(_))
        ));
    }

    #[test]
    fn replaying_a_sequence_is_bit_identical() {
        // The remap decision is a pure function of (incumbent,
        // perturbations, config): two sessions fed the same sequence
        // agree bit for bit at every step.
        let req = session_request(30, 17);
        let lost = {
            let s = RemapSession::open(&req, None).expect("probe");
            non_default_device(&req.platform, s.incumbent())
        };
        let sub = random_sp_graph(&SpGenConfig::new(5, 99));
        let seq: Vec<Vec<Perturbation>> = vec![
            vec![Perturbation::DeviceLost(lost)],
            vec![Perturbation::TaskArrived {
                subgraph: sub,
                attach: vec![AttachEdge::Into {
                    from: NodeId(3),
                    to_new: 0,
                    bytes: 5e5,
                }],
            }],
            vec![Perturbation::DeviceRestored(lost)],
            vec![Perturbation::TaskFinished(vec![NodeId(1)])],
        ];
        let mut a = RemapSession::open(&req, None).expect("open a");
        let mut b = RemapSession::open(&req, None).expect("open b");
        for batch in &seq {
            let oa = a.remap(batch).expect("a remaps");
            let ob = b.remap(batch).expect("b remaps");
            assert_eq!(oa.mapping, ob.mapping);
            assert_eq!(oa.makespan, ob.makespan);
            assert_eq!(oa.history, ob.history);
            assert_eq!(oa.session_key, ob.session_key);
        }
    }
}

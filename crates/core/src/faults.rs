//! Deterministic fault injection: named fault sites the chaos suite can
//! arm one at a time.
//!
//! The mapping service promises *fault containment*: a panic inside an
//! admitted request becomes a typed, caller-local
//! [`ServiceError::Internal`](crate::ServiceError::Internal) while every
//! concurrent request keeps its bit-identical response
//! (docs/ROBUSTNESS.md).  That promise is only worth something if it is
//! exercised, so production code paths carry named **fault points** —
//! no-ops in normal builds, armable under the `fault-injection` cargo
//! feature:
//!
//! * [`FaultSite::ArtifactBuild`] — before an [`EvalArtifact`] table
//!   build (service one-shot path and session fetch path),
//! * [`FaultSite::CandidateSweep`] — at the head of
//!   `CandidateBatch::evaluate_ops`, the engine sweep every search
//!   family drives,
//! * [`FaultSite::PoolBatch`] — inside the per-worker simulation
//!   closure, so the panic unwinds *through the worker pool's* panic
//!   protocol before reaching the service boundary,
//! * [`FaultSite::SessionCompile`] — at the head of a session's pure
//!   perturbation-compile step,
//! * [`FaultSite::SessionCommit`] — at the session's commit boundary,
//!   before any field is mutated.
//!
//! [`EvalArtifact`]: spmap_model::EvalArtifact
//!
//! ## Determinism
//!
//! Arming is `(site, hit, kind)`: the `hit`-th execution of `site` after
//! arming fires, every other execution is untouched.  Hit counters are
//! process-global atomics, so *which thread* trips the fault under
//! concurrency is scheduler-dependent — but the schedule itself (which
//! site, which hit, panic or error) is a pure function of the caller's
//! seed via [`FaultSchedule`], and every property the chaos suite
//! asserts (typed error to the faulted caller, bit-identical unfaulted
//! responses, balanced accounting, clean pass afterwards) holds on
//! every replay.  The module reads no clocks and iterates no hash
//! maps; `FaultSchedule` is a splitmix64 stream of the seed alone.
//!
//! Arming returns a [`FaultArm`] guard that holds a global registry
//! lock, so concurrent tests arming faults serialize instead of
//! clobbering each other's schedules; dropping the guard disarms.

/// A named production code point where a fault can be injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultSite {
    /// An evaluation-table build (cache-miss path), service or session.
    ArtifactBuild,
    /// The candidate-engine sweep (`CandidateBatch::evaluate_ops`).
    CandidateSweep,
    /// A per-worker simulation closure inside the parallel pool batch.
    PoolBatch,
    /// A session's perturbation-compile step (pure; precedes commit).
    SessionCompile,
    /// A session's commit boundary (before any session field mutates).
    SessionCommit,
}

impl FaultSite {
    /// Every site, in declaration order.
    pub const ALL: [FaultSite; 5] = [
        FaultSite::ArtifactBuild,
        FaultSite::CandidateSweep,
        FaultSite::PoolBatch,
        FaultSite::SessionCompile,
        FaultSite::SessionCommit,
    ];

    /// Stable display name (used in panic payloads and reports).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::ArtifactBuild => "artifact-build",
            FaultSite::CandidateSweep => "candidate-sweep",
            FaultSite::PoolBatch => "pool-batch",
            FaultSite::SessionCompile => "session-compile",
            FaultSite::SessionCommit => "session-commit",
        }
    }

    #[cfg(feature = "fault-injection")]
    fn idx(self) -> usize {
        self as usize
    }
}

/// What an armed fault does when its `(site, hit)` matches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic with a recognizable payload (see
    /// [`INJECTED_PANIC_PREFIX`]); exercises the containment boundary.
    Panic,
    /// Make [`fault_point`] return `true`; the call site degrades into
    /// its *typed* error path (e.g. the candidate sweep reports NaN
    /// deltas, which every driver converts to
    /// [`MapperError::NanDelta`](crate::MapperError::NanDelta)).  Sites
    /// without a typed degradation ignore this and treat `true` as a
    /// no-op — the seeded schedule only arms `Error` where it means
    /// something.
    Error,
}

/// Panic payloads of injected panics start with this prefix, so tests
/// can tell an injected fault from an organic one.
pub const INJECTED_PANIC_PREFIX: &str = "spmap-faults: injected panic at ";

#[cfg(feature = "fault-injection")]
mod armed {
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Mutex, MutexGuard};

    use super::{FaultKind, FaultSite, INJECTED_PANIC_PREFIX};

    /// Serializes arming across threads: one armed schedule at a time.
    static REGISTRY: Mutex<()> = Mutex::new(());
    /// Per-site execution counters since the last arm.
    static HITS: [AtomicU64; 5] = [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ];
    /// Index of the armed site; `usize::MAX` = disarmed.
    static ARMED_SITE: AtomicUsize = AtomicUsize::new(usize::MAX);
    static ARMED_HIT: AtomicU64 = AtomicU64::new(0);
    static ARMED_ERROR_KIND: AtomicBool = AtomicBool::new(false);
    static FIRED: AtomicBool = AtomicBool::new(false);

    /// Guard of one armed fault; dropping it disarms.  Holds the
    /// registry lock so concurrent arms serialize.
    pub struct FaultArm {
        _serial: MutexGuard<'static, ()>,
    }

    impl FaultArm {
        /// Whether the armed `(site, hit)` has fired since arming.
        pub fn fired(&self) -> bool {
            FIRED.load(Ordering::SeqCst)
        }
    }

    impl Drop for FaultArm {
        fn drop(&mut self) {
            ARMED_SITE.store(usize::MAX, Ordering::SeqCst);
        }
    }

    /// Arm a panic at the `hit`-th execution of `site` (1-based).
    pub fn arm(site: FaultSite, hit: u64) -> FaultArm {
        arm_kind(site, hit, FaultKind::Panic)
    }

    /// Arm a fault of `kind` at the `hit`-th execution of `site`.
    pub fn arm_kind(site: FaultSite, hit: u64, kind: FaultKind) -> FaultArm {
        // A previous test may have poisoned the registry by panicking
        // while armed (that is the whole point of the Panic kind);
        // arming only needs exclusion, not the protected unit value.
        let serial = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
        for h in &HITS {
            h.store(0, Ordering::SeqCst);
        }
        FIRED.store(false, Ordering::SeqCst);
        ARMED_HIT.store(hit.max(1), Ordering::SeqCst);
        ARMED_ERROR_KIND.store(kind == FaultKind::Error, Ordering::SeqCst);
        ARMED_SITE.store(site.idx(), Ordering::SeqCst);
        FaultArm { _serial: serial }
    }

    /// The armed check behind [`super::fault_point`].
    pub fn fault_point(site: FaultSite) -> bool {
        let hit = HITS[site.idx()].fetch_add(1, Ordering::SeqCst) + 1;
        if ARMED_SITE.load(Ordering::SeqCst) != site.idx()
            || hit != ARMED_HIT.load(Ordering::SeqCst)
        {
            return false;
        }
        FIRED.store(true, Ordering::SeqCst);
        if ARMED_ERROR_KIND.load(Ordering::SeqCst) {
            return true;
        }
        panic!("{INJECTED_PANIC_PREFIX}{} (hit {hit})", site.name());
    }
}

#[cfg(feature = "fault-injection")]
pub use armed::{arm, arm_kind, fault_point, FaultArm};

/// Fault check at a named production site.  Returns `true` when an
/// `Error`-kind fault is firing here — the caller degrades into its
/// typed error path; a `Panic`-kind fault never returns.  Compiled to a
/// constant `false` without the `fault-injection` feature.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn fault_point(_site: FaultSite) -> bool {
    false
}

/// A deterministic `(site, hit, kind)` stream: the chaos harness's
/// schedule is a pure function of its seed (splitmix64), so a chaos run
/// is replayable bit-identically from `(seed, round)` alone.  Plain
/// data — available with or without the `fault-injection` feature.
#[derive(Clone, Copy, Debug)]
pub struct FaultSchedule {
    state: u64,
}

impl FaultSchedule {
    /// A schedule seeded by `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next raw splitmix64 draw.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next `(site, hit, kind)` plan, with `hit` in `1..=max_hit`.
    /// `Error` kind is only drawn for [`FaultSite::CandidateSweep`] —
    /// the one site with a typed degradation.
    pub fn next_plan(&mut self, max_hit: u64) -> (FaultSite, u64, FaultKind) {
        let site = FaultSite::ALL[(self.next_u64() % FaultSite::ALL.len() as u64) as usize];
        let hit = 1 + self.next_u64() % max_hit.max(1);
        let kind = if site == FaultSite::CandidateSweep && self.next_u64().is_multiple_of(2) {
            FaultKind::Error
        } else {
            FaultKind::Panic
        };
        (site, hit, kind)
    }

    /// Like [`Self::next_plan`], restricted to the sites a one-shot
    /// [`MapService::map`](crate::MapService::map) request executes
    /// (artifact build, candidate sweep, pool batch).
    pub fn next_map_plan(&mut self, max_hit: u64) -> (FaultSite, u64, FaultKind) {
        loop {
            let plan = self.next_plan(max_hit);
            if matches!(
                plan.0,
                FaultSite::ArtifactBuild | FaultSite::CandidateSweep | FaultSite::PoolBatch
            ) {
                return plan;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_a_pure_function_of_the_seed() {
        let mut a = FaultSchedule::new(42);
        let mut b = FaultSchedule::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_plan(7), b.next_plan(7));
        }
        let mut c = FaultSchedule::new(43);
        let draws_a: Vec<_> = (0..64).map(|_| a.next_plan(7)).collect();
        let draws_c: Vec<_> = (0..64).map(|_| c.next_plan(7)).collect();
        assert_ne!(draws_a, draws_c, "different seeds, different schedules");
    }

    #[test]
    fn schedule_covers_every_site_and_respects_hit_bounds() {
        let mut s = FaultSchedule::new(7);
        let mut seen = [false; 5];
        for _ in 0..256 {
            let (site, hit, _) = s.next_plan(3);
            seen[site as usize] = true;
            assert!((1..=3).contains(&hit));
        }
        assert!(seen.iter().all(|&s| s), "all sites drawn: {seen:?}");
        for _ in 0..64 {
            let (site, _, _) = s.next_map_plan(3);
            assert!(matches!(
                site,
                FaultSite::ArtifactBuild | FaultSite::CandidateSweep | FaultSite::PoolBatch
            ));
        }
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn armed_faults_fire_exactly_once_at_the_named_hit() {
        let arm = arm_kind(FaultSite::CandidateSweep, 3, FaultKind::Error);
        assert!(!fault_point(FaultSite::CandidateSweep));
        assert!(!fault_point(FaultSite::ArtifactBuild), "other site idle");
        assert!(!fault_point(FaultSite::CandidateSweep));
        assert!(!arm.fired());
        assert!(fault_point(FaultSite::CandidateSweep), "third hit fires");
        assert!(arm.fired());
        assert!(!fault_point(FaultSite::CandidateSweep), "fires only once");
        drop(arm);
        assert!(!fault_point(FaultSite::CandidateSweep), "disarmed");
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn injected_panics_carry_the_recognizable_prefix() {
        let arm = arm(FaultSite::SessionCommit, 1);
        let err = std::panic::catch_unwind(|| fault_point(FaultSite::SessionCommit))
            .expect_err("armed panic fires");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("string payload");
        assert!(msg.starts_with(INJECTED_PANIC_PREFIX), "payload: {msg}");
        assert!(msg.contains("session-commit"));
        assert!(arm.fired());
    }
}

//! Population evaluation: batches of whole candidate mappings.
//!
//! The decomposition mapper's engine ([`crate::batch::CandidateBatch`])
//! scores *moves against one shared base mapping*.  Population-based
//! searches — the NSGA-II baseline of the paper's §IV-A comparison —
//! need the dual: score a whole population of mappings per generation,
//! where each member is naturally described as a small delta against
//! a parent rather than against a global incumbent.
//!
//! [`PopulationEval`] reuses the engine's machinery for that shape:
//!
//! * **Content-keyed memoization** (`BoundedMemo`): populations repeat
//!   themselves heavily — elitist survivors resurface, crossover of
//!   converged parents reproduces known genomes, and ~37 % of offspring
//!   escape mutation entirely — so fitness values memoized under the
//!   mapping fingerprint answer a growing share of evaluations as the
//!   population converges.  Duplicates *within* one batch are coalesced
//!   too: one simulation serves every identical candidate.  Bounded by
//!   the same generation-stamped LRU policy as the mapper memos.
//! * **Base-relative windowed re-simulation with a cross-batch trail
//!   cache**: a candidate that differs from a base mapping only in
//!   nodes first read at pop position `p` shares the base's exact
//!   schedule state before `p` (the same argument as the mapper's
//!   candidate windows, see docs/PERF.md).  Checkpoint trails are
//!   content-keyed by the base's fingerprint and cached *across*
//!   batches — an elitist survivor keeps parenting offspring for many
//!   generations, so its trail is recorded once and pays out for its
//!   whole lifetime.  The recording gate is purely a *cost* heuristic —
//!   windowed and full simulations produce bit-identical makespans, so
//!   neither the gate nor an eviction can ever change a result.
//! * **A prefix-sharing trie evaluation order**
//!   ([`EvalOrder::PrefixTrie`], the default): within one batch, the
//!   candidates are sorted lexicographically by their device
//!   assignments projected onto ascending earliest-read node order —
//!   the depth-first walk of the genome trie.  Adjacent candidates
//!   then share the longest available genome prefix, and a chain of
//!   them keeps **one rolling checkpoint trail**: extend on descent,
//!   truncate on backtrack, so each sibling replays only its divergent
//!   suffix.  Every candidate windows from
//!   `max(LCP with its trie predecessor, its nearest-base window)`, so
//!   the trie order can never replay *more* positions than the flat
//!   nearest-base policy ([`EvalOrder::NearestBase`], kept as the
//!   executable spec of the PR 3 engine).  A serial planner decides
//!   every restore source and every live snapshot before dispatch; the
//!   trie subtrees are the parallel work items, so results *and*
//!   statistics are thread- and backend-invariant (docs/PERF.md has
//!   the exactness argument).
//! * **Parallel simulation** over `spmap-par` worker states, with all
//!   memo reads/writes and every trail decision on the serial
//!   coordinating path, so results *and* memo state are
//!   thread-invariant.
//!
//! The evaluator is BFS-schedule only (the GA's fitness function); the
//! multi-schedule report metric stays the mapper engine's domain.

use std::collections::HashMap;
use std::sync::RwLock;

use spmap_graph::{NodeId, TaskGraph};
use spmap_model::{
    EvalScratch, EvalTables, Mapping, Numbering, Platform, ScheduleCheckpoints, WindowSim,
};
use spmap_par::{par_map_with_threads, DispatchStats, WorkerStates};

use crate::batch::{BoundedMemo, DEFAULT_MEMO_CAPACITY};

/// How one batch's pending candidates are ordered for evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvalOrder {
    /// Depth-first genome-trie order with rolling checkpoint trails:
    /// siblings sharing a genome prefix replay only their divergent
    /// suffix.  Each candidate still windows from its nearest-base
    /// position when that is deeper, so this order never replays more
    /// than [`EvalOrder::NearestBase`].
    #[default]
    PrefixTrie,
    /// The flat PR 3 policy, kept as the executable specification:
    /// every candidate independently windows against its nearest
    /// cached base trail (or replays from the zero state).
    NearestBase,
}

/// Tuning knobs of the population evaluator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PopulationConfig {
    /// Worker thread count; `None` reads `SPMAP_THREADS` / the machine
    /// parallelism via `spmap_par::num_threads`.
    pub threads: Option<usize>,
    /// Fitness-memo entry cap (generation-stamped LRU; `0` = unbounded).
    pub memo_capacity: usize,
    /// Trail-cache slot cap (LRU; `0` = the memory-budget heuristic
    /// [`trail_cache_cap`] — ~64 MB of snapshots, clamped to
    /// `[16, 256]` slots).  Eviction can never change a result.
    pub trail_cache_capacity: usize,
    /// Evaluation-order policy (see [`EvalOrder`]).
    pub order: EvalOrder,
    /// Node numbering of the evaluation tables (layout only; results
    /// are bit-identical — see `spmap_model::Numbering`).
    pub numbering: Numbering,
    /// Pin all checkpoint trails (cached base trails and the rolling
    /// trie trails) to the dense snapshot layout (ablation /
    /// bit-identity cells; ~2× the snapshot bytes of suffix-sparse).
    pub dense_checkpoints: bool,
    /// Per-trail checkpoint byte budget (`0` = the 32 MiB default);
    /// widens the snapshot interval, never changes results.
    pub checkpoint_budget_bytes: usize,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        Self {
            threads: None,
            memo_capacity: DEFAULT_MEMO_CAPACITY,
            trail_cache_capacity: 0,
            order: EvalOrder::PrefixTrie,
            numbering: Numbering::default(),
            dense_checkpoints: false,
            checkpoint_budget_bytes: 0,
        }
    }
}

/// Decision counters of a [`PopulationEval`], accumulated over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PopulationStats {
    /// Candidates settled by a full from-scratch simulation.
    pub full_sims: u64,
    /// Candidates settled by a windowed replay (from a cached base
    /// trail or from the rolling trie trail).
    pub windowed_sims: u64,
    /// Candidates answered by the fitness memo without simulation.
    pub memo_hits: u64,
    /// Candidates coalesced onto an identical candidate of the same
    /// batch (one simulation served both).
    pub batch_dups: u64,
    /// FPGA-area-infeasible candidates (no simulation at all).
    pub infeasible: u64,
    /// Base checkpoint trails recorded (one full simulation each).
    pub trails_recorded: u64,
    /// Total schedule positions skipped by windowed replays (each full
    /// simulation processes `n` positions; this is the windows' saved
    /// work, before snapshot-granularity rounding).
    pub windowed_skip: u64,
    /// Windowed replays served by the rolling trie trail (a subset of
    /// `windowed_sims`; the remainder restored from cached base trails).
    pub rolling_sims: u64,
    /// Pop positions the *ordering* saved on top of endpoint caching:
    /// for every rolling-trail replay, its window start minus the best
    /// base-trail window the same candidate had available (a subset of
    /// `windowed_skip` — base caching alone would have saved the
    /// rest).
    pub prefix_shared_positions: u64,
    /// Chained (non-root) candidates of the trie walk.
    pub trie_members: u64,
    /// Summed LCP window starts over the chained candidates — the raw
    /// prefix depth the trie order discovered, before the per-candidate
    /// `max(LCP, base window)` choice.  `trie_lcp_positions /
    /// trie_members` is the mean trie depth in pop positions.
    pub trie_lcp_positions: u64,
    /// Trails dropped from the trail cache by LRU eviction.
    pub trail_evictions: u64,
    /// Largest slot count the trail cache ever held (stays at or below
    /// `PopulationConfig::trail_cache_capacity` when a cap is set).
    pub trail_peak: u64,
    /// Entries dropped from the fitness memo by LRU eviction.
    pub memo_evictions: u64,
    /// Largest entry count the fitness memo ever held (stays at or
    /// below `PopulationConfig::memo_capacity` when a capacity is set).
    pub memo_peak: u64,
}

/// One population member awaiting evaluation: a full candidate mapping,
/// optionally described as a delta against a base mapping of the batch.
#[derive(Clone, Copy, Debug)]
pub struct DeltaCandidate<'a> {
    /// The complete candidate mapping (the delta already applied).
    pub mapping: &'a Mapping,
    /// The mapping's content fingerprint
    /// (`spmap_model::MappingFingerprint::value`); callers maintain it
    /// in `O(k)` from a parent's fingerprint by toggling the changed
    /// assignments.
    pub fingerprint: u128,
    /// Index into the `bases` slice of the [`PopulationEval::evaluate`]
    /// call this candidate is windowed against, or `None` for a
    /// free-standing mapping (always fully simulated on a memo miss).
    pub base: Option<usize>,
    /// A *valid* window start: the candidate and its base mapping must
    /// agree on every task whose device assignment is read before this
    /// breadth-first pop position.  The minimum earliest-read position
    /// over all changed nodes is the exact (latest sound) start; any
    /// smaller value is also sound and merely replays more.  Ignored
    /// when `base` is `None`.
    pub window_start: usize,
}

/// A base mapping candidates of one batch may window against.
#[derive(Clone, Copy, Debug)]
pub struct PopBase<'a> {
    /// The base mapping.
    pub mapping: &'a Mapping,
    /// Its content fingerprint — the trail-cache key.
    pub fingerprint: u128,
}

/// Per-worker simulation state: the evaluation scratch plus one rolling
/// checkpoint trail for the trie chains this worker executes.
struct PopWorker {
    scratch: EvalScratch,
    rolling: ScheduleCheckpoints,
}

/// Trail-cache memory budget: the slot count is scaled so the cache
/// stays within this budget on any graph size, clamped to `[4, 256]`
/// slots.
const TRAIL_CACHE_BYTES: usize = 64 << 20;

/// Trail-cache slot count for an `n`-task graph at snapshot interval
/// `every` (the `trail_cache_capacity = 0` heuristic).  Always sized
/// from the *suffix-sparse* per-trail estimate
/// (`~n²/(2·every)` f64 entries + 1 bit each + per-snapshot device/link
/// state), deliberately ignoring the configured numbering/layout: the
/// cap feeds eviction decisions, and those must stay identical across
/// the bit-identity matrix (dense cells may overshoot the byte budget
/// by ≤ 2×, which the docs call out).
fn trail_cache_cap(n: usize, every: usize) -> usize {
    let n = n.max(1);
    let count = n / every.max(1) + 1;
    let entries = count * n - every * (count * count.saturating_sub(1)) / 2;
    let per_trail = entries * 8 + entries / 8 + count * (8 + 64 + 1) * 8;
    (TRAIL_CACHE_BYTES / per_trail.max(1)).clamp(4, 256)
}

/// Record a new trail only when its batch's children skip at least one
/// full simulation's worth of pop positions — recording costs one full
/// simulation, so the gate guarantees it pays for itself within the
/// batch, and cross-batch reuse is pure profit.
const TRAIL_GAIN_MIN: usize = 1;

/// Target chain length of one trie work item.  The feasible candidates
/// of a batch are split into `ceil(k / TRIE_CHAIN_TARGET)` contiguous
/// DFS ranges — a pure function of the batch, never of the thread
/// count, so the plan (and with it every statistic) is identical for
/// any worker count and backend.  Chains break at the boundaries with
/// the smallest window-depth loss (`LCP − base window`), and a chain
/// root still windows against its nearest cached base trail, so a
/// break never costs more than falling back to the flat policy there.
const TRIE_CHAIN_TARGET: usize = 8;

/// A content-keyed LRU cache of base checkpoint trails.  `RwLock` per
/// slot: recording takes the write lock (each slot written by exactly
/// one worker), windowed replays share the read lock.
struct TrailCache {
    /// base fingerprint -> slot.
    slots: HashMap<u128, usize>,
    stores: Vec<RwLock<ScheduleCheckpoints>>,
    /// LRU stamp per slot (monotone clock; touched on every use).
    stamp: Vec<u64>,
    clock: u64,
    evictions: u64,
    capacity: usize,
    /// Pin newly reserved stores to the dense snapshot layout
    /// (`PopulationConfig::dense_checkpoints`).
    dense: bool,
}

impl TrailCache {
    fn new(n: usize, every: usize, capacity: usize, dense: bool) -> Self {
        Self {
            slots: HashMap::new(),
            stores: Vec::new(),
            stamp: Vec::new(),
            clock: 0,
            evictions: 0,
            capacity: if capacity == 0 {
                trail_cache_cap(n, every)
            } else {
                capacity
            },
            dense,
        }
    }

    /// Largest single trail currently held (bytes).  Shapes are fixed
    /// at first recording, so this is monotone over a run.
    fn peak_bytes(&self) -> usize {
        self.stores
            .iter()
            .map(|s| s.read().unwrap().byte_len())
            .max()
            .unwrap_or(0)
    }

    /// The slot of `fp`'s trail, refreshing its LRU stamp.
    fn get(&mut self, fp: u128) -> Option<usize> {
        self.clock += 1;
        let clock = self.clock;
        self.slots.get(&fp).copied().inspect(|&s| {
            self.stamp[s] = clock;
        })
    }

    /// Reserve a slot for `fp`, evicting the LRU trail at capacity —
    /// but never a slot the current batch already references
    /// (`pinned`): an in-batch reference holds a raw slot index, so
    /// reassigning its store mid-batch would window candidates against
    /// the wrong base's prefix state.  Returns `None` when every slot
    /// is pinned (the batch then falls back to full simulation for
    /// this base's children — always correct, merely slower).  The
    /// caller records into the returned slot's store and must pin it.
    fn reserve(&mut self, fp: u128, every: usize, pinned: &mut Vec<bool>) -> Option<usize> {
        self.clock += 1;
        let slot = if self.stores.len() < self.capacity {
            let store = if self.dense {
                ScheduleCheckpoints::new_dense(every)
            } else {
                ScheduleCheckpoints::new(every)
            };
            self.stores.push(RwLock::new(store));
            self.stamp.push(0);
            pinned.push(false);
            self.stores.len() - 1
        } else {
            let slot = self
                .stamp
                .iter()
                .enumerate()
                .filter(|&(s, _)| !pinned[s])
                .min_by_key(|&(_, &st)| st)
                .map(|(s, _)| s)?;
            // lint:allow(no-unordered-iteration): retain by a pure value predicate (drop the one fingerprint mapped to the evicted slot) — order-independent.
            self.slots.retain(|_, &mut s| s != slot);
            self.evictions += 1;
            slot
        };
        self.slots.insert(fp, slot);
        self.stamp[slot] = self.clock;
        #[cfg(feature = "strict-invariants")]
        {
            assert!(
                self.stores.len() <= self.capacity,
                "strict-invariants: trail cache grew past its capacity ({} > {})",
                self.stores.len(),
                self.capacity
            );
            assert_eq!(
                self.stamp.len(),
                self.stores.len(),
                "strict-invariants: trail cache stamp/store length mismatch"
            );
            // Slot exclusivity: at most one live fingerprint per store,
            // or two bases would window against each other's prefixes.
            // lint:allow(no-unordered-iteration): collecting slot indices for a uniqueness check — any visit order yields the same sorted multiset.
            let mut owned: Vec<usize> = self.slots.values().copied().collect();
            owned.sort_unstable();
            let n = owned.len();
            owned.dedup();
            assert_eq!(
                owned.len(),
                n,
                "strict-invariants: two fingerprints share a trail cache slot"
            );
        }
        Some(slot)
    }

    /// Forget `fp`'s trail (e.g. its recording failed).
    fn forget(&mut self, fp: u128) {
        self.slots.remove(&fp);
    }
}

/// The node scan order of the prefix trie: node ids sorted by
/// `(earliest breadth-first read position, id)`.  Two mappings that
/// first differ (in this order) at a node read at position `p` have
/// bit-identical schedules before `p` — every later-scanned node is
/// read at `p` or later — so `p` is their exact shared window start.
fn scan_nodes(tables: &EvalTables<'_>) -> Vec<u32> {
    let mut scan: Vec<u32> = (0..tables.node_count() as u32).collect();
    scan.sort_by_key(|&v| (tables.earliest_read_pos(NodeId(v)), v));
    scan
}

/// Sparse lexicographic comparator over scan-projected mappings.
///
/// Each mapping is represented by its `(scan rank, device)` differences
/// from a shared reference mapping (the batch's fittest base — a
/// converged population clusters around it, so diff lists are short).
/// Comparing two near-identical genomes then costs `O(shared diff
/// entries)` instead of `O(n)`, which is what makes the trie sort pay
/// for itself: the induced order is *exactly* the dense lexicographic
/// order — ranks where both sides equal the reference compare equal,
/// and a rank where only one side differs resolves against the
/// reference's device (never a tie: a stored diff differs from the
/// reference by construction).
struct SparseProj {
    /// Reference device per scan rank.
    rproj: Vec<spmap_model::DeviceId>,
    /// Concatenated per-candidate diff lists, ascending rank.
    flat: Vec<(u32, spmap_model::DeviceId)>,
    /// Candidate `i`'s diff list is `flat[span[i].0 .. span[i].1]`.
    span: Vec<(u32, u32)>,
}

impl SparseProj {
    /// `scan_rank` is the inverse of the scan order
    /// (`scan_rank[node] = rank`).  The diff pass streams both mappings
    /// in node order (sequential, branch rarely taken) and sorts each
    /// short diff list by rank afterwards — far cheaper than walking
    /// the scan permutation per candidate.
    fn build(scan_rank: &[u32], maps: &[&Mapping], rmap: &Mapping) -> Self {
        let r = rmap.as_slice();
        let n = r.len();
        let mut rproj = vec![spmap_model::DeviceId(0); n];
        for (v, &d) in r.iter().enumerate() {
            rproj[scan_rank[v] as usize] = d;
        }
        let mut flat = Vec::new();
        let mut span = Vec::with_capacity(maps.len());
        for m in maps {
            let ms = m.as_slice();
            let s = flat.len();
            for (v, (&d, &rd)) in ms.iter().zip(r).enumerate() {
                if d != rd {
                    flat.push((scan_rank[v], d));
                }
            }
            flat[s..].sort_unstable_by_key(|&(rank, _)| rank);
            span.push((s as u32, flat.len() as u32));
        }
        Self { rproj, flat, span }
    }

    fn diffs(&self, i: usize) -> &[(u32, spmap_model::DeviceId)] {
        let (s, e) = self.span[i];
        &self.flat[s as usize..e as usize]
    }

    /// Dense lexicographic comparison of candidates `a` and `b` under
    /// the scan projection.
    fn cmp(&self, a: usize, b: usize) -> std::cmp::Ordering {
        let (mut da, mut db) = (self.diffs(a).iter(), self.diffs(b).iter());
        let (mut na, mut nb) = (da.next(), db.next());
        loop {
            match (na, nb) {
                (None, None) => return std::cmp::Ordering::Equal,
                (Some(&(ra, va)), None) => return va.cmp(&self.rproj[ra as usize]),
                (None, Some(&(rb, vb))) => return self.rproj[rb as usize].cmp(&vb),
                (Some(&(ra, va)), Some(&(rb, vb))) => {
                    if ra < rb {
                        return va.cmp(&self.rproj[ra as usize]);
                    }
                    if rb < ra {
                        return self.rproj[rb as usize].cmp(&vb);
                    }
                    if va != vb {
                        return va.cmp(&vb);
                    }
                    na = da.next();
                    nb = db.next();
                }
            }
        }
    }

    /// First scan rank at which `a` and `b` disagree; `None` when the
    /// mappings are identical.
    fn first_diff_rank(&self, a: usize, b: usize) -> Option<u32> {
        let (mut da, mut db) = (self.diffs(a).iter(), self.diffs(b).iter());
        let (mut na, mut nb) = (da.next(), db.next());
        loop {
            match (na, nb) {
                (None, None) => return None,
                (Some(&(ra, _)), None) => return Some(ra),
                (None, Some(&(rb, _))) => return Some(rb),
                (Some(&(ra, va)), Some(&(rb, vb))) => {
                    if ra != rb {
                        return Some(ra.min(rb));
                    }
                    if va != vb {
                        return Some(ra);
                    }
                    na = da.next();
                    nb = db.next();
                }
            }
        }
    }
}

/// Sort mapping indices lexicographically by device assignment
/// projected onto `scan` — the depth-first walk of the genome trie.
fn sort_trie(proj: &SparseProj) -> Vec<u32> {
    let mut order: Vec<u32> = (0..proj.span.len() as u32).collect();
    // Stable sort: identical mappings keep input order, so the walk is
    // deterministic.
    order.sort_by(|&a, &b| proj.cmp(a as usize, b as usize));
    order
}

/// The depth-first evaluation order of the genome trie over `mappings`
/// — what [`EvalOrder::PrefixTrie`] walks: indices sorted
/// lexicographically by device assignment projected onto ascending
/// earliest-read node order.  Candidates adjacent in this order share
/// the longest genome prefix available in the batch, which is exactly
/// the schedule prefix a rolling checkpoint trail can reuse.
///
/// Exposed for the property suite: the result is always a permutation
/// of `0 .. mappings.len()`, and it is deterministic (stable sort over
/// deterministic keys).
pub fn trie_order(tables: &EvalTables<'_>, mappings: &[&Mapping]) -> Vec<usize> {
    if mappings.is_empty() {
        return Vec::new();
    }
    let scan = scan_nodes(tables);
    let mut scan_rank = vec![0u32; scan.len()];
    for (j, &v) in scan.iter().enumerate() {
        scan_rank[v as usize] = j as u32;
    }
    // Any reference induces the same order (see [`SparseProj`]); the
    // first mapping is as good as any.
    let proj = SparseProj::build(&scan_rank, mappings, mappings[0]);
    sort_trie(&proj).into_iter().map(|i| i as usize).collect()
}

/// Where one planned candidate simulation restores its prefix state
/// from.  Decided entirely on the serial planning path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SimSrc {
    /// Full replay from the shared all-zero snapshot.
    Zero,
    /// Windowed from the cached base trail in this cache slot.
    Base(usize),
    /// Windowed from the worker's rolling trie trail.
    Rolling,
}

/// The population evaluation engine: shared immutable [`EvalTables`],
/// a bounded fitness memo, the cross-batch trail cache, and one
/// simulation scratch (plus rolling trail) per worker.
pub struct PopulationEval<'g> {
    tables: EvalTables<'g>,
    threads: usize,
    workers: WorkerStates<PopWorker>,
    memo: BoundedMemo<u128>,
    trails: TrailCache,
    order: EvalOrder,
    /// Node ids sorted by `(earliest read position, id)` — the trie's
    /// scan order, inverted (`scan_rank[node] = rank` — see
    /// [`scan_nodes`]).
    scan_rank: Vec<u32>,
    /// Earliest-read pop position per scan rank
    /// (`scan_pos[j] = earliest_read_pos(scan[j])`, nondecreasing):
    /// turns a first-differing scan rank into its LCP window start.
    scan_pos: Vec<u32>,
    /// Shape/interval oracle of the per-worker rolling trails: the
    /// planner predicts restore snapshot indices through this template
    /// (same constructor as the worker trails, so the clamping
    /// arithmetic can never drift from execution).
    roll_template: ScheduleCheckpoints,
    /// The all-zero snapshot — the shared initial state of every
    /// simulation.  Candidates without a usable window restore it at
    /// position 0: a full-length replay through the precomputed pop
    /// order, bit-identical to the heap-driven simulation but without
    /// the ready-heap's `O(log V)` per pop.
    zero_trail: ScheduleCheckpoints,
    stats: PopulationStats,
    /// The engine thread's `spmap_par` dispatch counters at
    /// construction; [`Self::dispatch`] diffs against this.
    dispatch_base: DispatchStats,
}

impl<'g> PopulationEval<'g> {
    /// Build the evaluator for one `(graph, platform)` pair.
    pub fn new(graph: &'g TaskGraph, platform: &'g Platform, cfg: PopulationConfig) -> Self {
        let tables = EvalTables::with_numbering(graph, platform, cfg.numbering);
        let threads = match cfg.threads {
            Some(n) => n.max(1),
            None => {
                let cores = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                spmap_par::num_threads().clamp(1, cores)
            }
        };
        let n = graph.node_count();
        let m = platform.device_count();
        let every = ScheduleCheckpoints::auto_interval_for(n, cfg.checkpoint_budget_bytes);
        // Rolling trails and the zero trail may use the suffix-sparse
        // layout whenever the tables are pop-order numbered — the
        // population engine only ever replays the BFS order.
        let suffix = tables.suffix_windows() && !cfg.dense_checkpoints;
        let workers = WorkerStates::new(threads, |_| PopWorker {
            scratch: EvalScratch::for_tables(&tables),
            rolling: ScheduleCheckpoints::zeroed_with_layout(n, m, every, suffix),
        });
        let scan = scan_nodes(&tables);
        let scan_pos = scan
            .iter()
            .map(|&v| tables.earliest_read_pos(NodeId(v)) as u32)
            .collect();
        let mut scan_rank = vec![0u32; scan.len()];
        for (j, &v) in scan.iter().enumerate() {
            scan_rank[v as usize] = j as u32;
        }
        Self {
            threads,
            workers,
            memo: BoundedMemo::new(cfg.memo_capacity),
            trails: TrailCache::new(n, every, cfg.trail_cache_capacity, cfg.dense_checkpoints),
            order: cfg.order,
            scan_pos,
            scan_rank,
            roll_template: ScheduleCheckpoints::zeroed_with_layout(n, m, every, suffix),
            zero_trail: ScheduleCheckpoints::zeroed_with_layout(n, m, n + 1, suffix),
            stats: PopulationStats::default(),
            dispatch_base: spmap_par::dispatch_stats(),
            tables,
        }
    }

    /// The shared evaluation tables.
    pub fn tables(&self) -> &EvalTables<'g> {
        &self.tables
    }

    /// Effective worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Decision counters accumulated so far (including the live
    /// eviction counters and the memo/trail-cache peak sizes).
    pub fn stats(&self) -> PopulationStats {
        let mut s = self.stats;
        s.memo_evictions = self.memo.evictions();
        s.memo_peak = self.memo.peak() as u64;
        s.trail_evictions = self.trails.evictions;
        s.trail_peak = self.trails.stores.len() as u64;
        s
    }

    /// How this evaluator's parallel batches were dispatched so far
    /// (serial fast path / scoped spawns / persistent-pool wakes) —
    /// the calling thread's `spmap_par` counters since construction.
    /// Lives beside, not inside, the thread-invariant
    /// [`PopulationStats`]: dispatch counters vary with the thread
    /// count and `SPMAP_POOL` backend by design.
    pub fn dispatch(&self) -> DispatchStats {
        spmap_par::dispatch_stats().since(&self.dispatch_base)
    }

    /// Current entry count of the fitness memo.
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }

    /// Largest single checkpoint trail (bytes) the engine currently
    /// holds — cached base trails, per-worker rolling trails and the
    /// zero trail.  Trail shapes are fixed once recorded, so this is
    /// the run's peak; it is the per-trail number
    /// `PopulationConfig::checkpoint_budget_bytes` gates.
    pub fn checkpoint_peak_bytes(&self) -> u64 {
        let rolling = self
            .workers
            .iter()
            .map(|w| w.rolling.byte_len())
            .max()
            .unwrap_or(0);
        self.trails
            .peak_bytes()
            .max(rolling)
            .max(self.zero_trail.byte_len()) as u64
    }

    /// Total simulations run so far (all workers; trail recordings and
    /// windowed replays both count one each).
    pub fn evaluations(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| w.scratch.stats().evaluations)
            .sum()
    }

    /// Total schedule positions stepped so far (all workers) — the
    /// engine's real simulation work after snapshot-granularity
    /// rounding; `evaluations * n - positions` is what the windows
    /// actually saved.
    pub fn positions(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| w.scratch.stats().positions)
            .sum()
    }

    /// Evaluate one batch of candidates (typically a GA generation)
    /// under the breadth-first schedule.  Returns one makespan per
    /// candidate, in input order; `None` marks an FPGA-area-infeasible
    /// mapping.
    ///
    /// Every returned makespan is bit-identical to a from-scratch
    /// `makespan_bfs` of the candidate's mapping: memo entries are pure
    /// values, coalesced duplicates share a fingerprint (hence a
    /// mapping), and every windowed replay — from a cached base trail
    /// or from a rolling trie trail — restores the exact prefix state
    /// of a schedule that agrees with the candidate before the window
    /// start (docs/PERF.md).  All memo reads/writes, the whole trie
    /// plan and every trail decision happen on this (serial) calling
    /// path, so results, statistics, memo and cache state are thread-
    /// and backend-invariant.
    pub fn evaluate(
        &mut self,
        bases: &[PopBase<'_>],
        cands: &[DeltaCandidate<'_>],
    ) -> Vec<Option<f64>> {
        let n = self.tables.node_count();
        let mut results: Vec<Option<f64>> = vec![None; cands.len()];
        // Serial memo pass; misses become pending `(index, window)`.
        // Duplicate fingerprints within the batch coalesce onto the
        // first occurrence.
        let mut pending: Vec<(usize, usize)> = Vec::new();
        let mut first_of: HashMap<u128, usize> = HashMap::new();
        let mut dups: Vec<(usize, usize)> = Vec::new();
        for (i, c) in cands.iter().enumerate() {
            if let Some(ms) = self.memo.get(&c.fingerprint) {
                results[i] = Some(ms);
                self.stats.memo_hits += 1;
                continue;
            }
            if let Some(&first) = first_of.get(&c.fingerprint) {
                dups.push((i, first));
                self.stats.batch_dups += 1;
                continue;
            }
            first_of.insert(c.fingerprint, i);
            let from_pos = match c.base {
                Some(_) => c.window_start.min(n),
                None => 0,
            };
            pending.push((i, from_pos));
        }
        // Area feasibility on the serial path: the planners must know
        // which candidates simulate at all (an infeasible candidate
        // cannot anchor a rolling chain), and the verdict is cheap
        // next to a simulation.
        let mut feas: Vec<(usize, usize)> = Vec::with_capacity(pending.len());
        for &(i, from_pos) in &pending {
            if self.tables.area_feasible(cands[i].mapping) {
                feas.push((i, from_pos));
            } else {
                self.stats.infeasible += 1;
            }
        }
        if !feas.is_empty() {
            match self.order {
                EvalOrder::NearestBase => self.evaluate_nearest(bases, cands, &feas, &mut results),
                EvalOrder::PrefixTrie => self.evaluate_trie(bases, cands, &feas, &mut results),
            }
        }
        for (i, first) in dups {
            results[i] = results[first];
        }
        results
    }

    /// Look up cached trails for every base referenced in `refs` and
    /// record new ones where the summed window gain clears the
    /// recording gate.  `refs` holds one `(base, gain)` pair per
    /// planned window: `gain` is the pop-position saving the caller
    /// attributes to this base *if a trail had to be freshly recorded*
    /// (both orders credit the candidate's full base window, so trail
    /// availability never depends on the order policy).  Returns the
    /// usable trail slot per base.  All
    /// cache decisions stay on this serial path; only the recordings
    /// themselves run in parallel.
    fn resolve_trails(
        &mut self,
        bases: &[PopBase<'_>],
        refs: &[(usize, usize)],
    ) -> Vec<Option<usize>> {
        let n = self.tables.node_count();
        let mut trail_slot: Vec<Option<usize>> = vec![None; bases.len()];
        let mut gain: Vec<usize> = vec![0; bases.len()];
        let mut referenced: Vec<bool> = vec![false; bases.len()];
        for &(b, _) in refs {
            referenced[b] = true;
        }
        // Look up cached trails in ascending *base index* order, not in
        // `refs` order: the LRU clock stamps every lookup, and the two
        // evaluation orders present the same reference set in different
        // sequences.  A canonical lookup order makes the cache's stamp
        // sequence — and with it every future eviction — identical
        // across orders, which is what turns "the trie windows from
        // `max(LCP, base window)`" into a real never-steps-more
        // guarantee (the gate in perf_report) instead of a
        // same-trail-set assumption.
        for (b, &refd) in referenced.iter().enumerate() {
            if refd {
                trail_slot[b] = self.trails.get(bases[b].fingerprint);
            }
        }
        for &(b, g) in refs {
            if trail_slot[b].is_none() {
                gain[b] += g;
            }
        }
        // Slots the current batch references hold raw indices into the
        // cache, so eviction must not reassign them mid-batch: pin
        // every looked-up slot, and every slot as it is reserved.
        let mut pinned: Vec<bool> = vec![false; self.trails.stores.len()];
        for slot in trail_slot.iter().flatten() {
            pinned[*slot] = true;
        }
        let every = self.roll_template.every();
        let mut record: Vec<(usize, usize)> = Vec::new(); // (base, slot)
        let mut aliases: Vec<(usize, usize)> = Vec::new(); // duplicate-fp bases
        for b in 0..bases.len() {
            if trail_slot[b].is_some() || gain[b] < TRAIL_GAIN_MIN * n {
                continue;
            }
            // A duplicate-fingerprint base (identical mapping, common in
            // converged populations) may already have reserved a slot
            // earlier in this loop: one recording serves both.
            if let Some(slot) = self.trails.get(bases[b].fingerprint) {
                aliases.push((b, slot));
                continue;
            }
            if let Some(slot) = self
                .trails
                .reserve(bases[b].fingerprint, every, &mut pinned)
            {
                pinned[slot] = true;
                record.push((b, slot));
            }
            // `None`: every slot is pinned by this batch — skip the
            // trail; this base's children fall back to full replays.
        }
        let tables = &self.tables;
        let threads = self.threads;
        let trails = &self.trails;
        let base_ms: Vec<Option<f64>> =
            par_map_with_threads(threads, &mut self.workers, &record, |w, _, item| {
                let &(b, slot) = item;
                let mut store = trails.stores[slot]
                    .write()
                    .expect("trail recording never panics");
                tables.makespan_order_checkpointed(
                    &mut w.scratch,
                    bases[b].mapping,
                    tables.bfs_order(),
                    &mut store,
                )
            });
        // An infeasible base has no usable snapshots: drop its cache
        // entry (and every alias to its slot) so nothing windows
        // against garbage.
        let mut failed: Vec<bool> = vec![false; self.trails.stores.len()];
        for (&(b, slot), ms) in record.iter().zip(&base_ms) {
            if ms.is_some() {
                trail_slot[b] = Some(slot);
                self.stats.trails_recorded += 1;
            } else {
                self.trails.forget(bases[b].fingerprint);
                failed[slot] = true;
            }
        }
        for (b, slot) in aliases {
            if !failed[slot] {
                trail_slot[b] = Some(slot);
            }
        }
        // A freshly recorded trail also computed its base's exact
        // makespan — keep it hot in the memo.
        for (&(b, _), ms) in record.iter().zip(&base_ms) {
            if let Some(ms) = *ms {
                self.memo.insert(bases[b].fingerprint, ms);
            }
        }
        trail_slot
    }

    /// The flat PR 3 evaluation order ([`EvalOrder::NearestBase`]):
    /// every feasible candidate independently windows against its
    /// nearest cached base trail, or replays from the zero state.
    fn evaluate_nearest(
        &mut self,
        bases: &[PopBase<'_>],
        cands: &[DeltaCandidate<'_>],
        feas: &[(usize, usize)],
        results: &mut [Option<f64>],
    ) {
        let refs: Vec<(usize, usize)> = feas
            .iter()
            .filter_map(|&(i, from_pos)| cands[i].base.map(|b| (b, from_pos)))
            .collect();
        let trail_slot = self.resolve_trails(bases, &refs);
        // Simulate the pending candidates in parallel: windowed from
        // the base trail where one exists, from scratch otherwise.
        let items: Vec<(usize, usize, Option<usize>)> = feas
            .iter()
            .map(|&(i, from_pos)| (i, from_pos, cands[i].base.and_then(|b| trail_slot[b])))
            .collect();
        let tables = &self.tables;
        let trails = &self.trails;
        let zero_trail = &self.zero_trail;
        let sims: Vec<f64> =
            par_map_with_threads(self.threads, &mut self.workers, &items, |w, _, item| {
                let &(i, from_pos, trail) = item;
                let store;
                let (ckpt, from_pos) = match trail {
                    Some(slot) => {
                        store = trails.stores[slot]
                            .read()
                            .expect("trail readers never panic");
                        (&*store, from_pos)
                    }
                    // No base trail: replay everything from the shared
                    // zero state — still heap-free through the pop order.
                    None => (zero_trail, 0),
                };
                match tables.makespan_bfs_window(
                    &mut w.scratch,
                    cands[i].mapping,
                    ckpt,
                    from_pos,
                    f64::INFINITY,
                ) {
                    WindowSim::Done(ms) => ms,
                    WindowSim::Cutoff => {
                        unreachable!("no cutoff under an infinite bound")
                    }
                }
            });
        // Serial wrap-up: stats and memo inserts in candidate order.
        for (&(i, from_pos, trail), &ms) in items.iter().zip(&sims) {
            if trail.is_some() {
                self.stats.windowed_sims += 1;
                self.stats.windowed_skip += from_pos as u64;
            } else {
                self.stats.full_sims += 1;
            }
            self.memo.insert(cands[i].fingerprint, ms);
            results[i] = Some(ms);
        }
    }

    /// The prefix-sharing trie order ([`EvalOrder::PrefixTrie`]).
    ///
    /// Phases, all serial except the simulations themselves:
    ///
    /// 1. sort the feasible candidates into the trie's DFS order and
    ///    compute each DFS neighbor pair's exact LCP window start;
    /// 2. split the DFS sequence into `ceil(k / TRIE_CHAIN_TARGET)`
    ///    chains, breaking at the boundaries with the smallest
    ///    window-depth loss;
    /// 3. resolve/record cached base trails with the flat order's
    ///    exact gain arithmetic (so trail availability — and the
    ///    recording cost — matches the flat policy);
    /// 4. plan every candidate's restore source —
    ///    `max(LCP, base window)` — plus the exact set of rolling
    ///    snapshots each replay must re-record for its successors
    ///    (the owner argument in docs/PERF.md);
    /// 5. execute the chains in parallel (one rolling trail per
    ///    worker, reset implicitly: a chain root never reads it);
    /// 6. fold stats/memo/results serially in DFS order.
    fn evaluate_trie(
        &mut self,
        bases: &[PopBase<'_>],
        cands: &[DeltaCandidate<'_>],
        feas: &[(usize, usize)],
        results: &mut [Option<f64>],
    ) {
        // 1. DFS order + LCP window starts, through sparse diff lists
        // against the batch's fittest base (the elite a converged
        // population clusters around): near-identical genomes compare
        // in O(diff) instead of O(n).
        let n = self.tables.node_count();
        let maps: Vec<&Mapping> = feas.iter().map(|&(i, _)| cands[i].mapping).collect();
        let rmap = if bases.is_empty() {
            maps[0]
        } else {
            bases[0].mapping
        };
        let proj = SparseProj::build(&self.scan_rank, &maps, rmap);
        let order = sort_trie(&proj);
        let k_total = order.len();
        let mut lcp = vec![0usize; k_total]; // lcp[k] valid for k >= 1
        for k in 1..k_total {
            lcp[k] = match proj.first_diff_rank(order[k - 1] as usize, order[k] as usize) {
                Some(rank) => self.scan_pos[rank as usize] as usize,
                None => n,
            };
        }
        // 2. Chain partition: `item_count` is a pure function of the
        // batch (never of threads/backend), so the plan is invariant.
        let item_count = k_total.div_ceil(TRIE_CHAIN_TARGET).max(1);
        let mut root = vec![false; k_total];
        root[0] = true;
        if item_count > 1 {
            let mut cost: Vec<(usize, usize)> = (1..k_total)
                .map(|k| {
                    let (i, w) = feas[order[k] as usize];
                    let w = if cands[i].base.is_some() { w } else { 0 };
                    (lcp[k].saturating_sub(w), k)
                })
                .collect();
            cost.sort_unstable();
            for &(_, k) in cost.iter().take(item_count - 1) {
                root[k] = true;
            }
        }
        for k in 1..k_total {
            if !root[k] {
                self.stats.trie_members += 1;
                self.stats.trie_lcp_positions += lcp[k] as u64;
            }
        }
        // 3. Base trails.  Every candidate credits its full base
        // window — the *same* gain arithmetic as the flat order — so
        // the trie sees the exact trail set the flat policy would
        // have, and `max(LCP, base window)` per candidate makes its
        // total skipped work a true superset of the flat order's.
        let refs: Vec<(usize, usize)> = (0..k_total)
            .filter_map(|k| {
                let (i, w) = feas[order[k] as usize];
                cands[i].base.map(|b| (b, w))
            })
            .collect();
        let trail_slot = self.resolve_trails(bases, &refs);
        // 4. Per-candidate plan.  `valid_lo` is the restore snapshot of
        // the chain's last non-rolling candidate: rolling snapshots at
        // or above it are (re)creatable by the segment, anything below
        // would read prefix state the segment never computed.  Each
        // rolling restore is assigned an *owner* — the latest segment
        // candidate whose replay covers the restored snapshot — which
        // re-records exactly that snapshot in passing (extend/truncate
        // in place; the exactness argument lives in docs/PERF.md).
        let mut plan_src = vec![SimSrc::Zero; k_total];
        let mut plan_from = vec![0u32; k_total];
        // The best non-rolling window each candidate had (its base
        // window, or 0): `from - alt` of a rolling replay is the
        // ordering's marginal saving (`prefix_shared_positions`).
        let mut plan_alt = vec![0u32; k_total];
        let mut plan_rec: Vec<Vec<u32>> = vec![Vec::new(); k_total];
        let mut item_ranges: Vec<(usize, usize)> = Vec::new();
        {
            let mut valid_lo = usize::MAX;
            let mut seg: Vec<(usize, usize)> = Vec::new(); // (restore snapshot, k)
            let mut item_start = 0usize;
            for k in 0..k_total {
                if root[k] {
                    if k > 0 {
                        item_ranges.push((item_start, k));
                    }
                    item_start = k;
                    valid_lo = usize::MAX;
                    seg.clear();
                }
                let (i, w0) = feas[order[k] as usize];
                let base = cands[i].base.and_then(|b| trail_slot[b]);
                let w = if base.is_some() { w0 } else { 0 };
                let roll_ok = !root[k]
                    && !seg.is_empty()
                    && self.roll_template.snapshot_index(lcp[k]) >= valid_lo;
                let (src, from) = if roll_ok && lcp[k] > 0 && lcp[k] >= w {
                    (SimSrc::Rolling, lcp[k])
                } else if w > 0 {
                    (SimSrc::Base(base.expect("w > 0 only with a trail")), w)
                } else {
                    (SimSrc::Zero, 0)
                };
                let r = self.roll_template.snapshot_index(from);
                match src {
                    SimSrc::Rolling => {
                        let &(owner_r, owner) = seg
                            .iter()
                            .rev()
                            .find(|&&(rm, _)| rm <= r)
                            .expect("the segment head covers every admissible restore");
                        // A redundant record: when the owner itself
                        // *rolling-restored from this very snapshot*,
                        // its content is already the shared prefix
                        // state this restore needs (the owner read it
                        // and never overwrites it unless listed) —
                        // skip the copy.
                        if !(owner_r == r && plan_src[owner] == SimSrc::Rolling) {
                            plan_rec[owner].push(r as u32);
                        }
                        seg.push((r, k));
                    }
                    SimSrc::Base(_) | SimSrc::Zero => {
                        valid_lo = r;
                        seg.clear();
                        seg.push((r, k));
                    }
                }
                plan_src[k] = src;
                plan_from[k] = from as u32;
                plan_alt[k] = w as u32;
            }
            item_ranges.push((item_start, k_total));
        }
        for rec in &mut plan_rec {
            rec.sort_unstable();
            rec.dedup();
        }
        // 5. Execute the chains in parallel; chain k's plan is fully
        // determined, workers only follow it.
        let tables = &self.tables;
        let trails = &self.trails;
        let zero_trail = &self.zero_trail;
        let (plan_src_r, plan_from_r, plan_rec_r) = (&plan_src, &plan_from, &plan_rec);
        let (order_r, feas_r) = (&order, feas);
        let sims: Vec<Vec<f64>> = par_map_with_threads(
            self.threads,
            &mut self.workers,
            &item_ranges,
            |w, _, item| {
                let &(lo, hi) = item;
                (lo..hi)
                    .map(|k| {
                        let (i, _) = feas_r[order_r[k] as usize];
                        let mapping = cands[i].mapping;
                        let from = plan_from_r[k] as usize;
                        let rec = &plan_rec_r[k];
                        match plan_src_r[k] {
                            SimSrc::Zero => tables.makespan_order_window_recording(
                                &mut w.scratch,
                                mapping,
                                tables.bfs_order(),
                                Some(zero_trail),
                                &mut w.rolling,
                                0,
                                rec,
                            ),
                            SimSrc::Base(slot) => {
                                let store = trails.stores[slot]
                                    .read()
                                    .expect("trail readers never panic");
                                tables.makespan_order_window_recording(
                                    &mut w.scratch,
                                    mapping,
                                    tables.bfs_order(),
                                    Some(&*store),
                                    &mut w.rolling,
                                    from,
                                    rec,
                                )
                            }
                            SimSrc::Rolling => tables.makespan_order_window_recording(
                                &mut w.scratch,
                                mapping,
                                tables.bfs_order(),
                                None,
                                &mut w.rolling,
                                from,
                                rec,
                            ),
                        }
                    })
                    .collect()
            },
        );
        // 6. Serial wrap-up in DFS order: stats, memo, results.
        for (&(lo, hi), chain) in item_ranges.iter().zip(&sims) {
            for (k, &ms) in (lo..hi).zip(chain) {
                let (i, _) = feas[order[k] as usize];
                let from = plan_from[k] as u64;
                match plan_src[k] {
                    SimSrc::Zero => self.stats.full_sims += 1,
                    SimSrc::Base(_) => {
                        self.stats.windowed_sims += 1;
                        self.stats.windowed_skip += from;
                    }
                    SimSrc::Rolling => {
                        self.stats.windowed_sims += 1;
                        self.stats.windowed_skip += from;
                        self.stats.rolling_sims += 1;
                        self.stats.prefix_shared_positions += from - plan_alt[k] as u64;
                    }
                }
                self.memo.insert(cands[i].fingerprint, ms);
                results[i] = Some(ms);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmap_graph::gen::{random_sp_graph, SpGenConfig};
    use spmap_graph::{augment, AugmentConfig, NodeId};
    use spmap_model::{DeviceId, Evaluator, MappingFingerprint};

    fn setup(seed: u64) -> (TaskGraph, Platform) {
        let mut g = random_sp_graph(&SpGenConfig::new(40, seed));
        augment(&mut g, &AugmentConfig::default(), seed);
        (g, Platform::reference())
    }

    /// A family of base mappings plus single/multi-node children of each.
    fn zoo(g: &TaskGraph) -> (Vec<Mapping>, Vec<(usize, Mapping, Vec<NodeId>)>) {
        let n = g.node_count();
        let bases: Vec<Mapping> = (0..3u32)
            .map(|b| {
                Mapping::from_vec(
                    (0..n)
                        .map(|i| DeviceId(((i as u32).wrapping_mul(3).wrapping_add(b)) % 2))
                        .collect(),
                )
            })
            .collect();
        let mut children = Vec::new();
        for (bi, base) in bases.iter().enumerate() {
            for t in 0..6u32 {
                let mut m = base.clone();
                let mut changed = Vec::new();
                for j in 0..=(t % 3) {
                    let v = NodeId((t.wrapping_mul(7).wrapping_add(j * 11)) % n as u32);
                    let d = DeviceId((m.device(v).0 + 1) % 2);
                    if m.device(v) != d && !changed.contains(&v) {
                        m.set(v, d);
                        changed.push(v);
                    }
                }
                children.push((bi, m, changed));
            }
        }
        (bases, children)
    }

    fn base_refs(bases: &[Mapping]) -> Vec<PopBase<'_>> {
        bases
            .iter()
            .map(|m| PopBase {
                mapping: m,
                fingerprint: MappingFingerprint::of(m).value(),
            })
            .collect()
    }

    fn cand_refs<'a>(
        g: &TaskGraph,
        p: &Platform,
        children: &'a [(usize, Mapping, Vec<NodeId>)],
    ) -> Vec<DeltaCandidate<'a>> {
        let tables = EvalTables::new(g, p);
        children
            .iter()
            .map(|(bi, m, changed)| DeltaCandidate {
                mapping: m,
                fingerprint: MappingFingerprint::of(m).value(),
                base: Some(*bi),
                window_start: changed
                    .iter()
                    .map(|&v| tables.earliest_read_pos(v))
                    .min()
                    .unwrap_or(g.node_count()),
            })
            .collect()
    }

    #[test]
    fn population_results_match_serial_reference_bitwise() {
        for seed in [1u64, 5, 9] {
            let (g, p) = setup(seed);
            let (bases, children) = zoo(&g);
            for order in [EvalOrder::PrefixTrie, EvalOrder::NearestBase] {
                for threads in [1usize, 4] {
                    let mut pe = PopulationEval::new(
                        &g,
                        &p,
                        PopulationConfig {
                            threads: Some(threads),
                            order,
                            ..PopulationConfig::default()
                        },
                    );
                    let bases_v = base_refs(&bases);
                    let cands = cand_refs(&g, &p, &children);
                    let got = pe.evaluate(&bases_v, &cands);
                    let mut ev = Evaluator::new(&g, &p);
                    for (c, r) in children.iter().zip(&got) {
                        assert_eq!(
                            *r,
                            ev.makespan_bfs(&c.1),
                            "seed {seed} t{threads} {order:?}: population fitness drifted"
                        );
                    }
                    // A second pass over the same candidates is pure memo.
                    let sims_before = pe.stats().full_sims + pe.stats().windowed_sims;
                    let again = pe.evaluate(&bases_v, &cands);
                    assert_eq!(got, again);
                    assert_eq!(
                        pe.stats().full_sims + pe.stats().windowed_sims,
                        sims_before,
                        "second pass must be memo-only"
                    );
                }
            }
        }
    }

    #[test]
    fn trie_and_nearest_orders_agree_and_trie_never_replays_more() {
        for seed in [2u64, 7, 12] {
            let (g, p) = setup(seed);
            let (bases, children) = zoo(&g);
            let bases_v = base_refs(&bases);
            let cands = cand_refs(&g, &p, &children);
            let run = |order: EvalOrder| {
                let mut pe = PopulationEval::new(
                    &g,
                    &p,
                    PopulationConfig {
                        threads: Some(2),
                        order,
                        ..PopulationConfig::default()
                    },
                );
                let out = pe.evaluate(&bases_v, &cands);
                (out, pe.stats())
            };
            let (trie, trie_stats) = run(EvalOrder::PrefixTrie);
            let (flat, flat_stats) = run(EvalOrder::NearestBase);
            assert_eq!(trie, flat, "seed {seed}: order changed a fitness value");
            // Per candidate the trie windows from max(LCP, base window),
            // so its total skipped work can only match or beat the flat
            // policy's on the same batch.
            assert!(
                trie_stats.windowed_skip >= flat_stats.windowed_skip,
                "seed {seed}: trie skipped less than flat ({trie_stats:?} vs {flat_stats:?})"
            );
        }
    }

    #[test]
    fn trie_order_is_a_permutation_and_deterministic() {
        let (g, p) = setup(4);
        let (_, children) = zoo(&g);
        let tables = EvalTables::new(&g, &p);
        let maps: Vec<&Mapping> = children.iter().map(|(_, m, _)| m).collect();
        let order = trie_order(&tables, &maps);
        let mut seen = vec![false; maps.len()];
        for &k in &order {
            assert!(!seen[k], "trie order visits candidate {k} twice");
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s), "trie order misses a candidate");
        assert_eq!(order, trie_order(&tables, &maps), "order must be stable");
    }

    #[test]
    fn batch_duplicates_are_coalesced() {
        let (g, p) = setup(2);
        let (bases, mut children) = zoo(&g);
        // Duplicate every child once.
        let copies: Vec<_> = children.clone();
        children.extend(copies);
        let bases_v = base_refs(&bases);
        let cands = cand_refs(&g, &p, &children);
        let mut pe = PopulationEval::new(
            &g,
            &p,
            PopulationConfig {
                threads: Some(2),
                ..PopulationConfig::default()
            },
        );
        let got = pe.evaluate(&bases_v, &cands);
        let half = got.len() / 2;
        assert_eq!(&got[..half], &got[half..], "duplicates must agree");
        assert!(pe.stats().batch_dups >= half as u64 - bases.len() as u64);
        let mut ev = Evaluator::new(&g, &p);
        for (c, r) in children.iter().zip(&got) {
            assert_eq!(*r, ev.makespan_bfs(&c.1));
        }
    }

    #[test]
    fn trail_cache_survives_across_batches() {
        let (g, p) = setup(3);
        let n = g.node_count();
        let base = Mapping::all_default(&g, &p);
        let tables = EvalTables::new(&g, &p);
        // Children touching only late-read nodes: every batch windows.
        let mut late_nodes: Vec<NodeId> = g.nodes().collect();
        late_nodes.sort_by_key(|&v| std::cmp::Reverse(tables.earliest_read_pos(v)));
        let children: Vec<(Mapping, Vec<NodeId>)> = late_nodes
            .iter()
            .take(6)
            .map(|&v| {
                let mut m = base.clone();
                m.set(v, DeviceId(1));
                (m, vec![v])
            })
            .collect();
        let total_gain: usize = children
            .iter()
            .map(|(_, ch)| tables.earliest_read_pos(ch[0]))
            .sum();
        // The flat order credits a fresh trail with every child's full
        // window — the recording-gate arithmetic this test pins.
        let mut pe = PopulationEval::new(
            &g,
            &p,
            PopulationConfig {
                threads: Some(1),
                order: EvalOrder::NearestBase,
                ..PopulationConfig::default()
            },
        );
        let base_fp = MappingFingerprint::of(&base).value();
        let bases_v = [PopBase {
            mapping: &base,
            fingerprint: base_fp,
        }];
        let mut ev = Evaluator::new(&g, &p);
        for round in 0..2 {
            let cands: Vec<DeltaCandidate<'_>> = children
                .iter()
                .map(|(m, ch)| DeltaCandidate {
                    mapping: m,
                    fingerprint: MappingFingerprint::of(m).value(),
                    base: Some(0),
                    window_start: tables.earliest_read_pos(ch[0]),
                })
                .collect();
            let got = pe.evaluate(&bases_v, &cands);
            for ((m, _), r) in children.iter().zip(&got) {
                assert_eq!(*r, ev.makespan_bfs(m), "round {round}");
            }
        }
        if total_gain >= n {
            assert_eq!(
                pe.stats().trails_recorded,
                1,
                "one trail, recorded once, reused next batch: {:?}",
                pe.stats()
            );
            assert!(pe.stats().windowed_sims > 0);
        }
    }

    #[test]
    fn tiny_trail_cache_pins_in_batch_slots_and_stays_exact() {
        // More trail-worthy bases per batch than cache slots: reserves
        // beyond the pinned capacity must fall back to full replays
        // (never reassign an in-batch slot), and cross-batch eviction
        // churn must never move a result.
        let (g, p) = setup(11);
        let n = g.node_count();
        let tables = EvalTables::new(&g, &p);
        let mut late: Vec<NodeId> = g.nodes().collect();
        late.sort_by_key(|&v| std::cmp::Reverse(tables.earliest_read_pos(v)));
        let late = &late[..4.min(late.len())];
        // Distinct bases: the default mapping with one early node moved.
        let bases: Vec<Mapping> = (0..8u32)
            .map(|b| {
                let mut m = Mapping::all_default(&g, &p);
                m.set(NodeId(b % n as u32), DeviceId(1));
                m
            })
            .collect();
        // Each base gets one child per late-read node, so every base's
        // summed window gain clears the recording gate.
        let mut children: Vec<(usize, Mapping, Vec<NodeId>)> = Vec::new();
        for (bi, base) in bases.iter().enumerate() {
            for &v in late {
                let mut m = base.clone();
                m.set(v, DeviceId((m.device(v).0 + 1) % 2));
                children.push((bi, m, vec![v]));
            }
        }
        let bases_v = base_refs(&bases);
        let cands = cand_refs(&g, &p, &children);
        for order in [EvalOrder::PrefixTrie, EvalOrder::NearestBase] {
            let mut pe = PopulationEval::new(
                &g,
                &p,
                PopulationConfig {
                    threads: Some(2),
                    trail_cache_capacity: 3,
                    order,
                    ..PopulationConfig::default()
                },
            );
            let mut ev = Evaluator::new(&g, &p);
            for round in 0..3 {
                let got = pe.evaluate(&bases_v, &cands);
                for ((_, m, _), r) in children.iter().zip(&got) {
                    assert_eq!(*r, ev.makespan_bfs(m), "round {round} {order:?}");
                }
            }
            let stats = pe.stats();
            assert!(
                stats.trails_recorded <= 3,
                "{order:?}: at most capacity trails per batch, and round 2+ is memo-only: {stats:?}"
            );
            assert!(
                stats.trail_peak <= 3,
                "{order:?}: trail cache outgrew its capacity: {stats:?}"
            );
        }
    }

    #[test]
    fn tiny_memo_capacity_evicts_but_never_changes_results() {
        let (g, p) = setup(7);
        let (bases, children) = zoo(&g);
        let bases_v = base_refs(&bases);
        let cands = cand_refs(&g, &p, &children);
        let run = |capacity: usize| {
            let mut pe = PopulationEval::new(
                &g,
                &p,
                PopulationConfig {
                    threads: Some(2),
                    memo_capacity: capacity,
                    ..PopulationConfig::default()
                },
            );
            let mut all = Vec::new();
            for _ in 0..3 {
                all.push(pe.evaluate(&bases_v, &cands));
            }
            (all, pe.stats(), pe.memo_len())
        };
        let (unbounded, _, _) = run(0);
        let (tiny, stats, len) = run(4);
        assert_eq!(unbounded, tiny, "eviction changed a fitness value");
        assert!(stats.memo_evictions > 0, "capacity 4 must evict: {stats:?}");
        assert!(len <= 4, "memo exceeded its capacity: {len}");
        assert!(stats.memo_peak <= 4, "peak exceeded capacity: {stats:?}");
    }

    #[test]
    fn infeasible_candidates_are_reported_not_simulated() {
        let (g, p) = setup(6);
        let n = g.node_count();
        // Mapping everything onto the FPGA blows any realistic budget
        // once areas are inflated.
        let mut g2 = g.clone();
        for v in 0..n {
            g2.task_mut(NodeId(v as u32)).area = 1e6;
        }
        let all_fpga = Mapping::uniform(n, DeviceId(2));
        let ok = Mapping::all_default(&g2, &p);
        let cands = [
            DeltaCandidate {
                mapping: &all_fpga,
                fingerprint: MappingFingerprint::of(&all_fpga).value(),
                base: None,
                window_start: 0,
            },
            DeltaCandidate {
                mapping: &ok,
                fingerprint: MappingFingerprint::of(&ok).value(),
                base: None,
                window_start: 0,
            },
        ];
        for order in [EvalOrder::PrefixTrie, EvalOrder::NearestBase] {
            let mut pe = PopulationEval::new(
                &g2,
                &p,
                PopulationConfig {
                    threads: Some(1),
                    order,
                    ..PopulationConfig::default()
                },
            );
            let got = pe.evaluate(&[], &cands);
            assert_eq!(got[0], None, "{order:?}: infeasible must be None");
            assert!(got[1].is_some(), "{order:?}: feasible must evaluate");
            assert_eq!(pe.stats().infeasible, 1, "{order:?}: {:?}", pe.stats());
        }
    }
}

//! Population evaluation: batches of whole candidate mappings.
//!
//! The decomposition mapper's engine ([`crate::batch::CandidateBatch`])
//! scores *moves against one shared base mapping*.  Population-based
//! searches — the NSGA-II baseline of the paper's §IV-A comparison —
//! need the dual: score a whole population of mappings per generation,
//! where each member is naturally described as a small delta against
//! a parent rather than against a global incumbent.
//!
//! [`PopulationEval`] reuses the engine's machinery for that shape:
//!
//! * **Content-keyed memoization** (`BoundedMemo`): populations repeat
//!   themselves heavily — elitist survivors resurface, crossover of
//!   converged parents reproduces known genomes, and ~37 % of offspring
//!   escape mutation entirely — so fitness values memoized under the
//!   mapping fingerprint answer a growing share of evaluations as the
//!   population converges.  Duplicates *within* one batch are coalesced
//!   too: one simulation serves every identical candidate.  Bounded by
//!   the same generation-stamped LRU policy as the mapper memos.
//! * **Base-relative windowed re-simulation with a cross-batch trail
//!   cache**: a candidate that differs from a base mapping only in
//!   nodes first read at pop position `p` shares the base's exact
//!   schedule state before `p` (the same argument as the mapper's
//!   candidate windows, see docs/PERF.md).  Checkpoint trails are
//!   content-keyed by the base's fingerprint and cached *across*
//!   batches — an elitist survivor keeps parenting offspring for many
//!   generations, so its trail is recorded once and pays out for its
//!   whole lifetime.  The recording gate is purely a *cost* heuristic —
//!   windowed and full simulations produce bit-identical makespans, so
//!   neither the gate nor an eviction can ever change a result.
//! * **Parallel simulation** over `spmap-par` worker states, with all
//!   memo reads/writes and every trail decision on the serial
//!   coordinating path, so results *and* memo state are
//!   thread-invariant.
//!
//! The evaluator is BFS-schedule only (the GA's fitness function); the
//! multi-schedule report metric stays the mapper engine's domain.

use std::collections::HashMap;
use std::sync::RwLock;

use spmap_graph::TaskGraph;
use spmap_model::{EvalScratch, EvalTables, Mapping, Platform, ScheduleCheckpoints, WindowSim};
use spmap_par::{par_map_with_threads, DispatchStats, WorkerStates};

use crate::batch::{BoundedMemo, DEFAULT_MEMO_CAPACITY};

/// Tuning knobs of the population evaluator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PopulationConfig {
    /// Worker thread count; `None` reads `SPMAP_THREADS` / the machine
    /// parallelism via `spmap_par::num_threads`.
    pub threads: Option<usize>,
    /// Fitness-memo entry cap (generation-stamped LRU; `0` = unbounded).
    pub memo_capacity: usize,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        Self {
            threads: None,
            memo_capacity: DEFAULT_MEMO_CAPACITY,
        }
    }
}

/// Decision counters of a [`PopulationEval`], accumulated over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PopulationStats {
    /// Candidates settled by a full from-scratch simulation.
    pub full_sims: u64,
    /// Candidates settled by a windowed replay from a cached base trail.
    pub windowed_sims: u64,
    /// Candidates answered by the fitness memo without simulation.
    pub memo_hits: u64,
    /// Candidates coalesced onto an identical candidate of the same
    /// batch (one simulation served both).
    pub batch_dups: u64,
    /// Base checkpoint trails recorded (one full simulation each).
    pub trails_recorded: u64,
    /// Total schedule positions skipped by windowed replays (each full
    /// simulation processes `n` positions; this is the windows' saved
    /// work, before snapshot-granularity rounding).
    pub windowed_skip: u64,
    /// Trails dropped from the trail cache by LRU eviction.
    pub trail_evictions: u64,
    /// Entries dropped from the fitness memo by LRU eviction.
    pub memo_evictions: u64,
    /// Largest entry count the fitness memo ever held (stays at or
    /// below `PopulationConfig::memo_capacity` when a capacity is set).
    pub memo_peak: u64,
}

/// One population member awaiting evaluation: a full candidate mapping,
/// optionally described as a delta against a base mapping of the batch.
#[derive(Clone, Copy, Debug)]
pub struct DeltaCandidate<'a> {
    /// The complete candidate mapping (the delta already applied).
    pub mapping: &'a Mapping,
    /// The mapping's content fingerprint
    /// (`spmap_model::MappingFingerprint::value`); callers maintain it
    /// in `O(k)` from a parent's fingerprint by toggling the changed
    /// assignments.
    pub fingerprint: u128,
    /// Index into the `bases` slice of the [`PopulationEval::evaluate`]
    /// call this candidate is windowed against, or `None` for a
    /// free-standing mapping (always fully simulated on a memo miss).
    pub base: Option<usize>,
    /// A *valid* window start: the candidate and its base mapping must
    /// agree on every task whose device assignment is read before this
    /// breadth-first pop position.  The minimum earliest-read position
    /// over all changed nodes is the exact (latest sound) start; any
    /// smaller value is also sound and merely replays more.  Ignored
    /// when `base` is `None`.
    pub window_start: usize,
}

/// A base mapping candidates of one batch may window against.
#[derive(Clone, Copy, Debug)]
pub struct PopBase<'a> {
    /// The base mapping.
    pub mapping: &'a Mapping,
    /// Its content fingerprint — the trail-cache key.
    pub fingerprint: u128,
}

/// Per-worker simulation state.
struct PopWorker {
    scratch: EvalScratch,
}

/// Trail-cache memory budget: each trail stores `~n/every` snapshots of
/// `O(n)` state (~300·n bytes); the slot count is scaled so the cache
/// stays within this budget on any graph size, clamped to `[16, 256]`.
const TRAIL_CACHE_BYTES: usize = 64 << 20;

/// Trail-cache slot count for an `n`-task graph.
fn trail_cache_cap(n: usize) -> usize {
    (TRAIL_CACHE_BYTES / (300 * n.max(1))).clamp(16, 256)
}

/// Record a new trail only when its batch's children skip at least one
/// full simulation's worth of pop positions — recording costs one full
/// simulation, so the gate guarantees it pays for itself within the
/// batch, and cross-batch reuse is pure profit.
const TRAIL_GAIN_MIN: usize = 1;

/// A content-keyed LRU cache of base checkpoint trails.  `RwLock` per
/// slot: recording takes the write lock (each slot written by exactly
/// one worker), windowed replays share the read lock.
struct TrailCache {
    /// base fingerprint -> slot.
    slots: HashMap<u128, usize>,
    stores: Vec<RwLock<ScheduleCheckpoints>>,
    /// LRU stamp per slot (monotone clock; touched on every use).
    stamp: Vec<u64>,
    clock: u64,
    evictions: u64,
    capacity: usize,
}

impl TrailCache {
    fn new(n: usize) -> Self {
        Self {
            slots: HashMap::new(),
            stores: Vec::new(),
            stamp: Vec::new(),
            clock: 0,
            evictions: 0,
            capacity: trail_cache_cap(n),
        }
    }

    /// The slot of `fp`'s trail, refreshing its LRU stamp.
    fn get(&mut self, fp: u128) -> Option<usize> {
        self.clock += 1;
        let clock = self.clock;
        self.slots.get(&fp).copied().inspect(|&s| {
            self.stamp[s] = clock;
        })
    }

    /// Reserve a slot for `fp`, evicting the LRU trail at capacity —
    /// but never a slot the current batch already references
    /// (`pinned`): an in-batch reference holds a raw slot index, so
    /// reassigning its store mid-batch would window candidates against
    /// the wrong base's prefix state.  Returns `None` when every slot
    /// is pinned (the batch then falls back to full simulation for
    /// this base's children — always correct, merely slower).  The
    /// caller records into the returned slot's store and must pin it.
    fn reserve(&mut self, fp: u128, every: usize, pinned: &mut Vec<bool>) -> Option<usize> {
        self.clock += 1;
        let slot = if self.stores.len() < self.capacity {
            self.stores
                .push(RwLock::new(ScheduleCheckpoints::new(every)));
            self.stamp.push(0);
            pinned.push(false);
            self.stores.len() - 1
        } else {
            let slot = self
                .stamp
                .iter()
                .enumerate()
                .filter(|&(s, _)| !pinned[s])
                .min_by_key(|&(_, &st)| st)
                .map(|(s, _)| s)?;
            self.slots.retain(|_, &mut s| s != slot);
            self.evictions += 1;
            slot
        };
        self.slots.insert(fp, slot);
        self.stamp[slot] = self.clock;
        Some(slot)
    }

    /// Forget `fp`'s trail (e.g. its recording failed).
    fn forget(&mut self, fp: u128) {
        self.slots.remove(&fp);
    }
}

/// The population evaluation engine: shared immutable [`EvalTables`],
/// a bounded fitness memo, the cross-batch trail cache, and one
/// simulation scratch per worker.
pub struct PopulationEval<'g> {
    tables: EvalTables<'g>,
    threads: usize,
    workers: WorkerStates<PopWorker>,
    memo: BoundedMemo<u128>,
    trails: TrailCache,
    /// The all-zero snapshot — the shared initial state of every
    /// simulation.  Candidates without a usable base trail window from
    /// position 0 against it: a full-length replay through the
    /// precomputed pop order, bit-identical to the heap-driven
    /// simulation but without the ready-heap's `O(log V)` per pop.
    zero_trail: ScheduleCheckpoints,
    stats: PopulationStats,
    /// The engine thread's `spmap_par` dispatch counters at
    /// construction; [`Self::dispatch`] diffs against this.
    dispatch_base: DispatchStats,
}

impl<'g> PopulationEval<'g> {
    /// Build the evaluator for one `(graph, platform)` pair.
    pub fn new(graph: &'g TaskGraph, platform: &'g Platform, cfg: PopulationConfig) -> Self {
        let tables = EvalTables::new(graph, platform);
        let threads = match cfg.threads {
            Some(n) => n.max(1),
            None => {
                let cores = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                spmap_par::num_threads().clamp(1, cores)
            }
        };
        let workers = WorkerStates::new(threads, |_| PopWorker {
            scratch: EvalScratch::for_tables(&tables),
        });
        Self {
            threads,
            workers,
            memo: BoundedMemo::new(cfg.memo_capacity),
            trails: TrailCache::new(graph.node_count()),
            zero_trail: ScheduleCheckpoints::zeroed(
                graph.node_count(),
                platform.device_count(),
                graph.node_count() + 1,
            ),
            stats: PopulationStats::default(),
            dispatch_base: spmap_par::dispatch_stats(),
            tables,
        }
    }

    /// The shared evaluation tables.
    pub fn tables(&self) -> &EvalTables<'g> {
        &self.tables
    }

    /// Effective worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Decision counters accumulated so far (including the live
    /// eviction counters and the memo's peak size).
    pub fn stats(&self) -> PopulationStats {
        let mut s = self.stats;
        s.memo_evictions = self.memo.evictions();
        s.memo_peak = self.memo.peak() as u64;
        s.trail_evictions = self.trails.evictions;
        s
    }

    /// How this evaluator's parallel batches were dispatched so far
    /// (serial fast path / scoped spawns / persistent-pool wakes) —
    /// the calling thread's `spmap_par` counters since construction.
    /// Lives beside, not inside, the thread-invariant
    /// [`PopulationStats`]: dispatch counters vary with the thread
    /// count and `SPMAP_POOL` backend by design.
    pub fn dispatch(&self) -> DispatchStats {
        spmap_par::dispatch_stats().since(&self.dispatch_base)
    }

    /// Current entry count of the fitness memo.
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }

    /// Shrink the trail cache (tests only: exercises eviction and the
    /// all-slots-pinned fallback without multi-gigabyte graphs).
    #[cfg(test)]
    pub(crate) fn set_trail_capacity(&mut self, capacity: usize) {
        assert!(
            self.trails.stores.is_empty(),
            "set the capacity before the first evaluate call"
        );
        self.trails.capacity = capacity.max(1);
    }

    /// Total simulations run so far (all workers; trail recordings and
    /// windowed replays both count one each).
    pub fn evaluations(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| w.scratch.stats().evaluations)
            .sum()
    }

    /// Evaluate one batch of candidates (typically a GA generation)
    /// under the breadth-first schedule.  Returns one makespan per
    /// candidate, in input order; `None` marks an FPGA-area-infeasible
    /// mapping.
    ///
    /// Every returned makespan is bit-identical to a from-scratch
    /// `makespan_bfs` of the candidate's mapping: memo entries are pure
    /// values, coalesced duplicates share a fingerprint (hence a
    /// mapping), and windowed replays share the exact prefix state of
    /// their base's schedule (docs/PERF.md).  All memo reads/writes and
    /// every trail decision happen on this (serial) calling path, so
    /// results, statistics, memo and cache state are thread-invariant.
    pub fn evaluate(
        &mut self,
        bases: &[PopBase<'_>],
        cands: &[DeltaCandidate<'_>],
    ) -> Vec<Option<f64>> {
        let n = self.tables.node_count();
        let mut results: Vec<Option<f64>> = vec![None; cands.len()];
        // Serial memo pass; misses become pending `(slot, from_pos)`.
        // Duplicate fingerprints within the batch coalesce onto the
        // first occurrence.
        let mut pending: Vec<(usize, usize)> = Vec::new();
        let mut first_of: HashMap<u128, usize> = HashMap::new();
        let mut dups: Vec<(usize, usize)> = Vec::new();
        for (i, c) in cands.iter().enumerate() {
            if let Some(ms) = self.memo.get(&c.fingerprint) {
                results[i] = Some(ms);
                self.stats.memo_hits += 1;
                continue;
            }
            if let Some(&first) = first_of.get(&c.fingerprint) {
                dups.push((i, first));
                self.stats.batch_dups += 1;
                continue;
            }
            first_of.insert(c.fingerprint, i);
            let from_pos = match c.base {
                Some(_) => c.window_start.min(n),
                None => 0,
            };
            pending.push((i, from_pos));
        }
        if pending.is_empty() {
            for (i, first) in dups {
                results[i] = results[first];
            }
            return results;
        }
        // Trail phase: look up cached trails; gate new recordings on
        // the batch's summed window gain covering a full simulation.
        let mut trail_slot: Vec<Option<usize>> = vec![None; bases.len()];
        let mut gain: Vec<usize> = vec![0; bases.len()];
        for &(i, from_pos) in &pending {
            if let Some(b) = cands[i].base {
                if trail_slot[b].is_none() {
                    trail_slot[b] = self.trails.get(bases[b].fingerprint);
                }
                if trail_slot[b].is_none() {
                    gain[b] += from_pos;
                }
            }
        }
        // Slots the current batch references hold raw indices into the
        // cache, so eviction must not reassign them mid-batch: pin
        // every looked-up slot, and every slot as it is reserved.
        let mut pinned: Vec<bool> = vec![false; self.trails.stores.len()];
        for slot in trail_slot.iter().flatten() {
            pinned[*slot] = true;
        }
        let every = ScheduleCheckpoints::auto_interval(n);
        let mut record: Vec<(usize, usize)> = Vec::new(); // (base, slot)
        let mut aliases: Vec<(usize, usize)> = Vec::new(); // duplicate-fp bases
        for b in 0..bases.len() {
            if trail_slot[b].is_some() || gain[b] < TRAIL_GAIN_MIN * n {
                continue;
            }
            // A duplicate-fingerprint base (identical mapping, common in
            // converged populations) may already have reserved a slot
            // earlier in this loop: one recording serves both.
            if let Some(slot) = self.trails.get(bases[b].fingerprint) {
                aliases.push((b, slot));
                continue;
            }
            if let Some(slot) = self
                .trails
                .reserve(bases[b].fingerprint, every, &mut pinned)
            {
                pinned[slot] = true;
                record.push((b, slot));
            }
            // `None`: every slot is pinned by this batch — skip the
            // trail; this base's children fall back to full replays.
        }
        let tables = &self.tables;
        let threads = self.threads;
        let trails = &self.trails;
        let base_ms: Vec<Option<f64>> =
            par_map_with_threads(threads, &mut self.workers, &record, |w, _, item| {
                let &(b, slot) = item;
                let mut store = trails.stores[slot]
                    .write()
                    .expect("trail recording never panics");
                tables.makespan_order_checkpointed(
                    &mut w.scratch,
                    bases[b].mapping,
                    tables.bfs_order(),
                    &mut store,
                )
            });
        // An infeasible base has no usable snapshots: drop its cache
        // entry (and every alias to its slot) so nothing windows
        // against garbage.
        let mut failed: Vec<bool> = vec![false; self.trails.stores.len()];
        for (&(b, slot), ms) in record.iter().zip(&base_ms) {
            if ms.is_some() {
                trail_slot[b] = Some(slot);
                self.stats.trails_recorded += 1;
            } else {
                self.trails.forget(bases[b].fingerprint);
                failed[slot] = true;
            }
        }
        for (b, slot) in aliases {
            if !failed[slot] {
                trail_slot[b] = Some(slot);
            }
        }
        // Simulate the pending candidates in parallel: windowed from
        // the base trail where one exists, from scratch otherwise.
        let items: Vec<(usize, usize, Option<usize>)> = pending
            .iter()
            .map(|&(i, from_pos)| (i, from_pos, cands[i].base.and_then(|b| trail_slot[b])))
            .collect();
        let trails = &self.trails;
        let zero_trail = &self.zero_trail;
        let sims: Vec<Option<f64>> =
            par_map_with_threads(threads, &mut self.workers, &items, |w, _, item| {
                let &(i, from_pos, trail) = item;
                let mapping = cands[i].mapping;
                if !tables.area_feasible(mapping) {
                    return None;
                }
                let store;
                let (ckpt, from_pos) = match trail {
                    Some(slot) => {
                        store = trails.stores[slot]
                            .read()
                            .expect("trail readers never panic");
                        (&*store, from_pos)
                    }
                    // No base trail: replay everything from the shared
                    // zero state — still heap-free through the pop order.
                    None => (zero_trail, 0),
                };
                match tables.makespan_bfs_window(
                    &mut w.scratch,
                    mapping,
                    ckpt,
                    from_pos,
                    f64::INFINITY,
                ) {
                    WindowSim::Done(ms) => Some(ms),
                    WindowSim::Cutoff => {
                        unreachable!("no cutoff under an infinite bound")
                    }
                }
            });
        // Serial wrap-up: stats and memo inserts in candidate order.
        for (&(i, from_pos, trail), &ms) in items.iter().zip(&sims) {
            if trail.is_some() {
                self.stats.windowed_sims += 1;
                self.stats.windowed_skip += from_pos as u64;
            } else {
                self.stats.full_sims += 1;
            }
            if let Some(ms) = ms {
                self.memo.insert(cands[i].fingerprint, ms);
            }
            results[i] = ms;
        }
        // A freshly recorded trail also computed its base's exact
        // makespan — keep it hot in the memo.
        for (&(b, _), ms) in record.iter().zip(&base_ms) {
            if let Some(ms) = *ms {
                self.memo.insert(bases[b].fingerprint, ms);
            }
        }
        for (i, first) in dups {
            results[i] = results[first];
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmap_graph::gen::{random_sp_graph, SpGenConfig};
    use spmap_graph::{augment, AugmentConfig, NodeId};
    use spmap_model::{DeviceId, Evaluator, MappingFingerprint};

    fn setup(seed: u64) -> (TaskGraph, Platform) {
        let mut g = random_sp_graph(&SpGenConfig::new(40, seed));
        augment(&mut g, &AugmentConfig::default(), seed);
        (g, Platform::reference())
    }

    /// A family of base mappings plus single/multi-node children of each.
    fn zoo(g: &TaskGraph) -> (Vec<Mapping>, Vec<(usize, Mapping, Vec<NodeId>)>) {
        let n = g.node_count();
        let bases: Vec<Mapping> = (0..3u32)
            .map(|b| {
                Mapping::from_vec(
                    (0..n)
                        .map(|i| DeviceId(((i as u32).wrapping_mul(3).wrapping_add(b)) % 2))
                        .collect(),
                )
            })
            .collect();
        let mut children = Vec::new();
        for (bi, base) in bases.iter().enumerate() {
            for t in 0..6u32 {
                let mut m = base.clone();
                let mut changed = Vec::new();
                for j in 0..=(t % 3) {
                    let v = NodeId((t.wrapping_mul(7).wrapping_add(j * 11)) % n as u32);
                    let d = DeviceId((m.device(v).0 + 1) % 2);
                    if m.device(v) != d && !changed.contains(&v) {
                        m.set(v, d);
                        changed.push(v);
                    }
                }
                children.push((bi, m, changed));
            }
        }
        (bases, children)
    }

    fn base_refs(bases: &[Mapping]) -> Vec<PopBase<'_>> {
        bases
            .iter()
            .map(|m| PopBase {
                mapping: m,
                fingerprint: MappingFingerprint::of(m).value(),
            })
            .collect()
    }

    fn cand_refs<'a>(
        g: &TaskGraph,
        p: &Platform,
        children: &'a [(usize, Mapping, Vec<NodeId>)],
    ) -> Vec<DeltaCandidate<'a>> {
        let tables = EvalTables::new(g, p);
        children
            .iter()
            .map(|(bi, m, changed)| DeltaCandidate {
                mapping: m,
                fingerprint: MappingFingerprint::of(m).value(),
                base: Some(*bi),
                window_start: changed
                    .iter()
                    .map(|&v| tables.earliest_read_pos(v))
                    .min()
                    .unwrap_or(g.node_count()),
            })
            .collect()
    }

    #[test]
    fn population_results_match_serial_reference_bitwise() {
        for seed in [1u64, 5, 9] {
            let (g, p) = setup(seed);
            let (bases, children) = zoo(&g);
            for threads in [1usize, 4] {
                let mut pe = PopulationEval::new(
                    &g,
                    &p,
                    PopulationConfig {
                        threads: Some(threads),
                        ..PopulationConfig::default()
                    },
                );
                let bases_v = base_refs(&bases);
                let cands = cand_refs(&g, &p, &children);
                let got = pe.evaluate(&bases_v, &cands);
                let mut ev = Evaluator::new(&g, &p);
                for (c, r) in children.iter().zip(&got) {
                    assert_eq!(
                        *r,
                        ev.makespan_bfs(&c.1),
                        "seed {seed} t{threads}: population fitness drifted"
                    );
                }
                // A second pass over the same candidates is pure memo.
                let sims_before = pe.stats().full_sims + pe.stats().windowed_sims;
                let again = pe.evaluate(&bases_v, &cands);
                assert_eq!(got, again);
                assert_eq!(
                    pe.stats().full_sims + pe.stats().windowed_sims,
                    sims_before,
                    "second pass must be memo-only"
                );
            }
        }
    }

    #[test]
    fn batch_duplicates_are_coalesced() {
        let (g, p) = setup(2);
        let (bases, mut children) = zoo(&g);
        // Duplicate every child once.
        let copies: Vec<_> = children.clone();
        children.extend(copies);
        let bases_v = base_refs(&bases);
        let cands = cand_refs(&g, &p, &children);
        let mut pe = PopulationEval::new(
            &g,
            &p,
            PopulationConfig {
                threads: Some(2),
                ..PopulationConfig::default()
            },
        );
        let got = pe.evaluate(&bases_v, &cands);
        let half = got.len() / 2;
        assert_eq!(&got[..half], &got[half..], "duplicates must agree");
        assert!(pe.stats().batch_dups >= half as u64 - bases.len() as u64);
        let mut ev = Evaluator::new(&g, &p);
        for (c, r) in children.iter().zip(&got) {
            assert_eq!(*r, ev.makespan_bfs(&c.1));
        }
    }

    #[test]
    fn trail_cache_survives_across_batches() {
        let (g, p) = setup(3);
        let n = g.node_count();
        let base = Mapping::all_default(&g, &p);
        let tables = EvalTables::new(&g, &p);
        // Children touching only late-read nodes: every batch windows.
        let mut late_nodes: Vec<NodeId> = g.nodes().collect();
        late_nodes.sort_by_key(|&v| std::cmp::Reverse(tables.earliest_read_pos(v)));
        let children: Vec<(Mapping, Vec<NodeId>)> = late_nodes
            .iter()
            .take(6)
            .map(|&v| {
                let mut m = base.clone();
                m.set(v, DeviceId(1));
                (m, vec![v])
            })
            .collect();
        let total_gain: usize = children
            .iter()
            .map(|(_, ch)| tables.earliest_read_pos(ch[0]))
            .sum();
        let mut pe = PopulationEval::new(
            &g,
            &p,
            PopulationConfig {
                threads: Some(1),
                ..PopulationConfig::default()
            },
        );
        let base_fp = MappingFingerprint::of(&base).value();
        let bases_v = [PopBase {
            mapping: &base,
            fingerprint: base_fp,
        }];
        let mut ev = Evaluator::new(&g, &p);
        for round in 0..2 {
            let cands: Vec<DeltaCandidate<'_>> = children
                .iter()
                .map(|(m, ch)| DeltaCandidate {
                    mapping: m,
                    fingerprint: MappingFingerprint::of(m).value(),
                    base: Some(0),
                    window_start: tables.earliest_read_pos(ch[0]),
                })
                .collect();
            let got = pe.evaluate(&bases_v, &cands);
            for ((m, _), r) in children.iter().zip(&got) {
                assert_eq!(*r, ev.makespan_bfs(m), "round {round}");
            }
        }
        if total_gain >= n {
            assert_eq!(
                pe.stats().trails_recorded,
                1,
                "one trail, recorded once, reused next batch: {:?}",
                pe.stats()
            );
            assert!(pe.stats().windowed_sims > 0);
        }
    }

    #[test]
    fn tiny_trail_cache_pins_in_batch_slots_and_stays_exact() {
        // More trail-worthy bases per batch than cache slots: reserves
        // beyond the pinned capacity must fall back to full replays
        // (never reassign an in-batch slot), and cross-batch eviction
        // churn must never move a result.
        let (g, p) = setup(11);
        let n = g.node_count();
        let tables = EvalTables::new(&g, &p);
        let mut late: Vec<NodeId> = g.nodes().collect();
        late.sort_by_key(|&v| std::cmp::Reverse(tables.earliest_read_pos(v)));
        let late = &late[..4.min(late.len())];
        // Distinct bases: the default mapping with one early node moved.
        let bases: Vec<Mapping> = (0..8u32)
            .map(|b| {
                let mut m = Mapping::all_default(&g, &p);
                m.set(NodeId(b % n as u32), DeviceId(1));
                m
            })
            .collect();
        // Each base gets one child per late-read node, so every base's
        // summed window gain clears the recording gate.
        let mut children: Vec<(usize, Mapping, Vec<NodeId>)> = Vec::new();
        for (bi, base) in bases.iter().enumerate() {
            for &v in late {
                let mut m = base.clone();
                m.set(v, DeviceId((m.device(v).0 + 1) % 2));
                children.push((bi, m, vec![v]));
            }
        }
        let bases_v = base_refs(&bases);
        let cands = cand_refs(&g, &p, &children);
        let mut pe = PopulationEval::new(
            &g,
            &p,
            PopulationConfig {
                threads: Some(2),
                ..PopulationConfig::default()
            },
        );
        pe.set_trail_capacity(3);
        let mut ev = Evaluator::new(&g, &p);
        for round in 0..3 {
            let got = pe.evaluate(&bases_v, &cands);
            for ((_, m, _), r) in children.iter().zip(&got) {
                assert_eq!(*r, ev.makespan_bfs(m), "round {round}");
            }
        }
        let stats = pe.stats();
        assert!(
            stats.trails_recorded <= 3,
            "at most capacity trails per batch, and round 2+ is memo-only: {stats:?}"
        );
    }

    #[test]
    fn tiny_memo_capacity_evicts_but_never_changes_results() {
        let (g, p) = setup(7);
        let (bases, children) = zoo(&g);
        let bases_v = base_refs(&bases);
        let cands = cand_refs(&g, &p, &children);
        let run = |capacity: usize| {
            let mut pe = PopulationEval::new(
                &g,
                &p,
                PopulationConfig {
                    threads: Some(2),
                    memo_capacity: capacity,
                },
            );
            let mut all = Vec::new();
            for _ in 0..3 {
                all.push(pe.evaluate(&bases_v, &cands));
            }
            (all, pe.stats(), pe.memo_len())
        };
        let (unbounded, _, _) = run(0);
        let (tiny, stats, len) = run(4);
        assert_eq!(unbounded, tiny, "eviction changed a fitness value");
        assert!(stats.memo_evictions > 0, "capacity 4 must evict: {stats:?}");
        assert!(len <= 4, "memo exceeded its capacity: {len}");
        assert!(stats.memo_peak <= 4, "peak exceeded capacity: {stats:?}");
    }
}

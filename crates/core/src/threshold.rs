//! γ-threshold search (paper §III-D).
//!
//! After the first full sweep, every operation carries an *expected*
//! improvement — the improvement it showed when last evaluated.  Each
//! iteration pops operations from a max-priority queue ordered by
//! expectation; once an actual improvement `Δ` has been found, only
//! operations whose expectation exceeds `Δ/γ` are still evaluated
//! ("look-ahead").  Re-evaluated operations update their expectation.
//! The iteration commits the best improvement found; if a complete pass
//! over the queue finds none, the algorithm terminates — and because an
//! exhausted pass re-evaluates *every* operation against the final
//! mapping, this naturally realizes the paper's "in the last iteration,
//! we recompute every possible mapping".
//!
//! `γ = 1` is the **FirstFit** variant: the first found improvement is
//! committed unless an operation with a *higher* expectation is still
//! pending (i.e. the found improvement was "significantly smaller than
//! the previously expected improvement").

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::mapper::{Ctx, OpId};

/// Max-heap key wrapping an `f64` expectation with total order.
#[derive(Clone, Copy, PartialEq)]
struct Key(f64);

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Run the γ-threshold search; returns `(iterations, history)`.
///
/// Expectations start at `+∞`, so the first iteration degenerates to a
/// full sweep exactly as the paper describes ("we assign an expected
/// makespan improvement to each mapping operation after the first
/// iteration").
pub(crate) fn gamma_threshold_search(
    ctx: &mut Ctx<'_>,
    cap: usize,
    gamma: f64,
) -> (usize, Vec<f64>) {
    let op_count = ctx.op_count();
    let mut expected = vec![f64::INFINITY; op_count];
    let mut evaluated = vec![false; op_count];
    let mut history = Vec::new();
    let mut iterations = 0;

    while iterations < cap {
        // Rebuild the priority queue from current expectations.  Stale
        // entries are impossible this way, and the rebuild is O(K), far
        // below the cost of even a single model evaluation.
        let mut heap: BinaryHeap<(Key, OpId)> = (0..op_count)
            .map(|op| (Key(expected[op]), op))
            .collect();
        evaluated.iter_mut().for_each(|e| *e = false);
        let mut found: Option<(OpId, f64)> = None;

        while let Some((Key(exp), op)) = heap.pop() {
            if evaluated[op] {
                continue;
            }
            if let Some((_, delta)) = found {
                // Look-ahead bound: only operations whose expected
                // improvement exceeds Δ/γ are still worth evaluating.
                if exp <= delta / gamma {
                    break;
                }
            }
            evaluated[op] = true;
            let delta = ctx.probe(op);
            expected[op] = delta;
            if ctx.improves(delta) && found.map_or(true, |(_, best)| delta > best) {
                found = Some((op, delta));
            }
        }

        match found {
            Some((op, _)) => {
                ctx.commit(op);
                history.push(ctx.cur);
                iterations += 1;
            }
            None => break,
        }
    }
    (iterations, history)
}

#[cfg(test)]
mod tests {
    use super::Key;

    #[test]
    fn key_orders_like_f64_with_infinities() {
        let mut keys = vec![Key(1.0), Key(f64::NEG_INFINITY), Key(f64::INFINITY), Key(0.5)];
        keys.sort();
        let vals: Vec<f64> = keys.iter().map(|k| k.0).collect();
        assert_eq!(vals, vec![f64::NEG_INFINITY, 0.5, 1.0, f64::INFINITY]);
    }

    #[test]
    fn heap_pops_max_first() {
        use std::collections::BinaryHeap;
        let mut h = BinaryHeap::new();
        h.push((Key(0.2), 0usize));
        h.push((Key(f64::INFINITY), 1));
        h.push((Key(-1.0), 2));
        assert_eq!(h.pop().unwrap().1, 1);
        assert_eq!(h.pop().unwrap().1, 0);
        assert_eq!(h.pop().unwrap().1, 2);
    }
}

//! γ-threshold search (paper §III-D).
//!
//! After the first full sweep, every operation carries an *expected*
//! improvement — the improvement it showed when last evaluated.  Each
//! iteration pops operations from a max-priority queue ordered by
//! expectation; once an actual improvement `Δ` has been found, only
//! operations whose expectation exceeds `Δ/γ` are still evaluated
//! ("look-ahead").  Re-evaluated operations update their expectation.
//! The iteration commits the best improvement found; if a complete pass
//! over the queue finds none, the algorithm terminates — and because an
//! exhausted pass re-evaluates *every* operation against the final
//! mapping, this naturally realizes the paper's "in the last iteration,
//! we recompute every possible mapping".
//!
//! `γ = 1` is the **FirstFit** variant: the first found improvement is
//! committed unless an operation with a *higher* expectation is still
//! pending (i.e. the found improvement was "significantly smaller than
//! the previously expected improvement").
//!
//! ## Parallelization: speculative waves
//!
//! The algorithm is inherently sequential — whether an operation is
//! evaluated at all depends on the deltas of the operations popped
//! before it.  To still extract parallelism without changing a single
//! decision, the engine version pops the next `W` operations (the exact
//! prefix the serial loop would consider next), simulates them as one
//! batch through [`CandidateBatch`], and then *replays* the serial
//! decision sequence over the precomputed results: expectations update
//! in pop order, and the moment the look-ahead cutoff fires, the
//! remaining speculative results are discarded — their expectations are
//! **not** updated, exactly as if they had never been evaluated.
//! Discarded simulations are not wasted: their makespans stay in the
//! engine's content-keyed memo and answer later evaluations of the same
//! mapping for free.
//!
//! The wave depth `W` is **adaptive** ([`WaveController`]): it grows
//! while recent waves are consumed in full (the look-ahead cutoff rarely
//! fires, so deeper speculation turns into pure parallelism) and shrinks
//! while most speculated results are being discarded (the cutoff fires
//! early, so deep waves are wasted simulations).  The controller is a
//! pure function of the replay sequence — which is itself wave-size
//! independent — so runs are deterministic for a fixed thread
//! configuration, and the committed results are identical for *any*.
//!
//! With one worker thread the wave size is pinned to 1 and the loop *is*
//! the serial algorithm (zero speculation, zero spawns).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::batch::CandidateBatch;
use crate::mapper::{MapperError, OpId};

/// The error of [`Key::new`]: a NaN can never participate in the
/// expectation order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct NanKey;

/// Max-heap key wrapping an `f64` expectation with total order.
///
/// `±∞` are legitimate expectations (`+∞` = "never evaluated", `-∞` =
/// "no-op / infeasible") and order exactly like `f64::total_cmp` places
/// them.  NaN is rejected at construction: under `total_cmp` a positive
/// NaN sorts *above* `+∞`, so a single NaN expectation would silently
/// hijack every pop of the priority queue — the caller converts the
/// rejection into [`MapperError::NanDelta`] instead.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct Key(f64);

impl Key {
    /// Wrap a finite-or-infinite expectation; NaN is a typed error.
    pub(crate) fn new(x: f64) -> Result<Self, NanKey> {
        if x.is_nan() {
            Err(NanKey)
        } else {
            Ok(Key(x))
        }
    }

    /// The wrapped expectation (never NaN).
    pub(crate) fn get(self) -> f64 {
        self.0
    }
}

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Profile-guided speculation depth: how many pending pops are simulated
/// per batch.
///
/// Replaces the fixed `4 × threads` wave with a controller driven by the
/// observed *accept rate* — the fraction of each speculated wave the
/// serial replay actually consumed before the look-ahead cutoff fired.
/// A high recent accept rate (tracked as an exponential moving average)
/// doubles the wave up to `16 × threads` (≤ 256): speculation is being
/// consumed, so deeper waves are pure parallel win.  A low rate halves
/// it down to `threads`: the cutoff keeps firing early and discarded
/// simulations are wasted work.  Serial runs (≤ 1 thread) are pinned at
/// 1 — bit-for-bit the textbook loop, zero speculation.
#[derive(Clone, Copy, Debug)]
pub(crate) struct WaveController {
    size: usize,
    min: usize,
    max: usize,
    /// EMA of per-wave accept rates, seeded optimistically at 1.0.
    accept: f64,
}

/// EMA smoothing: one half of each new observation.
const WAVE_EMA_ALPHA: f64 = 0.5;
/// Accept-rate above which the wave doubles.
const WAVE_GROW_AT: f64 = 0.75;
/// Accept-rate below which the wave halves.
const WAVE_SHRINK_AT: f64 = 0.35;

impl WaveController {
    pub(crate) fn new(threads: usize) -> Self {
        if threads <= 1 {
            Self {
                size: 1,
                min: 1,
                max: 1,
                accept: 1.0,
            }
        } else {
            // The floor (one wave slot per worker) takes precedence over
            // the waste ceiling on absurdly wide machines, so the wave
            // stays pinned at `threads` there instead of oscillating
            // above the cap.
            let max = (16 * threads).min(256).max(threads);
            Self {
                size: (4 * threads).min(max),
                min: threads,
                max,
                accept: 1.0,
            }
        }
    }

    /// Current speculation depth.
    pub(crate) fn size(&self) -> usize {
        self.size
    }

    /// Fold one wave's outcome (`consumed` of `speculated` results used
    /// by the replay) into the moving accept rate and resize.
    pub(crate) fn record(&mut self, speculated: usize, consumed: usize) {
        if speculated == 0 || self.max == 1 {
            return;
        }
        debug_assert!(consumed <= speculated);
        let rate = consumed as f64 / speculated as f64;
        self.accept = WAVE_EMA_ALPHA * rate + (1.0 - WAVE_EMA_ALPHA) * self.accept;
        if self.accept > WAVE_GROW_AT {
            self.size = (self.size * 2).min(self.max);
        } else if self.accept < WAVE_SHRINK_AT {
            self.size = (self.size / 2).max(self.min);
        }
    }
}

/// Run the γ-threshold search through the candidate engine; returns
/// `(iterations, history)`.
///
/// Expectations start at `+∞`, so the first iteration degenerates to a
/// full sweep exactly as the paper describes ("we assign an expected
/// makespan improvement to each mapping operation after the first
/// iteration").  The decision sequence — which operations get evaluated,
/// their expectation updates, and the committed winner — is identical to
/// the serial reference for every wave size; see the module docs.
///
/// A NaN improvement delta aborts with [`MapperError::NanDelta`] before
/// it can silently corrupt the expectation order (see [`Key`]).
pub(crate) fn gamma_threshold_search(
    engine: &mut CandidateBatch<'_>,
    cap: usize,
    gamma: f64,
) -> Result<(usize, Vec<f64>), MapperError> {
    let op_count = engine.op_count();
    let mut wave = WaveController::new(engine.threads());
    let mut expected = vec![f64::INFINITY; op_count];
    let mut evaluated = vec![false; op_count];
    let mut history = Vec::new();
    let mut iterations = 0;

    while iterations < cap {
        // Rebuild the priority queue from current expectations.  Stale
        // entries are impossible this way, and the rebuild is O(K), far
        // below the cost of even a single model evaluation.
        let mut heap: BinaryHeap<(Key, OpId)> = BinaryHeap::with_capacity(op_count);
        for (op, &exp) in expected.iter().enumerate() {
            heap.push((Key::new(exp).map_err(|_| MapperError::NanDelta { op })?, op));
        }
        evaluated.iter_mut().for_each(|e| *e = false);
        let mut found: Option<(OpId, f64)> = None;
        let mut wave_ops: Vec<OpId> = Vec::with_capacity(wave.size());
        let mut wave_exps: Vec<f64> = Vec::with_capacity(wave.size());

        'pass: loop {
            // Speculatively take the next `wave.size()` pops — exactly
            // the prefix the serial loop would consider next.
            wave_ops.clear();
            wave_exps.clear();
            while wave_ops.len() < wave.size() {
                match heap.pop() {
                    Some((key, op)) => {
                        if evaluated[op] {
                            continue;
                        }
                        wave_ops.push(op);
                        wave_exps.push(key.get());
                    }
                    None => break,
                }
            }
            if wave_ops.is_empty() {
                break 'pass;
            }
            // One parallel batch (memoized, unpruned: the γ-search needs
            // every delta it asks for, because deltas become the next
            // iteration's expectations).
            let deltas = engine.evaluate_ops(&wave_ops, false);
            // Serial replay of the decision sequence.
            let mut consumed = 0usize;
            let mut cut_short = false;
            for ((&op, &exp), &delta) in wave_ops.iter().zip(&wave_exps).zip(&deltas) {
                if let Some((_, best)) = found {
                    // Look-ahead bound: only operations whose expected
                    // improvement exceeds Δ/γ are still worth
                    // evaluating; everything speculated beyond this
                    // point is discarded unseen.
                    if exp <= best / gamma {
                        cut_short = true;
                        break;
                    }
                }
                if delta.is_nan() {
                    return Err(MapperError::NanDelta { op });
                }
                consumed += 1;
                evaluated[op] = true;
                expected[op] = delta;
                if engine.improves(delta) && found.is_none_or(|(_, best)| delta > best) {
                    found = Some((op, delta));
                }
            }
            wave.record(wave_ops.len(), consumed);
            if cut_short {
                break 'pass;
            }
        }

        match found {
            Some((op, _)) => {
                engine.commit(op);
                history.push(engine.current_makespan());
                iterations += 1;
            }
            None => break,
        }
    }
    Ok((iterations, history))
}

#[cfg(test)]
mod tests {
    use super::{Key, NanKey, WaveController};

    fn key(x: f64) -> Key {
        Key::new(x).expect("finite or infinite key")
    }

    #[test]
    fn key_orders_like_f64_with_infinities() {
        let mut keys = vec![
            key(1.0),
            key(f64::NEG_INFINITY),
            key(f64::INFINITY),
            key(0.5),
        ];
        keys.sort();
        let vals: Vec<f64> = keys.iter().map(|k| k.get()).collect();
        assert_eq!(vals, vec![f64::NEG_INFINITY, 0.5, 1.0, f64::INFINITY]);
    }

    #[test]
    fn key_rejects_nan_with_typed_error() {
        // Regression: under `total_cmp` a positive NaN sorts above +∞,
        // so a NaN expectation would win every heap pop.  Construction
        // must refuse it instead of silently misordering.
        assert_eq!(Key::new(f64::NAN), Err(NanKey));
        assert_eq!(Key::new(-f64::NAN), Err(NanKey));
        assert!(
            Key::new(f64::INFINITY).is_ok(),
            "+inf is a legal initial expectation"
        );
        assert!(
            Key::new(f64::NEG_INFINITY).is_ok(),
            "-inf is the no-op sentinel"
        );
        assert!(Key::new(0.0).is_ok());
    }

    #[test]
    fn heap_pops_max_first() {
        use std::collections::BinaryHeap;
        let mut h = BinaryHeap::new();
        h.push((key(0.2), 0usize));
        h.push((key(f64::INFINITY), 1));
        h.push((key(-1.0), 2));
        assert_eq!(h.pop().unwrap().1, 1);
        assert_eq!(h.pop().unwrap().1, 0);
        assert_eq!(h.pop().unwrap().1, 2);
    }

    #[test]
    fn wave_serial_is_pinned_at_one() {
        let mut w = WaveController::new(1);
        assert_eq!(w.size(), 1);
        for _ in 0..10 {
            w.record(1, 1);
        }
        assert_eq!(w.size(), 1, "serial never speculates");
        assert!(WaveController::new(8).size() > 1);
    }

    #[test]
    fn wave_grows_on_full_consumption_and_shrinks_on_waste() {
        let mut w = WaveController::new(4);
        let start = w.size();
        // Fully consumed waves: accept EMA stays at 1.0, wave doubles to
        // the cap.
        for _ in 0..8 {
            let s = w.size();
            w.record(s, s);
        }
        assert!(w.size() > start, "full waves must grow speculation");
        assert!(w.size() <= 16 * 4, "cap respected");
        let peak = w.size();
        // Wasted waves (cutoff fires immediately): EMA decays, wave
        // shrinks back to the floor.
        for _ in 0..16 {
            let s = w.size();
            w.record(s, 0);
        }
        assert!(w.size() < peak, "wasted waves must shrink speculation");
        assert_eq!(w.size(), 4, "never below the worker count");
    }

    #[test]
    fn wave_never_escapes_its_bounds_even_on_very_wide_machines() {
        // threads > 256: the per-worker floor exceeds the waste ceiling;
        // the wave must stay pinned at `threads`, never bounce above.
        let mut w = WaveController::new(512);
        assert_eq!(w.size(), 512);
        for i in 0..12 {
            let s = w.size();
            w.record(s, if i % 2 == 0 { 0 } else { s });
            assert_eq!(w.size(), 512, "pinned: floor == cap");
        }
    }

    #[test]
    fn wave_controller_is_deterministic() {
        let run = || {
            let mut w = WaveController::new(8);
            let mut sizes = Vec::new();
            for i in 0..20usize {
                let s = w.size();
                w.record(s, if i % 3 == 0 { s } else { s / 2 });
                sizes.push(w.size());
            }
            sizes
        };
        assert_eq!(run(), run());
    }
}

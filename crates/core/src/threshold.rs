//! γ-threshold search (paper §III-D).
//!
//! After the first full sweep, every operation carries an *expected*
//! improvement — the improvement it showed when last evaluated.  Each
//! iteration pops operations from a max-priority queue ordered by
//! expectation; once an actual improvement `Δ` has been found, only
//! operations whose expectation exceeds `Δ/γ` are still evaluated
//! ("look-ahead").  Re-evaluated operations update their expectation.
//! The iteration commits the best improvement found; if a complete pass
//! over the queue finds none, the algorithm terminates — and because an
//! exhausted pass re-evaluates *every* operation against the final
//! mapping, this naturally realizes the paper's "in the last iteration,
//! we recompute every possible mapping".
//!
//! `γ = 1` is the **FirstFit** variant: the first found improvement is
//! committed unless an operation with a *higher* expectation is still
//! pending (i.e. the found improvement was "significantly smaller than
//! the previously expected improvement").
//!
//! ## Parallelization: speculative waves
//!
//! The algorithm is inherently sequential — whether an operation is
//! evaluated at all depends on the deltas of the operations popped
//! before it.  To still extract parallelism without changing a single
//! decision, the engine version pops the next `W` operations (the exact
//! prefix the serial loop would consider next), simulates them as one
//! batch through [`CandidateBatch`], and then *replays* the serial
//! decision sequence over the precomputed results: expectations update
//! in pop order, and the moment the look-ahead cutoff fires, the
//! remaining speculative results are discarded — their expectations are
//! **not** updated, exactly as if they had never been evaluated.
//! Discarded simulations are not wasted: their makespans stay in the
//! engine's content-keyed memo and answer later evaluations of the same
//! mapping for free.
//!
//! With one worker thread the wave size is 1 and the loop *is* the
//! serial algorithm (zero speculation, zero spawns).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::batch::CandidateBatch;
use crate::mapper::OpId;

/// Max-heap key wrapping an `f64` expectation with total order.
#[derive(Clone, Copy, PartialEq)]
pub(crate) struct Key(pub(crate) f64);

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Speculation depth: how many pending pops are simulated per batch.
/// Serial (1 thread) speculates nothing — bit-for-bit the textbook
/// loop.  Capped at 64 so speculative waste is bounded on very wide
/// machines (every speculated-then-discarded op costs a simulation and
/// inflates the evaluation counters without helping wall-clock once
/// the wave exceeds a few chunks).
fn wave_size(threads: usize) -> usize {
    if threads <= 1 {
        1
    } else {
        (4 * threads).min(64)
    }
}

/// Run the γ-threshold search through the candidate engine; returns
/// `(iterations, history)`.
///
/// Expectations start at `+∞`, so the first iteration degenerates to a
/// full sweep exactly as the paper describes ("we assign an expected
/// makespan improvement to each mapping operation after the first
/// iteration").  The decision sequence — which operations get evaluated,
/// their expectation updates, and the committed winner — is identical to
/// the serial reference for every wave size; see the module docs.
pub(crate) fn gamma_threshold_search(
    engine: &mut CandidateBatch<'_>,
    cap: usize,
    gamma: f64,
) -> (usize, Vec<f64>) {
    let op_count = engine.op_count();
    let wave = wave_size(engine.threads());
    let mut expected = vec![f64::INFINITY; op_count];
    let mut evaluated = vec![false; op_count];
    let mut history = Vec::new();
    let mut iterations = 0;

    while iterations < cap {
        // Rebuild the priority queue from current expectations.  Stale
        // entries are impossible this way, and the rebuild is O(K), far
        // below the cost of even a single model evaluation.
        let mut heap: BinaryHeap<(Key, OpId)> = (0..op_count)
            .map(|op| (Key(expected[op]), op))
            .collect();
        evaluated.iter_mut().for_each(|e| *e = false);
        let mut found: Option<(OpId, f64)> = None;
        let mut wave_ops: Vec<OpId> = Vec::with_capacity(wave);
        let mut wave_exps: Vec<f64> = Vec::with_capacity(wave);

        'pass: loop {
            // Speculatively take the next `wave` pops — exactly the
            // prefix the serial loop would consider next.
            wave_ops.clear();
            wave_exps.clear();
            while wave_ops.len() < wave {
                match heap.pop() {
                    Some((Key(exp), op)) => {
                        if evaluated[op] {
                            continue;
                        }
                        wave_ops.push(op);
                        wave_exps.push(exp);
                    }
                    None => break,
                }
            }
            if wave_ops.is_empty() {
                break 'pass;
            }
            // One parallel batch (memoized, unpruned: the γ-search needs
            // every delta it asks for, because deltas become the next
            // iteration's expectations).
            let deltas = engine.evaluate_ops(&wave_ops, false);
            // Serial replay of the decision sequence.
            for ((&op, &exp), &delta) in wave_ops.iter().zip(&wave_exps).zip(&deltas) {
                if let Some((_, best)) = found {
                    // Look-ahead bound: only operations whose expected
                    // improvement exceeds Δ/γ are still worth
                    // evaluating; everything speculated beyond this
                    // point is discarded unseen.
                    if exp <= best / gamma {
                        break 'pass;
                    }
                }
                evaluated[op] = true;
                expected[op] = delta;
                if engine.improves(delta) && found.is_none_or(|(_, best)| delta > best) {
                    found = Some((op, delta));
                }
            }
        }

        match found {
            Some((op, _)) => {
                engine.commit(op);
                history.push(engine.current_makespan());
                iterations += 1;
            }
            None => break,
        }
    }
    (iterations, history)
}

#[cfg(test)]
mod tests {
    use super::Key;

    #[test]
    fn key_orders_like_f64_with_infinities() {
        let mut keys = vec![Key(1.0), Key(f64::NEG_INFINITY), Key(f64::INFINITY), Key(0.5)];
        keys.sort();
        let vals: Vec<f64> = keys.iter().map(|k| k.0).collect();
        assert_eq!(vals, vec![f64::NEG_INFINITY, 0.5, 1.0, f64::INFINITY]);
    }

    #[test]
    fn heap_pops_max_first() {
        use std::collections::BinaryHeap;
        let mut h = BinaryHeap::new();
        h.push((Key(0.2), 0usize));
        h.push((Key(f64::INFINITY), 1));
        h.push((Key(-1.0), 2));
        assert_eq!(h.pop().unwrap().1, 1);
        assert_eq!(h.pop().unwrap().1, 0);
        assert_eq!(h.pop().unwrap().1, 2);
    }

    #[test]
    fn wave_size_serial_is_one() {
        assert_eq!(super::wave_size(1), 1);
        assert!(super::wave_size(8) > 1);
    }
}

//! The unified request surface: one typed request for every mapping
//! entry point.
//!
//! The public API grew by accretion — `MapperConfig` for the
//! decomposition mappers, `GaConfig` over in `spmap-ga`, `EngineConfig`
//! for engine tuning, plus free functions taking different borrow
//! shapes.  [`MapRequest`] consolidates them: graph and platform behind
//! `Arc` (so services and sessions can keep them alive past the call),
//! an [`Algo`] picking the algorithm family, and [`Limits`] holding the
//! cross-cutting knobs (iteration caps, engine tuning, an optional
//! candidate-device restriction).
//!
//! Routing:
//!
//! * [`map_request`] / [`MapService::map`](crate::MapService::map) —
//!   the decomposition families ([`Algo::Exhaustive`],
//!   [`Algo::GammaThreshold`]);
//! * `spmap_ga::nsga2_map_request` — [`Algo::Ga`] (the GA lives
//!   downstream of this crate, so the core router returns
//!   [`MapperError::UnsupportedAlgo`] for it rather than guessing);
//! * [`RemapSession::open`](crate::RemapSession::open) — a long-lived
//!   session seeded by the request's initial full map.
//!
//! The pre-existing free functions (`decomposition_map`,
//! `try_decomposition_map`, `nsga2_map`, …) remain as thin wrappers
//! over the same internal drivers, so a response is bit-identical
//! whichever surface submitted it.

use std::sync::Arc;

use spmap_graph::TaskGraph;
use spmap_model::{DeviceId, Platform};

use crate::batch::EngineConfig;
use crate::mapper::{
    try_decomposition_map_on, CostModel, MapperConfig, MapperError, MapperResult, SearchHeuristic,
    SubgraphStrategy,
};

/// The algorithm family of a [`MapRequest`].
#[derive(Clone, Copy, Debug, PartialEq)]
#[non_exhaustive]
pub enum Algo {
    /// Decomposition mapping, re-evaluating every operation every
    /// iteration (the paper's "basic" search).
    Exhaustive,
    /// Decomposition mapping with the γ-threshold look-ahead; `γ = 1`
    /// is the paper's FirstFit heuristic.
    GammaThreshold {
        /// Look-ahead divisor (≥ 1).
        gamma: f64,
    },
    /// The single-objective NSGA-II baseline (spmap-ga).  Core entry
    /// points return [`MapperError::UnsupportedAlgo`] for this family;
    /// route it through `spmap_ga::nsga2_map_request`.
    Ga(GaParams),
}

impl Algo {
    /// The paper's FirstFit heuristic (`γ = 1`).
    pub fn first_fit() -> Self {
        Algo::GammaThreshold { gamma: 1.0 }
    }
}

impl Default for Algo {
    fn default() -> Self {
        Algo::first_fit()
    }
}

/// NSGA-II parameters carried by [`Algo::Ga`] — the subset of
/// `spmap_ga::GaConfig` that names the *algorithm* (population,
/// variation rates, seed).  Engine-side tuning (threads, numbering,
/// checkpoint budgets) comes from [`Limits::engine`] so the knobs live
/// in one place per request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GaParams {
    /// Population size (paper: 100).
    pub population: usize,
    /// Number of generations (paper: 500).
    pub generations: usize,
    /// Single-point crossover probability (paper: 0.9).
    pub crossover_rate: f64,
    /// Per-gene mutation probability; `None` = `1/n` (paper).
    pub mutation_rate: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GaParams {
    fn default() -> Self {
        Self {
            population: 100,
            generations: 500,
            crossover_rate: 0.9,
            mutation_rate: None,
            seed: 0,
        }
    }
}

/// Cross-cutting execution limits of a [`MapRequest`].
#[derive(Clone, Debug, Default)]
pub struct Limits {
    /// Maximum improvement iterations; `None` uses the paper's cap of
    /// `n` (the task count).
    pub iteration_cap: Option<usize>,
    /// Candidate-engine tuning (threads, pruning, memo capacities,
    /// numbering, checkpoint budgets).
    pub engine: EngineConfig,
    /// Restrict candidate targets to these devices; `None` = every
    /// platform device.  Exact by construction: a device the search
    /// cannot choose contributes no exec, link or area term, so this is
    /// how availability-limited mapping (device loss) is expressed
    /// without editing the platform.
    pub devices: Option<Vec<DeviceId>>,
}

/// One mapping request: the inputs of any mapping entry point, unified.
/// Graph and platform sit behind `Arc` so caches and sessions can keep
/// them alive past the call.
#[derive(Clone)]
pub struct MapRequest {
    /// The task graph to map.
    pub graph: Arc<TaskGraph>,
    /// The platform to map onto.
    pub platform: Arc<Platform>,
    /// Algorithm family and its parameters.
    pub algo: Algo,
    /// Candidate subgraph set for the decomposition families (ignored
    /// by [`Algo::Ga`], which searches whole genomes).
    pub strategy: SubgraphStrategy,
    /// The makespan the search minimizes.
    pub cost_model: CostModel,
    /// Cross-cutting execution limits.
    pub limits: Limits,
}

impl MapRequest {
    /// A request with the paper's best-practice defaults: SPFirstFit
    /// (series-parallel subgraphs, γ = 1) under the BFS cost model.
    pub fn new(graph: Arc<TaskGraph>, platform: Arc<Platform>) -> Self {
        Self {
            graph,
            platform,
            algo: Algo::first_fit(),
            strategy: SubgraphStrategy::SeriesParallel {
                cut_policy: spmap_decomp::CutPolicy::default(),
            },
            cost_model: CostModel::Bfs,
            limits: Limits::default(),
        }
    }

    /// A request equivalent to a [`decomposition_map`] call with `cfg`
    /// — the migration path for callers holding a [`MapperConfig`].
    ///
    /// [`decomposition_map`]: crate::decomposition_map
    pub fn from_mapper_config(
        graph: Arc<TaskGraph>,
        platform: Arc<Platform>,
        cfg: &MapperConfig,
    ) -> Self {
        let algo = match cfg.heuristic {
            SearchHeuristic::Exhaustive => Algo::Exhaustive,
            SearchHeuristic::GammaThreshold { gamma } => Algo::GammaThreshold { gamma },
        };
        Self {
            graph,
            platform,
            algo,
            strategy: cfg.strategy,
            cost_model: cfg.cost,
            limits: Limits {
                iteration_cap: cfg.iteration_cap,
                engine: cfg.engine,
                devices: None,
            },
        }
    }

    /// This request with a different algorithm family.
    pub fn with_algo(mut self, algo: Algo) -> Self {
        self.algo = algo;
        self
    }

    /// This request with different limits.
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// The [`MapperConfig`] equivalent of this request, or
    /// [`MapperError::UnsupportedAlgo`] if the family is not a
    /// decomposition search.
    pub fn mapper_config(&self) -> Result<MapperConfig, MapperError> {
        let heuristic = match self.algo {
            Algo::Exhaustive => SearchHeuristic::Exhaustive,
            Algo::GammaThreshold { gamma } => SearchHeuristic::GammaThreshold { gamma },
            Algo::Ga(_) => return Err(MapperError::UnsupportedAlgo { algo: "nsga2" }),
        };
        Ok(MapperConfig {
            strategy: self.strategy,
            heuristic,
            iteration_cap: self.limits.iteration_cap,
            cost: self.cost_model,
            engine: self.limits.engine,
        })
    }
}

/// Execute a decomposition-family [`MapRequest`] on the calling thread.
/// Bit-identical to [`decomposition_map`](crate::decomposition_map)
/// with the equivalent [`MapperConfig`]; [`Algo::Ga`] requests return
/// [`MapperError::UnsupportedAlgo`] (route them through
/// `spmap_ga::nsga2_map_request`).
pub fn map_request(req: &MapRequest) -> Result<MapperResult, MapperError> {
    let cfg = req.mapper_config()?;
    try_decomposition_map_on(
        &req.graph,
        &req.platform,
        &cfg,
        req.limits.devices.as_deref(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::decomposition_map;
    use spmap_graph::gen::{random_sp_graph, SpGenConfig};

    #[test]
    fn request_matches_free_function_bit_for_bit() {
        let g = Arc::new(random_sp_graph(&SpGenConfig::new(30, 7)));
        let p = Arc::new(Platform::reference());
        for cfg in [
            MapperConfig::single_node(),
            MapperConfig::series_parallel(),
            MapperConfig::sp_first_fit(),
            MapperConfig::sp_first_fit().with_report_cost(2, 11),
        ] {
            let direct = decomposition_map(&g, &p, &cfg);
            let req = MapRequest::from_mapper_config(Arc::clone(&g), Arc::clone(&p), &cfg);
            let via = map_request(&req).expect("decomposition families route");
            assert_eq!(via.mapping, direct.mapping);
            assert_eq!(via.makespan, direct.makespan);
            assert_eq!(via.history, direct.history);
            assert_eq!(via.batch, direct.batch);
        }
    }

    #[test]
    fn ga_requests_are_refused_by_the_core_router() {
        let g = Arc::new(random_sp_graph(&SpGenConfig::new(12, 1)));
        let req = MapRequest::new(g, Arc::new(Platform::reference()))
            .with_algo(Algo::Ga(GaParams::default()));
        assert!(matches!(
            map_request(&req),
            Err(MapperError::UnsupportedAlgo { .. })
        ));
    }

    #[test]
    fn device_restriction_only_maps_onto_allowed_devices() {
        let g = Arc::new(random_sp_graph(&SpGenConfig::new(24, 3)));
        let p = Arc::new(Platform::reference());
        let cpu = p.default_device();
        let mut req = MapRequest::new(Arc::clone(&g), Arc::clone(&p));
        req.limits.devices = Some(vec![cpu]);
        let res = map_request(&req).expect("cpu-only request maps");
        assert!(res.mapping.as_slice().iter().all(|&d| d == cpu));
        assert_eq!(res.makespan, res.cpu_only_makespan);
    }
}

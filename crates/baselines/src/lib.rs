//! # spmap-baselines — HEFT and PEFT list schedulers
//!
//! The two classical heterogeneous list-scheduling baselines of the
//! paper's evaluation (§IV-A):
//!
//! * [`heft()`] — Heterogeneous Earliest Finish Time (Topcuoglu, Hariri &
//!   Wu, TPDS 2002; paper ref. 6): upward ranks from average
//!   computation/communication costs, then insertion-based earliest-
//!   finish-time device selection.
//! * [`peft()`] — Predict Earliest Finish Time (Arabnejad & Barbosa, TPDS
//!   2014; paper ref. 8): an optimistic cost table (OCT) gives each
//!   task/device pair a look-ahead estimate; device selection minimizes
//!   `EFT + OCT`.
//!
//! Both algorithms see the platform through per-task execution times and
//! per-edge transfer times only — they are oblivious to FPGA dataflow
//! streaming and to the FPGA's spatial concurrency (they treat every
//! device as a sequential resource with insertion slots).  That is
//! exactly the "local view" the paper attributes to list schedulers; the
//! resulting *mapping* is re-evaluated with the full model for every
//! reported number.  The only model concession is an FPGA area budget:
//! devices whose remaining area cannot host a task are excluded from its
//! device selection.

pub mod heft;
pub mod listsched;
pub mod peft;

pub use heft::{heft, HeftResult};
pub use listsched::{CostTables, ListScheduleResult};
pub use peft::peft;

//! Shared list-scheduling machinery: cost tables, device timelines with
//! insertion-based slot search, and the ready-list driver.

use spmap_graph::{NodeId, TaskGraph};
use spmap_model::{cost, DeviceId, Mapping, Platform};

/// Per-(task, device) execution times and per-edge average transfer
/// times, the inputs both HEFT and PEFT work from.  Public for use by
/// [`crate::peft::optimistic_cost_table`] consumers and diagnostics.
pub struct CostTables {
    pub m: usize,
    /// `exec[n * m + d]`.
    pub exec: Vec<f64>,
    /// Mean execution time per task over all devices.
    pub mean_exec: Vec<f64>,
    /// Mean transfer time per edge over all ordered device pairs with
    /// distinct endpoints.
    pub mean_comm: Vec<f64>,
}

impl CostTables {
    pub fn new(g: &TaskGraph, p: &Platform) -> Self {
        let m = p.device_count();
        let n = g.node_count();
        let mut exec = Vec::with_capacity(n * m);
        let mut mean_exec = Vec::with_capacity(n);
        for v in g.nodes() {
            let mut sum = 0.0;
            for d in p.device_ids() {
                let t = cost::exec_time(p, d, g.task(v));
                exec.push(t);
                sum += t;
            }
            mean_exec.push(sum / m as f64);
        }
        let pairs = (m * m - m).max(1) as f64;
        let mean_comm = g
            .edge_ids()
            .map(|e| {
                let bytes = g.edge(e).bytes;
                let mut sum = 0.0;
                for a in p.device_ids() {
                    for b in p.device_ids() {
                        if a != b {
                            sum += p.transfer_time(bytes, a, b);
                        }
                    }
                }
                sum / pairs
            })
            .collect();
        Self {
            m,
            exec,
            mean_exec,
            mean_comm,
        }
    }

    #[inline]
    pub fn exec(&self, v: NodeId, d: DeviceId) -> f64 {
        self.exec[v.index() * self.m + d.index()]
    }
}

/// A sequential device timeline with insertion-based slot search.
#[derive(Clone, Debug, Default)]
pub(crate) struct Timeline {
    /// Busy intervals sorted by start time.
    slots: Vec<(f64, f64)>,
}

impl Timeline {
    /// Earliest start ≥ `est` where a job of length `len` fits, using
    /// insertion between existing busy intervals (the HEFT insertion
    /// policy).
    pub fn earliest_fit(&self, est: f64, len: f64) -> f64 {
        let mut candidate = est;
        for &(s, e) in &self.slots {
            if candidate + len <= s {
                return candidate;
            }
            candidate = candidate.max(e);
        }
        candidate
    }

    /// Reserve `[start, start + len)`.
    pub fn insert(&mut self, start: f64, len: f64) {
        let pos = self.slots.partition_point(|&(s, _)| s < start);
        self.slots.insert(pos, (start, start + len));
        debug_assert!(
            self.slots.windows(2).all(|w| w[0].1 <= w[1].0 + 1e-12),
            "overlapping reservations"
        );
    }
}

/// Outcome of a list-scheduling run.
#[derive(Clone, Debug)]
pub struct ListScheduleResult {
    /// The produced task → device mapping.
    pub mapping: Mapping,
    /// The scheduler's *internal* makespan estimate: the EFT bookkeeping
    /// of its own insertion-based timelines, which treats every device
    /// as strictly sequential and knows nothing about FPGA dataflow
    /// streaming or link occupancy.  It exists to drive the scheduler's
    /// greedy choices and for diagnostics only — it is **not** the
    /// model-evaluated makespan and must never be reported as one.
    /// Every reported number in this workspace (the sweep driver's
    /// tables, `perf_report`, the figures) re-evaluates `mapping` with
    /// `spmap_model::Evaluator` under the paper's reporting metric;
    /// `spmap-bench` pins that invariant with a regression test.
    pub internal_makespan: f64,
    /// Order in which tasks were scheduled.
    pub order: Vec<NodeId>,
}

/// Generic priority-driven list scheduler: repeatedly schedule the ready
/// task with the highest `rank`, choosing the device that minimizes
/// `EFT + tiebreak(v, d)` under insertion-based timelines, actual
/// transfer costs, and the FPGA area budget.
pub(crate) fn run_list_scheduler(
    g: &TaskGraph,
    p: &Platform,
    ct: &CostTables,
    rank: &[f64],
    tiebreak: impl Fn(NodeId, DeviceId) -> f64,
) -> ListScheduleResult {
    let n = g.node_count();
    let mut mapping = Mapping::all_default(g, p);
    let mut timelines: Vec<Timeline> = vec![Timeline::default(); p.device_count()];
    let mut area_left: Vec<f64> = p
        .device_ids()
        .map(|d| p.device(d).area_capacity())
        .collect();
    let mut aft = vec![0.0f64; n];
    let mut indeg: Vec<usize> = (0..n).map(|i| g.in_degree(NodeId(i as u32))).collect();
    let mut ready: Vec<NodeId> = g.nodes().filter(|&v| indeg[v.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut makespan = 0.0f64;

    while !ready.is_empty() {
        // Highest rank first; ties by node id for determinism.
        let (idx, _) = ready
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                rank[a.index()]
                    .total_cmp(&rank[b.index()])
                    .then(b.0.cmp(&a.0))
            })
            .expect("ready list non-empty");
        let v = ready.swap_remove(idx);
        order.push(v);

        let mut best: Option<(DeviceId, f64, f64)> = None; // (device, start, score)
        for d in p.device_ids() {
            if p.is_fpga(d) && g.task(v).area > area_left[d.index()] + 1e-9 {
                continue; // would not fit the FPGA anymore
            }
            let mut est = 0.0f64;
            for &e in g.in_edges(v) {
                let edge = g.edge(e);
                let pd = mapping.device(edge.src);
                let arrive = aft[edge.src.index()]
                    + if pd == d {
                        0.0
                    } else {
                        p.transfer_time(edge.bytes, pd, d)
                    };
                est = est.max(arrive);
            }
            let len = ct.exec(v, d);
            let start = timelines[d.index()].earliest_fit(est, len);
            let eft = start + len;
            let score = eft + tiebreak(v, d);
            if best.is_none_or(|(_, _, s)| score < s) {
                best = Some((d, start, score));
            }
        }
        let (d, start, _) = best.expect("at least the default device is always available");
        let len = ct.exec(v, d);
        timelines[d.index()].insert(start, len);
        if p.is_fpga(d) {
            area_left[d.index()] -= g.task(v).area;
        }
        mapping.set(v, d);
        aft[v.index()] = start + len;
        makespan = makespan.max(aft[v.index()]);

        for s in g.successors(v) {
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                ready.push(s);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "graph must be acyclic");
    ListScheduleResult {
        mapping,
        internal_makespan: makespan,
        order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_inserts_into_gaps() {
        let mut t = Timeline::default();
        t.insert(0.0, 2.0);
        t.insert(5.0, 2.0);
        // Gap [2, 5): a job of length 3 fits at 2.
        assert_eq!(t.earliest_fit(0.0, 3.0), 2.0);
        // A job of length 4 does not fit the gap; goes after the last slot.
        assert_eq!(t.earliest_fit(0.0, 4.0), 7.0);
        // EST inside the gap.
        assert_eq!(t.earliest_fit(2.5, 0.5), 2.5);
        // EST inside a busy slot pushes to the end of it.
        assert_eq!(t.earliest_fit(1.0, 1.0), 2.0);
    }

    #[test]
    fn timeline_keeps_sorted() {
        let mut t = Timeline::default();
        t.insert(4.0, 1.0);
        t.insert(0.0, 1.0);
        t.insert(2.0, 1.0);
        assert_eq!(t.earliest_fit(0.0, 1.0), 1.0);
    }
}

//! HEFT — Heterogeneous Earliest Finish Time (paper ref. 6).
//!
//! Phase 1 computes *upward ranks* from average computation and
//! communication costs:
//!
//! ```text
//! rank_u(v) = w̄(v) + max over successors s of ( c̄(v, s) + rank_u(s) )
//! ```
//!
//! Phase 2 schedules tasks in decreasing rank order onto the device with
//! the earliest insertion-based finish time, using *actual* transfer
//! costs between the already-fixed predecessor devices and the candidate.

use spmap_graph::{ops, TaskGraph};
use spmap_model::Platform;

use crate::listsched::{run_list_scheduler, CostTables, ListScheduleResult};

/// Result alias: HEFT and PEFT share the list-scheduler output shape.
pub type HeftResult = ListScheduleResult;

/// Upward ranks for all tasks (exposed for tests and diagnostics).
pub fn upward_ranks(g: &TaskGraph, ct_mean_exec: &[f64], ct_mean_comm: &[f64]) -> Vec<f64> {
    let order = ops::topo_order(g).expect("task graphs are DAGs");
    let mut rank = vec![0.0f64; g.node_count()];
    for &v in order.iter().rev() {
        let mut tail = 0.0f64;
        for &e in g.out_edges(v) {
            let s = g.edge(e).dst;
            tail = tail.max(ct_mean_comm[e.index()] + rank[s.index()]);
        }
        rank[v.index()] = ct_mean_exec[v.index()] + tail;
    }
    rank
}

/// Run HEFT, returning the mapping, the internal schedule estimate, and
/// the scheduling order.
pub fn heft(g: &TaskGraph, p: &Platform) -> HeftResult {
    let ct = CostTables::new(g, p);
    let rank = upward_ranks(g, &ct.mean_exec, &ct.mean_comm);
    run_list_scheduler(g, p, &ct, &rank, |_, _| 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmap_graph::gen::{chain, fork_join, random_sp_graph, SpGenConfig};
    use spmap_graph::{augment, AugmentConfig, NodeId, Task};
    use spmap_model::{DeviceId, Evaluator, Mapping};

    fn big_parallel_task(name: &str) -> Task {
        Task {
            name: name.into(),
            complexity: 20.0,
            data_points: 1.25e8,
            parallelizability: 1.0,
            streamability: 1.0,
            area: 160.0,
            ..Task::default()
        }
    }

    #[test]
    fn ranks_decrease_along_edges() {
        let mut g = random_sp_graph(&SpGenConfig::new(40, 1));
        augment(&mut g, &AugmentConfig::default(), 1);
        let p = Platform::reference();
        let ct = CostTables::new(&g, &p);
        let rank = upward_ranks(&g, &ct.mean_exec, &ct.mean_comm);
        for e in g.edge_ids() {
            let edge = g.edge(e);
            assert!(
                rank[edge.src.index()] > rank[edge.dst.index()],
                "upward rank must strictly decrease along edges"
            );
        }
    }

    #[test]
    fn rank_of_chain_is_cumulative() {
        let mut g = chain(3, 100e6);
        for v in 0..3 {
            *g.task_mut(NodeId(v)) = big_parallel_task("t");
        }
        let p = Platform::reference();
        let ct = CostTables::new(&g, &p);
        let rank = upward_ranks(&g, &ct.mean_exec, &ct.mean_comm);
        let w = ct.mean_exec[0];
        let c = ct.mean_comm[0];
        assert!((rank[2] - w).abs() < 1e-9);
        assert!((rank[1] - (2.0 * w + c)).abs() < 1e-9);
        assert!((rank[0] - (3.0 * w + 2.0 * c)).abs() < 1e-9);
    }

    #[test]
    fn heft_offloads_parallel_fork() {
        // Wide fork of perfectly parallel tasks: HEFT should spread them
        // over CPU and GPU rather than queueing everything on the CPU.
        let mut g = fork_join(6, 1e6);
        for v in 0..8 {
            *g.task_mut(NodeId(v)) = big_parallel_task("t");
        }
        let p = Platform::reference();
        let r = heft(&g, &p);
        let gpu_count = (0..8)
            .filter(|&v| r.mapping.device(NodeId(v)) == DeviceId(1))
            .count();
        assert!(gpu_count >= 2, "HEFT should use the GPU, got {gpu_count}");
        // Internal estimate must beat the all-CPU sequential sum.
        let all_cpu: f64 = (0..8)
            .map(|v| spmap_model::cost::exec_time(&p, DeviceId(0), g.task(NodeId(v))))
            .sum();
        assert!(r.internal_makespan < all_cpu);
    }

    #[test]
    fn heft_schedule_order_is_topological() {
        let mut g = random_sp_graph(&SpGenConfig::new(60, 7));
        augment(&mut g, &AugmentConfig::default(), 7);
        let p = Platform::reference();
        let r = heft(&g, &p);
        let mut pos = vec![0usize; g.node_count()];
        for (i, &v) in r.order.iter().enumerate() {
            pos[v.index()] = i;
        }
        for e in g.edge_ids() {
            let edge = g.edge(e);
            assert!(pos[edge.src.index()] < pos[edge.dst.index()]);
        }
    }

    #[test]
    fn heft_mapping_respects_area_budget() {
        let mut g = fork_join(30, 1e6);
        for v in 0..32 {
            let t = g.task_mut(NodeId(v));
            // Streamable serial tasks that love the FPGA, each 300 area.
            t.complexity = 20.0;
            t.data_points = 1.25e8;
            t.parallelizability = 0.0;
            t.streamability = 16.0;
            t.area = 300.0;
        }
        let p = Platform::reference();
        let r = heft(&g, &p);
        assert!(
            r.mapping.is_area_feasible(&g, &p),
            "HEFT must respect the FPGA area budget"
        );
        // And it did use the FPGA for some tasks (6 fit in 2000).
        assert!(r.mapping.count_on(DeviceId(2)) >= 1);
    }

    #[test]
    fn heft_mapping_evaluates_under_real_model() {
        let p = Platform::reference();
        for seed in 0..5 {
            let mut g = random_sp_graph(&SpGenConfig::new(50, seed));
            augment(&mut g, &AugmentConfig::default(), seed);
            let r = heft(&g, &p);
            let mut ev = Evaluator::new(&g, &p);
            let ms = ev
                .makespan_bfs(&r.mapping)
                .expect("HEFT mappings are area-feasible");
            assert!(ms.is_finite() && ms > 0.0);
        }
    }

    #[test]
    fn heft_is_deterministic() {
        let mut g = random_sp_graph(&SpGenConfig::new(45, 3));
        augment(&mut g, &AugmentConfig::default(), 3);
        let p = Platform::reference();
        let a = heft(&g, &p);
        let b = heft(&g, &p);
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.internal_makespan, b.internal_makespan);
    }

    #[test]
    fn heft_on_cpu_only_platform_is_all_cpu() {
        let mut g = random_sp_graph(&SpGenConfig::new(20, 2));
        augment(&mut g, &AugmentConfig::default(), 2);
        let p = Platform::cpu_only();
        let r = heft(&g, &p);
        assert_eq!(r.mapping, Mapping::all_default(&g, &p));
    }
}

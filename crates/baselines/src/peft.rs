//! PEFT — Predict Earliest Finish Time (paper ref. 8).
//!
//! PEFT improves on HEFT with an *optimistic cost table*:
//!
//! ```text
//! OCT(v, d) = max over successors s of
//!               min over devices w of ( OCT(s, w) + exec(s, w)
//!                                       + [w ≠ d] · c̄(v, s) )
//! ```
//!
//! Tasks are prioritized by their average OCT row (`rank_oct`), and device
//! selection minimizes the *optimistic EFT* `EFT(v, d) + OCT(v, d)` — a
//! one-step look-ahead that HEFT lacks.  Because `rank_oct` does not
//! guarantee topological order, the driver schedules from a ready list
//! (as in the original paper).

use spmap_graph::{ops, TaskGraph};
use spmap_model::{DeviceId, Platform};

use crate::heft::HeftResult;
use crate::listsched::{run_list_scheduler, CostTables};

/// The optimistic cost table, row-major `oct[v * m + d]` (exposed for
/// tests and diagnostics).
pub fn optimistic_cost_table(g: &TaskGraph, p: &Platform, ct: &CostTables) -> Vec<f64> {
    let m = p.device_count();
    let order = ops::topo_order(g).expect("task graphs are DAGs");
    let mut oct = vec![0.0f64; g.node_count() * m];
    for &v in order.iter().rev() {
        for d in 0..m {
            let mut worst = 0.0f64;
            for &e in g.out_edges(v) {
                let s = g.edge(e).dst;
                let mut best = f64::INFINITY;
                for w in 0..m {
                    let comm = if w == d { 0.0 } else { ct.mean_comm[e.index()] };
                    let val = oct[s.index() * m + w] + ct.exec(s, DeviceId(w as u32)) + comm;
                    best = best.min(val);
                }
                worst = worst.max(best);
            }
            oct[v.index() * m + d] = worst;
        }
    }
    oct
}

/// Run PEFT, returning the mapping, the internal schedule estimate, and
/// the scheduling order.
pub fn peft(g: &TaskGraph, p: &Platform) -> HeftResult {
    let ct = CostTables::new(g, p);
    let m = p.device_count();
    let oct = optimistic_cost_table(g, p, &ct);
    let rank: Vec<f64> = (0..g.node_count())
        .map(|v| oct[v * m..(v + 1) * m].iter().sum::<f64>() / m as f64)
        .collect();
    run_list_scheduler(g, p, &ct, &rank, |v, d| oct[v.index() * m + d.index()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heft::heft;
    use spmap_graph::gen::{chain, random_sp_graph, SpGenConfig};
    use spmap_graph::{augment, AugmentConfig, NodeId};
    use spmap_model::{Evaluator, Mapping};

    #[test]
    fn oct_is_zero_for_exit_tasks() {
        let mut g = random_sp_graph(&SpGenConfig::new(30, 1));
        augment(&mut g, &AugmentConfig::default(), 1);
        let p = Platform::reference();
        let ct = CostTables::new(&g, &p);
        let oct = optimistic_cost_table(&g, &p, &ct);
        let m = p.device_count();
        for v in g.nodes() {
            if g.out_degree(v) == 0 {
                for d in 0..m {
                    assert_eq!(oct[v.index() * m + d], 0.0);
                }
            } else {
                // Inner tasks have positive OCT on every device.
                for d in 0..m {
                    assert!(oct[v.index() * m + d] > 0.0);
                }
            }
        }
    }

    #[test]
    fn oct_chain_matches_hand_computation() {
        let mut g = chain(2, 100e6);
        augment(&mut g, &AugmentConfig::default(), 4);
        let p = Platform::reference();
        let ct = CostTables::new(&g, &p);
        let oct = optimistic_cost_table(&g, &p, &ct);
        let m = p.device_count();
        // OCT(0, d) = min over w of exec(1, w) + [w != d]·c̄(0-1).
        for d in 0..m {
            let mut expect = f64::INFINITY;
            for w in 0..m {
                let comm = if w == d { 0.0 } else { ct.mean_comm[0] };
                expect = expect.min(ct.exec(NodeId(1), DeviceId(w as u32)) + comm);
            }
            assert!((oct[d] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn peft_is_deterministic_and_feasible() {
        let p = Platform::reference();
        for seed in 0..5 {
            let mut g = random_sp_graph(&SpGenConfig::new(60, seed));
            augment(&mut g, &AugmentConfig::default(), seed);
            let a = peft(&g, &p);
            let b = peft(&g, &p);
            assert_eq!(a.mapping, b.mapping);
            assert!(a.mapping.is_area_feasible(&g, &p));
            let mut ev = Evaluator::new(&g, &p);
            assert!(ev.makespan_bfs(&a.mapping).is_some());
        }
    }

    #[test]
    fn peft_order_is_topological() {
        let mut g = random_sp_graph(&SpGenConfig::new(70, 9));
        augment(&mut g, &AugmentConfig::default(), 9);
        let p = Platform::reference();
        let r = peft(&g, &p);
        let mut pos = vec![0usize; g.node_count()];
        for (i, &v) in r.order.iter().enumerate() {
            pos[v.index()] = i;
        }
        for e in g.edge_ids() {
            let edge = g.edge(e);
            assert!(pos[edge.src.index()] < pos[edge.dst.index()]);
        }
    }

    #[test]
    fn peft_competitive_with_heft_under_the_model() {
        // Paper (citing Maurya & Tripathi): PEFT performs at least
        // comparably to HEFT on heterogeneous systems.  Internal
        // estimates are not comparable across the two cost tables, so
        // compare the *model-evaluated* improvement of the produced
        // mappings, averaged over a batch.
        let p = Platform::reference();
        let mut heft_sum = 0.0;
        let mut peft_sum = 0.0;
        let total = 12;
        for seed in 0..total {
            let mut g = random_sp_graph(&SpGenConfig::new(50, seed));
            augment(&mut g, &AugmentConfig::default(), seed);
            let mut ev = Evaluator::new(&g, &p);
            let cpu = ev.cpu_only_makespan();
            let hm = ev
                .makespan_bfs(&heft(&g, &p).mapping)
                .unwrap_or(cpu)
                .min(cpu);
            let qm = ev
                .makespan_bfs(&peft(&g, &p).mapping)
                .unwrap_or(cpu)
                .min(cpu);
            heft_sum += (cpu - hm) / cpu;
            peft_sum += (cpu - qm) / cpu;
        }
        let heft_mean = heft_sum / total as f64;
        let peft_mean = peft_sum / total as f64;
        assert!(
            peft_mean >= heft_mean - 0.05,
            "PEFT mean improvement {peft_mean:.3} far below HEFT {heft_mean:.3}"
        );
    }

    #[test]
    fn peft_on_cpu_only_platform_is_all_cpu() {
        let mut g = random_sp_graph(&SpGenConfig::new(20, 3));
        augment(&mut g, &AugmentConfig::default(), 3);
        let p = Platform::cpu_only();
        let r = peft(&g, &p);
        assert_eq!(r.mapping, Mapping::all_default(&g, &p));
    }
}

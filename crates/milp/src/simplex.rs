//! Dense two-phase primal simplex for LP relaxations.
//!
//! Scope: the LPs arising from the paper's MILP baselines are dense-ish,
//! have a few hundred to a few thousand rows, and are re-solved many
//! times inside branch & bound with changed variable bounds.  A dense
//! tableau with Dantzig pricing (Bland fallback for anti-cycling) is the
//! simplest implementation that is fast enough at this scale; fixed
//! variables (lb = ub, the common case for branched binaries) are folded
//! into the right-hand side so dived subproblems shrink.

use crate::model::{Model, Sense};

/// LP solve status.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LpStatus {
    /// Proven optimal.
    Optimal,
    /// No feasible point.
    Infeasible,
    /// Objective unbounded below.
    Unbounded,
    /// Pivot limit hit; `x` holds the last (feasible) iterate.
    IterLimit,
}

/// LP solve result.
#[derive(Clone, Debug)]
pub struct LpResult {
    /// Status of the solve.
    pub status: LpStatus,
    /// Objective value of `x` (meaningful for `Optimal` / `IterLimit`).
    pub objective: f64,
    /// Primal values in *original* variable space.
    pub x: Vec<f64>,
}

const PIVOT_TOL: f64 = 1e-9;
const FEAS_TOL: f64 = 1e-7;

/// Solve the LP relaxation of `model` under per-variable `bounds`
/// overrides (same length as the model's variables).
pub fn solve_relaxation(model: &Model, bounds: &[(f64, f64)]) -> LpResult {
    solve_relaxation_deadline(model, bounds, None)
}

/// Like [`solve_relaxation`], but abandon pivoting (→ `IterLimit`) once
/// `deadline` passes — large tableaus must not overshoot a caller's
/// wall-clock budget by a whole LP solve.
pub fn solve_relaxation_deadline(
    model: &Model,
    bounds: &[(f64, f64)],
    // lint:allow(no-wallclock-in-decisions): the deadline parameter of the explicit time-limit API (docs/DETERMINISM.md).
    deadline: Option<std::time::Instant>,
) -> LpResult {
    debug_assert_eq!(bounds.len(), model.var_count());
    let nv = model.var_count();

    // Column layout: skip fixed variables (lb == ub).
    let mut col_of: Vec<Option<usize>> = Vec::with_capacity(nv);
    let mut shift = Vec::with_capacity(nv); // value added back: lb (or the fixed value)
    let mut ncols = 0usize;
    for &(lb, ub) in bounds {
        debug_assert!(lb.is_finite() && ub >= lb - 1e-12);
        shift.push(lb);
        if ub - lb > 1e-12 {
            col_of.push(Some(ncols));
            ncols += 1;
        } else {
            col_of.push(None);
        }
    }

    // Assemble rows: model constraints plus finite upper-bound rows.
    struct Row {
        terms: Vec<(usize, f64)>, // (column, coef)
        sense: Sense,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(model.con_count() + ncols);
    for c in &model.cons {
        let mut rhs = c.rhs;
        let mut terms = Vec::with_capacity(c.terms.len());
        for &(v, coef) in &c.terms {
            rhs -= coef * shift[v];
            if let Some(col) = col_of[v] {
                terms.push((col, coef));
            }
        }
        rows.push(Row {
            terms,
            sense: c.sense,
            rhs,
        });
    }
    for (v, &(lb, ub)) in bounds.iter().enumerate() {
        if let Some(col) = col_of[v] {
            if ub.is_finite() {
                rows.push(Row {
                    terms: vec![(col, 1.0)],
                    sense: Sense::Le,
                    rhs: ub - lb,
                });
            }
        }
    }

    // Quick infeasibility check on empty rows (all variables fixed).
    for r in &rows {
        if r.terms.is_empty() {
            let bad = match r.sense {
                Sense::Le => 0.0 > r.rhs + FEAS_TOL,
                Sense::Ge => 0.0 < r.rhs - FEAS_TOL,
                Sense::Eq => r.rhs.abs() > FEAS_TOL,
            };
            if bad {
                return LpResult {
                    status: LpStatus::Infeasible,
                    objective: f64::INFINITY,
                    x: shift,
                };
            }
        }
    }
    rows.retain(|r| !r.terms.is_empty());

    let m = rows.len();
    // Count slacks and artificials to size the tableau.
    let mut n_slack = 0usize;
    let mut n_art = 0usize;
    for r in &rows {
        let rhs_neg = r.rhs < 0.0;
        let sense = effective_sense(r.sense, rhs_neg);
        match sense {
            Sense::Le => n_slack += 1,
            Sense::Ge => {
                n_slack += 1;
                n_art += 1;
            }
            Sense::Eq => n_art += 1,
        }
    }
    let width = ncols + n_slack + n_art + 1; // + rhs
    let art_start = ncols + n_slack;
    let mut t = vec![0.0f64; m * width];
    let mut basis = vec![usize::MAX; m];
    {
        let mut slack_idx = ncols;
        let mut art_idx = art_start;
        for (i, r) in rows.iter().enumerate() {
            let row = &mut t[i * width..(i + 1) * width];
            let flip = if r.rhs < 0.0 { -1.0 } else { 1.0 };
            for &(c, coef) in &r.terms {
                row[c] += flip * coef;
            }
            row[width - 1] = flip * r.rhs;
            match effective_sense(r.sense, flip < 0.0) {
                Sense::Le => {
                    row[slack_idx] = 1.0;
                    basis[i] = slack_idx;
                    slack_idx += 1;
                }
                Sense::Ge => {
                    row[slack_idx] = -1.0;
                    slack_idx += 1;
                    row[art_idx] = 1.0;
                    basis[i] = art_idx;
                    art_idx += 1;
                }
                Sense::Eq => {
                    row[art_idx] = 1.0;
                    basis[i] = art_idx;
                    art_idx += 1;
                }
            }
        }
    }

    let iter_limit = 200 + 40 * (m + ncols);

    // ---- Phase 1: minimize the sum of artificials ----
    if n_art > 0 {
        let mut obj = vec![0.0f64; width];
        for c in art_start..width - 1 {
            obj[c] = 1.0;
        }
        // Price out the basic artificials.
        for (i, &b) in basis.iter().enumerate() {
            if b >= art_start {
                let row = t[i * width..(i + 1) * width].to_vec();
                for (o, r) in obj.iter_mut().zip(&row) {
                    *o -= r;
                }
            }
        }
        let status = pivot_loop(
            &mut t,
            &mut obj,
            &mut basis,
            m,
            width,
            usize::MAX,
            iter_limit,
            deadline,
        );
        let phase1_obj = -obj[width - 1];
        if status != LpStatus::Optimal || phase1_obj > FEAS_TOL {
            return LpResult {
                status: if status == LpStatus::IterLimit {
                    LpStatus::IterLimit
                } else {
                    LpStatus::Infeasible
                },
                objective: f64::INFINITY,
                x: shift,
            };
        }
        // Drive remaining basic artificials out of the basis where possible.
        for i in 0..m {
            if basis[i] >= art_start {
                let row_start = i * width;
                if let Some(c) = (0..art_start).find(|&c| t[row_start + c].abs() > PIVOT_TOL) {
                    pivot(&mut t, &mut obj, m, width, i, c);
                    basis[i] = c;
                }
                // Otherwise the row is redundant (all structural coefs 0);
                // its rhs is ~0 and it stays harmless.
            }
        }
    }

    // ---- Phase 2: original objective over shifted variables ----
    let mut obj = vec![0.0f64; width];
    for (v, var) in model.vars.iter().enumerate() {
        if let Some(c) = col_of[v] {
            obj[c] = var.obj;
        }
    }
    // Artificials must not re-enter: give them a prohibitive cost.
    for c in art_start..width - 1 {
        obj[c] = 1e30;
    }
    for (i, &b) in basis.iter().enumerate() {
        if obj[b] != 0.0 {
            let coef = obj[b];
            let row = t[i * width..(i + 1) * width].to_vec();
            for (o, r) in obj.iter_mut().zip(&row) {
                *o -= coef * r;
            }
        }
    }
    let status = pivot_loop(
        &mut t, &mut obj, &mut basis, m, width, art_start, iter_limit, deadline,
    );

    // Extract the solution.
    let mut x_shifted = vec![0.0f64; ncols];
    for (i, &b) in basis.iter().enumerate() {
        if b < ncols {
            x_shifted[b] = t[i * width + width - 1];
        }
    }
    let mut x = shift;
    for (v, col) in col_of.iter().enumerate() {
        if let Some(c) = *col {
            x[v] += x_shifted[c].max(0.0);
        }
    }
    let objective = model
        .vars
        .iter()
        .zip(&x)
        .map(|(var, &xi)| var.obj * xi)
        .sum();
    LpResult {
        status: match status {
            LpStatus::Optimal => LpStatus::Optimal,
            s => s,
        },
        objective,
        x,
    }
}

#[inline]
fn effective_sense(s: Sense, flipped: bool) -> Sense {
    if !flipped {
        return s;
    }
    match s {
        Sense::Le => Sense::Ge,
        Sense::Ge => Sense::Le,
        Sense::Eq => Sense::Eq,
    }
}

/// Dantzig pricing with Bland fallback after a stall; returns the status.
#[allow(clippy::too_many_arguments)]
fn pivot_loop(
    t: &mut [f64],
    obj: &mut [f64],
    basis: &mut [usize],
    m: usize,
    width: usize,
    forbidden_from: usize,
    iter_limit: usize,
    // lint:allow(no-wallclock-in-decisions): the deadline parameter of the explicit time-limit API (docs/DETERMINISM.md).
    deadline: Option<std::time::Instant>,
) -> LpStatus {
    let ncols_all = width - 1;
    let mut last_obj = f64::INFINITY;
    let mut stall = 0usize;
    for iter in 0..iter_limit {
        if iter % 64 == 0 {
            if let Some(d) = deadline {
                // lint:allow(no-wallclock-in-decisions): the deadline check of the explicit time-limit API (docs/DETERMINISM.md).
                if std::time::Instant::now() > d {
                    return LpStatus::IterLimit;
                }
            }
        }
        let use_bland = stall > 64;
        // Entering column.
        let mut enter = usize::MAX;
        let mut best = -PIVOT_TOL;
        for c in 0..ncols_all {
            if c >= forbidden_from && obj[c] > 1e29 {
                continue;
            }
            let rc = obj[c];
            if use_bland {
                if rc < -PIVOT_TOL {
                    enter = c;
                    break;
                }
            } else if rc < best {
                best = rc;
                enter = c;
            }
        }
        if enter == usize::MAX {
            return LpStatus::Optimal;
        }
        // Ratio test.
        let mut leave = usize::MAX;
        let mut best_ratio = f64::INFINITY;
        for r in 0..m {
            let a = t[r * width + enter];
            if a > PIVOT_TOL {
                let ratio = t[r * width + width - 1] / a;
                if ratio < best_ratio - 1e-12
                    || (ratio < best_ratio + 1e-12
                        && (leave == usize::MAX || basis[r] < basis[leave]))
                {
                    best_ratio = ratio;
                    leave = r;
                }
            }
        }
        if leave == usize::MAX {
            return LpStatus::Unbounded;
        }
        pivot(t, obj, m, width, leave, enter);
        basis[leave] = enter;
        let cur = -obj[width - 1];
        if cur < last_obj - 1e-12 {
            stall = 0;
            last_obj = cur;
        } else {
            stall += 1;
        }
    }
    LpStatus::IterLimit
}

/// Gauss-Jordan pivot on (row, col), including the objective row.
fn pivot(t: &mut [f64], obj: &mut [f64], m: usize, width: usize, row: usize, col: usize) {
    let piv = t[row * width + col];
    debug_assert!(piv.abs() > PIVOT_TOL * 0.1, "tiny pivot {piv}");
    let inv = 1.0 / piv;
    {
        let r = &mut t[row * width..(row + 1) * width];
        for v in r.iter_mut() {
            *v *= inv;
        }
        r[col] = 1.0; // exact
    }
    // Split borrows: copy the pivot row once, then eliminate.
    let prow = t[row * width..(row + 1) * width].to_vec();
    for r in 0..m {
        if r == row {
            continue;
        }
        let factor = t[r * width + col];
        if factor.abs() <= 1e-13 {
            continue;
        }
        let dst = &mut t[r * width..(r + 1) * width];
        for (d, p) in dst.iter_mut().zip(&prow) {
            *d -= factor * p;
        }
        dst[col] = 0.0;
    }
    let factor = obj[col];
    if factor.abs() > 1e-13 {
        for (o, p) in obj.iter_mut().zip(&prow) {
            *o -= factor * p;
        }
        obj[col] = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    fn free_bounds(m: &Model) -> Vec<(f64, f64)> {
        m.vars.iter().map(|v| (v.lb, v.ub)).collect()
    }

    #[test]
    fn classic_max_lp() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 → (2, 6), 36.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, f64::INFINITY, -3.0);
        let y = m.add_continuous(0.0, f64::INFINITY, -5.0);
        m.add_constraint(&[(x, 1.0)], Sense::Le, 4.0);
        m.add_constraint(&[(y, 2.0)], Sense::Le, 12.0);
        m.add_constraint(&[(x, 3.0), (y, 2.0)], Sense::Le, 18.0);
        let r = solve_relaxation(&m, &free_bounds(&m));
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective + 36.0).abs() < 1e-6, "obj {}", r.objective);
        assert!((r.x[0] - 2.0).abs() < 1e-6);
        assert!((r.x[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn equality_and_ge() {
        // min x + 2y s.t. x + y = 1, y >= 0.25 → x = 0.75, y = 0.25.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, f64::INFINITY, 1.0);
        let y = m.add_continuous(0.0, f64::INFINITY, 2.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], Sense::Eq, 1.0);
        m.add_constraint(&[(y, 1.0)], Sense::Ge, 0.25);
        let r = solve_relaxation(&m, &free_bounds(&m));
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 1.25).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 1.0, 1.0);
        m.add_constraint(&[(x, 1.0)], Sense::Ge, 2.0);
        let r = solve_relaxation(&m, &free_bounds(&m));
        assert_eq!(r.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, f64::INFINITY, -1.0);
        let y = m.add_continuous(0.0, f64::INFINITY, 0.0);
        m.add_constraint(&[(x, 1.0), (y, -1.0)], Sense::Le, 1.0);
        let r = solve_relaxation(&m, &free_bounds(&m));
        assert_eq!(r.status, LpStatus::Unbounded);
    }

    #[test]
    fn upper_bounds_respected() {
        // min -x with x in [0, 3].
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 3.0, -1.0);
        m.add_constraint(&[(x, 1.0)], Sense::Ge, 0.0);
        let r = solve_relaxation(&m, &free_bounds(&m));
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.x[0] - 3.0).abs() < 1e-7);
    }

    #[test]
    fn fixed_variables_fold_into_rhs() {
        // x fixed to 2 by bounds; min y s.t. y >= 5 - x → y = 3.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 10.0, 0.0);
        let y = m.add_continuous(0.0, f64::INFINITY, 1.0);
        m.add_constraint(&[(x, 1.0), (y, 1.0)], Sense::Ge, 5.0);
        let r = solve_relaxation(&m, &[(2.0, 2.0), (0.0, f64::INFINITY)]);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.x[0] - 2.0).abs() < 1e-12);
        assert!((r.x[1] - 3.0).abs() < 1e-7);
    }

    #[test]
    fn fixed_infeasibility_detected() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 1.0, 0.0);
        m.add_constraint(&[(x, 1.0)], Sense::Ge, 0.9);
        let r = solve_relaxation(&m, &[(0.0, 0.0)]);
        assert_eq!(r.status, LpStatus::Infeasible);
    }

    #[test]
    fn negative_rhs_rows() {
        // min x s.t. -x <= -2  (i.e. x >= 2), x <= 5.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 5.0, 1.0);
        m.add_constraint(&[(x, -1.0)], Sense::Le, -2.0);
        let r = solve_relaxation(&m, &free_bounds(&m));
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.x[0] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Multiple redundant constraints intersecting at the optimum.
        let mut m = Model::new();
        let x = m.add_continuous(0.0, f64::INFINITY, -1.0);
        let y = m.add_continuous(0.0, f64::INFINITY, -1.0);
        for k in 1..=6 {
            m.add_constraint(&[(x, k as f64), (y, k as f64)], Sense::Le, 2.0 * k as f64);
        }
        let r = solve_relaxation(&m, &free_bounds(&m));
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective + 2.0).abs() < 1e-6);
    }

    #[test]
    fn assignment_lp_relaxation_is_integral() {
        // 2 tasks × 2 machines with costs; the LP relaxation of an
        // assignment problem has an integral optimum.
        let mut m = Model::new();
        let cost = [[1.0, 3.0], [4.0, 1.5]];
        let mut v = Vec::new();
        for t in 0..2 {
            for d in 0..2 {
                v.push(m.add_continuous(0.0, 1.0, cost[t][d]));
            }
        }
        for t in 0..2 {
            m.add_constraint(&[(v[2 * t], 1.0), (v[2 * t + 1], 1.0)], Sense::Eq, 1.0);
        }
        let r = solve_relaxation(&m, &free_bounds(&m));
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 2.5).abs() < 1e-6);
        for xi in &r.x {
            assert!(xi.abs() < 1e-7 || (xi - 1.0).abs() < 1e-7);
        }
    }
}

//! The paper's three MILP baselines (§IV-A), built on [`crate::branch`].
//!
//! * [`solve_wgdp_device`] — the *device-based* MILP of Wilhelm et al.
//!   (paper ref. 5): balance per-device load, ignore dependencies.
//!   Small (`n·m` binaries), fast, but blind to transfers — the paper
//!   finds it clearly weaker on dependency-heavy graphs.
//! * [`solve_wgdp_time`] — the *time-based* MILP of the same authors:
//!   start times, big-M device serialization for temporal devices, FPGA
//!   area, and (uniquely among the MILPs) **FPGA streaming awareness**:
//!   an edge whose endpoints are co-located on the FPGA relaxes its
//!   precedence constraint to the pipeline-fill bound.
//! * [`solve_zhou_liu`] — the slot-based MILP of Zhou & Liu (paper ref.
//!   2): per-device execution slots give a total order; detailed but
//!   `n²·m` binaries, so it explodes quickly (the paper saw 5-minute
//!   timeouts beyond 20 tasks; our solver hits its limits proportionally
//!   earlier, see EXPERIMENTS.md).
//!
//! All three start from the all-CPU incumbent, so time-limited solves
//! degrade gracefully to the default mapping instead of failing.

use spmap_graph::{ops, NodeId, TaskGraph};
use spmap_model::{cost, DeviceId, Mapping, Platform};

use crate::branch::{solve_milp, MilpStatus, SolveOptions};
use crate::model::{Model, Sense, VarId};

/// Result of a MILP-based mapping run.
#[derive(Clone, Debug)]
pub struct MilpMapping {
    /// The produced mapping (the all-CPU default if no improving
    /// incumbent was found in time).
    pub mapping: Mapping,
    /// Internal objective of the returned mapping (the formulation's own
    /// schedule estimate, *not* the model-evaluated makespan).
    pub objective: f64,
    /// Solver status.
    pub status: MilpStatus,
    /// Explored branch & bound nodes.
    pub nodes: usize,
    /// Best proven lower bound.
    pub best_bound: f64,
}

/// Shared per-instance cost data.
struct Inst<'g> {
    g: &'g TaskGraph,
    p: &'g Platform,
    /// `exec[t][d]`
    exec: Vec<Vec<f64>>,
    /// Scheduling horizon (big-M): serial execution on the slowest device
    /// plus all transfers.
    horizon: f64,
    cpu_only: f64,
}

impl<'g> Inst<'g> {
    fn new(g: &'g TaskGraph, p: &'g Platform) -> Self {
        let exec: Vec<Vec<f64>> = g
            .nodes()
            .map(|v| {
                p.device_ids()
                    .map(|d| cost::exec_time(p, d, g.task(v)))
                    .collect()
            })
            .collect();
        let mut horizon: f64 = exec
            .iter()
            .map(|row| row.iter().cloned().fold(0.0, f64::max))
            .sum();
        for e in g.edge_ids() {
            let bytes = g.edge(e).bytes;
            let worst = p
                .device_ids()
                .flat_map(|a| p.device_ids().map(move |b| (a, b)))
                .filter(|(a, b)| a != b)
                .map(|(a, b)| p.transfer_time(bytes, a, b))
                .fold(0.0, f64::max);
            horizon += worst;
        }
        let cpu_only = exec.iter().map(|row| row[p.default_device().index()]).sum();
        Self {
            g,
            p,
            exec,
            horizon,
            cpu_only,
        }
    }

    fn decode(&self, y: &[Vec<VarId>], values: &[f64]) -> Mapping {
        let mut mapping = Mapping::all_default(self.g, self.p);
        for (t, row) in y.iter().enumerate() {
            let mut best = (self.p.default_device(), 0.5);
            for (d, &var) in row.iter().enumerate() {
                if values[var.0] > best.1 {
                    best = (DeviceId(d as u32), values[var.0]);
                }
            }
            mapping.set(NodeId(t as u32), best.0);
        }
        mapping
    }
}

/// Add assignment binaries `y[t][d]` with `Σ_d y[t][d] = 1`.
fn add_assignment(m: &mut Model, n: usize, dev: usize) -> Vec<Vec<VarId>> {
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<VarId> = (0..dev).map(|_| m.add_binary(0.0)).collect();
        let terms: Vec<(VarId, f64)> = row.iter().map(|&v| (v, 1.0)).collect();
        m.add_constraint(&terms, Sense::Eq, 1.0);
        y.push(row);
    }
    y
}

/// Add FPGA area rows `Σ_t area_t · y[t][F] ≤ capacity`.
fn add_area_rows(m: &mut Model, inst: &Inst<'_>, y: &[Vec<VarId>]) {
    for d in inst.p.device_ids() {
        if !inst.p.is_fpga(d) {
            continue;
        }
        let terms: Vec<(VarId, f64)> = (0..inst.g.node_count())
            .map(|t| (y[t][d.index()], inst.g.task(NodeId(t as u32)).area))
            .collect();
        m.add_constraint(&terms, Sense::Le, inst.p.device(d).area_capacity());
    }
}

/// Add a communication variable per edge with the standard pairwise
/// linearization `comm_e ≥ tr(d, d') · (y[u][d] + y[v][d'] − 1)`.
fn add_comm_vars(m: &mut Model, inst: &Inst<'_>, y: &[Vec<VarId>]) -> Vec<VarId> {
    let dev = inst.p.device_count();
    inst.g
        .edge_ids()
        .map(|e| {
            let edge = inst.g.edge(e);
            let comm = m.add_continuous(0.0, inst.horizon, 0.0);
            for a in 0..dev {
                for b in 0..dev {
                    if a == b {
                        continue;
                    }
                    let tr =
                        inst.p
                            .transfer_time(edge.bytes, DeviceId(a as u32), DeviceId(b as u32));
                    if tr <= 0.0 {
                        continue;
                    }
                    // tr·y[u][a] + tr·y[v][b] − comm ≤ tr
                    m.add_constraint(
                        &[
                            (y[edge.src.index()][a], tr),
                            (y[edge.dst.index()][b], tr),
                            (comm, -1.0),
                        ],
                        Sense::Le,
                        tr,
                    );
                }
            }
            comm
        })
        .collect()
}

/// Terms for the execution time of task `t`: `Σ_d exec(t, d) · y[t][d]`.
fn exec_terms(inst: &Inst<'_>, y: &[Vec<VarId>], t: usize, scale: f64) -> Vec<(VarId, f64)> {
    y[t].iter()
        .enumerate()
        .map(|(d, &v)| (v, scale * inst.exec[t][d]))
        .collect()
}

// ---------------------------------------------------------------------------
// WGDP-Device
// ---------------------------------------------------------------------------

/// Device-based MILP: minimize the maximum per-device load, ignoring
/// dependencies and transfers (paper ref. 5, "WGDP Dev").
pub fn solve_wgdp_device(g: &TaskGraph, p: &Platform, opts: &SolveOptions) -> MilpMapping {
    let inst = Inst::new(g, p);
    let n = g.node_count();
    let dev = p.device_count();
    let mut m = Model::new();
    let y = add_assignment(&mut m, n, dev);
    let makespan = m.add_continuous(0.0, inst.horizon, 1.0);
    for d in 0..dev {
        // Σ_t exec(t,d) y[t][d] − makespan ≤ 0
        let mut terms: Vec<(VarId, f64)> = (0..n).map(|t| (y[t][d], inst.exec[t][d])).collect();
        terms.push((makespan, -1.0));
        m.add_constraint(&terms, Sense::Le, 0.0);
    }
    add_area_rows(&mut m, &inst, &y);

    let result = solve_milp(
        &m,
        &SolveOptions {
            initial_objective: Some(inst.cpu_only),
            ..*opts
        },
    );
    finish(inst, y, result)
}

// ---------------------------------------------------------------------------
// WGDP-Time
// ---------------------------------------------------------------------------

/// Time-based MILP with start times, big-M serialization on temporal
/// devices, and FPGA streaming relaxation (paper ref. 5, "WGDP Time").
pub fn solve_wgdp_time(g: &TaskGraph, p: &Platform, opts: &SolveOptions) -> MilpMapping {
    let inst = Inst::new(g, p);
    let n = g.node_count();
    let dev = p.device_count();
    let h = inst.horizon;
    let mut m = Model::new();
    let y = add_assignment(&mut m, n, dev);
    let sigma: Vec<VarId> = (0..n).map(|_| m.add_continuous(0.0, h, 0.0)).collect();
    let comm = add_comm_vars(&mut m, &inst, &y);
    let makespan = m.add_continuous(0.0, h, 1.0);

    // Streaming indicators: one per edge and FPGA device.
    let fpgas: Vec<DeviceId> = p.device_ids().filter(|&d| p.is_fpga(d)).collect();
    for (ei, e) in g.edge_ids().enumerate() {
        let edge = g.edge(e);
        let (u, v) = (edge.src.index(), edge.dst.index());
        let mut stream_vars: Vec<VarId> = Vec::new();
        for &f in &fpgas {
            let b = m.add_binary(0.0);
            m.add_constraint(&[(b, 1.0), (y[u][f.index()], -1.0)], Sense::Le, 0.0);
            m.add_constraint(&[(b, 1.0), (y[v][f.index()], -1.0)], Sense::Le, 0.0);
            stream_vars.push(b);
        }
        // Full precedence, relaxed when any streaming indicator is 1:
        // σ_v − σ_u − w_u − comm_e + H·Σb ≥ 0.
        let mut terms = vec![(sigma[v], 1.0), (sigma[u], -1.0), (comm[ei], -1.0)];
        terms.extend(exec_terms(&inst, &y, u, -1.0));
        for &b in &stream_vars {
            terms.push((b, h));
        }
        m.add_constraint(&terms, Sense::Ge, 0.0);
        // Streaming floor (valid unconditionally): σ_v ≥ σ_u + φ·w_u with
        // φ the fill fraction of the (single) FPGA, and the finish-order
        // bound σ_v ≥ σ_u + w_u − (1−φ)·w_v.
        let phi = fpgas.first().map(|&f| p.fill_fraction(f)).unwrap_or(0.0);
        if !fpgas.is_empty() {
            let mut floor = vec![(sigma[v], 1.0), (sigma[u], -1.0)];
            floor.extend(exec_terms(&inst, &y, u, -phi));
            m.add_constraint(&floor, Sense::Ge, 0.0);
            let mut fin = vec![(sigma[v], 1.0), (sigma[u], -1.0)];
            fin.extend(exec_terms(&inst, &y, u, -1.0));
            fin.extend(exec_terms(&inst, &y, v, 1.0 - phi));
            m.add_constraint(&fin, Sense::Ge, 0.0);
        }
    }

    // Serialization on temporal devices for topologically incomparable
    // pairs (reachable pairs are ordered by the precedence chain already).
    let reach = reachability(g);
    for u in 0..n {
        for v in (u + 1)..n {
            if reach[u][v] || reach[v][u] {
                continue;
            }
            let o = m.add_binary(0.0);
            for d in 0..dev {
                // Incomparable pairs serialize on every device: on the
                // FPGA, pipelining only overlaps *streaming-connected*
                // (hence comparable) tasks.
                // σ_v ≥ σ_u + w_u − H(3 − y[u][d] − y[v][d] − o)
                let mut t1 = vec![(sigma[v], 1.0), (sigma[u], -1.0)];
                t1.extend(exec_terms(&inst, &y, u, -1.0));
                t1.push((y[u][d], -h));
                t1.push((y[v][d], -h));
                t1.push((o, -h));
                m.add_constraint(&t1, Sense::Ge, -3.0 * h);
                // σ_u ≥ σ_v + w_v − H(2 + o − y[u][d] − y[v][d])
                let mut t2 = vec![(sigma[u], 1.0), (sigma[v], -1.0)];
                t2.extend(exec_terms(&inst, &y, v, -1.0));
                t2.push((y[u][d], -h));
                t2.push((y[v][d], -h));
                t2.push((o, h));
                m.add_constraint(&t2, Sense::Ge, -2.0 * h);
            }
        }
    }

    // Makespan.
    for t in 0..n {
        let mut terms = vec![(makespan, 1.0), (sigma[t], -1.0)];
        terms.extend(exec_terms(&inst, &y, t, -1.0));
        m.add_constraint(&terms, Sense::Ge, 0.0);
    }
    add_area_rows(&mut m, &inst, &y);

    let result = solve_milp(
        &m,
        &SolveOptions {
            initial_objective: Some(inst.cpu_only),
            ..*opts
        },
    );
    finish(inst, y, result)
}

// ---------------------------------------------------------------------------
// ZhouLiu
// ---------------------------------------------------------------------------

/// Slot-based MILP of Zhou & Liu (paper ref. 2): execution slots per
/// device impose a total order; no streaming awareness.
pub fn solve_zhou_liu(g: &TaskGraph, p: &Platform, opts: &SolveOptions) -> MilpMapping {
    let inst = Inst::new(g, p);
    let n = g.node_count();
    let dev = p.device_count();
    let slots = n; // any device may host every task
    let h = inst.horizon;
    let mut m = Model::new();

    // x[t][d][s] binaries.
    let x: Vec<Vec<Vec<VarId>>> = (0..n)
        .map(|_| {
            (0..dev)
                .map(|_| (0..slots).map(|_| m.add_binary(0.0)).collect())
                .collect()
        })
        .collect();
    // Aggregated assignment y[t][d] = Σ_s x[t][d][s] (continuous helper).
    let y: Vec<Vec<VarId>> = (0..n)
        .map(|t| {
            (0..dev)
                .map(|d| {
                    let yv = m.add_continuous(0.0, 1.0, 0.0);
                    let mut terms: Vec<(VarId, f64)> = x[t][d].iter().map(|&v| (v, 1.0)).collect();
                    terms.push((yv, -1.0));
                    m.add_constraint(&terms, Sense::Eq, 0.0);
                    yv
                })
                .collect()
        })
        .collect();
    // Each task exactly one (device, slot).
    for t in 0..n {
        let terms: Vec<(VarId, f64)> = (0..dev)
            .flat_map(|d| x[t][d].iter().map(|&v| (v, 1.0)))
            .collect();
        m.add_constraint(&terms, Sense::Eq, 1.0);
    }
    // Slot capacity and compactness (symmetry breaking).
    for d in 0..dev {
        for s in 0..slots {
            let terms: Vec<(VarId, f64)> = (0..n).map(|t| (x[t][d][s], 1.0)).collect();
            m.add_constraint(&terms, Sense::Le, 1.0);
            if s + 1 < slots {
                let mut terms: Vec<(VarId, f64)> = (0..n).map(|t| (x[t][d][s], 1.0)).collect();
                terms.extend((0..n).map(|t| (x[t][d][s + 1], -1.0)));
                m.add_constraint(&terms, Sense::Ge, 0.0);
            }
        }
    }
    // Slot start times.
    let tau: Vec<Vec<VarId>> = (0..dev)
        .map(|_d| {
            (0..slots)
                .map(|s| {
                    let ub = if s == 0 { 0.0 } else { h };
                    m.add_continuous(0.0, ub, 0.0)
                })
                .collect()
        })
        .collect();
    let sigma: Vec<VarId> = (0..n).map(|_| m.add_continuous(0.0, h, 0.0)).collect();
    for d in 0..dev {
        for s in 0..slots.saturating_sub(1) {
            // τ[d][s+1] ≥ τ[d][s] + Σ_t exec(t,d)·x[t][d][s]
            let mut terms = vec![(tau[d][s + 1], 1.0), (tau[d][s], -1.0)];
            terms.extend((0..n).map(|t| (x[t][d][s], -inst.exec[t][d])));
            m.add_constraint(&terms, Sense::Ge, 0.0);
        }
        for s in 0..slots {
            for t in 0..n {
                // σ_t ≥ τ[d][s] − H(1 − x)
                m.add_constraint(
                    &[(sigma[t], 1.0), (tau[d][s], -1.0), (x[t][d][s], -h)],
                    Sense::Ge,
                    -h,
                );
                // τ[d][s+1] ≥ σ_t + exec − H(1 − x)
                if s + 1 < slots {
                    m.add_constraint(
                        &[
                            (tau[d][s + 1], 1.0),
                            (sigma[t], -1.0),
                            (x[t][d][s], -(h + inst.exec[t][d])),
                        ],
                        Sense::Ge,
                        -h,
                    );
                }
            }
        }
    }
    // Communication and precedence.
    let comm = add_comm_vars(&mut m, &inst, &y);
    for (ei, e) in g.edge_ids().enumerate() {
        let edge = g.edge(e);
        let (u, v) = (edge.src.index(), edge.dst.index());
        let mut terms = vec![(sigma[v], 1.0), (sigma[u], -1.0), (comm[ei], -1.0)];
        terms.extend(exec_terms(&inst, &y, u, -1.0));
        m.add_constraint(&terms, Sense::Ge, 0.0);
    }
    // Makespan and area.
    let makespan = m.add_continuous(0.0, h, 1.0);
    for t in 0..n {
        let mut terms = vec![(makespan, 1.0), (sigma[t], -1.0)];
        terms.extend(exec_terms(&inst, &y, t, -1.0));
        m.add_constraint(&terms, Sense::Ge, 0.0);
    }
    add_area_rows(&mut m, &inst, &y);

    let result = solve_milp(
        &m,
        &SolveOptions {
            initial_objective: Some(inst.cpu_only),
            ..*opts
        },
    );
    finish(inst, y, result)
}

fn finish(inst: Inst<'_>, y: Vec<Vec<VarId>>, result: crate::branch::MilpResult) -> MilpMapping {
    let (mapping, objective) = match &result.values {
        Some(values) => (inst.decode(&y, values), result.objective.unwrap()),
        None => (Mapping::all_default(inst.g, inst.p), inst.cpu_only),
    };
    MilpMapping {
        mapping,
        objective,
        status: result.status,
        nodes: result.nodes,
        best_bound: result.best_bound,
    }
}

/// Dense reachability via DFS from every node (`n ≤ a few dozen` for the
/// MILP instances, so `O(V·E)` is fine).
fn reachability(g: &TaskGraph) -> Vec<Vec<bool>> {
    g.nodes()
        .map(|v| {
            let mask = ops::reachable_from(g, v);
            let mut row = mask;
            row[v.index()] = false; // strict reachability
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::MilpStatus;
    use spmap_graph::gen::{chain, fork_join, random_sp_graph, SpGenConfig};
    use spmap_graph::{augment, AugmentConfig, Task};
    use spmap_model::Evaluator;
    use std::time::Duration;

    fn opts(secs: u64) -> SolveOptions {
        SolveOptions {
            time_limit: Duration::from_secs(secs),
            ..SolveOptions::default()
        }
    }

    fn parallel_tasks(g: &mut TaskGraph) {
        for v in 0..g.node_count() {
            *g.task_mut(NodeId(v as u32)) = Task {
                name: format!("t{v}"),
                complexity: 20.0,
                data_points: 1.25e8,
                parallelizability: 1.0,
                streamability: 1.0,
                area: 160.0,
                ..Task::default()
            };
        }
    }

    #[test]
    fn wgdp_device_balances_independent_tasks() {
        // Four independent (fork-join) perfectly parallel tasks: balancing
        // across CPU/GPU beats all-CPU in the load objective.
        let mut g = fork_join(4, 1e6);
        parallel_tasks(&mut g);
        let p = Platform::reference();
        let r = solve_wgdp_device(&g, &p, &opts(20));
        assert!(matches!(
            r.status,
            MilpStatus::Optimal | MilpStatus::Feasible
        ));
        let cpu_only: f64 = (0..6)
            .map(|t| cost::exec_time(&p, DeviceId(0), g.task(NodeId(t))))
            .sum();
        assert!(
            r.objective < cpu_only * 0.9,
            "load balancing must help: {} vs {}",
            r.objective,
            cpu_only
        );
        // Objective equals the max per-device load of the mapping.
        let mut load = vec![0.0f64; p.device_count()];
        for t in g.nodes() {
            load[r.mapping.device(t).index()] +=
                cost::exec_time(&p, r.mapping.device(t), g.task(t));
        }
        let max_load = load.iter().cloned().fold(0.0, f64::max);
        assert!((r.objective - max_load).abs() < 1e-6 * max_load.max(1.0));
    }

    #[test]
    fn wgdp_device_respects_area() {
        let mut g = fork_join(6, 1e6);
        for v in 0..8 {
            let t = g.task_mut(NodeId(v));
            t.complexity = 20.0;
            t.data_points = 1.25e8;
            t.parallelizability = 0.0;
            t.streamability = 16.0;
            t.area = 900.0; // two fit
        }
        let p = Platform::reference();
        let r = solve_wgdp_device(&g, &p, &opts(20));
        assert!(r.mapping.is_area_feasible(&g, &p));
    }

    #[test]
    fn wgdp_time_accounts_for_transfers() {
        // A chain of two tasks with a huge edge: WGDP-Time must keep them
        // co-located even though load balancing would split them.
        let mut g = chain(2, 4e9);
        parallel_tasks(&mut g);
        let p = Platform::reference();
        let r = solve_wgdp_time(&g, &p, &opts(20));
        assert_eq!(
            r.mapping.device(NodeId(0)),
            r.mapping.device(NodeId(1)),
            "chain must stay co-located with a 4 GB edge"
        );
    }

    #[test]
    fn wgdp_time_uses_streaming() {
        // Streamable serial chain: co-locating on the FPGA with streaming
        // beats everything; WGDP-Time is the only MILP that can see this.
        let mut g = chain(4, 1e9);
        for v in 0..4 {
            *g.task_mut(NodeId(v)) = Task {
                name: format!("t{v}"),
                complexity: 20.0,
                data_points: 1.25e8,
                parallelizability: 0.0,
                streamability: 8.0,
                area: 120.0,
                ..Task::default()
            };
        }
        let p = Platform::reference();
        let rt = solve_wgdp_time(&g, &p, &opts(30));
        let fpga_count = (0..4)
            .filter(|&v| rt.mapping.device(NodeId(v)) == DeviceId(2))
            .count();
        assert!(
            fpga_count >= 3,
            "WGDP-Time should stream the chain on the FPGA, got {fpga_count} tasks there"
        );
        // And its internal objective must beat the all-CPU baseline
        // (streamed chain ~22s vs 33s sequential on the CPU).
        let cpu_only: f64 = (0..4)
            .map(|t| cost::exec_time(&p, DeviceId(0), g.task(NodeId(t))))
            .sum();
        assert!(rt.objective < cpu_only * 0.8, "objective {}", rt.objective);
    }

    #[test]
    fn zhou_liu_finds_optimal_tiny_instance() {
        let mut g = fork_join(2, 1e6);
        parallel_tasks(&mut g);
        let p = Platform::reference();
        let r = solve_zhou_liu(&g, &p, &opts(30));
        assert!(matches!(
            r.status,
            MilpStatus::Optimal | MilpStatus::Feasible
        ));
        // Mapping must be feasible and no worse than all-CPU internally.
        let cpu_only: f64 = (0..4)
            .map(|t| cost::exec_time(&p, DeviceId(0), g.task(NodeId(t))))
            .sum();
        assert!(r.objective <= cpu_only + 1e-9);
        assert!(r.mapping.is_area_feasible(&g, &p));
    }

    #[test]
    fn all_milps_never_worse_than_cpu_only_under_real_model() {
        let p = Platform::reference();
        let mut g = random_sp_graph(&SpGenConfig::new(6, 3));
        augment(&mut g, &AugmentConfig::default(), 3);
        let mut ev = Evaluator::new(&g, &p);
        let cpu_only = ev.cpu_only_makespan();
        for (name, r) in [
            ("dev", solve_wgdp_device(&g, &p, &opts(10))),
            ("time", solve_wgdp_time(&g, &p, &opts(10))),
            ("zhou", solve_zhou_liu(&g, &p, &opts(10))),
        ] {
            assert!(r.mapping.is_area_feasible(&g, &p), "{name}");
            // The *internal* objective can't exceed the all-CPU incumbent.
            assert!(r.objective <= cpu_only * (1.0 + 1e-6), "{name}");
        }
    }

    #[test]
    fn milps_are_deterministic() {
        let p = Platform::reference();
        let mut g = random_sp_graph(&SpGenConfig::new(6, 7));
        augment(&mut g, &AugmentConfig::default(), 7);
        let a = solve_wgdp_device(&g, &p, &opts(10));
        let b = solve_wgdp_device(&g, &p, &opts(10));
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.nodes, b.nodes);
    }

    #[test]
    fn time_limit_returns_promptly_with_default_mapping_fallback() {
        let p = Platform::reference();
        let mut g = random_sp_graph(&SpGenConfig::new(14, 2));
        augment(&mut g, &AugmentConfig::default(), 2);
        let t0 = std::time::Instant::now();
        let r = solve_zhou_liu(
            &g,
            &p,
            &SolveOptions {
                time_limit: Duration::from_millis(300),
                ..SolveOptions::default()
            },
        );
        // The deadline-aware simplex abandons pivoting shortly after the
        // budget; allow slack for one pivot-check interval (debug builds
        // pivot slowly on the n=14 slot tableau).
        assert!(
            t0.elapsed() < Duration::from_secs(20),
            "took {:?}",
            t0.elapsed()
        );
        assert!(r.mapping.is_area_feasible(&g, &p));
    }

    #[test]
    fn reachability_matrix() {
        let g = chain(3, 1.0);
        let r = reachability(&g);
        assert!(r[0][1] && r[0][2] && r[1][2]);
        assert!(!r[1][0] && !r[2][0] && !r[0][0]);
    }
}

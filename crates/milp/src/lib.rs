#![allow(clippy::needless_range_loop)]
// dense tableau code indexes several
// parallel arrays per loop; index form
// is the readable one here
//! # spmap-milp — MILP solver substrate and the paper's MILP baselines
//!
//! The paper solves three mixed-integer linear programs with Gurobi; this
//! workspace has no proprietary solver, so the crate provides the full
//! stack from scratch (substitution documented in DESIGN.md §4):
//!
//! * [`model`] — a small modelling API: variables (continuous/binary with
//!   bounds), linear constraints, minimization objective.
//! * [`simplex`] — a dense two-phase primal simplex for the LP
//!   relaxations (Dantzig pricing with a Bland anti-cycling fallback).
//! * [`branch`] — depth-first branch & bound on fractional binaries with
//!   most-fractional branching, nearest-first diving, wall-clock time
//!   limit and incumbent/bound reporting.
//! * [`formulations`] — the three baselines of the paper's §IV-A:
//!   * **ZhouLiu** — slot-based total ordering per device (ref. 2),
//!   * **WGDP-Device** — pure load balancing, no dependencies (ref. 5),
//!   * **WGDP-Time** — start-time based ordering with FPGA streaming
//!     awareness (ref. 5).
//!
//! All formulations start branch & bound from the all-CPU incumbent, so a
//! time-limited solve can never return something worse than the pure CPU
//! mapping (mirroring the paper's truncated-improvement reporting).

pub mod branch;
pub mod formulations;
pub mod model;
pub mod simplex;

pub use branch::{solve_milp, MilpResult, MilpStatus, SolveOptions};
pub use formulations::{solve_wgdp_device, solve_wgdp_time, solve_zhou_liu, MilpMapping};
pub use model::{Model, Sense, VarId, VarKind};

//! Minimal MILP modelling API.

/// Handle to a model variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VarId(pub usize);

/// Variable domain kind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VarKind {
    /// Real-valued within its bounds.
    Continuous,
    /// Integer in `{0, 1}` (bounds are forced to `[0, 1]`).
    Binary,
}

/// Constraint sense.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Sense {
    /// `≤ rhs`
    Le,
    /// `≥ rhs`
    Ge,
    /// `= rhs`
    Eq,
}

pub(crate) struct Var {
    pub kind: VarKind,
    pub lb: f64,
    pub ub: f64,
    pub obj: f64,
}

pub(crate) struct Constraint {
    pub terms: Vec<(usize, f64)>,
    pub sense: Sense,
    pub rhs: f64,
}

/// A minimization MILP: variables with bounds, linear constraints.
#[derive(Default)]
pub struct Model {
    pub(crate) vars: Vec<Var>,
    pub(crate) cons: Vec<Constraint>,
}

impl Model {
    /// Empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a continuous variable with bounds `[lb, ub]` (`ub` may be
    /// `f64::INFINITY`) and objective coefficient `obj`.
    pub fn add_continuous(&mut self, lb: f64, ub: f64, obj: f64) -> VarId {
        assert!(lb.is_finite(), "lower bounds must be finite");
        assert!(ub >= lb, "empty domain");
        let id = VarId(self.vars.len());
        self.vars.push(Var {
            kind: VarKind::Continuous,
            lb,
            ub,
            obj,
        });
        id
    }

    /// Add a binary variable with objective coefficient `obj`.
    pub fn add_binary(&mut self, obj: f64) -> VarId {
        let id = VarId(self.vars.len());
        self.vars.push(Var {
            kind: VarKind::Binary,
            lb: 0.0,
            ub: 1.0,
            obj,
        });
        id
    }

    /// Add the constraint `Σ coef · var  sense  rhs`.  Duplicate variable
    /// entries are accumulated.
    pub fn add_constraint(&mut self, terms: &[(VarId, f64)], sense: Sense, rhs: f64) {
        let mut compact: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
        for &(v, c) in terms {
            debug_assert!(v.0 < self.vars.len(), "unknown variable");
            if c == 0.0 {
                continue;
            }
            if let Some(slot) = compact.iter_mut().find(|(i, _)| *i == v.0) {
                slot.1 += c;
            } else {
                compact.push((v.0, c));
            }
        }
        self.cons.push(Constraint {
            terms: compact,
            sense,
            rhs,
        });
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn con_count(&self) -> usize {
        self.cons.len()
    }

    /// Indices of all binary variables.
    pub fn binaries(&self) -> Vec<usize> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == VarKind::Binary)
            .map(|(i, _)| i)
            .collect()
    }

    /// Objective value of an assignment (no feasibility check).
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.vars.iter().zip(x).map(|(v, &xi)| v.obj * xi).sum()
    }

    /// Maximum constraint violation of an assignment (0 = feasible).
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let mut worst = 0.0f64;
        for (i, v) in self.vars.iter().enumerate() {
            worst = worst.max(v.lb - x[i]).max(x[i] - v.ub);
        }
        for c in &self.cons {
            let lhs: f64 = c.terms.iter().map(|&(i, coef)| coef * x[i]).sum();
            let viol = match c.sense {
                Sense::Le => lhs - c.rhs,
                Sense::Ge => c.rhs - lhs,
                Sense::Eq => (lhs - c.rhs).abs(),
            };
            worst = worst.max(viol);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_model() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 10.0, 1.0);
        let y = m.add_binary(-2.0);
        m.add_constraint(&[(x, 1.0), (y, 3.0)], Sense::Le, 5.0);
        assert_eq!(m.var_count(), 2);
        assert_eq!(m.con_count(), 1);
        assert_eq!(m.binaries(), vec![1]);
        assert_eq!(m.objective_value(&[2.0, 1.0]), 0.0);
    }

    #[test]
    fn duplicate_terms_accumulate() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 1.0, 0.0);
        m.add_constraint(&[(x, 1.0), (x, 2.0)], Sense::Eq, 3.0);
        assert_eq!(m.cons[0].terms, vec![(0, 3.0)]);
    }

    #[test]
    fn violation_measure() {
        let mut m = Model::new();
        let x = m.add_continuous(0.0, 1.0, 0.0);
        m.add_constraint(&[(x, 1.0)], Sense::Ge, 0.5);
        assert_eq!(m.max_violation(&[0.75]), 0.0);
        assert!((m.max_violation(&[0.25]) - 0.25).abs() < 1e-12);
        assert!((m.max_violation(&[1.5]) - 0.5).abs() < 1e-12);
    }
}

//! Depth-first branch & bound over the binary variables of a [`Model`].
//!
//! Design points for the task-mapping MILPs this crate serves:
//!
//! * **most-fractional branching** with **nearest-first diving** — the
//!   first leaf is reached after at most `#binaries` LP solves and tends
//!   to be a decent incumbent,
//! * **warm incumbents** — callers pass an initial objective (the all-CPU
//!   mapping), so a time-limited solve never returns something worse,
//! * **wall-clock time limit** with best-incumbent / best-bound
//!   reporting, mirroring how the paper runs Gurobi with a 5-minute cap.

// lint:allow(no-wallclock-in-decisions): SolveOptions::time_limit is an explicit wall-clock API mirroring the paper's 5-minute Gurobi cap; MILP results under a deadline are documented non-reproducible (docs/DETERMINISM.md).
use std::time::{Duration, Instant};

use crate::model::Model;
use crate::simplex::{solve_relaxation_deadline, LpStatus};

/// Options controlling a branch & bound run.
#[derive(Clone, Copy, Debug)]
pub struct SolveOptions {
    /// Wall-clock budget.
    pub time_limit: Duration,
    /// Maximum number of explored nodes.
    pub node_limit: usize,
    /// Integrality tolerance for binaries.
    pub int_tol: f64,
    /// Relative optimality gap at which search stops.
    pub gap_tol: f64,
    /// Objective value of a known feasible solution (pruning bound); the
    /// solver only reports solutions strictly better than this.
    pub initial_objective: Option<f64>,
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self {
            time_limit: Duration::from_secs(60),
            node_limit: 1_000_000,
            int_tol: 1e-6,
            gap_tol: 1e-6,
            initial_objective: None,
        }
    }
}

/// Termination status of a MILP solve.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MilpStatus {
    /// Search space exhausted (or gap closed): incumbent is optimal among
    /// solutions better than the initial objective.
    Optimal,
    /// Time or node limit hit with an incumbent available.
    Feasible,
    /// Time or node limit hit without finding any improving solution.
    TimeLimitNoIncumbent,
    /// Proven infeasible (relative to the initial objective, if given).
    Infeasible,
}

/// Result of a MILP solve.
#[derive(Clone, Debug)]
pub struct MilpResult {
    /// Termination status.
    pub status: MilpStatus,
    /// Best incumbent objective (if any incumbent was found).
    pub objective: Option<f64>,
    /// Best incumbent variable values (if any).
    pub values: Option<Vec<f64>>,
    /// Best proven lower bound on the optimum.
    pub best_bound: f64,
    /// Number of explored branch & bound nodes.
    pub nodes: usize,
}

impl MilpResult {
    /// Relative optimality gap of the incumbent, if one exists.
    pub fn gap(&self) -> Option<f64> {
        let obj = self.objective?;
        if obj.abs() < 1e-12 {
            return Some(0.0);
        }
        Some(((obj - self.best_bound) / obj.abs()).max(0.0))
    }
}

struct Frame {
    var: usize,
    old: (f64, f64),
    /// Remaining value to try after backtracking (`None` once both
    /// children were explored).
    other: Option<f64>,
}

/// Solve `model` (minimization) by branch & bound.
pub fn solve_milp(model: &Model, opts: &SolveOptions) -> MilpResult {
    // lint:allow(no-wallclock-in-decisions): anchors the explicit SolveOptions::time_limit deadline (see module pragma).
    let start = Instant::now();
    let binaries = model.binaries();
    let mut bounds: Vec<(f64, f64)> = model.vars.iter().map(|v| (v.lb, v.ub)).collect();
    let mut incumbent_obj = opts.initial_objective.unwrap_or(f64::INFINITY);
    let had_initial = opts.initial_objective.is_some();
    let mut incumbent: Option<Vec<f64>> = None;
    let mut nodes = 0usize;
    let mut stack: Vec<Frame> = Vec::new();
    let mut root_bound = f64::NEG_INFINITY;
    // Bounds from fully explored subtrees (for best_bound reporting).
    let mut exhausted = false;
    let mut hit_limit = false;

    let deadline = start + opts.time_limit;
    'search: loop {
        if start.elapsed() > opts.time_limit || nodes >= opts.node_limit {
            hit_limit = true;
            break;
        }
        nodes += 1;
        let lp = solve_relaxation_deadline(model, &bounds, Some(deadline));
        let prune = match lp.status {
            LpStatus::Infeasible => true,
            LpStatus::Unbounded => {
                // A relaxation unbounded below cannot be pruned soundly;
                // for the bounded task-mapping models this never happens.
                debug_assert!(false, "unbounded relaxation in task-mapping MILP");
                false
            }
            LpStatus::IterLimit => {
                // The LP ran out of pivots or wall-clock: this node is
                // *unresolved*.  Claiming exhaustion now would be unsound
                // (a truncated phase 1 looks like an all-zero solution),
                // so stop the search as a time-limit instead.
                hit_limit = true;
                break;
            }
            LpStatus::Optimal => {
                if stack.is_empty() {
                    root_bound = root_bound.max(lp.objective);
                }
                lp.objective >= incumbent_obj - 1e-9
            }
        };

        if !prune {
            // Find the most fractional binary.
            let mut branch_var = usize::MAX;
            let mut best_frac = opts.int_tol;
            for &b in &binaries {
                let frac = (lp.x[b] - lp.x[b].round()).abs();
                if frac > best_frac {
                    best_frac = frac;
                    branch_var = b;
                }
            }
            if branch_var == usize::MAX {
                // Integral: candidate incumbent.
                if lp.objective < incumbent_obj - 1e-9 {
                    debug_assert!(
                        model.max_violation(&lp.x) < 1e-5,
                        "incumbent violates constraints by {}",
                        model.max_violation(&lp.x)
                    );
                    incumbent_obj = lp.objective;
                    incumbent = Some(lp.x.clone());
                }
            } else {
                // Dive towards the nearest integer first.
                let first = lp.x[branch_var].round().clamp(0.0, 1.0);
                let other = 1.0 - first;
                let old = bounds[branch_var];
                bounds[branch_var] = (first, first);
                stack.push(Frame {
                    var: branch_var,
                    old,
                    other: Some(other),
                });
                continue 'search;
            }
        }

        // Backtrack.
        loop {
            match stack.last_mut() {
                None => {
                    exhausted = true;
                    break 'search;
                }
                Some(frame) => {
                    if let Some(v) = frame.other.take() {
                        bounds[frame.var] = (v, v);
                        break;
                    }
                    bounds[frame.var] = frame.old;
                    stack.pop();
                }
            }
        }
    }

    let best_bound = if exhausted {
        incumbent_obj.min(f64::INFINITY)
    } else if root_bound.is_finite() {
        root_bound
    } else {
        f64::NEG_INFINITY
    };
    let status = match (&incumbent, exhausted) {
        (Some(_), true) => MilpStatus::Optimal,
        (Some(_), false) => MilpStatus::Feasible,
        (None, true) => {
            if had_initial {
                // The initial solution remains the best known.
                MilpStatus::Optimal
            } else {
                MilpStatus::Infeasible
            }
        }
        (None, false) => MilpStatus::TimeLimitNoIncumbent,
    };
    let _ = hit_limit;
    MilpResult {
        status,
        objective: incumbent.as_ref().map(|_| incumbent_obj),
        values: incumbent,
        best_bound,
        nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    fn opts() -> SolveOptions {
        SolveOptions {
            time_limit: Duration::from_secs(10),
            ..SolveOptions::default()
        }
    }

    #[test]
    fn knapsack_optimum() {
        // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6  → a + c (17) vs b + c (20)?
        // 3+2=5 <= 6 → a,c = 17; 4+2 = 6 → b,c = 20. Optimal: b + c = 20.
        let mut m = Model::new();
        let a = m.add_binary(-10.0);
        let b = m.add_binary(-13.0);
        let c = m.add_binary(-7.0);
        m.add_constraint(&[(a, 3.0), (b, 4.0), (c, 2.0)], Sense::Le, 6.0);
        let r = solve_milp(&m, &opts());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective.unwrap() + 20.0).abs() < 1e-6);
        let x = r.values.unwrap();
        assert!(x[0] < 0.5 && x[1] > 0.5 && x[2] > 0.5);
    }

    #[test]
    fn infeasible_ilp() {
        let mut m = Model::new();
        let a = m.add_binary(1.0);
        let b = m.add_binary(1.0);
        m.add_constraint(&[(a, 1.0), (b, 1.0)], Sense::Ge, 3.0);
        let r = solve_milp(&m, &opts());
        assert_eq!(r.status, MilpStatus::Infeasible);
        assert!(r.values.is_none());
    }

    #[test]
    fn mixed_integer_with_continuous() {
        // min y s.t. y >= 1.5 - a, y >= a - 0.2, a binary.
        // a = 0 → y = 1.5; a = 1 → y = 0.8. Optimum (a=1, y=0.8).
        let mut m = Model::new();
        let a = m.add_binary(0.0);
        let y = m.add_continuous(0.0, f64::INFINITY, 1.0);
        m.add_constraint(&[(y, 1.0), (a, 1.0)], Sense::Ge, 1.5);
        m.add_constraint(&[(y, 1.0), (a, -1.0)], Sense::Ge, -0.2);
        let r = solve_milp(&m, &opts());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective.unwrap() - 0.8).abs() < 1e-6);
    }

    #[test]
    fn initial_objective_prunes_and_reports_optimal() {
        // Optimum is 0.8 (above test); with initial objective 0.5 nothing
        // better exists → Optimal with no incumbent values.
        let mut m = Model::new();
        let a = m.add_binary(0.0);
        let y = m.add_continuous(0.0, f64::INFINITY, 1.0);
        m.add_constraint(&[(y, 1.0), (a, 1.0)], Sense::Ge, 1.5);
        m.add_constraint(&[(y, 1.0), (a, -1.0)], Sense::Ge, -0.2);
        let r = solve_milp(
            &m,
            &SolveOptions {
                initial_objective: Some(0.5),
                ..opts()
            },
        );
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!(r.values.is_none());
        // With a worse initial objective the true optimum is found.
        let r = solve_milp(
            &m,
            &SolveOptions {
                initial_objective: Some(10.0),
                ..opts()
            },
        );
        assert!((r.objective.unwrap() - 0.8).abs() < 1e-6);
    }

    #[test]
    fn matches_brute_force_on_random_ilps() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..25 {
            let nb = 8;
            let mut m = Model::new();
            let vars: Vec<_> = (0..nb)
                .map(|_| m.add_binary(rng.gen_range(-10.0..10.0_f64).round()))
                .collect();
            // Two random ≤ rows and one ≥ row.
            let mut weights = vec![];
            for _ in 0..3 {
                let w: Vec<f64> = (0..nb)
                    .map(|_| rng.gen_range(0.0..5.0_f64).round())
                    .collect();
                weights.push(w);
            }
            let terms = |w: &[f64]| -> Vec<(crate::model::VarId, f64)> {
                vars.iter().copied().zip(w.iter().copied()).collect()
            };
            m.add_constraint(&terms(&weights[0]), Sense::Le, 8.0);
            m.add_constraint(&terms(&weights[1]), Sense::Le, 10.0);
            m.add_constraint(&terms(&weights[2]), Sense::Ge, 2.0);

            // Brute force.
            let mut best = f64::INFINITY;
            for mask in 0u32..(1 << nb) {
                let x: Vec<f64> = (0..nb)
                    .map(|i| if mask >> i & 1 == 1 { 1.0 } else { 0.0 })
                    .collect();
                if m.max_violation(&x) < 1e-9 {
                    best = best.min(m.objective_value(&x));
                }
            }
            let r = solve_milp(&m, &opts());
            if best.is_infinite() {
                assert_eq!(r.status, MilpStatus::Infeasible, "trial {trial}");
            } else {
                assert_eq!(r.status, MilpStatus::Optimal, "trial {trial}");
                assert!(
                    (r.objective.unwrap() - best).abs() < 1e-6,
                    "trial {trial}: milp {} vs brute {best}",
                    r.objective.unwrap()
                );
            }
        }
    }

    #[test]
    fn node_limit_is_respected() {
        // Knapsack with non-uniform weights: the LP relaxation is
        // fractional, so the search cannot finish in very few nodes.
        let mut m = Model::new();
        let vars: Vec<_> = (0..30)
            .map(|i| m.add_binary(-((i as f64 + 1.0) * 1.37 + (i % 3) as f64)))
            .collect();
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, 2.0 + ((i * 7) % 5) as f64))
            .collect();
        m.add_constraint(&terms, Sense::Le, 31.0);
        let r = solve_milp(
            &m,
            &SolveOptions {
                node_limit: 3,
                ..opts()
            },
        );
        assert!(r.nodes <= 3, "explored {} nodes", r.nodes);
        assert_ne!(r.status, MilpStatus::Infeasible);
    }

    #[test]
    fn gap_is_zero_at_optimality() {
        let mut m = Model::new();
        let a = m.add_binary(-1.0);
        m.add_constraint(&[(a, 1.0)], Sense::Le, 1.0);
        let r = solve_milp(&m, &opts());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!(r.gap().unwrap() <= 1e-9);
    }
}

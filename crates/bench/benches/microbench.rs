//! Criterion micro-benchmarks backing the paper's cost claims:
//!
//! * the model evaluation is linear time (§III-A: "full-scale model-based
//!   evaluation, which can be computed in linear time"),
//! * the decomposition forest is linear time (§III-C),
//! * HEFT/PEFT run in microseconds (§IV-B: "below 10 µs"),
//! * the decomposition mappers and one GA generation, end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use spmap_baselines::{heft, peft};
use spmap_core::{
    decomposition_map, decomposition_map_reference, CostModel, EngineConfig, EvalOrder,
    MapperConfig,
};
use spmap_decomp::{decompose_forest, CutPolicy};
use spmap_ga::{nsga2_map, GaConfig};
use spmap_graph::gen::{layered_random, random_sp_graph, LayeredConfig, SpGenConfig};
use spmap_graph::{augment, ops, AugmentConfig, TaskGraph};
use spmap_model::{Evaluator, Mapping, Platform};

fn graph_of(n: usize) -> TaskGraph {
    let mut g = random_sp_graph(&SpGenConfig::new(n, 42));
    augment(&mut g, &AugmentConfig::default(), 42);
    g
}

fn bench_evaluator(c: &mut Criterion) {
    let platform = Platform::reference();
    let mut group = c.benchmark_group("evaluator_makespan");
    group.sample_size(30);
    for n in [50usize, 200, 800] {
        let g = graph_of(n);
        let mut ev = Evaluator::new(&g, &platform);
        let mapping = Mapping::all_default(&g, &platform);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| ev.makespan_bfs(&mapping).unwrap())
        });
    }
    group.finish();
}

fn bench_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("decomposition_forest");
    group.sample_size(20);
    for n in [50usize, 200, 800] {
        let g = graph_of(n);
        let norm = ops::normalize_terminals(&g);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| decompose_forest(&norm.graph, norm.source, norm.sink, CutPolicy::default()))
        });
    }
    group.finish();
}

fn bench_list_schedulers(c: &mut Criterion) {
    let platform = Platform::reference();
    let g = graph_of(100);
    let mut group = c.benchmark_group("list_schedulers_100_tasks");
    group.sample_size(30);
    group.bench_function("heft", |b| b.iter(|| heft(&g, &platform)));
    group.bench_function("peft", |b| b.iter(|| peft(&g, &platform)));
    group.finish();
}

fn bench_mappers(c: &mut Criterion) {
    let platform = Platform::reference();
    let g = graph_of(30);
    let mut group = c.benchmark_group("decomposition_mapper_30_tasks");
    group.sample_size(10);
    for (name, cfg) in [
        ("single_node", MapperConfig::single_node()),
        ("series_parallel", MapperConfig::series_parallel()),
        ("sn_first_fit", MapperConfig::sn_first_fit()),
        ("sp_first_fit", MapperConfig::sp_first_fit()),
    ] {
        group.bench_function(name, |b| b.iter(|| decomposition_map(&g, &platform, &cfg)));
    }
    group.finish();
}

fn bench_ga(c: &mut Criterion) {
    let platform = Platform::reference();
    let g = graph_of(30);
    let mut group = c.benchmark_group("nsga2_30_tasks");
    group.sample_size(10);
    group.bench_function("10_generations", |b| {
        b.iter(|| {
            nsga2_map(
                &g,
                &platform,
                &GaConfig {
                    population: 30,
                    generations: 10,
                    seed: 1,
                    ..GaConfig::default()
                },
            )
        })
    });
    group.finish();
}

/// The headline comparison: a full `SeriesParallel`-strategy mapper run
/// through the serial seed path (`serial`: one full simulation per
/// candidate per iteration) versus the incremental + parallel candidate
/// engine (`batch`: windowed re-simulation, exact pruning, memoization,
/// worker threads) — both produce bit-identical mappings.
fn bench_candidate_scan(c: &mut Criterion) {
    let platform = Platform::reference();
    let mut group = c.benchmark_group("candidate_scan");
    group.sample_size(10);
    for n in [30usize, 60, 120] {
        let g = graph_of(n);
        let serial_cfg = MapperConfig::series_parallel();
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, _| {
            b.iter(|| decomposition_map_reference(&g, &platform, &serial_cfg))
        });
        let batch_cfg = MapperConfig {
            engine: EngineConfig::default(),
            ..MapperConfig::series_parallel()
        };
        group.bench_with_input(BenchmarkId::new("batch", n), &n, |b, _| {
            b.iter(|| decomposition_map(&g, &platform, &batch_cfg))
        });
        // The multi-schedule reporting metric (§IV-A): each candidate is
        // a sweep of k+1 simulations — serial reference vs the engine's
        // per-schedule windowed sweep with running cutoffs.
        let report_cfg = MapperConfig {
            cost: CostModel::Report {
                schedules: 4,
                seed: 42,
            },
            ..MapperConfig::series_parallel()
        };
        group.bench_with_input(BenchmarkId::new("report_serial", n), &n, |b, _| {
            b.iter(|| decomposition_map_reference(&g, &platform, &report_cfg))
        });
        group.bench_with_input(BenchmarkId::new("report_batch", n), &n, |b, _| {
            b.iter(|| decomposition_map(&g, &platform, &report_cfg))
        });
    }
    // The GA population engine's evaluation orders head to head at the
    // perf_report sweep shapes: the flat PR 3 nearest-base policy
    // against the prefix-sharing trie walk (rolling checkpoint trails
    // over the genome trie's DFS order).  Both produce bit-identical
    // per-seed GA runs; only the replayed schedule suffix per offspring
    // differs.
    for n in [256usize, 506] {
        let width = (n as f64).sqrt().round() as usize;
        let mut g = layered_random(&LayeredConfig {
            layers: n.div_ceil(width),
            width,
            density: 0.25,
            seed: 2025,
            edge_bytes: 50e6,
        });
        augment(&mut g, &AugmentConfig::default(), 2025);
        let ga = |order: EvalOrder| GaConfig {
            population: 100,
            generations: 40,
            seed: 2025,
            threads: Some(1),
            eval_order: order,
            ..GaConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("ga_flat", n), &n, |b, _| {
            b.iter(|| nsga2_map(&g, &platform, &ga(EvalOrder::NearestBase)))
        });
        group.bench_with_input(BenchmarkId::new("ga_trie", n), &n, |b, _| {
            b.iter(|| nsga2_map(&g, &platform, &ga(EvalOrder::PrefixTrie)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_evaluator,
    bench_decomposition,
    bench_list_schedulers,
    bench_mappers,
    bench_ga,
    bench_candidate_scan
);
criterion_main!(benches);

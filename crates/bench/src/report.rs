//! Aligned table printing and CSV output for the experiment binaries.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

/// Directory for CSV outputs (`SPMAP_RESULTS` env var or `./results`).
pub fn results_dir() -> PathBuf {
    // lint:allow(no-env-outside-config): CSV output-directory plumbing — never read on a decision path.
    let dir = std::env::var("SPMAP_RESULTS").unwrap_or_else(|_| "results".to_string());
    let path = PathBuf::from(dir);
    fs::create_dir_all(&path).expect("create results directory");
    path
}

/// A simple string table with aligned console rendering.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Write as CSV into the results directory; returns the path.
    pub fn write_csv(&self, name: &str) -> PathBuf {
        let path = results_dir().join(name);
        let mut s = String::new();
        s.push_str(&self.headers.join(","));
        s.push('\n');
        for row in &self.rows {
            s.push_str(&row.join(","));
            s.push('\n');
        }
        fs::write(&path, s).expect("write CSV");
        path
    }
}

/// Format a fraction as a percent string (paper style, e.g. `17.3%`).
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Format a duration compactly (µs/ms/s).
pub fn dur(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.0}us")
    } else if us < 1e6 {
        format!("{:.1}ms", us / 1e3)
    } else {
        format!("{:.2}s", us / 1e6)
    }
}

/// Mean of an iterator of f64 (0 for empty input).
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for v in values {
        sum += v;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["n", "HEFT", "SPFirstFit"]);
        t.row(vec!["5".into(), "1.0%".into(), "2.0%".into()]);
        t.row(vec!["100".into(), "10.5%".into(), "20.25%".into()]);
        let r = t.render();
        assert!(r.contains("HEFT"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1234), "12.3%");
        assert_eq!(dur(Duration::from_micros(42)), "42us");
        assert_eq!(dur(Duration::from_millis(5)), "5.0ms");
        assert_eq!(dur(Duration::from_secs(2)), "2.00s");
        assert_eq!(mean([1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean([]), 0.0);
    }

    #[test]
    fn csv_written() {
        std::env::set_var(
            "SPMAP_RESULTS",
            std::env::temp_dir().join("spmap-test-results"),
        );
        let mut t = Table::new(&["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        let path = t.write_csv("unit-test.csv");
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "x,y\n1,2\n");
    }
}

//! Shared sweep driver: run every (point, replicate, algorithm) cell in
//! parallel, aggregate means, and emit paper-style tables + CSV.

use std::time::Duration;

use spmap_graph::TaskGraph;
use spmap_model::Platform;

use crate::report::{dur, mean, pct, Table};
use crate::{run_algo, Algo};

/// One sweep point: an x-axis label and its replicate graphs.
pub struct Point {
    /// x-axis label (e.g. the task count).
    pub label: String,
    /// Replicate graphs for this point.
    pub graphs: Vec<TaskGraph>,
    /// Base seed for this point's cells.
    pub seed: u64,
}

/// Aggregated sweep results: `improvement[point][algo]` and
/// `exec_seconds[point][algo]` (`None` where skipped).
pub struct SweepResult {
    /// Mean relative improvement per cell group.
    pub improvement: Vec<Vec<Option<f64>>>,
    /// Mean execution seconds per cell group.
    pub exec_seconds: Vec<Vec<Option<f64>>>,
    /// Sum of execution seconds per cell group (Table I style).
    pub exec_sum_seconds: Vec<Vec<Option<f64>>>,
}

/// Run the sweep.  `skip(point_idx, algo_idx)` excludes cells (e.g.
/// ZhouLiu beyond its size cap).
pub fn run_sweep(
    points: &[Point],
    algos: &[Algo],
    platform: &Platform,
    skip: impl Fn(usize, usize) -> bool,
) -> SweepResult {
    let mut cells: Vec<(usize, usize, usize)> = Vec::new();
    for (pi, point) in points.iter().enumerate() {
        for r in 0..point.graphs.len() {
            for ai in 0..algos.len() {
                if !skip(pi, ai) {
                    cells.push((pi, r, ai));
                }
            }
        }
    }
    eprintln!(
        "sweep: {} points x {} algos, {} cells on {} threads",
        points.len(),
        algos.len(),
        cells.len(),
        spmap_par::num_threads()
    );
    let outcomes = spmap_par::par_map(&cells, |_, &(pi, r, ai)| {
        run_algo(
            &algos[ai],
            &points[pi].graphs[r],
            platform,
            points[pi].seed.wrapping_add(r as u64),
        )
    });

    let mut improvement = vec![vec![None; algos.len()]; points.len()];
    let mut exec_seconds = vec![vec![None; algos.len()]; points.len()];
    let mut exec_sum_seconds = vec![vec![None; algos.len()]; points.len()];
    for (pi, _) in points.iter().enumerate() {
        for ai in 0..algos.len() {
            let group: Vec<_> = cells
                .iter()
                .zip(&outcomes)
                .filter(|((p, _, a), _)| *p == pi && *a == ai)
                .map(|(_, o)| o)
                .collect();
            if group.is_empty() {
                continue;
            }
            improvement[pi][ai] = Some(mean(group.iter().map(|o| o.improvement)));
            exec_seconds[pi][ai] = Some(mean(group.iter().map(|o| o.exec_time.as_secs_f64())));
            exec_sum_seconds[pi][ai] = Some(group.iter().map(|o| o.exec_time.as_secs_f64()).sum());
        }
    }
    SweepResult {
        improvement,
        exec_seconds,
        exec_sum_seconds,
    }
}

/// Print the two paper-style tables (improvement %, execution time) and
/// write `<prefix>_improvement.csv` / `<prefix>_exec_time.csv`.
pub fn report(
    prefix: &str,
    x_name: &str,
    points: &[Point],
    algos: &[Algo],
    result: &SweepResult,
    titles: (&str, &str),
) {
    let mut headers = vec![x_name.to_string()];
    headers.extend(algos.iter().map(|a| a.name().to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut imp = Table::new(&headers_ref);
    let mut time = Table::new(&headers_ref);
    let mut imp_csv = Table::new(&headers_ref);
    let mut time_csv = Table::new(&headers_ref);
    for (pi, point) in points.iter().enumerate() {
        let mut rows = [
            vec![point.label.clone()],
            vec![point.label.clone()],
            vec![point.label.clone()],
            vec![point.label.clone()],
        ];
        for ai in 0..algos.len() {
            match result.improvement[pi][ai] {
                Some(v) => {
                    rows[0].push(pct(v));
                    rows[2].push(format!("{v:.6}"));
                }
                None => {
                    rows[0].push("-".into());
                    rows[2].push(String::new());
                }
            }
            match result.exec_seconds[pi][ai] {
                Some(v) => {
                    rows[1].push(dur(Duration::from_secs_f64(v)));
                    rows[3].push(format!("{v:.6}"));
                }
                None => {
                    rows[1].push("-".into());
                    rows[3].push(String::new());
                }
            }
        }
        let [a, b, c, d] = rows;
        imp.row(a);
        time.row(b);
        imp_csv.row(c);
        time_csv.row(d);
    }
    println!("\n{} — average positive relative improvement", titles.0);
    imp.print();
    println!("\n{} — average execution time", titles.1);
    time.print();
    let p1 = imp_csv.write_csv(&format!("{prefix}_improvement.csv"));
    let p2 = time_csv.write_csv(&format!("{prefix}_exec_time.csv"));
    println!("\nCSV: {} , {}", p1.display(), p2.display());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::sp_workload;

    #[test]
    fn tiny_sweep_runs() {
        let points = vec![
            Point {
                label: "5".into(),
                graphs: sp_workload(99, 5, 2),
                seed: 1,
            },
            Point {
                label: "8".into(),
                graphs: sp_workload(99, 8, 2),
                seed: 2,
            },
        ];
        let algos = [Algo::Heft, Algo::SnFirstFit];
        let r = run_sweep(&points, &algos, &Platform::reference(), |_, _| false);
        assert_eq!(r.improvement.len(), 2);
        for pi in 0..2 {
            for ai in 0..2 {
                let v = r.improvement[pi][ai].unwrap();
                assert!((0.0..1.0).contains(&v));
                assert!(r.exec_seconds[pi][ai].unwrap() >= 0.0);
            }
        }
    }

    #[test]
    fn skip_leaves_none() {
        let points = vec![Point {
            label: "5".into(),
            graphs: sp_workload(98, 5, 1),
            seed: 1,
        }];
        let algos = [Algo::Heft, Algo::Peft];
        let r = run_sweep(&points, &algos, &Platform::reference(), |_, ai| ai == 1);
        assert!(r.improvement[0][0].is_some());
        assert!(r.improvement[0][1].is_none());
    }
}

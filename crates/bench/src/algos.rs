//! Uniform wrappers over every mapping algorithm in the workspace.

use std::time::{Duration, Instant};

use spmap_baselines::{heft, peft};
use spmap_core::{decomposition_map, MapperConfig};
use spmap_ga::{nsga2_map, GaConfig};
use spmap_graph::TaskGraph;
use spmap_milp::{solve_wgdp_device, solve_wgdp_time, solve_zhou_liu, SolveOptions};
use spmap_model::{relative_improvement, Evaluator, Mapping, Platform};

/// Number of random schedules in the paper's reporting metric (§IV-A).
pub const REPORT_SCHEDULES: usize = 100;

/// Every algorithm of the paper's evaluation, with its knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Algo {
    /// Heterogeneous Earliest Finish Time (paper ref. 6).
    Heft,
    /// Predict Earliest Finish Time (paper ref. 8).
    Peft,
    /// Single-node decomposition, exhaustive search (§III-B).
    SingleNode,
    /// Series-parallel decomposition, exhaustive search (§III-C).
    SeriesParallel,
    /// Single-node decomposition with FirstFit (§III-D).
    SnFirstFit,
    /// Series-parallel decomposition with FirstFit (§III-D).
    SpFirstFit,
    /// Single-objective NSGA-II (paper ref. 14).
    Nsga2 {
        /// Generation budget (paper default 500).
        generations: usize,
    },
    /// Device-based MILP (paper ref. 5).
    WgdpDevice {
        /// Wall-clock budget in milliseconds.
        time_limit_ms: u64,
    },
    /// Time-based MILP with streaming awareness (paper ref. 5).
    WgdpTime {
        /// Wall-clock budget in milliseconds.
        time_limit_ms: u64,
    },
    /// Slot-based MILP (paper ref. 2).
    ZhouLiu {
        /// Wall-clock budget in milliseconds.
        time_limit_ms: u64,
    },
}

impl Algo {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Heft => "HEFT",
            Algo::Peft => "PEFT",
            Algo::SingleNode => "SingleNode",
            Algo::SeriesParallel => "SeriesParallel",
            Algo::SnFirstFit => "SNFirstFit",
            Algo::SpFirstFit => "SPFirstFit",
            Algo::Nsga2 { .. } => "NSGAII",
            Algo::WgdpDevice { .. } => "WGDP_Device",
            Algo::WgdpTime { .. } => "WGDP_Time",
            Algo::ZhouLiu { .. } => "ZhouLiu",
        }
    }
}

/// Outcome of one (algorithm, graph) cell.
#[derive(Clone, Copy, Debug)]
pub struct RunOutcome {
    /// Relative improvement over the pure CPU mapping (truncated at 0),
    /// measured with the paper's min-over-schedules metric.
    pub improvement: f64,
    /// Reported makespan of the produced mapping.
    pub makespan: f64,
    /// Reported makespan of the all-CPU mapping.
    pub cpu_only: f64,
    /// Wall-clock execution time of the mapping algorithm itself.
    pub exec_time: Duration,
    /// How the cell's parallel batches were dispatched (serial fast
    /// path / scoped spawns / persistent-pool wakes).  Zero for
    /// algorithms that never dispatch a batch (HEFT/PEFT/MILP); when
    /// the cell itself runs inside a harness worker, nested engine
    /// batches are demoted to the serial path and show up in
    /// `serial_batches`/`nested_serial`.
    pub dispatch: spmap_par::DispatchStats,
}

/// Run `algo` on `graph`/`platform`, timing the algorithm and evaluating
/// the produced mapping with the paper's reporting metric.
pub fn run_algo(algo: &Algo, graph: &TaskGraph, platform: &Platform, seed: u64) -> RunOutcome {
    let dispatch_base = spmap_par::dispatch_stats();
    let start = Instant::now();
    let mapping: Mapping = match algo {
        Algo::Heft => heft(graph, platform).mapping,
        Algo::Peft => peft(graph, platform).mapping,
        Algo::SingleNode => {
            decomposition_map(graph, platform, &MapperConfig::single_node()).mapping
        }
        Algo::SeriesParallel => {
            decomposition_map(graph, platform, &MapperConfig::series_parallel()).mapping
        }
        Algo::SnFirstFit => {
            decomposition_map(graph, platform, &MapperConfig::sn_first_fit()).mapping
        }
        Algo::SpFirstFit => {
            decomposition_map(graph, platform, &MapperConfig::sp_first_fit()).mapping
        }
        Algo::Nsga2 { generations } => {
            nsga2_map(
                graph,
                platform,
                &GaConfig::with_generations(*generations, seed),
            )
            .mapping
        }
        Algo::WgdpDevice { time_limit_ms } => {
            solve_wgdp_device(graph, platform, &milp_opts(*time_limit_ms)).mapping
        }
        Algo::WgdpTime { time_limit_ms } => {
            solve_wgdp_time(graph, platform, &milp_opts(*time_limit_ms)).mapping
        }
        Algo::ZhouLiu { time_limit_ms } => {
            solve_zhou_liu(graph, platform, &milp_opts(*time_limit_ms)).mapping
        }
    };
    let exec_time = start.elapsed();
    let dispatch = spmap_par::dispatch_stats().since(&dispatch_base);

    let mut ev = Evaluator::new(graph, platform);
    let cpu_only = ev
        .report_makespan(
            &Mapping::all_default(graph, platform),
            REPORT_SCHEDULES,
            seed,
        )
        .expect("default mapping feasible");
    let makespan = ev
        .report_makespan(&mapping, REPORT_SCHEDULES, seed)
        .unwrap_or(cpu_only);
    RunOutcome {
        improvement: relative_improvement(cpu_only, makespan.min(cpu_only)),
        makespan: makespan.min(cpu_only),
        cpu_only,
        exec_time,
        dispatch,
    }
}

fn milp_opts(time_limit_ms: u64) -> SolveOptions {
    SolveOptions {
        time_limit: Duration::from_millis(time_limit_ms),
        ..SolveOptions::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmap_graph::gen::{random_sp_graph, SpGenConfig};
    use spmap_graph::{augment, AugmentConfig};

    #[test]
    fn all_algos_run_on_a_small_graph() {
        let mut g = random_sp_graph(&SpGenConfig::new(10, 1));
        augment(&mut g, &AugmentConfig::default(), 1);
        let p = Platform::reference();
        for algo in [
            Algo::Heft,
            Algo::Peft,
            Algo::SingleNode,
            Algo::SeriesParallel,
            Algo::SnFirstFit,
            Algo::SpFirstFit,
            Algo::Nsga2 { generations: 10 },
            Algo::WgdpDevice {
                time_limit_ms: 2000,
            },
            Algo::WgdpTime {
                time_limit_ms: 2000,
            },
            Algo::ZhouLiu {
                time_limit_ms: 2000,
            },
        ] {
            let out = run_algo(&algo, &g, &p, 7);
            assert!(
                out.improvement >= 0.0 && out.improvement < 1.0,
                "{}: improvement {}",
                algo.name(),
                out.improvement
            );
            assert!(
                out.makespan <= out.cpu_only * (1.0 + 1e-9),
                "{}",
                algo.name()
            );
            match algo {
                // The list schedulers and MILP solvers never dispatch a
                // parallel-map batch.
                Algo::Heft
                | Algo::Peft
                | Algo::WgdpDevice { .. }
                | Algo::WgdpTime { .. }
                | Algo::ZhouLiu { .. } => {
                    assert_eq!(out.dispatch, Default::default(), "{}", algo.name());
                }
                // The engine-backed cells dispatch at least one batch
                // (the first exhaustive sweep / first generation).
                _ => assert!(
                    out.dispatch.serial_batches + out.dispatch.parallel_batches() > 0,
                    "{}: no dispatches recorded ({:?})",
                    algo.name(),
                    out.dispatch
                ),
            }
        }
    }

    #[test]
    fn sweep_driver_reports_the_model_evaluated_makespan() {
        // The list schedulers carry an *internal* EFT makespan estimate
        // (sequential devices, no streaming, no link occupancy).  The
        // sweep driver must never surface it: every reported makespan is
        // the model evaluator's reporting metric of the produced
        // mapping.  Pin both the equality with the re-evaluated metric
        // and the inequality with the internal estimate.
        let mut g = random_sp_graph(&SpGenConfig::new(24, 9));
        augment(&mut g, &AugmentConfig::default(), 9);
        let p = Platform::reference();
        let seed = 13u64;
        for (algo, internal) in [
            (Algo::Heft, spmap_baselines::heft(&g, &p).internal_makespan),
            (Algo::Peft, spmap_baselines::peft(&g, &p).internal_makespan),
        ] {
            let out = run_algo(&algo, &g, &p, seed);
            let mut ev = Evaluator::new(&g, &p);
            let mapping = match algo {
                Algo::Heft => spmap_baselines::heft(&g, &p).mapping,
                _ => spmap_baselines::peft(&g, &p).mapping,
            };
            let cpu_only = ev
                .report_makespan(&Mapping::all_default(&g, &p), REPORT_SCHEDULES, seed)
                .unwrap();
            let model = ev
                .report_makespan(&mapping, REPORT_SCHEDULES, seed)
                .unwrap()
                .min(cpu_only);
            assert_eq!(
                out.makespan,
                model,
                "{}: reported makespan must be the model-evaluated metric",
                algo.name()
            );
            assert_ne!(
                out.makespan,
                internal,
                "{}: the internal EFT estimate leaked into the report",
                algo.name()
            );
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Algo::SpFirstFit.name(), "SPFirstFit");
        assert_eq!(Algo::Nsga2 { generations: 1 }.name(), "NSGAII");
        assert_eq!(Algo::WgdpTime { time_limit_ms: 1 }.name(), "WGDP_Time");
    }
}

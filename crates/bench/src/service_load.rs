//! Concurrent-client load generation against the long-lived
//! [`MapService`] — the measurement half of `perf_report --service`.
//!
//! The harness builds a small zoo of distinct request graphs, spawns
//! `clients` threads that each drive a closed loop of mapping requests
//! round-robin over the zoo, and reports sustained throughput,
//! latency percentiles, artifact-cache hit rate and the shard
//! utilization histogram aggregated from every client's thread-local
//! [`DispatchStats`].  Timing lives here, *not* in the service (the
//! service reads no clocks; see `spmap_core::service`).
//!
//! Bit-identity is asserted, not assumed: every response is compared
//! against the direct [`decomposition_map`] result for its graph, so
//! concurrency, cache temperature and shard spread can only change
//! *when* a mapping is computed, never *what*.

use std::sync::Arc;
use std::time::Instant;

use spmap_core::{
    decomposition_map, EngineConfig, MapRequest, MapResponse, MapService, MapperConfig,
    MapperResult, ServiceConfig, ServiceError, ServiceStats,
};
use spmap_graph::gen::{random_sp_graph, SpGenConfig};
use spmap_graph::{augment, AugmentConfig};
use spmap_model::{ArtifactCacheStats, Platform};
use spmap_par::{dispatch_stats, DispatchStats, MAX_SHARDS};

/// One load phase: `clients` threads, each submitting
/// `requests_per_client` requests.
#[derive(Clone, Copy, Debug)]
pub struct ServiceLoadConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client submits (closed loop: next request starts
    /// when the previous response lands).
    pub requests_per_client: usize,
    /// Distinct request graphs in the zoo (cache working set).
    pub distinct_graphs: usize,
    /// Tasks per request graph.
    pub nodes: usize,
    /// Base seed of the graph zoo.
    pub seed: u64,
    /// Engine threads per request (the per-request parallelism the
    /// sharded pool serves).
    pub engine_threads: usize,
    /// Retry policy for overload rejections.  `None` requires the
    /// service to be sized so no request is ever rejected (every
    /// rejection panics the client); `Some` lets clients outnumber
    /// the admission gate and back off on [`ServiceError::Overloaded`].
    pub retry: Option<RetryPolicy>,
}

/// Bounded-retry policy for overload rejections.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Give up on a request after this many retries.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_retries: 64 }
    }
}

/// Submit `req`, retrying a bounded number of times on
/// [`ServiceError::Overloaded`].  Returns the final outcome and the
/// retries spent on it.
///
/// Backoff is completion-denominated, not clock-denominated: the
/// rejection's `retry_hint` says how many requests must drain before
/// admission can succeed, so the client yields until the service's
/// drained counter (`completed + failed`) advances by that much.  A
/// bounded yield budget keeps the wait live even if no other client is
/// draining the service.  No clocks are read on the decision path.
pub fn map_with_retry(
    service: &MapService,
    req: &MapRequest,
    policy: RetryPolicy,
) -> (Result<MapResponse, ServiceError>, u64) {
    /// Liveness cap: stop waiting on the drained counter after this
    /// many yields and just retry.
    const MAX_YIELDS: u64 = 10_000;
    fn drained(stats: &ServiceStats) -> u64 {
        stats.completed + stats.failed
    }
    let mut retries = 0u64;
    loop {
        match service.map(req) {
            Err(ServiceError::Overloaded { retry_hint, .. })
                if retries < u64::from(policy.max_retries) =>
            {
                retries += 1;
                let target = drained(&service.stats()) + retry_hint.max(1);
                let mut yields = 0u64;
                while drained(&service.stats()) < target && yields < MAX_YIELDS {
                    std::thread::yield_now();
                    yields += 1;
                }
            }
            outcome => return (outcome, retries),
        }
    }
}

/// Aggregated outcome of one load phase.
#[derive(Clone, Debug)]
pub struct ServiceLoadReport {
    /// Client threads of the phase.
    pub clients: usize,
    /// Requests completed (all of them — admission is sized to admit).
    pub completed: u64,
    /// Wall-clock of the phase (first submission to last response).
    pub seconds: f64,
    /// Sustained mappings per second.
    pub throughput: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Artifact-cache counters *of this phase* (warm-up excluded).
    pub cache: ArtifactCacheStats,
    /// Pool batches per shard, summed over all clients.
    pub shard_batches: Vec<u64>,
    /// Cross-shard work steals, summed over all clients.
    pub steals: u64,
    /// Submission-lock waits, summed over all clients.
    pub submission_waits: u64,
    /// Overload retries spent, summed over all clients (0 when the
    /// phase ran without a [`RetryPolicy`]).
    pub retries: u64,
}

impl ServiceLoadReport {
    /// Cache hits / lookups of the phase.
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache.hits + self.cache.misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache.hits as f64 / lookups as f64
        }
    }

    /// Shards that executed at least one batch during the phase.
    pub fn shards_used(&self) -> usize {
        self.shard_batches.iter().filter(|&&b| b > 0).count()
    }
}

/// The request zoo of a load run: `distinct_graphs` augmented
/// series-parallel graphs of `nodes` tasks under the reference
/// platform, all mapped with `sp_first_fit` on `engine_threads`
/// threads.
pub fn build_requests(cfg: &ServiceLoadConfig) -> Vec<MapRequest> {
    let platform = Arc::new(Platform::reference());
    (0..cfg.distinct_graphs)
        .map(|i| {
            let seed = cfg.seed.wrapping_add(i as u64);
            let mut g = random_sp_graph(&SpGenConfig::new(cfg.nodes, seed));
            augment(&mut g, &AugmentConfig::default(), seed);
            MapRequest::from_mapper_config(
                Arc::new(g),
                Arc::clone(&platform),
                &MapperConfig {
                    engine: EngineConfig {
                        threads: Some(cfg.engine_threads),
                        ..EngineConfig::default()
                    },
                    ..MapperConfig::sp_first_fit()
                },
            )
        })
        .collect()
}

/// The direct (service-free) reference results of a request zoo — the
/// bit-identity baseline every service response is checked against.
pub fn reference_results(requests: &[MapRequest]) -> Vec<MapperResult> {
    requests
        .iter()
        .map(|r| {
            let cfg = r.mapper_config().expect("zoo requests are decomposition");
            decomposition_map(&r.graph, &r.platform, &cfg)
        })
        .collect()
}

/// Assert a service response equals its direct reference, field by
/// field (mapping, makespan, history, decision counters).
pub fn assert_identical(label: &str, got: &MapperResult, want: &MapperResult) {
    assert_eq!(got.mapping, want.mapping, "{label}: mapping diverged");
    assert_eq!(got.makespan, want.makespan, "{label}: makespan diverged");
    assert_eq!(got.history, want.history, "{label}: history diverged");
    assert_eq!(got.batch, want.batch, "{label}: decision counters diverged");
}

/// Drive one load phase against `service`: spawn `cfg.clients` threads,
/// each submitting `cfg.requests_per_client` requests round-robin over
/// the zoo (offset by client id so concurrent clients mix graphs),
/// asserting every response against `references`.
///
/// The service's cache should be warm for a steady-state phase — run
/// [`warm_up`] first (cold-build time is reported separately by the
/// binary).
pub fn run_phase(
    service: &Arc<MapService>,
    requests: &[MapRequest],
    references: &[MapperResult],
    cfg: &ServiceLoadConfig,
) -> ServiceLoadReport {
    let cache_base = service.stats().cache;
    let start = Instant::now();
    let outcomes: Vec<(Vec<f64>, u64, DispatchStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|client| {
                let service = Arc::clone(service);
                scope.spawn(move || {
                    let base = dispatch_stats();
                    let mut latencies = Vec::with_capacity(cfg.requests_per_client);
                    let mut retries = 0u64;
                    for i in 0..cfg.requests_per_client {
                        let idx = (client + i) % requests.len();
                        let t0 = Instant::now();
                        let resp = match cfg.retry {
                            Some(policy) => {
                                let (outcome, spent) =
                                    map_with_retry(&service, &requests[idx], policy);
                                retries += spent;
                                outcome.expect("retry budget exhausted")
                            }
                            None => service
                                .map(&requests[idx])
                                .expect("load phase sized to be admitted"),
                        };
                        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                        assert_identical(
                            &format!("client {client} request {i} (graph {idx})"),
                            &resp.result,
                            &references[idx],
                        );
                    }
                    (latencies, retries, dispatch_stats().since(&base))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    let seconds = start.elapsed().as_secs_f64();

    let mut latencies: Vec<f64> = Vec::new();
    let mut shard_batches = vec![0u64; MAX_SHARDS];
    let mut steals = 0u64;
    let mut submission_waits = 0u64;
    let mut retries = 0u64;
    for (lat, r, d) in &outcomes {
        latencies.extend_from_slice(lat);
        for (agg, &b) in shard_batches.iter_mut().zip(d.pool_shard_batches.iter()) {
            *agg += b;
        }
        steals += d.pool_steals;
        submission_waits += d.pool_submission_waits;
        retries += r;
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    let completed = latencies.len() as u64;
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let i = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[i.min(latencies.len() - 1)]
    };
    let cache_now = service.stats().cache;
    let cache = ArtifactCacheStats {
        hits: cache_now.hits - cache_base.hits,
        misses: cache_now.misses - cache_base.misses,
        evictions: cache_now.evictions - cache_base.evictions,
        peak_bytes: cache_now.peak_bytes,
        peak_entries: cache_now.peak_entries,
    };
    ServiceLoadReport {
        clients: cfg.clients,
        completed,
        seconds,
        throughput: completed as f64 / seconds.max(1e-12),
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        cache,
        shard_batches,
        steals,
        submission_waits,
        retries,
    }
}

/// Submit every zoo request once, serially, so later phases run against
/// a warm artifact cache.  Returns the cold-build seconds and asserts
/// bit-identity of the cold path too.
pub fn warm_up(
    service: &Arc<MapService>,
    requests: &[MapRequest],
    references: &[MapperResult],
) -> f64 {
    let start = Instant::now();
    for (i, req) in requests.iter().enumerate() {
        let resp = service.map(req).expect("warm-up admitted");
        assert_identical(&format!("warm-up graph {i}"), &resp.result, &references[i]);
    }
    start.elapsed().as_secs_f64()
}

/// A service sized for a load run: enough run slots and queue room that
/// `clients` closed-loop clients are never rejected.
pub fn service_for_load(clients: usize) -> Arc<MapService> {
    Arc::new(MapService::new(ServiceConfig {
        max_inflight: clients.max(1),
        max_queued: clients.max(1),
        ..ServiceConfig::default()
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmap_par::pool::Pool;
    use spmap_par::{with_backend, with_pool, ParBackend};

    fn tiny() -> ServiceLoadConfig {
        ServiceLoadConfig {
            clients: 2,
            requests_per_client: 3,
            distinct_graphs: 2,
            nodes: 24,
            seed: 77,
            engine_threads: 2,
            retry: None,
        }
    }

    #[test]
    fn load_phase_completes_with_identical_results() {
        let cfg = tiny();
        let requests = build_requests(&cfg);
        let references = reference_results(&requests);
        let service = service_for_load(cfg.clients);
        let cold = warm_up(&service, &requests, &references);
        assert!(cold >= 0.0);
        let report = run_phase(&service, &requests, &references, &cfg);
        assert_eq!(report.completed, 6);
        assert!(report.throughput > 0.0);
        assert!(report.p50_ms <= report.p99_ms);
        assert_eq!(
            report.cache.misses, 0,
            "warmed cache must answer every phase request"
        );
        assert_eq!(report.cache_hit_rate(), 1.0);
        let svc = service.stats();
        assert_eq!(svc.rejected, 0, "load service must be sized to admit");
        assert!(svc.peak_inflight <= service.max_inflight());
    }

    #[test]
    fn retry_returns_immediately_when_admitted() {
        let cfg = tiny();
        let requests = build_requests(&cfg);
        let service = service_for_load(cfg.clients);
        let (outcome, retries) = map_with_retry(&service, &requests[0], RetryPolicy::default());
        assert!(outcome.is_ok());
        assert_eq!(retries, 0, "an admitted request must not be retried");
    }

    #[test]
    fn retrying_clients_survive_a_tight_admission_gate() {
        // Four closed-loop clients against a single run slot with no
        // queue: without retries this would panic on the first
        // rejection, with the policy every request eventually lands
        // and results stay bit-identical.
        let cfg = ServiceLoadConfig {
            clients: 4,
            retry: Some(RetryPolicy { max_retries: 1_000 }),
            ..tiny()
        };
        let requests = build_requests(&cfg);
        let references = reference_results(&requests);
        let service = Arc::new(spmap_core::MapService::new(spmap_core::ServiceConfig {
            max_inflight: 1,
            max_queued: 0,
            ..spmap_core::ServiceConfig::default()
        }));
        let _ = warm_up(&service, &requests, &references);
        let report = run_phase(&service, &requests, &references, &cfg);
        assert_eq!(report.completed, 12);
        let stats = service.stats();
        assert_eq!(stats.admitted, stats.completed + stats.failed);
        assert_eq!(
            stats.rejected, report.retries,
            "every overload rejection is one client retry"
        );
    }

    #[test]
    fn shard_count_does_not_change_results() {
        // The same zoo served through explicit 1-shard and 2-shard
        // pools must produce the same mappings as the direct path.
        let cfg = ServiceLoadConfig {
            clients: 1,
            requests_per_client: 2,
            ..tiny()
        };
        let requests = build_requests(&cfg);
        let references = reference_results(&requests);
        for shards in [1usize, 2] {
            let pool = Arc::new(Pool::with_shards(shards));
            with_pool(&pool, || {
                with_backend(ParBackend::Pool, || {
                    let service = service_for_load(cfg.clients);
                    let _ = warm_up(&service, &requests, &references);
                    let report = run_phase(&service, &requests, &references, &cfg);
                    assert_eq!(report.completed, 2);
                })
            });
        }
    }
}

//! Remapping-session measurement: warm-start remap latency against the
//! from-scratch fallback — the harness half of `perf_report --remap`.
//!
//! For each perturbation kind the harness opens fresh [`RemapSession`]s
//! from one shared request (sharing one artifact cache so table builds
//! are paid once), replays an optional untimed *setup* sequence to put
//! the session in the right state (e.g. a device must be lost before it
//! can be restored), then times the measured batch twice through
//! [`RemapSession::remap`] and twice through
//! [`RemapSession::remap_full`], keeping the minimum of each pair.
//! Timing lives here, not in the session (sessions read no clocks; see
//! `spmap_core::session`).
//!
//! Bit-identity is asserted, not assumed: the two replays of each path
//! must agree bit for bit (mapping, makespan, history, session key) —
//! a remap is a pure function of (incumbent, perturbations, config).

use std::sync::{Arc, Mutex};
use std::time::Instant;

use spmap_core::{MapRequest, Perturbation, RemapOutcome, RemapSession};
use spmap_model::ArtifactCache;

/// One measured scenario: a perturbation batch, optionally preceded by
/// untimed setup batches that put the session in the scenario's state.
#[derive(Clone, Debug)]
pub struct RemapCase {
    /// Short label of the perturbation kind (JSON row key).
    pub kind: &'static str,
    /// Untimed batches replayed before the measurement (may be empty).
    pub setup: Vec<Vec<Perturbation>>,
    /// The measured perturbation batch.
    pub batch: Vec<Perturbation>,
}

/// The timed outcome of one case: both paths, with their minimum-of-two
/// wall seconds and the (replay-checked) outcome bits.
#[derive(Clone, Debug)]
pub struct RemapMeasurement {
    /// The case's label.
    pub kind: &'static str,
    /// Warm-start path seconds (min of two fresh-session runs).
    pub warm_seconds: f64,
    /// From-scratch fallback seconds (min of two fresh-session runs).
    pub full_seconds: f64,
    /// The warm path's outcome.
    pub warm: RemapOutcome,
    /// The fallback's outcome.
    pub full: RemapOutcome,
}

impl RemapMeasurement {
    /// Fallback seconds over warm seconds (> 1 means warm wins).
    pub fn speedup(&self) -> f64 {
        self.full_seconds / self.warm_seconds.max(1e-12)
    }

    /// Warm makespan relative to the fallback's (1 = same quality;
    /// < 1 means the warm neighborhood actually found a better point,
    /// which happens when the fallback's all-default restart walks a
    /// different greedy path).
    pub fn quality_ratio(&self) -> f64 {
        self.warm.makespan / self.full.makespan.max(1e-12)
    }
}

/// Time one path (`full = false` → [`RemapSession::remap`], `true` →
/// [`RemapSession::remap_full`]) twice on fresh sessions, asserting the
/// two replays bit-identical, and return the faster run.
fn timed_path(
    req: &MapRequest,
    cache: &Arc<Mutex<ArtifactCache>>,
    case: &RemapCase,
    full: bool,
) -> (f64, RemapOutcome) {
    let mut best: Option<(f64, RemapOutcome)> = None;
    for run in 0..2 {
        let mut s = RemapSession::open(req, Some(Arc::clone(cache))).expect("session opens");
        for batch in &case.setup {
            s.remap(batch).expect("setup batch applies");
        }
        let t0 = Instant::now();
        let out = if full {
            s.remap_full(&case.batch)
        } else {
            s.remap(&case.batch)
        }
        .expect("measured batch applies");
        let seconds = t0.elapsed().as_secs_f64();
        best = Some(match best {
            None => (seconds, out),
            Some((bs, prev)) => {
                let tag = format!(
                    "{} ({}) run {run}",
                    case.kind,
                    if full { "full" } else { "warm" }
                );
                assert_eq!(out.mapping, prev.mapping, "{tag}: replay mapping diverged");
                assert_eq!(
                    out.makespan, prev.makespan,
                    "{tag}: replay makespan diverged"
                );
                assert_eq!(out.history, prev.history, "{tag}: replay history diverged");
                assert_eq!(
                    out.session_key, prev.session_key,
                    "{tag}: replay session key diverged"
                );
                if seconds < bs {
                    (seconds, out)
                } else {
                    (bs, prev)
                }
            }
        });
    }
    best.expect("two runs happened")
}

/// Measure one case: warm path and fallback, each min-of-two with
/// replay identity asserted (see the module docs).
pub fn measure_case(
    req: &MapRequest,
    cache: &Arc<Mutex<ArtifactCache>>,
    case: &RemapCase,
) -> RemapMeasurement {
    let (warm_seconds, warm) = timed_path(req, cache, case, false);
    let (full_seconds, full) = timed_path(req, cache, case, true);
    RemapMeasurement {
        kind: case.kind,
        warm_seconds,
        full_seconds,
        warm,
        full,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmap_core::AttachEdge;
    use spmap_graph::gen::{random_sp_graph, SpGenConfig};
    use spmap_graph::{augment, AugmentConfig, NodeId};
    use spmap_model::{DeviceId, Platform};

    fn request(nodes: usize, seed: u64) -> MapRequest {
        let mut g = random_sp_graph(&SpGenConfig::new(nodes, seed));
        augment(&mut g, &AugmentConfig::default(), seed);
        MapRequest::new(Arc::new(g), Arc::new(Platform::reference()))
    }

    #[test]
    fn measurement_replays_and_reports_both_paths() {
        let req = request(24, 5);
        let cache = Arc::new(Mutex::new(ArtifactCache::new(0)));
        let n = req.graph.node_count() as u32;
        let case = RemapCase {
            kind: "device_lost",
            setup: vec![],
            batch: vec![Perturbation::DeviceLost(DeviceId(1))],
        };
        let m = measure_case(&req, &cache, &case);
        assert!(m.warm_seconds > 0.0 && m.full_seconds > 0.0);
        assert!(m.warm.warm && !m.full.warm);
        assert!(m.warm.mapping.as_slice().iter().all(|&d| d != DeviceId(1)));
        assert!(m.speedup() > 0.0 && m.quality_ratio() > 0.0);

        // A graph-changing case with setup: restore after a loss, then
        // take an arrival.
        let case = RemapCase {
            kind: "task_arrived",
            setup: vec![
                vec![Perturbation::DeviceLost(DeviceId(1))],
                vec![Perturbation::DeviceRestored(DeviceId(1))],
            ],
            batch: vec![Perturbation::TaskArrived {
                subgraph: random_sp_graph(&SpGenConfig::new(5, 9)),
                attach: vec![AttachEdge::Into {
                    from: NodeId(n - 1),
                    to_new: 0,
                    bytes: 1e6,
                }],
            }],
        };
        let m = measure_case(&req, &cache, &case);
        assert!(m.warm.graph_rebuilt && m.full.graph_rebuilt);
        assert_eq!(m.warm.mapping.len(), req.graph.node_count() + 5);
    }
}

//! Tiny argument parsing shared by the experiment binaries.
//!
//! Supported flags (each binary documents its own defaults):
//!
//! * `--graphs <n>` — replicates per data point (paper: 30),
//! * `--step <n>` — task-count step of the sweep,
//! * `--full` — paper-scale settings (more replicates, larger limits),
//! * `--quick` — smoke-test settings (fewer replicates, smaller sweeps),
//! * `--seed <n>` — base experiment seed,
//! * `--threads <n>` — worker threads for binaries that measure
//!   parallel speedups (e.g. `perf_report`; clamped to ≥ 1),
//! * `--report-schedules <k>` — random schedules of the
//!   `report_makespan` cost model for binaries that sweep it
//!   (`perf_report`; `0` skips the report-mode measurements),
//! * `--ga-only` — skip everything but the GA measurements
//!   (`perf_report`: the CI gates on the trie evaluation order run the
//!   full-size GA rows without paying for the mapper sweeps),
//! * `--xl` — scale-tier run (`perf_report`: 10k–100k-node layered
//!   DAGs exercising the cache-conscious kernel and suffix-sparse
//!   checkpoints; combines with `--quick` for a 10k-only smoke),
//! * `--sizes <a,b,..>` — comma-separated task-count override for
//!   binaries that sweep graph sizes (`perf_report`: replaces the
//!   built-in mapper/GA size lists, including the `--full` extension),
//! * `--service` — service-mode run (`perf_report`: many-client load
//!   against the long-lived `MapService`, reporting throughput,
//!   latency percentiles, cache hit rate and shard utilization),
//! * `--remap` — remapping-session run (`perf_report`: warm-start
//!   remap latency vs a from-scratch re-map per perturbation kind,
//!   with bit-identity replay checks; combines with `--quick` for a
//!   506-node-only smoke and `--full` for the 10k tier),
//! * `--chaos` — fault-injection run (`perf_report`, requires the
//!   `fault-injection` feature: concurrent clients with seeded panics
//!   injected mid-flight, measuring goodput under a retrying client
//!   and asserting containment + bit-identity of untouched responses;
//!   combines with `--quick` for fewer rounds),
//! * `--out <path>` — output-file override for binaries that write a
//!   JSON report (`perf_report`: defaults are `BENCH_mapper.json`,
//!   `BENCH_mapper_xl.json` for `--xl`, `BENCH_service.json` for
//!   `--service`, `BENCH_remap.json` for `--remap`).

/// Parsed common options.
#[derive(Clone, Debug)]
pub struct Opts {
    /// Replicates per data point.
    pub graphs: Option<usize>,
    /// Sweep step override.
    pub step: Option<usize>,
    /// Paper-scale run.
    pub full: bool,
    /// Smoke-test run.
    pub quick: bool,
    /// Base seed.
    pub seed: u64,
    /// Worker-thread override for parallel-measurement binaries.
    pub threads: Option<usize>,
    /// Random-schedule count for `report_makespan`-mode measurements
    /// (`None` = binary default; `Some(0)` = skip report mode).
    pub report_schedules: Option<usize>,
    /// GA-only run (`perf_report`: full-size GA rows and their gates,
    /// no mapper sweeps).
    pub ga_only: bool,
    /// Scale-tier run (`perf_report`: 10k–100k-node rows).
    pub xl: bool,
    /// Service-mode run (`perf_report`: concurrent-client load against
    /// the long-lived `MapService`).
    pub service: bool,
    /// Remapping-session run (`perf_report`: warm-start remap latency
    /// vs from-scratch re-map across perturbation kinds and sizes).
    pub remap: bool,
    /// Fault-injection run (`perf_report`: seeded chaos against the
    /// `MapService`; requires building with `--features
    /// fault-injection`).
    pub chaos: bool,
    /// Output-file override for report-writing binaries.
    pub out: Option<String>,
    /// Explicit task-count list (`None` = binary default sweep).
    pub sizes: Option<Vec<usize>>,
}

impl Opts {
    /// Parse `std::env::args`, ignoring unknown flags with a warning.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut opts = Opts {
            graphs: None,
            step: None,
            full: false,
            quick: false,
            seed: 2025,
            threads: None,
            report_schedules: None,
            ga_only: false,
            xl: false,
            service: false,
            remap: false,
            chaos: false,
            out: None,
            sizes: None,
        };
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--graphs" => {
                    opts.graphs = it.next().and_then(|v| v.parse().ok());
                }
                "--step" => {
                    opts.step = it.next().and_then(|v| v.parse().ok());
                }
                "--threads" => {
                    opts.threads = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .map(|t: usize| t.max(1));
                }
                "--report-schedules" => {
                    opts.report_schedules = it.next().and_then(|v| v.parse().ok());
                }
                "--seed" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        opts.seed = v;
                    }
                }
                "--sizes" => {
                    opts.sizes = it.next().map(|v| {
                        v.split(',')
                            .filter(|s| !s.is_empty())
                            .filter_map(|s| s.trim().parse().ok())
                            .collect()
                    });
                    // An unparsable list should not silently select the
                    // default sweep — treat it as "no sizes requested".
                    if opts.sizes.as_deref() == Some(&[]) {
                        eprintln!("warning: --sizes parsed to an empty list; ignoring");
                        opts.sizes = None;
                    }
                }
                "--out" => {
                    opts.out = it.next().filter(|v| !v.is_empty());
                    if opts.out.is_none() {
                        eprintln!("warning: --out requires a path; using the default");
                    }
                }
                "--full" => opts.full = true,
                "--quick" => opts.quick = true,
                "--ga-only" => opts.ga_only = true,
                "--xl" => opts.xl = true,
                "--service" => opts.service = true,
                "--remap" => opts.remap = true,
                "--chaos" => opts.chaos = true,
                other => eprintln!("warning: ignoring unknown flag {other}"),
            }
        }
        opts
    }

    /// Replicates per point given a default and the quick/full presets.
    pub fn replicates(&self, default: usize, quick: usize, full: usize) -> usize {
        if let Some(g) = self.graphs {
            return g;
        }
        if self.quick {
            quick
        } else if self.full {
            full
        } else {
            default
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Opts {
        Opts::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]);
        assert_eq!(o.graphs, None);
        assert!(!o.full && !o.quick);
        assert_eq!(o.seed, 2025);
        assert_eq!(o.replicates(10, 3, 30), 10);
    }

    #[test]
    fn flags() {
        let o = parse(&["--graphs", "7", "--seed", "9", "--full", "--step", "10"]);
        assert_eq!(o.graphs, Some(7));
        assert_eq!(o.seed, 9);
        assert!(o.full);
        assert_eq!(o.step, Some(10));
        assert_eq!(o.replicates(10, 3, 30), 7, "--graphs wins over presets");
    }

    #[test]
    fn threads_flag_clamped_to_one() {
        assert_eq!(parse(&["--threads", "8"]).threads, Some(8));
        assert_eq!(parse(&["--threads", "0"]).threads, Some(1), "0 clamps to 1");
        assert_eq!(parse(&[]).threads, None);
    }

    #[test]
    fn presets() {
        assert_eq!(parse(&["--quick"]).replicates(10, 3, 30), 3);
        assert_eq!(parse(&["--full"]).replicates(10, 3, 30), 30);
    }

    #[test]
    fn ga_only_flag() {
        assert!(!parse(&[]).ga_only);
        assert!(parse(&["--ga-only"]).ga_only);
    }

    #[test]
    fn xl_flag() {
        assert!(!parse(&[]).xl);
        assert!(parse(&["--xl"]).xl);
        let o = parse(&["--xl", "--quick"]);
        assert!(o.xl && o.quick, "--xl combines with --quick");
    }

    #[test]
    fn service_flag() {
        assert!(!parse(&[]).service);
        let o = parse(&["--service", "--quick"]);
        assert!(o.service && o.quick, "--service combines with --quick");
    }

    #[test]
    fn remap_flag() {
        assert!(!parse(&[]).remap);
        let o = parse(&["--remap", "--quick"]);
        assert!(o.remap && o.quick, "--remap combines with --quick");
    }

    #[test]
    fn chaos_flag() {
        assert!(!parse(&[]).chaos);
        let o = parse(&["--chaos", "--quick"]);
        assert!(o.chaos && o.quick, "--chaos combines with --quick");
    }

    #[test]
    fn out_flag() {
        assert_eq!(parse(&[]).out, None);
        assert_eq!(
            parse(&["--out", "reports/run.json"]).out,
            Some("reports/run.json".to_string())
        );
        assert_eq!(parse(&["--out"]).out, None, "missing value ignored");
        assert_eq!(parse(&["--out", ""]).out, None, "empty value ignored");
    }

    #[test]
    fn sizes_flag() {
        assert_eq!(parse(&[]).sizes, None);
        assert_eq!(parse(&["--sizes", "100"]).sizes, Some(vec![100]));
        assert_eq!(
            parse(&["--sizes", "100,250, 506"]).sizes,
            Some(vec![100, 250, 506]),
            "comma list with stray spaces"
        );
        assert_eq!(parse(&["--sizes", "x,y"]).sizes, None, "garbage ignored");
        assert_eq!(parse(&["--sizes"]).sizes, None, "missing value ignored");
    }

    #[test]
    fn report_schedules_flag() {
        assert_eq!(parse(&[]).report_schedules, None);
        assert_eq!(
            parse(&["--report-schedules", "4"]).report_schedules,
            Some(4)
        );
        assert_eq!(
            parse(&["--report-schedules", "0"]).report_schedules,
            Some(0),
            "0 = skip"
        );
        assert_eq!(parse(&["--report-schedules", "x"]).report_schedules, None);
    }
}

//! Workload construction for the experiment binaries (paper §IV-B/C).

use spmap_graph::gen::{almost_sp_graph, random_sp_graph, SpGenConfig};
use spmap_graph::{augment, AugmentConfig, TaskGraph};

/// A deterministic per-cell seed derived from experiment, size and
/// replicate indices.
pub fn cell_seed(experiment: u64, size: usize, replicate: usize) -> u64 {
    experiment
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((size as u64) << 20)
        .wrapping_add(replicate as u64)
}

/// `replicates` augmented random series-parallel graphs with `tasks`
/// nodes (paper §IV-B).
pub fn sp_workload(experiment: u64, tasks: usize, replicates: usize) -> Vec<TaskGraph> {
    (0..replicates)
        .map(|r| {
            let seed = cell_seed(experiment, tasks, r);
            let mut g = random_sp_graph(&SpGenConfig::new(tasks, seed));
            augment(&mut g, &AugmentConfig::default(), seed ^ 0x5555);
            g
        })
        .collect()
}

/// `replicates` augmented almost-series-parallel graphs: `tasks` nodes
/// plus `extra_edges` random edges (paper §IV-C).
pub fn almost_sp_workload(
    experiment: u64,
    tasks: usize,
    extra_edges: usize,
    replicates: usize,
) -> Vec<TaskGraph> {
    (0..replicates)
        .map(|r| {
            let seed = cell_seed(experiment, tasks.wrapping_add(extra_edges << 10), r);
            let mut g = almost_sp_graph(&SpGenConfig::new(tasks, seed), extra_edges);
            augment(&mut g, &AugmentConfig::default(), seed ^ 0x5555);
            g
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic_and_sized() {
        let a = sp_workload(3, 30, 4);
        let b = sp_workload(3, 30, 4);
        assert_eq!(a.len(), 4);
        for (ga, gb) in a.iter().zip(&b) {
            assert_eq!(ga.node_count(), 30);
            assert_eq!(ga.edge_count(), gb.edge_count());
            assert_eq!(
                ga.task(spmap_graph::NodeId(3)).complexity,
                gb.task(spmap_graph::NodeId(3)).complexity
            );
        }
        // Different replicates differ.
        assert_ne!(
            a[0].task(spmap_graph::NodeId(1)).complexity,
            a[1].task(spmap_graph::NodeId(1)).complexity
        );
    }

    #[test]
    fn almost_sp_adds_edges() {
        let g = almost_sp_workload(4, 50, 20, 1);
        let base = sp_workload(4, 50, 1);
        // Not directly comparable seeds, but edge count must exceed the
        // SP bound |E| <= 2|V| - 3 once 20 edges are added.
        assert!(g[0].edge_count() > base[0].edge_count().min(2 * 50 - 3));
    }

    #[test]
    fn cell_seeds_unique() {
        let mut seen = std::collections::HashSet::new();
        for e in 0..3u64 {
            for s in [5usize, 10, 100] {
                for r in 0..5 {
                    assert!(seen.insert(cell_seed(e, s, r)));
                }
            }
        }
    }
}

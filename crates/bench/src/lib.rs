//! # spmap-bench — experiment harness for the paper's figures and tables
//!
//! One binary per figure/table of the paper's evaluation (§IV):
//!
//! | binary   | reproduces | content |
//! |----------|------------|---------|
//! | `fig3`   | Fig. 3     | decomposition mapping vs. three MILPs, 5–30 tasks |
//! | `fig4`   | Fig. 4     | HEFT/PEFT vs. decomposition (basic & FirstFit), 5–200 tasks |
//! | `fig5`   | Fig. 5     | NSGA-II vs. FirstFit decomposition, 5–100 tasks |
//! | `fig6`   | Fig. 6     | NSGA-II generation sweep at 200 tasks |
//! | `fig7`   | Fig. 7     | almost-SP sensitivity, 100 tasks + 0–200 extra edges |
//! | `table1` | Table I    | WfCommons-style benchmark sets |
//!
//! Every binary prints paper-style rows and writes CSV files under
//! `results/` (override with `SPMAP_RESULTS`).  Cells run in parallel via
//! `spmap-par`; per-algorithm execution times are measured inside the
//! cell, so sweep parallelism does not distort them.
//!
//! Criterion micro-benchmarks (`cargo bench`) cover the cost claims the
//! paper's algorithm design leans on: linear-time evaluation, linear-time
//! decomposition, sub-10µs HEFT/PEFT, and the mapper/GA end-to-end costs.

pub mod algos;
pub mod chaos_load;
pub mod cli;
pub mod remap_load;
pub mod report;
pub mod service_load;
pub mod sweep;
pub mod workload;

pub use algos::{run_algo, Algo, RunOutcome};

//! Seeded chaos against the live [`MapService`] — the measurement half
//! of `perf_report --chaos` and the engine of `tests/chaos.rs`.
//!
//! Each round draws one `(site, hit, kind)` plan from the deterministic
//! [`FaultSchedule`](spmap_core::FaultSchedule), arms it, and drives
//! `clients` concurrent retrying clients through the service while the
//! fault fires mid-flight.  The harness then checks the containment
//! contract end to end:
//!
//! * the faulted caller gets a **typed** error
//!   (`ServiceError::Internal` for injected panics, a mapper error for
//!   injected sweep degradation) — never a propagated panic,
//! * every untouched response is **bit-identical** to the direct
//!   mapper's reference result,
//! * the admission accounting balances at every round's quiescence
//!   (`admitted == completed + failed`; rejected requests were never
//!   admitted and are absorbed by the clients' bounded
//!   [`RetryPolicy`](crate::service_load::RetryPolicy)),
//! * a fault-free **clean pass** over the whole zoo succeeds afterwards
//!   — no fault leaks state into the service's future.
//!
//! Goodput (successful mappings per second while faults fire) is the
//! reported headline.  The schedule is a pure function of the seed, so
//! a chaos run is replayable: same seed, same plans, same asserted
//! properties (which *thread* trips a fault is scheduler-dependent —
//! see `spmap_core::faults` — but nothing asserted depends on it).
//!
//! Everything here requires building with `--features fault-injection`;
//! the no-feature [`run_chaos`] stub panics with that guidance.
//!
//! [`MapService`]: spmap_core::MapService

/// Armed hits are drawn from `1..=MAX_HIT` executions of a site.  Kept
/// small enough that every map-path site executes at least `MAX_HIT`
/// times per round (the artifact-build site runs once per request and
/// rounds submit ≥ 12), so most armed plans actually fire.
#[cfg(feature = "fault-injection")]
const MAX_HIT: u64 = 8;

/// One chaos run: `rounds` armed fault plans, each driven by `clients`
/// concurrent retrying clients.
#[derive(Clone, Copy, Debug)]
pub struct ChaosLoadConfig {
    /// Concurrent client threads per round.
    pub clients: usize,
    /// Armed fault rounds (one seeded plan each).
    pub rounds: usize,
    /// Requests each client submits per round.
    pub requests_per_client: usize,
    /// Distinct request graphs in the zoo.
    pub distinct_graphs: usize,
    /// Tasks per request graph.
    pub nodes: usize,
    /// Seed of both the graph zoo and the fault schedule.
    pub seed: u64,
    /// Engine threads per request.
    pub engine_threads: usize,
}

/// Aggregated outcome of one chaos run.
#[derive(Clone, Debug)]
pub struct ChaosLoadReport {
    /// Fault rounds driven.
    pub rounds: usize,
    /// Requests submitted across all rounds (excluding the clean pass).
    pub submitted: u64,
    /// Successful, bit-identity-checked responses.
    pub ok: u64,
    /// Injected panics contained to `ServiceError::Internal`.
    pub internal_faults: u64,
    /// Typed mapper errors (injected sweep degradation).
    pub mapper_errors: u64,
    /// Requests that exhausted their retry budget on overload.
    pub overload_give_ups: u64,
    /// Overload retries spent by the clients.
    pub retries: u64,
    /// Wall-clock of the fault rounds.
    pub seconds: f64,
    /// Successful mappings per second *while faults were firing*.
    pub goodput: f64,
    /// Armed plans that actually fired (an armed hit beyond a round's
    /// executions of its site stays silent — counted armed, not fired).
    pub faults_fired: u64,
    /// Fired-fault count per site name, in `FaultSite::ALL` order.
    pub per_site: Vec<(&'static str, u64)>,
    /// The fault-free pass over the zoo succeeded after all rounds.
    pub clean_pass_ok: bool,
}

/// Install (once, process-wide) a panic hook that swallows the default
/// "thread panicked" chatter of **injected** panics — they are expected
/// output of a chaos run, recognizable by
/// [`INJECTED_PANIC_PREFIX`](spmap_core::INJECTED_PANIC_PREFIX) — while
/// forwarding every organic panic to the previous hook untouched.
#[cfg(feature = "fault-injection")]
pub fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let injected = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .is_some_and(|s| s.starts_with(spmap_core::INJECTED_PANIC_PREFIX));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// Drive one chaos run and check the containment contract throughout;
/// see the module docs for the asserted properties.
#[cfg(feature = "fault-injection")]
pub fn run_chaos(cfg: &ChaosLoadConfig) -> ChaosLoadReport {
    use std::sync::Arc;
    use std::time::Instant;

    use spmap_core::faults::arm_kind;
    use spmap_core::{FaultSchedule, FaultSite, MapService, ServiceConfig, ServiceError};

    use crate::service_load::{
        assert_identical, build_requests, map_with_retry, reference_results, RetryPolicy,
        ServiceLoadConfig,
    };

    silence_injected_panics();

    let policy = RetryPolicy {
        max_retries: 10_000,
    };
    let load = ServiceLoadConfig {
        clients: cfg.clients,
        requests_per_client: cfg.requests_per_client,
        distinct_graphs: cfg.distinct_graphs,
        nodes: cfg.nodes,
        seed: cfg.seed,
        engine_threads: cfg.engine_threads,
        retry: Some(policy),
    };
    let requests = build_requests(&load);
    let references = reference_results(&requests);

    // Half the clients get run slots and there is no queue, so overload
    // rejections (and the retrying clients' completion-denominated
    // backoff) are part of every round; the 1-byte cache budget keeps
    // the artifact-build fault site on the executed path of every
    // request instead of only the first per graph.
    let service = Arc::new(MapService::new(ServiceConfig {
        max_inflight: (cfg.clients / 2).max(1),
        max_queued: 0,
        cache_budget_bytes: 1,
        ..ServiceConfig::default()
    }));

    let mut schedule = FaultSchedule::new(cfg.seed);
    let mut per_site: Vec<(&'static str, u64)> =
        FaultSite::ALL.iter().map(|s| (s.name(), 0u64)).collect();
    let mut ok = 0u64;
    let mut internal_faults = 0u64;
    let mut mapper_errors = 0u64;
    let mut overload_give_ups = 0u64;
    let mut retries = 0u64;
    let mut faults_fired = 0u64;
    let start = Instant::now();
    for _round in 0..cfg.rounds {
        let (site, hit, kind) = schedule.next_map_plan(MAX_HIT);
        let arm = arm_kind(site, hit, kind);
        let round: Vec<(u64, u64, u64, u64, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..cfg.clients)
                .map(|client| {
                    let service = Arc::clone(&service);
                    let requests = &requests;
                    let references = &references;
                    scope.spawn(move || {
                        let (mut ok, mut internal, mut mapper, mut gave_up) = (0u64, 0, 0, 0);
                        let mut spent = 0u64;
                        for i in 0..cfg.requests_per_client {
                            let idx = (client + i) % requests.len();
                            let (outcome, r) = map_with_retry(&service, &requests[idx], policy);
                            spent += r;
                            match outcome {
                                Ok(resp) => {
                                    assert_identical(
                                        &format!("chaos client {client} request {i} (graph {idx})"),
                                        &resp.result,
                                        &references[idx],
                                    );
                                    ok += 1;
                                }
                                Err(ServiceError::Internal { .. }) => internal += 1,
                                Err(ServiceError::Mapper(_)) => mapper += 1,
                                Err(ServiceError::Overloaded { .. }) => gave_up += 1,
                                Err(other) => panic!("unexpected chaos outcome: {other}"),
                            }
                        }
                        (ok, internal, mapper, gave_up, spent)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .expect("a panic escaped the service's containment boundary")
                })
                .collect()
        });
        for (o, i, m, g, s) in round {
            ok += o;
            internal_faults += i;
            mapper_errors += m;
            overload_give_ups += g;
            retries += s;
        }
        if arm.fired() {
            faults_fired += 1;
            per_site[site as usize].1 += 1;
        }
        drop(arm);
        let stats = service.stats();
        assert_eq!(
            stats.admitted,
            stats.completed + stats.failed,
            "admission accounting must balance at round quiescence"
        );
    }
    let seconds = start.elapsed().as_secs_f64();

    // Fault-free clean pass: no fault leaked state into the service's
    // future — the same service still answers the whole zoo
    // bit-identically.
    for (i, req) in requests.iter().enumerate() {
        let resp = map_with_retry(&service, req, policy)
            .0
            .expect("clean pass maps");
        assert_identical(
            &format!("clean pass graph {i}"),
            &resp.result,
            &references[i],
        );
    }

    let submitted = (cfg.clients * cfg.requests_per_client * cfg.rounds) as u64;
    assert_eq!(
        submitted,
        ok + internal_faults + mapper_errors + overload_give_ups,
        "every submission must be classified exactly once"
    );

    ChaosLoadReport {
        rounds: cfg.rounds,
        submitted,
        ok,
        internal_faults,
        mapper_errors,
        overload_give_ups,
        retries,
        seconds,
        goodput: ok as f64 / seconds.max(1e-12),
        faults_fired,
        per_site,
        clean_pass_ok: true,
    }
}

/// Without the `fault-injection` feature there are no fault points to
/// arm — a chaos run would measure nothing.  Fail loudly with the fix.
#[cfg(not(feature = "fault-injection"))]
pub fn run_chaos(_cfg: &ChaosLoadConfig) -> ChaosLoadReport {
    panic!(
        "chaos mode needs armable fault points: rebuild with \
         `cargo run --release -p spmap-bench --features fault-injection \
         --bin perf_report -- --chaos`"
    );
}

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;

    #[test]
    fn chaos_run_contains_faults_and_passes_clean() {
        let report = run_chaos(&ChaosLoadConfig {
            clients: 2,
            rounds: 3,
            requests_per_client: 4,
            distinct_graphs: 2,
            nodes: 24,
            seed: 77,
            engine_threads: 2,
        });
        assert_eq!(report.submitted, 24);
        assert_eq!(
            report.submitted,
            report.ok + report.internal_faults + report.mapper_errors + report.overload_give_ups
        );
        assert!(report.clean_pass_ok);
        assert_eq!(
            report.faults_fired,
            report.per_site.iter().map(|(_, n)| n).sum::<u64>()
        );
    }
}

//! `perf_report` — measures the incremental + parallel candidate engine
//! against the serial seed path and emits machine-readable
//! `BENCH_mapper.json`.
//!
//! For each graph size it runs the full `SeriesParallel`-strategy mapper
//! (exhaustive search) three ways:
//!
//! * `serial` — `decomposition_map_reference`, the seed implementation:
//!   one full simulation per candidate per iteration (one full *sweep*
//!   of `k + 1` simulations in `report_makespan` mode), single-threaded,
//! * `batch1` — the engine on **one** thread (isolates the pruning +
//!   memoization + windowing win; zero thread spawns),
//! * `batchN` — the engine on `--threads N` workers (default 8).
//!
//! Both cost models are measured: the breadth-first inner loop (`bfs`
//! rows) and the paper's multi-schedule reporting metric (`report` rows,
//! `--report-schedules k` random schedules on top of BFS; default 4,
//! `0` skips them).  All runs produce bit-identical mappings (asserted
//! here, proven at scale by `tests/equivalence.rs`), and the binary
//! **fails** if the incremental report sweep is slower than the
//! reference serial sweep — the CI perf gate.
//!
//! The NSGA-II baseline gets the same treatment (`ga` rows): the
//! engine-backed GA (`nsga2_map`, population engine: fitness memo +
//! base-trail windows + heap-free pop-order replays + parallel sims) is
//! measured against the kept serial reference (`nsga2_map_reference`),
//! with bit-identical per-seed best makespan/history asserted, a
//! fail-if-slower gate, and the memo-capacity invariant checked from
//! the engine statistics.  `--full` adds the 1024/2048-node sweep
//! points that the serial GA baseline previously made impractical.
//!
//! The GA's N-thread row is additionally measured under **both**
//! parallel backends — the persistent worker pool (`SPMAP_POOL`
//! default) and the original per-call scoped spawns — because the GA is
//! the small-batch workload the pool exists for: roughly one parallel
//! batch per generation, so scoped dispatch pays `(threads − 1)` thread
//! spawns per generation where the pool pays condvar wakes of parked
//! workers.  Results are asserted bit-identical across the backends,
//! and the binary **fails** if the pooled row loses to the scoped row
//! (beyond a small timer-noise allowance) — the pool CI perf gate.
//!
//! The GA is also measured under **both evaluation orders** of the
//! population engine: the prefix-sharing trie order (default; rolling
//! checkpoint trails over the genome trie's DFS walk) against the flat
//! PR 3 nearest-base order kept as the executable spec.  Results are
//! asserted bit-identical, per-row `windowed_skip_rate` /
//! `trie_depth_mean` / `prefix_shared_positions` land on stdout and in
//! the JSON, and the binary **fails** if the trie order *steps more
//! schedule positions* than the nearest-base order (a deterministic,
//! noise-free counter — the quantity the ordering optimizes; the trie
//! steps 1.03–1.12x fewer), if its wall-clock loses by more than a
//! loose 25 % backstop on the ≥200-node rows (both sides timed twice,
//! minimum taken; the ~10 % position saving sits inside shared-runner
//! timer noise, so wall-clock alone cannot carry a tight gate), or if
//! the windowed skip rate drops below 30 % on the 500-node row (PR 3's
//! flat order measured ~26 %; the trie holds ~34 %, the
//! mutation-bounded ceiling — see docs/PERF.md) — the trie CI perf
//! gates.
//! `--ga-only` runs just the GA rows (and their gates) at the standard
//! sizes: the cheap CI entry point for the trie gates.
//! `--sizes a,b,..` replaces the built-in size lists of both the mapper
//! and GA loops (including the `--full` 1024/2048 GA extension, which
//! used to be hardcoded).
//!
//! `--xl` switches to the **scale tier**: 10k/50k/100k-node layered
//! DAGs with constant average degree, measuring (a) the per-position
//! cost of the cache-conscious pop-order simulation kernel against a
//! 500-node baseline of the same shape (CI gate: ≤ 2x at the first XL
//! size — schedule-order renumbering keeps successor updates
//! near-sequential, so the kernel must stay close to its in-cache
//! figure when the tables outgrow L2), (b) a bounded `sp_first_fit`
//! mapper row per size (the 100k row proves the engine completes at
//! scale), and (c) a small GA row at the first size exercising rolling
//! suffix-sparse trails + the trail cache.  Every row reports its peak
//! checkpoint bytes, gated against the 32 MiB per-trail budget.
//! `--xl --quick` keeps only the first size — the CI smoke.
//!
//! `--service` switches to the **service tier**: a concurrent-client
//! closed-loop load against the long-lived `MapService` (bounded
//! admission + content-addressed artifact cache over the sharded
//! worker pool).  It asserts bit-identity of every response against the
//! direct mapper — across cache temperature, client concurrency and
//! explicit 1/2-shard pools — then measures 1-client and 4-client
//! phases and reports sustained mappings/sec, p50/p99 latency, cache
//! hit rate and the per-shard batch histogram.  The CI gate (4 clients
//! ≥ 1.5x 1 client) is enforced only when the box has ≥ 4 cores;
//! identity is asserted unconditionally.
//!
//! `--remap` switches to the **remap tier**: warm-start remapping
//! sessions against runtime perturbations (device loss/recovery, task
//! arrival/completion, attribute drift) on 506/2048-node layered DAGs
//! (`--full` adds 10k).  Each perturbation kind is timed through the
//! warm neighborhood path and the from-scratch fallback on fresh
//! sessions (min of two replays each, replay bit-identity asserted),
//! and the binary **fails** if a single-device-loss warm remap is
//! slower than the from-scratch re-map at any gated size — the remap
//! CI latency gate.
//!
//! `--chaos` switches to the **chaos tier** (requires building with
//! `--features fault-injection`): seeded fault rounds against a live
//! `MapService` — each round arms one `(site, hit, kind)` plan from the
//! deterministic `FaultSchedule` and drives concurrent retrying clients
//! through it.  The harness asserts the containment contract (typed
//! error to the faulted caller, bit-identical untouched responses,
//! balanced admission accounting, fault-free clean pass afterwards —
//! see docs/ROBUSTNESS.md) and reports goodput under chaos plus retry
//! and per-site fired-fault counters.  `--chaos --quick` is the CI
//! smoke.
//!
//! Each mode writes its own report file — `BENCH_mapper.json`
//! (standard), `BENCH_mapper_xl.json` (`--xl`), `BENCH_service.json`
//! (`--service`), `BENCH_remap.json` (`--remap`), `BENCH_chaos.json`
//! (`--chaos`) — so CI cells can upload all of them without
//! clobbering; `--out <path>` overrides the destination.
//!
//! Usage: `cargo run --release -p spmap-bench --bin perf_report
//!         [--quick] [--full] [--ga-only] [--xl] [--service] [--remap]
//!         [--chaos] [--threads 8] [--seed 2025] [--report-schedules 4]
//!         [--sizes a,b,..] [--out <path>]`

use std::fmt::Write as _;
use std::time::Instant;

use spmap_bench::cli::Opts;
use spmap_core::EvalOrder;
use spmap_core::{
    decomposition_map, decomposition_map_reference, CostModel, EngineConfig, MapperConfig,
};
use spmap_ga::{nsga2_map, nsga2_map_reference, GaConfig};
use spmap_graph::gen::{layered_random, LayeredConfig};
use spmap_graph::{augment, AugmentConfig, TaskGraph};
use spmap_model::{
    EvalScratch, EvalTables, Mapping, Platform, ScheduleCheckpoints,
    DEFAULT_CHECKPOINT_BUDGET_BYTES,
};
use spmap_par::{with_backend, ParBackend};

/// GA generation budget of the `ga` rows: the paper's §IV-A default in
/// real runs, trimmed for the `--quick` CI smoke.
const GA_GENERATIONS: usize = 500;
const GA_GENERATIONS_QUICK: usize = 250;

/// Write the mode's JSON report to its default file or the `--out`
/// override.
fn write_report(opts: &Opts, default_name: &str, json: &str) {
    let path = opts.out.as_deref().unwrap_or(default_name);
    std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("\nwrote {path}");
}

/// A layered (non-series-parallel) DAG of ~`nodes` tasks with the
/// paper's attribute augmentation — the mapper's stress shape.
fn layered_dag(nodes: usize, seed: u64) -> TaskGraph {
    let width = (nodes as f64).sqrt().round() as usize;
    let layers = nodes.div_ceil(width);
    let mut g = layered_random(&LayeredConfig {
        layers,
        width,
        density: 0.25,
        seed,
        edge_bytes: 50e6,
    });
    augment(&mut g, &AugmentConfig::default(), seed);
    g
}

// ---- the XL scale tier (`--xl`) ----

/// XL graph sizes; `--quick` keeps only the first (the CI smoke) and
/// `--sizes` overrides the list outright.
const XL_SIZES: [usize; 3] = [10_000, 50_000, 100_000];

/// Baseline size of the per-position gate: the standard tier's largest
/// row re-generated in the XL shape, so the gate compares memory
/// layouts rather than graph families.
const XL_BASELINE_NODES: usize = 500;

/// The kernel CI gate: the first XL size's per-position time may cost
/// at most this multiple of the baseline's.  Schedule-order renumbering
/// makes the successor updates near-sequential, so the kernel should
/// stay close to its in-cache figure even once the tables leave L2.
const XL_KERNEL_GATE_RATIO: f64 = 2.0;

/// GA parameters of the XL GA row: enough generations to exercise the
/// rolling suffix-sparse trails and the trail cache at scale without
/// turning the smoke into a soak (the standard tier already measures
/// GA throughput).
const XL_GA_POPULATION: usize = 24;
const XL_GA_GENERATIONS: usize = 10;

/// A layered DAG with *constant* average out-degree (≈ 4 edges/node)
/// instead of the standard tier's constant `density` — whose degree
/// grows as `0.25·√n` and would change the per-position work itself at
/// 10k–100k nodes.  The kernel gate is about memory layout, not edge
/// count, so the XL shape holds the per-node work fixed across sizes.
fn xl_layered_dag(nodes: usize, seed: u64) -> TaskGraph {
    let width = (nodes as f64).sqrt().round() as usize;
    let layers = nodes.div_ceil(width);
    let mut g = layered_random(&LayeredConfig {
        layers,
        width,
        density: 4.0 / width as f64,
        seed,
        edge_bytes: 50e6,
    });
    augment(&mut g, &AugmentConfig::default(), seed);
    g
}

struct XlKernelRow {
    nodes: usize,
    edges: usize,
    /// Minimum observed wall time of one pop-order replay, per node.
    ns_per_position: f64,
    /// Snapshot payload of the checkpointed replay (suffix-sparse under
    /// the default pop-order numbering) — gated against the budget.
    checkpoint_bytes: usize,
    snapshot_every: usize,
}

/// Per-position cost of the cache-conscious simulation kernel: the
/// pop-order checkpointed replay (the exact path every windowed replay
/// and rolling trail runs), timed on the all-default mapping, minimum
/// of a few repetitions to steady the clock.
fn measure_xl_kernel(g: &TaskGraph, p: &Platform) -> XlKernelRow {
    let n = g.node_count();
    let tables = EvalTables::new(g, p);
    let mut scratch = EvalScratch::for_tables(&tables);
    let mapping = Mapping::all_default(g, p);
    let every = ScheduleCheckpoints::auto_interval_for(n, 0);
    let mut ckpt = ScheduleCheckpoints::new(every);
    // The warm-up run also shapes the checkpoint store.
    let warm = tables
        .makespan_bfs_checkpointed(&mut scratch, &mapping, &mut ckpt)
        .expect("the all-default mapping simulates");
    let reps = (1_000_000 / n.max(1)).clamp(3, 50);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let ms = tables
            .makespan_bfs_checkpointed(&mut scratch, &mapping, &mut ckpt)
            .expect("the all-default mapping simulates");
        best = best.min(t.elapsed().as_secs_f64());
        assert_eq!(ms, warm, "kernel must be deterministic");
    }
    XlKernelRow {
        nodes: n,
        edges: g.edge_count(),
        ns_per_position: best * 1e9 / n as f64,
        checkpoint_bytes: ckpt.byte_len(),
        snapshot_every: every,
    }
}

struct XlMapperRow {
    seconds: f64,
    iterations: usize,
    evaluations: u64,
    checkpoint_peak_bytes: u64,
    improvement: f64,
}

/// A bounded mapper row: `sp_first_fit` under the BFS cost model with
/// an iteration cap of 2 — enough to push full batches of windowed
/// candidate evaluations through the engine at 10k–100k nodes (the
/// completion proof the tier exists for) without an open-ended greedy
/// descent.
fn measure_xl_mapper(g: &TaskGraph, p: &Platform, threads: usize) -> XlMapperRow {
    let cfg = MapperConfig {
        cost: CostModel::Bfs,
        iteration_cap: Some(2),
        engine: EngineConfig {
            threads: Some(threads),
            ..EngineConfig::default()
        },
        ..MapperConfig::sp_first_fit()
    };
    let t = Instant::now();
    let r = decomposition_map(g, p, &cfg);
    XlMapperRow {
        seconds: t.elapsed().as_secs_f64(),
        iterations: r.iterations,
        evaluations: r.evaluations,
        checkpoint_peak_bytes: r.checkpoint_peak_bytes,
        improvement: r.relative_improvement(),
    }
}

struct XlGaRow {
    nodes: usize,
    edges: usize,
    seconds: f64,
    evaluations: u64,
    positions: u64,
    checkpoint_peak_bytes: u64,
}

/// A small GA row at the first XL size: rolling trails, the trail
/// cache, and windowed replays all run at a node count where a dense
/// snapshot trail would cost ~8x the suffix-sparse one.
fn measure_xl_ga(g: &TaskGraph, p: &Platform, threads: usize, seed: u64) -> XlGaRow {
    let cfg = GaConfig {
        population: XL_GA_POPULATION,
        generations: XL_GA_GENERATIONS,
        seed,
        threads: Some(threads),
        ..GaConfig::default()
    };
    let t = Instant::now();
    let r = nsga2_map(g, p, &cfg);
    XlGaRow {
        nodes: g.node_count(),
        edges: g.edge_count(),
        seconds: t.elapsed().as_secs_f64(),
        evaluations: r.evaluations,
        positions: r.positions,
        checkpoint_peak_bytes: r.checkpoint_peak_bytes,
    }
}

/// The `--xl` entry point: measure, gate, write `BENCH_mapper_xl.json`.
fn run_xl(opts: &Opts) {
    let threads = opts.threads.unwrap_or(8);
    let sizes: Vec<usize> = match &opts.sizes {
        Some(s) => s.clone(),
        None if opts.quick => vec![XL_SIZES[0]],
        None => XL_SIZES.to_vec(),
    };
    let budget = DEFAULT_CHECKPOINT_BUDGET_BYTES;

    println!(
        "perf_report --xl: scale tier, pop-order kernel + suffix-sparse checkpoints \
         ({threads} threads; per-trail budget {} MiB)\n",
        budget >> 20
    );
    println!(
        "{:>7} {:>8} {:>9} {:>9} {:>11} {:>10} {:>9} {:>9}",
        "nodes", "edges", "ns/pos", "vs base", "ckpt bytes", "mapper", "iters", "peak MB"
    );

    let p = Platform::reference();
    let baseline = measure_xl_kernel(&xl_layered_dag(XL_BASELINE_NODES, opts.seed), &p);
    println!(
        "{:>7} {:>8} {:>9.1} {:>9} {:>11} {:>10} {:>9} {:>9}",
        baseline.nodes,
        baseline.edges,
        baseline.ns_per_position,
        "1.00x",
        baseline.checkpoint_bytes,
        "baseline",
        "-",
        "-"
    );

    let mut rows: Vec<(XlKernelRow, XlMapperRow)> = Vec::new();
    let mut ga_row = None;
    for (i, &nodes) in sizes.iter().enumerate() {
        let g = xl_layered_dag(nodes, opts.seed);
        let k = measure_xl_kernel(&g, &p);
        let m = measure_xl_mapper(&g, &p, threads);
        println!(
            "{:>7} {:>8} {:>9.1} {:>8.2}x {:>11} {:>9.2}s {:>9} {:>9.2}",
            k.nodes,
            k.edges,
            k.ns_per_position,
            k.ns_per_position / baseline.ns_per_position,
            k.checkpoint_bytes,
            m.seconds,
            m.iterations,
            m.checkpoint_peak_bytes as f64 / (1 << 20) as f64,
        );
        if i == 0 {
            ga_row = Some(measure_xl_ga(&g, &p, threads, opts.seed));
        }
        rows.push((k, m));
    }
    let ga = ga_row.expect("--xl needs at least one size");
    println!(
        "\nga xl row ({} nodes, pop {}, {} generations): {:.2}s, {} evaluations, \
         {} positions, peak trail {:.2} MB",
        ga.nodes,
        XL_GA_POPULATION,
        XL_GA_GENERATIONS,
        ga.seconds,
        ga.evaluations,
        ga.positions,
        ga.checkpoint_peak_bytes as f64 / (1 << 20) as f64,
    );

    // The kernel CI gate: per-position time at the first XL size within
    // 2x of the same-shape 500-node baseline.  A miss means the
    // renumbered layout stopped paying — per-position work is constant
    // by construction (fixed average degree), so only memory behavior
    // can move this ratio.
    let head = &rows[0].0;
    let ratio = head.ns_per_position / baseline.ns_per_position;
    println!(
        "xl kernel gate ({} nodes): {:.1} ns/position vs {:.1} baseline = {:.2}x (max {:.1}x)",
        head.nodes, head.ns_per_position, baseline.ns_per_position, ratio, XL_KERNEL_GATE_RATIO,
    );
    assert!(
        ratio <= XL_KERNEL_GATE_RATIO,
        "per-position kernel cost at {} nodes regressed to {:.2}x the {}-node baseline \
         ({:.1} vs {:.1} ns/position; gate {:.1}x)",
        head.nodes,
        ratio,
        baseline.nodes,
        head.ns_per_position,
        baseline.ns_per_position,
        XL_KERNEL_GATE_RATIO,
    );
    // The byte-budget CI gate: every snapshot trail the tier touched —
    // the raw kernel's checkpoint store, the mapper engine's per-trail
    // peak, the GA's rolling trails + trail cache — fits the per-trail
    // budget.  `auto_interval_for` widens the snapshot interval to make
    // this hold by construction; the gate catches that math drifting
    // from the stores it is supposed to bound.
    for (k, m) in &rows {
        assert!(
            k.checkpoint_bytes <= budget,
            "kernel checkpoint store at {} nodes exceeds the per-trail budget: {} > {budget}",
            k.nodes,
            k.checkpoint_bytes,
        );
        assert!(
            (m.checkpoint_peak_bytes as usize) <= budget,
            "mapper engine checkpoint peak at {} nodes exceeds the per-trail budget: {} > {budget}",
            k.nodes,
            m.checkpoint_peak_bytes,
        );
    }
    assert!(
        (ga.checkpoint_peak_bytes as usize) <= budget,
        "GA checkpoint peak at {} nodes exceeds the per-trail budget: {} > {budget}",
        ga.nodes,
        ga.checkpoint_peak_bytes,
    );

    // ---- machine-readable report ----
    let mut json = String::from("{\n  \"benchmark\": \"xl_scale_tier\",\n");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"quick\": {},", opts.quick);
    let _ = writeln!(json, "  \"seed\": {},", opts.seed);
    let _ = writeln!(json, "  \"checkpoint_budget_bytes\": {budget},");
    let _ = writeln!(json, "  \"kernel_gate_ratio_max\": {XL_KERNEL_GATE_RATIO},");
    let _ = writeln!(json, "  \"baseline\": {{");
    let _ = writeln!(json, "    \"nodes\": {},", baseline.nodes);
    let _ = writeln!(json, "    \"edges\": {},", baseline.edges);
    let _ = writeln!(
        json,
        "    \"kernel_ns_per_position\": {:.2},",
        baseline.ns_per_position
    );
    let _ = writeln!(
        json,
        "    \"checkpoint_bytes\": {},",
        baseline.checkpoint_bytes
    );
    let _ = writeln!(json, "    \"snapshot_every\": {}", baseline.snapshot_every);
    let _ = writeln!(json, "  }},");
    json.push_str("  \"xl_runs\": [\n");
    for (i, (k, m)) in rows.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"nodes\": {},", k.nodes);
        let _ = writeln!(json, "      \"edges\": {},", k.edges);
        let _ = writeln!(
            json,
            "      \"kernel_ns_per_position\": {:.2},",
            k.ns_per_position
        );
        let _ = writeln!(
            json,
            "      \"kernel_vs_baseline\": {:.3},",
            k.ns_per_position / baseline.ns_per_position
        );
        let _ = writeln!(json, "      \"checkpoint_bytes\": {},", k.checkpoint_bytes);
        let _ = writeln!(json, "      \"snapshot_every\": {},", k.snapshot_every);
        let _ = writeln!(json, "      \"mapper_seconds\": {:.6},", m.seconds);
        let _ = writeln!(json, "      \"mapper_iterations\": {},", m.iterations);
        let _ = writeln!(json, "      \"mapper_evaluations\": {},", m.evaluations);
        let _ = writeln!(
            json,
            "      \"mapper_checkpoint_peak_bytes\": {},",
            m.checkpoint_peak_bytes
        );
        let _ = writeln!(
            json,
            "      \"mapper_relative_improvement\": {:.6}",
            m.improvement
        );
        let _ = writeln!(json, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"ga_xl\": {{");
    let _ = writeln!(json, "    \"nodes\": {},", ga.nodes);
    let _ = writeln!(json, "    \"edges\": {},", ga.edges);
    let _ = writeln!(json, "    \"population\": {XL_GA_POPULATION},");
    let _ = writeln!(json, "    \"generations\": {XL_GA_GENERATIONS},");
    let _ = writeln!(json, "    \"seconds\": {:.6},", ga.seconds);
    let _ = writeln!(json, "    \"evaluations\": {},", ga.evaluations);
    let _ = writeln!(json, "    \"positions\": {},", ga.positions);
    let _ = writeln!(
        json,
        "    \"checkpoint_peak_bytes\": {}",
        ga.checkpoint_peak_bytes
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"kernel_gate_nodes\": {},", head.nodes);
    let _ = writeln!(json, "  \"kernel_vs_baseline\": {ratio:.3}");
    json.push_str("}\n");
    write_report(opts, "BENCH_mapper_xl.json", &json);
}

// ---- the service tier (`--service`) ----

/// Throughput gate of the 4-client phase against the 1-client phase,
/// enforced on boxes with at least [`SERVICE_GATE_MIN_CORES`] cores:
/// with per-request engine parallelism held fixed, four concurrent
/// clients dispatching through distinct pool shards must sustain at
/// least this multiple of a lone client's throughput.
const SERVICE_GATE_RATIO: f64 = 1.5;
const SERVICE_GATE_MIN_CORES: usize = 4;

/// The `--service` entry point: identity checks, 1-client and 4-client
/// load phases, gate, write `BENCH_service.json`.
fn run_service(opts: &Opts) {
    use spmap_bench::service_load::{
        assert_identical, build_requests, reference_results, run_phase, service_for_load, warm_up,
        RetryPolicy, ServiceLoadConfig,
    };
    use spmap_core::{MapService, ServiceConfig};
    use spmap_par::pool::Pool;
    use spmap_par::with_pool;
    use std::sync::Arc;

    let engine_threads = opts.threads.unwrap_or(2).max(2);
    let base = ServiceLoadConfig {
        clients: 1,
        requests_per_client: if opts.quick { 8 } else { 24 },
        distinct_graphs: if opts.quick { 3 } else { 6 },
        nodes: if opts.quick { 48 } else { 120 },
        seed: opts.seed,
        engine_threads,
        retry: None,
    };
    let shards = spmap_par::num_shards();
    println!(
        "perf_report --service: MapService load ({} distinct {}-node graphs, \
         {} engine threads/request, {} pool shards)\n",
        base.distinct_graphs, base.nodes, engine_threads, shards
    );

    let requests = build_requests(&base);
    let references = reference_results(&requests);

    // ---- bit-identity across shard counts, cache temperature and
    //      concurrency (asserted on every box, gated nowhere) ----
    // Explicit 1- and 2-shard pools under the pool backend: the shard
    // layout may move work between threads but never change a mapping.
    for shard_count in [1usize, 2] {
        let pool = Arc::new(Pool::with_shards(shard_count));
        with_pool(&pool, || {
            spmap_par::with_backend(spmap_par::ParBackend::Pool, || {
                let service = service_for_load(1);
                for (i, req) in requests.iter().enumerate() {
                    let cold = service.map(req).expect("identity run admitted");
                    let warm = service.map(req).expect("identity run admitted");
                    assert!(!cold.cache_hit && warm.cache_hit);
                    let label = format!("{shard_count}-shard pool, graph {i}");
                    assert_identical(&format!("{label} (cold)"), &cold.result, &references[i]);
                    assert_identical(&format!("{label} (warm)"), &warm.result, &references[i]);
                }
            })
        });
    }
    println!("identity: cold/warm x {{1,2}}-shard pools bit-identical to the direct mapper");

    // Eviction cannot change results either: a cache too small to hold
    // even one artifact rebuilds every time and still matches.
    {
        let service = Arc::new(MapService::new(ServiceConfig {
            max_inflight: 1,
            max_queued: 0,
            cache_budget_bytes: 1,
            ..ServiceConfig::default()
        }));
        for (i, req) in requests.iter().enumerate() {
            let resp = service.map(req).expect("eviction run admitted");
            assert_identical(
                &format!("1-byte-budget cache, graph {i}"),
                &resp.result,
                &references[i],
            );
        }
        println!("identity: byte-starved (always-evicting) cache bit-identical as well");
    }

    // ---- load phases ----
    let total_requests = 4 * base.requests_per_client;
    let mut phases = Vec::new();
    let mut cold_seconds = 0.0;
    for clients in [1usize, 4] {
        // Same total request count per phase so the comparison is
        // work-for-work.
        let cfg = ServiceLoadConfig {
            clients,
            requests_per_client: total_requests / clients,
            ..base
        };
        let service = service_for_load(clients);
        let cold = warm_up(&service, &requests, &references);
        if clients == 1 {
            cold_seconds = cold;
        }
        let report = run_phase(&service, &requests, &references, &cfg);
        let svc = service.stats();
        assert_eq!(svc.rejected, 0, "load phases are sized to be admitted");
        assert!(
            svc.peak_inflight <= service.max_inflight(),
            "admission gate exceeded its bound: {} > {}",
            svc.peak_inflight,
            service.max_inflight()
        );
        println!(
            "{:>2} clients: {:7.1} maps/s  p50 {:7.2} ms  p99 {:7.2} ms  \
             cache hit {:5.1}%  shards used {}/{}  steals {}  lock waits {}",
            report.clients,
            report.throughput,
            report.p50_ms,
            report.p99_ms,
            100.0 * report.cache_hit_rate(),
            report.shards_used(),
            shards,
            report.steals,
            report.submission_waits,
        );
        phases.push(report);
    }

    // ---- contended phase: clients outnumber the admission gate and
    //      survive on the bounded RetryPolicy (completion-denominated
    //      backoff on `Overloaded::retry_hint`) ----
    {
        let cfg = ServiceLoadConfig {
            clients: 4,
            requests_per_client: total_requests / 4,
            retry: Some(RetryPolicy {
                max_retries: 10_000,
            }),
            ..base
        };
        let service = Arc::new(MapService::new(ServiceConfig {
            max_inflight: 2,
            max_queued: 0,
            ..ServiceConfig::default()
        }));
        let _ = warm_up(&service, &requests, &references);
        let report = run_phase(&service, &requests, &references, &cfg);
        let svc = service.stats();
        assert_eq!(
            svc.admitted,
            svc.completed + svc.failed,
            "admission accounting must balance at quiescence"
        );
        assert_eq!(
            svc.rejected, report.retries,
            "every overload rejection is one client retry"
        );
        println!(
            "contended (4 clients, 2 slots, 0 queue): {:7.1} maps/s, \
             {} rejections absorbed by retry",
            report.throughput, report.retries
        );
        phases.push(report);
    }

    let ratio = phases[1].throughput / phases[0].throughput;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let gate_enforced = cores >= SERVICE_GATE_MIN_CORES;
    println!(
        "\nservice headline: 4 clients vs 1 = {ratio:.2}x throughput \
         ({} cores; gate {} at {SERVICE_GATE_RATIO}x)",
        cores,
        if gate_enforced {
            "enforced"
        } else {
            "reported only — needs >= 4 cores"
        },
    );
    // The CI scaling gate: concurrent clients must actually run
    // concurrently (distinct shards, no submission-lock convoy).  On a
    // box without the cores to show it, the number is still reported
    // honestly above but cannot gate.
    if gate_enforced {
        assert!(
            ratio >= SERVICE_GATE_RATIO,
            "4 concurrent clients only reached {ratio:.2}x of 1 client \
             (gate {SERVICE_GATE_RATIO}x): the sharded pool is not \
             delivering concurrent dispatch"
        );
    }

    // ---- machine-readable report ----
    let mut json = String::from("{\n  \"benchmark\": \"map_service\",\n");
    let _ = writeln!(json, "  \"quick\": {},", opts.quick);
    let _ = writeln!(json, "  \"seed\": {},", opts.seed);
    let _ = writeln!(json, "  \"nodes\": {},", base.nodes);
    let _ = writeln!(json, "  \"distinct_graphs\": {},", base.distinct_graphs);
    let _ = writeln!(json, "  \"engine_threads\": {engine_threads},");
    let _ = writeln!(json, "  \"shards\": {shards},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"cold_build_seconds\": {cold_seconds:.6},");
    json.push_str("  \"phases\": [\n");
    for (i, p) in phases.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"clients\": {},", p.clients);
        let _ = writeln!(json, "      \"requests\": {},", p.completed);
        let _ = writeln!(json, "      \"seconds\": {:.6},", p.seconds);
        let _ = writeln!(json, "      \"throughput_per_sec\": {:.3},", p.throughput);
        let _ = writeln!(json, "      \"p50_ms\": {:.4},", p.p50_ms);
        let _ = writeln!(json, "      \"p99_ms\": {:.4},", p.p99_ms);
        let _ = writeln!(json, "      \"cache_hits\": {},", p.cache.hits);
        let _ = writeln!(json, "      \"cache_misses\": {},", p.cache.misses);
        let _ = writeln!(json, "      \"cache_hit_rate\": {:.4},", p.cache_hit_rate());
        let _ = writeln!(json, "      \"shards_used\": {},", p.shards_used());
        let used: Vec<String> = p
            .shard_batches
            .iter()
            .take(shards)
            .map(|b| b.to_string())
            .collect();
        let _ = writeln!(json, "      \"shard_batches\": [{}],", used.join(", "));
        let _ = writeln!(json, "      \"steals\": {},", p.steals);
        let _ = writeln!(json, "      \"submission_waits\": {},", p.submission_waits);
        let _ = writeln!(json, "      \"retries\": {}", p.retries);
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < phases.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"throughput_ratio_4v1\": {ratio:.3},");
    let _ = writeln!(json, "  \"gate_ratio\": {SERVICE_GATE_RATIO},");
    let _ = writeln!(json, "  \"gate_enforced\": {gate_enforced}");
    json.push_str("}\n");
    write_report(opts, "BENCH_service.json", &json);
}

// ---- the chaos tier (`--chaos`) ----

/// The `--chaos` entry point: seeded fault rounds against a live
/// service with retrying clients, containment + bit-identity + balance
/// asserted by the harness, goodput reported, write `BENCH_chaos.json`.
/// Requires the `fault-injection` feature (the harness fails loudly
/// with the rebuild command otherwise).
fn run_chaos(opts: &Opts) {
    use spmap_bench::chaos_load::{run_chaos, ChaosLoadConfig};

    let engine_threads = opts.threads.unwrap_or(2).max(2);
    let cfg = ChaosLoadConfig {
        clients: 4,
        rounds: if opts.quick { 6 } else { 24 },
        requests_per_client: if opts.quick { 3 } else { 6 },
        distinct_graphs: if opts.quick { 3 } else { 6 },
        nodes: if opts.quick { 48 } else { 96 },
        seed: opts.seed,
        engine_threads,
    };
    let shards = spmap_par::num_shards();
    println!(
        "perf_report --chaos: {} fault rounds x {} clients x {} requests \
         ({} distinct {}-node graphs, {} engine threads/request, {} pool \
         shards, seed {})\n",
        cfg.rounds,
        cfg.clients,
        cfg.requests_per_client,
        cfg.distinct_graphs,
        cfg.nodes,
        engine_threads,
        shards,
        cfg.seed,
    );

    let report = run_chaos(&cfg);

    println!(
        "chaos: {}/{} ok ({} contained panics, {} typed mapper errors, \
         {} retry give-ups), {} of {} armed faults fired, {} overload \
         retries absorbed",
        report.ok,
        report.submitted,
        report.internal_faults,
        report.mapper_errors,
        report.overload_give_ups,
        report.faults_fired,
        report.rounds,
        report.retries,
    );
    for (site, fired) in &report.per_site {
        if *fired > 0 {
            println!("  {site}: {fired} fired");
        }
    }
    println!(
        "goodput under chaos: {:7.1} maps/s over {:.2} s; clean pass {}",
        report.goodput,
        report.seconds,
        if report.clean_pass_ok { "ok" } else { "FAILED" },
    );

    // The containment gates proper (typed errors, bit-identity of
    // untouched responses, balanced accounting, clean pass) are
    // asserted inside `run_chaos` — reaching this point *is* the gate.
    let mut json = String::from("{\n  \"benchmark\": \"map_service_chaos\",\n");
    let _ = writeln!(json, "  \"quick\": {},", opts.quick);
    let _ = writeln!(json, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(json, "  \"nodes\": {},", cfg.nodes);
    let _ = writeln!(json, "  \"distinct_graphs\": {},", cfg.distinct_graphs);
    let _ = writeln!(json, "  \"engine_threads\": {engine_threads},");
    let _ = writeln!(json, "  \"shards\": {shards},");
    let _ = writeln!(json, "  \"clients\": {},", cfg.clients);
    let _ = writeln!(json, "  \"rounds\": {},", report.rounds);
    let _ = writeln!(json, "  \"submitted\": {},", report.submitted);
    let _ = writeln!(json, "  \"ok\": {},", report.ok);
    let _ = writeln!(json, "  \"internal_faults\": {},", report.internal_faults);
    let _ = writeln!(json, "  \"mapper_errors\": {},", report.mapper_errors);
    let _ = writeln!(
        json,
        "  \"overload_give_ups\": {},",
        report.overload_give_ups
    );
    let _ = writeln!(json, "  \"retries\": {},", report.retries);
    let _ = writeln!(json, "  \"seconds\": {:.6},", report.seconds);
    let _ = writeln!(json, "  \"goodput_per_sec\": {:.3},", report.goodput);
    let _ = writeln!(json, "  \"faults_fired\": {},", report.faults_fired);
    json.push_str("  \"fired_per_site\": {\n");
    for (i, (site, fired)) in report.per_site.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{site}\": {fired}{}",
            if i + 1 < report.per_site.len() {
                ","
            } else {
                ""
            }
        );
    }
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"clean_pass_ok\": {}", report.clean_pass_ok);
    json.push_str("}\n");
    write_report(opts, "BENCH_chaos.json", &json);
}

// ---- the remap tier (`--remap`) ----

/// Node-count inputs of the remap tier; realized counts are reported
/// (`layered_dag(500)` realizes 506 nodes).  `--quick` keeps only the
/// first size, `--full` adds the 10k row, `--sizes` overrides outright.
const REMAP_SIZES: [usize; 2] = [500, 2048];
const REMAP_SIZE_FULL: usize = 10_000;

/// The remap CI gate: a single-device-loss warm remap must beat the
/// from-scratch re-map of the same patched instance at every realized
/// size of at least this many nodes.  Both sides run against prebuilt
/// shared tables (device loss never invalidates them), so the
/// comparison is pure search work: neighborhood sweep vs full sweep.
const REMAP_GATE_MIN_NODES: usize = 506;

/// The `--remap` entry point: per-perturbation-kind warm vs full
/// latency with replay identity asserted, gate, write
/// `BENCH_remap.json`.
fn run_remap(opts: &Opts) {
    use spmap_bench::remap_load::{measure_case, RemapCase, RemapMeasurement};
    use spmap_core::{map_request, AttachEdge, MapRequest, Perturbation};
    use spmap_graph::gen::{random_sp_graph, SpGenConfig};
    use spmap_graph::NodeId;
    use spmap_model::{ArtifactCache, DeviceId};
    use std::sync::{Arc, Mutex};

    let threads = opts.threads.unwrap_or(8);
    let sizes: Vec<usize> = opts.sizes.clone().unwrap_or_else(|| {
        let mut s = if opts.quick {
            vec![REMAP_SIZES[0]]
        } else {
            REMAP_SIZES.to_vec()
        };
        if opts.full {
            s.push(REMAP_SIZE_FULL);
        }
        s
    });
    println!(
        "perf_report --remap: warm-start remap vs from-scratch re-map \
         ({threads} engine threads/session)\n"
    );

    let platform = Arc::new(Platform::reference());
    let mut rows: Vec<(usize, Vec<RemapMeasurement>)> = Vec::new();
    for &size in &sizes {
        let graph = Arc::new(layered_dag(size, opts.seed));
        let n = graph.node_count();
        let req = MapRequest::from_mapper_config(
            Arc::clone(&graph),
            Arc::clone(&platform),
            &MapperConfig {
                engine: EngineConfig {
                    threads: Some(threads),
                    ..EngineConfig::default()
                },
                ..MapperConfig::sp_first_fit()
            },
        );
        // One shared artifact cache per size: every session open inside
        // the measurement hits the same table build.
        let cache = Arc::new(Mutex::new(ArtifactCache::new(0)));

        // Probe the initial full map so the lost device is one that
        // actually holds work (losing an idle device is a near-no-op).
        let probe = map_request(&req).expect("probe maps");
        let lost = probe
            .mapping
            .as_slice()
            .iter()
            .copied()
            .find(|&d| d != platform.default_device())
            .unwrap_or(DeviceId(1));

        let arrival = random_sp_graph(&SpGenConfig::new((n / 100).max(5), opts.seed + 1));
        let third = (n / 3) as u32;
        let mut grown = graph.task(NodeId(third)).clone();
        grown.area = grown.area * 2.0 + 100.0;
        let cases = [
            RemapCase {
                kind: "device_lost",
                setup: vec![],
                batch: vec![Perturbation::DeviceLost(lost)],
            },
            RemapCase {
                kind: "device_restored",
                setup: vec![vec![Perturbation::DeviceLost(lost)]],
                batch: vec![Perturbation::DeviceRestored(lost)],
            },
            RemapCase {
                kind: "task_arrived",
                setup: vec![],
                batch: vec![Perturbation::TaskArrived {
                    subgraph: arrival.clone(),
                    attach: vec![AttachEdge::Into {
                        from: NodeId((n - 1) as u32),
                        to_new: 0,
                        bytes: 1e6,
                    }],
                }],
            },
            RemapCase {
                kind: "task_finished",
                setup: vec![],
                batch: vec![Perturbation::TaskFinished(vec![
                    NodeId(0),
                    NodeId(third),
                    NodeId(2 * third),
                ])],
            },
            RemapCase {
                kind: "attributes_changed",
                setup: vec![],
                batch: vec![Perturbation::AttributesChanged {
                    nodes: vec![(NodeId(third), grown.clone())],
                }],
            },
        ];

        println!(
            "{n} nodes ({} edges):\n{:<20} {:>10} {:>10} {:>8} {:>14} {:>6}",
            graph.edge_count(),
            "perturbation",
            "warm",
            "full",
            "speedup",
            "neighborhood",
            "iters"
        );
        let mut measured = Vec::new();
        for case in &cases {
            let m = measure_case(&req, &cache, case);
            if case.kind == "device_lost" {
                // Exactness: both paths vacate the lost device.
                assert!(
                    m.warm.mapping.as_slice().iter().all(|&d| d != lost),
                    "warm remap left work on the lost device"
                );
                assert!(
                    m.full.mapping.as_slice().iter().all(|&d| d != lost),
                    "full re-map left work on the lost device"
                );
            }
            println!(
                "{:<20} {:>8.2}ms {:>8.2}ms {:>7.2}x {:>8}/{:<5} {:>6}",
                m.kind,
                m.warm_seconds * 1e3,
                m.full_seconds * 1e3,
                m.speedup(),
                m.warm.neighborhood_ops,
                m.warm.op_count,
                m.warm.iterations,
            );
            measured.push(m);
        }
        println!();
        rows.push((n, measured));
    }

    // The CI latency gate (see REMAP_GATE_MIN_NODES).
    for (n, measured) in &rows {
        if *n < REMAP_GATE_MIN_NODES {
            continue;
        }
        let loss = measured
            .iter()
            .find(|m| m.kind == "device_lost")
            .expect("device_lost is always measured");
        assert!(
            loss.warm_seconds < loss.full_seconds,
            "warm single-device-loss remap at {n} nodes took {:.2} ms vs \
             {:.2} ms from scratch: the warm neighborhood is not paying off",
            loss.warm_seconds * 1e3,
            loss.full_seconds * 1e3,
        );
    }
    let gated: Vec<usize> = rows
        .iter()
        .map(|(n, _)| *n)
        .filter(|n| *n >= REMAP_GATE_MIN_NODES)
        .collect();
    println!(
        "remap headline: single-device-loss warm remap beat the from-scratch \
         re-map at every gated size ({gated:?})"
    );

    // ---- machine-readable report ----
    let mut json = String::from("{\n  \"benchmark\": \"remap_session\",\n");
    let _ = writeln!(json, "  \"quick\": {},", opts.quick);
    let _ = writeln!(json, "  \"seed\": {},", opts.seed);
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"gate_min_nodes\": {REMAP_GATE_MIN_NODES},");
    json.push_str("  \"rows\": [\n");
    for (i, (n, measured)) in rows.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"nodes\": {n},");
        let _ = writeln!(
            json,
            "      \"gate_enforced\": {},",
            *n >= REMAP_GATE_MIN_NODES
        );
        json.push_str("      \"cases\": [\n");
        for (j, m) in measured.iter().enumerate() {
            let _ = writeln!(json, "        {{");
            let _ = writeln!(json, "          \"kind\": \"{}\",", m.kind);
            let _ = writeln!(json, "          \"warm_ms\": {:.4},", m.warm_seconds * 1e3);
            let _ = writeln!(json, "          \"full_ms\": {:.4},", m.full_seconds * 1e3);
            let _ = writeln!(json, "          \"speedup\": {:.3},", m.speedup());
            let _ = writeln!(
                json,
                "          \"quality_ratio\": {:.6},",
                m.quality_ratio()
            );
            let _ = writeln!(
                json,
                "          \"neighborhood_ops\": {},",
                m.warm.neighborhood_ops
            );
            let _ = writeln!(json, "          \"op_count\": {},", m.warm.op_count);
            let _ = writeln!(json, "          \"iterations\": {},", m.warm.iterations);
            let _ = writeln!(
                json,
                "          \"affected_nodes\": {},",
                m.warm.affected_nodes
            );
            let _ = writeln!(json, "          \"warm_makespan\": {:.6},", m.warm.makespan);
            let _ = writeln!(json, "          \"full_makespan\": {:.6}", m.full.makespan);
            let _ = writeln!(
                json,
                "        }}{}",
                if j + 1 < measured.len() { "," } else { "" }
            );
        }
        json.push_str("      ]\n");
        let _ = writeln!(json, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    json.push_str("  ]\n}\n");
    write_report(opts, "BENCH_remap.json", &json);
}

struct Measurement {
    mode: &'static str,
    report_schedules: usize,
    nodes: usize,
    edges: usize,
    serial_seconds: f64,
    serial_evaluations: u64,
    batch1_seconds: f64,
    batchn_seconds: f64,
    batchn_evaluations: u64,
    simulated: u64,
    memo_hits: u64,
    pruned: u64,
    trivial: u64,
    sched_simulated: u64,
    sched_aborted: u64,
    sched_memo_hits: u64,
    iterations: usize,
}

impl Measurement {
    fn speedup_1t(&self) -> f64 {
        self.serial_seconds / self.batch1_seconds
    }

    fn speedup_nt(&self) -> f64 {
        self.serial_seconds / self.batchn_seconds
    }

    fn serial_ns_per_eval(&self) -> f64 {
        self.serial_seconds * 1e9 / self.serial_evaluations.max(1) as f64
    }

    /// Engine wall time divided by *candidate decisions* — the metric
    /// that shows where pruning/memoization pay: most decisions never
    /// reach a simulation.
    fn batch_ns_per_candidate(&self) -> f64 {
        let total = self.simulated + self.memo_hits + self.pruned + self.trivial;
        self.batchn_seconds * 1e9 / total.max(1) as f64
    }

    fn memo_hit_rate(&self) -> f64 {
        let denom = self.simulated + self.memo_hits;
        if denom == 0 {
            0.0
        } else {
            self.memo_hits as f64 / denom as f64
        }
    }
}

fn measure(nodes: usize, seed: u64, threads: usize, cost: CostModel) -> Measurement {
    let g = layered_dag(nodes, seed);
    let p = Platform::reference();
    let base = MapperConfig {
        cost,
        ..MapperConfig::series_parallel()
    };
    let (mode, report_schedules) = match cost {
        CostModel::Bfs => ("bfs", 0),
        CostModel::Report { schedules, .. } => ("report", schedules),
    };

    let t0 = Instant::now();
    let serial = decomposition_map_reference(&g, &p, &base);
    let serial_seconds = t0.elapsed().as_secs_f64();

    let engine = |t: usize| MapperConfig {
        engine: EngineConfig {
            threads: Some(t),
            ..EngineConfig::default()
        },
        ..base
    };
    let t1 = Instant::now();
    let batch1 = decomposition_map(&g, &p, &engine(1));
    let batch1_seconds = t1.elapsed().as_secs_f64();
    let tn = Instant::now();
    let batchn = decomposition_map(&g, &p, &engine(threads));
    let batchn_seconds = tn.elapsed().as_secs_f64();

    assert_eq!(
        serial.mapping, batch1.mapping,
        "engine must be exact ({mode})"
    );
    assert_eq!(
        serial.mapping, batchn.mapping,
        "engine must be exact ({mode})"
    );
    assert_eq!(
        serial.history, batchn.history,
        "engine must be exact ({mode})"
    );
    assert_eq!(
        serial.makespan, batchn.makespan,
        "engine must be exact ({mode})"
    );

    Measurement {
        mode,
        report_schedules,
        nodes: g.node_count(),
        edges: g.edge_count(),
        serial_seconds,
        serial_evaluations: serial.evaluations,
        batch1_seconds,
        batchn_seconds,
        batchn_evaluations: batchn.evaluations,
        simulated: batchn.batch.simulated,
        memo_hits: batchn.batch.memo_hits,
        pruned: batchn.batch.pruned,
        trivial: batchn.batch.trivial,
        sched_simulated: batchn.batch.sched_simulated,
        sched_aborted: batchn.batch.sched_aborted,
        sched_memo_hits: batchn.batch.sched_memo_hits,
        iterations: batchn.iterations,
    }
}

struct GaMeasurement {
    nodes: usize,
    edges: usize,
    generations: usize,
    serial_seconds: f64,
    serial_evaluations: u64,
    batch1_seconds: f64,
    /// N-thread row on the persistent pool (the production default).
    batchn_seconds: f64,
    /// The same N-thread row on per-call scoped spawns — what the pool
    /// is gated against.
    scoped_seconds: f64,
    /// The same N-thread pooled row under the flat PR 3 nearest-base
    /// evaluation order — what the trie order is gated against.
    nearest_seconds: f64,
    /// Schedule positions the trie row actually stepped vs the
    /// nearest-base row — the work ratio behind the wall-clock gate.
    positions: u64,
    nearest_positions: u64,
    batchn_evaluations: u64,
    full_sims: u64,
    windowed_sims: u64,
    windowed_skip: u64,
    rolling_sims: u64,
    prefix_shared_positions: u64,
    trie_members: u64,
    trie_lcp_positions: u64,
    memo_hits: u64,
    batch_dups: u64,
    trails_recorded: u64,
    memo_peak: u64,
    memo_evictions: u64,
    /// Pool batches / parked-worker wakes of the pooled row.
    pool_batches: u64,
    pool_dispatches: u64,
    /// Thread spawns the scoped row paid for the same batches.
    scoped_spawns: u64,
}

impl GaMeasurement {
    fn speedup_1t(&self) -> f64 {
        self.serial_seconds / self.batch1_seconds
    }

    fn speedup_nt(&self) -> f64 {
        self.serial_seconds / self.batchn_seconds
    }

    /// How much the persistent pool wins over scoped spawns on this
    /// small-batch workload (> 1 = pool faster).
    fn pool_vs_scoped(&self) -> f64 {
        self.scoped_seconds / self.batchn_seconds
    }

    /// How much the trie evaluation order wins over the flat
    /// nearest-base order (> 1 = trie faster).
    fn trie_vs_nearest(&self) -> f64 {
        self.nearest_seconds / self.batchn_seconds
    }

    /// Mean fraction of schedule positions a windowed replay skipped —
    /// the ROADMAP metric the trie order exists to lift (PR 3 measured
    /// ~26 % at 506 nodes).
    fn windowed_skip_rate(&self) -> f64 {
        let denom = self.windowed_sims * self.nodes as u64;
        if denom == 0 {
            0.0
        } else {
            self.windowed_skip as f64 / denom as f64
        }
    }

    /// Mean LCP window depth (in pop positions) the trie walk
    /// discovered between chained DFS neighbors.
    fn trie_depth_mean(&self) -> f64 {
        if self.trie_members == 0 {
            0.0
        } else {
            self.trie_lcp_positions as f64 / self.trie_members as f64
        }
    }

    fn memo_hit_rate(&self) -> f64 {
        let denom = self.full_sims + self.windowed_sims + self.memo_hits + self.batch_dups;
        if denom == 0 {
            0.0
        } else {
            (self.memo_hits + self.batch_dups) as f64 / denom as f64
        }
    }
}

fn measure_ga(nodes: usize, seed: u64, threads: usize, generations: usize) -> GaMeasurement {
    let g = layered_dag(nodes, seed);
    let p = Platform::reference();
    let cfg = |t: Option<usize>, order: EvalOrder| GaConfig {
        generations,
        seed,
        threads: t,
        eval_order: order,
        ..GaConfig::default()
    };
    let trie = |t: Option<usize>| cfg(t, EvalOrder::PrefixTrie);

    // Gated rows are timed twice and keep the minimum: the gates
    // compare ~5 % margins, and single runs on shared CI boxes swing
    // more than that.  Runs are bit-identical by construction, so
    // re-running only steadies the clock.
    fn timed2<T>(mut f: impl FnMut() -> T) -> (f64, T) {
        let t0 = Instant::now();
        let _ = f();
        let s0 = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let out = f();
        (s0.min(t1.elapsed().as_secs_f64()), out)
    }

    let t0 = Instant::now();
    let serial = nsga2_map_reference(&g, &p, &trie(None));
    let serial_seconds = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let batch1 = nsga2_map(&g, &p, &trie(Some(1)));
    let batch1_seconds = t1.elapsed().as_secs_f64();
    // The N-thread row, once per parallel backend.  Scoped first so the
    // pool's lazily spawned workers cannot warm anything for it.
    let (scoped_seconds, scoped) = timed2(|| {
        with_backend(ParBackend::Scoped, || {
            nsga2_map(&g, &p, &trie(Some(threads)))
        })
    });
    let (batchn_seconds, batchn) =
        timed2(|| with_backend(ParBackend::Pool, || nsga2_map(&g, &p, &trie(Some(threads)))));
    // The same pooled N-thread row under the flat PR 3 nearest-base
    // order: the baseline the trie evaluation order is gated against.
    let (nearest_seconds, nearest) = timed2(|| {
        with_backend(ParBackend::Pool, || {
            nsga2_map(&g, &p, &cfg(Some(threads), EvalOrder::NearestBase))
        })
    });

    for (tag, r) in [
        ("1 thread", &batch1),
        ("N threads scoped", &scoped),
        ("N threads pool", &batchn),
        ("N threads nearest-base", &nearest),
    ] {
        assert_eq!(serial.mapping, r.mapping, "GA engine must be exact ({tag})");
        assert_eq!(
            serial.makespan, r.makespan,
            "GA engine must be exact ({tag})"
        );
        assert_eq!(
            serial.best_per_generation, r.best_per_generation,
            "GA history must be bit-identical ({tag})"
        );
        assert_eq!(serial.cpu_only_makespan, r.cpu_only_makespan);
        // The eviction policy's observable contract: the memo never
        // outgrows its configured capacity over the whole run.
        let capacity = GaConfig::default().memo_capacity as u64;
        assert!(
            capacity == 0 || r.engine.memo_peak <= capacity,
            "GA fitness memo exceeded its capacity: {} > {capacity}",
            r.engine.memo_peak
        );
    }

    // The backend must not change a single decision: same stats, and
    // the dispatch counters prove which transport ran the batches.
    assert_eq!(
        scoped.engine, batchn.engine,
        "backend changed the GA's decisions"
    );
    assert_eq!(
        scoped.dispatch.pool_batches, 0,
        "scoped row ran on the pool"
    );
    assert_eq!(
        batchn.dispatch.scoped_batches, 0,
        "pooled row ran on scoped spawns"
    );

    GaMeasurement {
        nodes: g.node_count(),
        edges: g.edge_count(),
        generations,
        serial_seconds,
        serial_evaluations: serial.evaluations,
        batch1_seconds,
        batchn_seconds,
        scoped_seconds,
        nearest_seconds,
        pool_batches: batchn.dispatch.pool_batches,
        pool_dispatches: batchn.dispatch.pool_dispatches,
        scoped_spawns: scoped.dispatch.scoped_spawns,
        batchn_evaluations: batchn.evaluations,
        positions: batchn.positions,
        nearest_positions: nearest.positions,
        full_sims: batchn.engine.full_sims,
        windowed_sims: batchn.engine.windowed_sims,
        windowed_skip: batchn.engine.windowed_skip,
        rolling_sims: batchn.engine.rolling_sims,
        prefix_shared_positions: batchn.engine.prefix_shared_positions,
        trie_members: batchn.engine.trie_members,
        trie_lcp_positions: batchn.engine.trie_lcp_positions,
        memo_hits: batchn.engine.memo_hits,
        batch_dups: batchn.engine.batch_dups,
        trails_recorded: batchn.engine.trails_recorded,
        memo_peak: batchn.engine.memo_peak,
        memo_evictions: batchn.engine.memo_evictions,
    }
}

fn print_ga_row(m: &GaMeasurement) {
    println!(
        "{:>6} {:>6} {:>7} {:>9.2}s {:>9.2}s {:>9.2}s {:>8.2}x {:>8.2}x {:>12} {:>10} {:>8.1}%",
        "ga",
        m.nodes,
        m.edges,
        m.serial_seconds,
        m.batch1_seconds,
        m.batchn_seconds,
        m.speedup_1t(),
        m.speedup_nt(),
        m.windowed_sims,
        m.memo_hits,
        100.0 * m.memo_hit_rate(),
    );
    println!(
        "       pool {:>6.2}s vs scoped {:>6.2}s = {:>5.2}x  \
         ({} pool batches, {} wakes vs {} thread spawns)",
        m.batchn_seconds,
        m.scoped_seconds,
        m.pool_vs_scoped(),
        m.pool_batches,
        m.pool_dispatches,
        m.scoped_spawns,
    );
    println!(
        "       trie {:>6.2}s vs nearest-base {:>6.2}s = {:>5.2}x  \
         (skip rate {:.1}%, {} rolling sims, {:.0} mean trie depth, \
          {} prefix-shared positions)",
        m.batchn_seconds,
        m.nearest_seconds,
        m.trie_vs_nearest(),
        100.0 * m.windowed_skip_rate(),
        m.rolling_sims,
        m.trie_depth_mean(),
        m.prefix_shared_positions,
    );
    println!(
        "       positions {} vs {} nearest ({:.2}x fewer steps)",
        m.positions,
        m.nearest_positions,
        m.nearest_positions as f64 / m.positions.max(1) as f64,
    );
}

fn print_row(m: &Measurement) {
    println!(
        "{:>6} {:>6} {:>7} {:>9.2}s {:>9.2}s {:>9.2}s {:>8.2}x {:>8.2}x {:>12} {:>10} {:>8.1}%",
        m.mode,
        m.nodes,
        m.edges,
        m.serial_seconds,
        m.batch1_seconds,
        m.batchn_seconds,
        m.speedup_1t(),
        m.speedup_nt(),
        m.pruned,
        m.memo_hits,
        100.0 * m.memo_hit_rate(),
    );
}

fn main() {
    let opts = Opts::parse();
    if opts.chaos {
        // The chaos tier is its own report: seeded fault injection,
        // containment checks, goodput under retry, its own JSON schema.
        run_chaos(&opts);
        return;
    }
    if opts.service {
        // The service tier is its own report: concurrent clients,
        // cache/latency metrics, its own JSON schema and gate.
        run_service(&opts);
        return;
    }
    if opts.remap {
        // The remap tier is its own report: session warm-start latency
        // vs the from-scratch fallback, its own JSON schema and gate.
        run_remap(&opts);
        return;
    }
    if opts.xl {
        // The scale tier is its own report: different graph shape,
        // different gates, its own JSON schema.
        run_xl(&opts);
        return;
    }
    let threads = opts.threads.unwrap_or(8);
    let report_k = opts.report_schedules.unwrap_or(4);
    let default_sizes: &[usize] = if opts.quick {
        &[60, 120]
    } else {
        &[120, 250, 500]
    };
    // `--sizes` replaces the built-in sweep for the mapper *and* GA
    // loops (below it also suppresses the `--full` GA extension).
    let sizes: Vec<usize> = opts.sizes.clone().unwrap_or_else(|| default_sizes.to_vec());
    let sizes: &[usize] = &sizes;

    println!(
        "perf_report: SeriesParallel mapper, serial seed path vs candidate engine \
         ({threads} threads; report mode: {report_k} random schedules)\n"
    );
    println!(
        "{:>6} {:>6} {:>7} {:>10} {:>10} {:>10} {:>9} {:>9} {:>12} {:>10} {:>9}",
        "mode",
        "nodes",
        "edges",
        "serial",
        "batch1",
        "batchN",
        "x1",
        "xN",
        "pruned",
        "memo",
        "hit%"
    );

    let mut rows = Vec::new();
    if !opts.ga_only {
        for &nodes in sizes {
            let m = measure(nodes, opts.seed, threads, CostModel::Bfs);
            print_row(&m);
            rows.push(m);
        }
        if report_k > 0 {
            for &nodes in sizes {
                let m = measure(
                    nodes,
                    opts.seed,
                    threads,
                    CostModel::Report {
                        schedules: report_k,
                        seed: opts.seed,
                    },
                );
                print_row(&m);
                rows.push(m);
            }
        }
    }
    // The GA baseline, same treatment.  `--full` adds the sweep points
    // the serial GA used to make impractical.
    let ga_generations = if opts.quick {
        GA_GENERATIONS_QUICK
    } else {
        GA_GENERATIONS
    };
    let mut ga_sizes: Vec<usize> = sizes.to_vec();
    if opts.full && opts.sizes.is_none() {
        // The former hardcoded `--full` extension; an explicit `--sizes`
        // list is taken literally instead.
        ga_sizes.extend([1024, 2048]);
    }
    let mut ga_rows = Vec::new();
    for &nodes in &ga_sizes {
        let m = measure_ga(nodes, opts.seed, threads, ga_generations);
        print_ga_row(&m);
        ga_rows.push(m);
    }

    let bfs_head = rows.iter().rev().find(|m| m.mode == "bfs");
    assert!(
        opts.ga_only || bfs_head.is_some(),
        "at least one BFS size outside --ga-only"
    );
    if let Some(head) = bfs_head {
        println!(
            "\nbfs headline ({} nodes, {} threads): {:.2}x vs seed serial path \
             ({:.1} ns/eval serial, {:.1} ns/candidate batched)",
            head.nodes,
            threads,
            head.speedup_nt(),
            head.serial_ns_per_eval(),
            head.batch_ns_per_candidate(),
        );
    }
    let report_head = rows.iter().rev().find(|m| m.mode == "report");
    if let Some(head) = report_head {
        println!(
            "report headline ({} nodes, {} schedules, {} threads): {:.2}x vs reference \
             serial sweep ({} schedule sims, {} cutoff-aborted, {} memo-answered)",
            head.nodes,
            head.report_schedules + 1,
            threads,
            head.speedup_nt(),
            head.sched_simulated,
            head.sched_aborted,
            head.sched_memo_hits,
        );
        // The CI perf gate: the incremental multi-schedule sweep must
        // never lose to the reference serial sweep (it is expected to
        // win by a wide algorithmic margin — windowing, running
        // cutoffs, per-schedule memo — so 1.0x is a generous floor).
        assert!(
            head.speedup_nt() >= 1.0,
            "incremental report sweep slower than the reference serial sweep: {:.2}x",
            head.speedup_nt()
        );
    }
    let ga_head = ga_rows.last().expect("at least one GA size");
    println!(
        "ga headline ({} nodes, {} generations, {} threads): {:.2}x vs serial reference GA \
         ({} full sims, {} windowed [{:.0}% skipped], {} memo hits, {} trails)",
        ga_head.nodes,
        ga_head.generations,
        threads,
        ga_head.speedup_nt(),
        ga_head.full_sims,
        ga_head.windowed_sims,
        100.0 * ga_head.windowed_skip_rate(),
        ga_head.memo_hits,
        ga_head.trails_recorded,
    );
    // The GA perf gate: the engine-backed GA must never lose to the
    // serial reference in its best configuration (memoization, windows,
    // heap-free replays; threads stack on real multi-core hardware).
    // The gate takes the better of the 1-thread and N-thread rows
    // because the GA path dispatches ~one small parallel batch per
    // generation: on a box with fewer cores than `--threads`, the
    // N-thread row measures pure spawn oversubscription (the xN column
    // still reports it honestly), while on real multi-core hardware it
    // is the winner.
    let ga_best = ga_head.speedup_1t().max(ga_head.speedup_nt());
    assert!(
        ga_best >= 1.0,
        "engine-backed GA slower than the serial reference GA: {ga_best:.2}x"
    );
    // The pool perf gate: on the GA's one-small-batch-per-generation
    // workload, the persistent pool must not lose to per-call scoped
    // spawns — that workload is exactly what the pool exists for.  A 5%
    // allowance absorbs wall-clock timer noise on shared CI runners;
    // the expected margin is well above it (each generation's scoped
    // dispatch pays `threads − 1` thread spawns, the pool pays condvar
    // wakes of parked workers).  The gate covers the standard sizes
    // (≤ 506 nodes); `--full`'s 1024/2048-node extensions print their
    // ratios but are not gated — per-generation batches there are long
    // enough that dispatch overhead dilutes toward parity, so gating
    // them would assert ~1.00x against pure timer noise.
    const POOL_GATE_MAX_NODES: usize = 506;
    for m in ga_rows.iter().filter(|m| m.nodes <= POOL_GATE_MAX_NODES) {
        assert!(
            m.batchn_seconds <= m.scoped_seconds * 1.05,
            "persistent pool lost to scoped spawns on the small-batch GA workload \
             ({} nodes): pool {:.3}s vs scoped {:.3}s ({:.2}x)",
            m.nodes,
            m.batchn_seconds,
            m.scoped_seconds,
            m.pool_vs_scoped(),
        );
    }
    // With an explicit `--sizes` list every row may sit above the pool
    // gate's node ceiling — then there is no gated row to headline.
    let pool_head = ga_rows.iter().rfind(|m| m.nodes <= POOL_GATE_MAX_NODES);
    if let Some(pool_head) = pool_head {
        println!(
            "ga pool-vs-scoped ({} nodes, {} generations): pool {:.2}s vs scoped {:.2}s = {:.2}x \
             ({} pool batches / {} wakes vs {} thread spawns)",
            pool_head.nodes,
            pool_head.generations,
            pool_head.batchn_seconds,
            pool_head.scoped_seconds,
            pool_head.pool_vs_scoped(),
            pool_head.pool_batches,
            pool_head.pool_dispatches,
            pool_head.scoped_spawns,
        );
    }
    // The trie-order perf gates.  The algorithmic claim — per
    // candidate the trie windows from `max(LCP, base window)`, so it
    // replays no more of the schedule than the flat PR 3 nearest-base
    // order — is gated on the *deterministic* stepped-position
    // counters: bit-reproducible per (graph, seed), immune to timer
    // noise, and exactly the quantity the ordering optimizes (the trie
    // steps 1.03–1.12x fewer positions on the standard sizes).  The
    // guarantee leans on the engine's canonical trail-cache lookup
    // order (identical cache evolution across orders) and the default
    // effectively-unbounded fitness memo both rows run with.
    for m in ga_rows.iter() {
        assert!(
            m.positions <= m.nearest_positions,
            "trie order stepped more schedule positions than the nearest-base order \
             ({} nodes): {} vs {}",
            m.nodes,
            m.positions,
            m.nearest_positions,
        );
    }
    // Wall-clock is gated loosely (25 %) as a backstop against
    // catastrophic bookkeeping regressions only: the ~10 % position
    // saving at the headline size is *smaller* than a loaded shared
    // box's observed run-to-run swing (ratios of 0.85–1.06 were
    // measured for identical binaries), so any tighter wall gate
    // flakes without measuring anything the deterministic position
    // gate does not already pin (docs/PERF.md, "when the flat order
    // still wins").
    const TRIE_GATE_MIN_NODES: usize = 200;
    for m in ga_rows
        .iter()
        .filter(|m| (TRIE_GATE_MIN_NODES..=POOL_GATE_MAX_NODES).contains(&m.nodes))
    {
        assert!(
            m.batchn_seconds <= m.nearest_seconds * 1.25,
            "trie evaluation order lost badly to the nearest-base order ({} nodes): \
             trie {:.3}s vs nearest {:.3}s ({:.2}x)",
            m.nodes,
            m.batchn_seconds,
            m.nearest_seconds,
            m.trie_vs_nearest(),
        );
    }
    // The skip-rate floor: the ROADMAP item this order exists for.
    // PR 3's nearest-base windows averaged ~26 % skipped positions at
    // 506 nodes; the trie order holds ~34 % — the structural ceiling
    // for prefix windows under the paper's GA parameterization (the
    // window depth of a crossover+mutation offspring is bounded by
    // E[min(cut, mutation)] ≈ n/3; docs/PERF.md).  The 30 % floor sits
    // between the two: it catches any regression of the trie machinery
    // while leaving headroom for graph-shape noise.
    if let Some(m) = ga_rows
        .iter()
        .rfind(|m| (500..=POOL_GATE_MAX_NODES).contains(&m.nodes))
    {
        assert!(
            m.windowed_skip_rate() >= 0.30,
            "GA windowed skip rate regressed below the 30 % floor at {} nodes: {:.1}%",
            m.nodes,
            100.0 * m.windowed_skip_rate(),
        );
    }
    let trie_head = ga_rows.last().expect("at least one GA size");
    println!(
        "ga trie-vs-nearest ({} nodes, {} generations): trie {:.2}s vs nearest {:.2}s = {:.2}x \
         (skip rate {:.1}%, mean trie depth {:.0}/{} positions, {} rolling sims)",
        trie_head.nodes,
        trie_head.generations,
        trie_head.batchn_seconds,
        trie_head.nearest_seconds,
        trie_head.trie_vs_nearest(),
        100.0 * trie_head.windowed_skip_rate(),
        trie_head.trie_depth_mean(),
        trie_head.nodes,
        trie_head.rolling_sims,
    );

    // ---- machine-readable report ----
    let mut json = String::from("{\n  \"benchmark\": \"candidate_engine_mapper\",\n");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"quick\": {},", opts.quick);
    let _ = writeln!(json, "  \"seed\": {},", opts.seed);
    let _ = writeln!(json, "  \"report_schedules\": {report_k},");
    json.push_str("  \"runs\": [\n");
    for (i, m) in rows.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"mode\": \"{}\",", m.mode);
        let _ = writeln!(json, "      \"report_schedules\": {},", m.report_schedules);
        let _ = writeln!(json, "      \"nodes\": {},", m.nodes);
        let _ = writeln!(json, "      \"edges\": {},", m.edges);
        let _ = writeln!(json, "      \"iterations\": {},", m.iterations);
        let _ = writeln!(json, "      \"serial_seconds\": {:.6},", m.serial_seconds);
        let _ = writeln!(
            json,
            "      \"serial_evaluations\": {},",
            m.serial_evaluations
        );
        let _ = writeln!(
            json,
            "      \"serial_mean_ns_per_eval\": {:.1},",
            m.serial_ns_per_eval()
        );
        let _ = writeln!(json, "      \"batch1_seconds\": {:.6},", m.batch1_seconds);
        let _ = writeln!(json, "      \"batchn_seconds\": {:.6},", m.batchn_seconds);
        let _ = writeln!(
            json,
            "      \"batchn_evaluations\": {},",
            m.batchn_evaluations
        );
        let _ = writeln!(
            json,
            "      \"batch_mean_ns_per_candidate\": {:.1},",
            m.batch_ns_per_candidate()
        );
        let _ = writeln!(json, "      \"evals_skipped_by_pruning\": {},", m.pruned);
        let _ = writeln!(json, "      \"memo_hits\": {},", m.memo_hits);
        let _ = writeln!(json, "      \"memo_hit_rate\": {:.4},", m.memo_hit_rate());
        let _ = writeln!(json, "      \"simulated\": {},", m.simulated);
        let _ = writeln!(json, "      \"trivial_skips\": {},", m.trivial);
        let _ = writeln!(json, "      \"schedule_sims\": {},", m.sched_simulated);
        let _ = writeln!(
            json,
            "      \"schedule_cutoff_aborts\": {},",
            m.sched_aborted
        );
        let _ = writeln!(json, "      \"schedule_memo_hits\": {},", m.sched_memo_hits);
        let _ = writeln!(json, "      \"speedup_1_thread\": {:.3},", m.speedup_1t());
        let _ = writeln!(json, "      \"speedup_n_threads\": {:.3}", m.speedup_nt());
        let _ = writeln!(json, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"ga_runs\": [\n");
    for (i, m) in ga_rows.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"nodes\": {},", m.nodes);
        let _ = writeln!(json, "      \"edges\": {},", m.edges);
        let _ = writeln!(json, "      \"generations\": {},", m.generations);
        let _ = writeln!(json, "      \"serial_seconds\": {:.6},", m.serial_seconds);
        let _ = writeln!(
            json,
            "      \"serial_evaluations\": {},",
            m.serial_evaluations
        );
        let _ = writeln!(json, "      \"batch1_seconds\": {:.6},", m.batch1_seconds);
        let _ = writeln!(json, "      \"batchn_seconds\": {:.6},", m.batchn_seconds);
        let _ = writeln!(json, "      \"scoped_seconds\": {:.6},", m.scoped_seconds);
        let _ = writeln!(json, "      \"pool_vs_scoped\": {:.3},", m.pool_vs_scoped());
        let _ = writeln!(json, "      \"nearest_seconds\": {:.6},", m.nearest_seconds);
        let _ = writeln!(
            json,
            "      \"trie_vs_nearest\": {:.3},",
            m.trie_vs_nearest()
        );
        let _ = writeln!(json, "      \"pool_batches\": {},", m.pool_batches);
        let _ = writeln!(json, "      \"pool_dispatches\": {},", m.pool_dispatches);
        let _ = writeln!(json, "      \"scoped_spawns\": {},", m.scoped_spawns);
        let _ = writeln!(
            json,
            "      \"batchn_evaluations\": {},",
            m.batchn_evaluations
        );
        let _ = writeln!(json, "      \"positions\": {},", m.positions);
        let _ = writeln!(
            json,
            "      \"nearest_positions\": {},",
            m.nearest_positions
        );
        let _ = writeln!(json, "      \"full_sims\": {},", m.full_sims);
        let _ = writeln!(json, "      \"windowed_sims\": {},", m.windowed_sims);
        let _ = writeln!(
            json,
            "      \"windowed_skip_positions\": {},",
            m.windowed_skip
        );
        let _ = writeln!(
            json,
            "      \"windowed_skip_rate\": {:.4},",
            m.windowed_skip_rate()
        );
        let _ = writeln!(json, "      \"rolling_sims\": {},", m.rolling_sims);
        let _ = writeln!(
            json,
            "      \"prefix_shared_positions\": {},",
            m.prefix_shared_positions
        );
        let _ = writeln!(
            json,
            "      \"trie_depth_mean\": {:.1},",
            m.trie_depth_mean()
        );
        let _ = writeln!(json, "      \"memo_hits\": {},", m.memo_hits);
        let _ = writeln!(json, "      \"batch_dups\": {},", m.batch_dups);
        let _ = writeln!(json, "      \"memo_hit_rate\": {:.4},", m.memo_hit_rate());
        let _ = writeln!(json, "      \"trails_recorded\": {},", m.trails_recorded);
        let _ = writeln!(json, "      \"memo_peak\": {},", m.memo_peak);
        let _ = writeln!(json, "      \"memo_evictions\": {},", m.memo_evictions);
        let _ = writeln!(json, "      \"speedup_1_thread\": {:.3},", m.speedup_1t());
        let _ = writeln!(json, "      \"speedup_n_threads\": {:.3}", m.speedup_nt());
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < ga_rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"ga_generations\": {ga_generations},");
    let _ = writeln!(json, "  \"ga_headline_nodes\": {},", ga_head.nodes);
    let _ = writeln!(
        json,
        "  \"ga_headline_speedup\": {:.3},",
        ga_head.speedup_nt()
    );
    match pool_head {
        Some(h) => {
            let _ = writeln!(json, "  \"ga_pool_gate_nodes\": {},", h.nodes);
            let _ = writeln!(json, "  \"ga_pool_vs_scoped\": {:.3},", h.pool_vs_scoped());
        }
        None => {
            let _ = writeln!(json, "  \"ga_pool_gate_nodes\": null,");
            let _ = writeln!(json, "  \"ga_pool_vs_scoped\": null,");
        }
    }
    let _ = writeln!(
        json,
        "  \"ga_trie_vs_nearest\": {:.3},",
        trie_head.trie_vs_nearest()
    );
    let _ = writeln!(
        json,
        "  \"ga_windowed_skip_rate\": {:.4},",
        trie_head.windowed_skip_rate()
    );
    match bfs_head {
        Some(head) => {
            let _ = writeln!(json, "  \"headline_nodes\": {},", head.nodes);
            let _ = writeln!(json, "  \"headline_speedup\": {:.3},", head.speedup_nt());
        }
        None => {
            let _ = writeln!(json, "  \"headline_nodes\": null,");
            let _ = writeln!(json, "  \"headline_speedup\": null,");
        }
    }
    match report_head {
        Some(head) => {
            let _ = writeln!(json, "  \"report_headline_nodes\": {},", head.nodes);
            let _ = writeln!(
                json,
                "  \"report_headline_speedup\": {:.3}",
                head.speedup_nt()
            );
        }
        None => {
            let _ = writeln!(json, "  \"report_headline_nodes\": null,");
            let _ = writeln!(json, "  \"report_headline_speedup\": null");
        }
    }
    json.push_str("}\n");
    write_report(&opts, "BENCH_mapper.json", &json);
}

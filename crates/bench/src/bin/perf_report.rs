//! `perf_report` — measures the incremental + parallel candidate engine
//! against the serial seed path and emits machine-readable
//! `BENCH_mapper.json`.
//!
//! For each graph size it runs the full `SeriesParallel`-strategy mapper
//! (exhaustive search) three ways:
//!
//! * `serial` — `decomposition_map_reference`, the seed implementation:
//!   one full simulation per candidate per iteration, single-threaded,
//! * `batch1` — the engine on **one** thread (isolates the pruning +
//!   memoization win; zero thread spawns),
//! * `batchN` — the engine on `--threads N` workers (default 8).
//!
//! All three produce bit-identical mappings (asserted here, proven at
//! scale by `tests/equivalence.rs`).  The headline row is the 500-node
//! layered DAG; `--quick` shrinks sizes for smoke runs.
//!
//! Usage: `cargo run --release -p spmap-bench --bin perf_report
//!         [--quick] [--threads 8] [--seed 2025]`

use std::fmt::Write as _;
use std::time::Instant;

use spmap_bench::cli::Opts;
use spmap_core::{
    decomposition_map, decomposition_map_reference, EngineConfig, MapperConfig,
};
use spmap_graph::gen::{layered_random, LayeredConfig};
use spmap_graph::{augment, AugmentConfig, TaskGraph};
use spmap_model::Platform;

/// A layered (non-series-parallel) DAG of ~`nodes` tasks with the
/// paper's attribute augmentation — the mapper's stress shape.
fn layered_dag(nodes: usize, seed: u64) -> TaskGraph {
    let width = (nodes as f64).sqrt().round() as usize;
    let layers = nodes.div_ceil(width);
    let mut g = layered_random(&LayeredConfig {
        layers,
        width,
        density: 0.25,
        seed,
        edge_bytes: 50e6,
    });
    augment(&mut g, &AugmentConfig::default(), seed);
    g
}

struct Measurement {
    nodes: usize,
    edges: usize,
    serial_seconds: f64,
    serial_evaluations: u64,
    batch1_seconds: f64,
    batchn_seconds: f64,
    batchn_evaluations: u64,
    simulated: u64,
    memo_hits: u64,
    pruned: u64,
    trivial: u64,
    iterations: usize,
}

impl Measurement {
    fn speedup_1t(&self) -> f64 {
        self.serial_seconds / self.batch1_seconds
    }

    fn speedup_nt(&self) -> f64 {
        self.serial_seconds / self.batchn_seconds
    }

    fn serial_ns_per_eval(&self) -> f64 {
        self.serial_seconds * 1e9 / self.serial_evaluations.max(1) as f64
    }

    /// Engine wall time divided by *candidate decisions* — the metric
    /// that shows where pruning/memoization pay: most decisions never
    /// reach a simulation.
    fn batch_ns_per_candidate(&self) -> f64 {
        let total = self.simulated + self.memo_hits + self.pruned + self.trivial;
        self.batchn_seconds * 1e9 / total.max(1) as f64
    }

    fn memo_hit_rate(&self) -> f64 {
        let denom = self.simulated + self.memo_hits;
        if denom == 0 {
            0.0
        } else {
            self.memo_hits as f64 / denom as f64
        }
    }
}

fn measure(nodes: usize, seed: u64, threads: usize) -> Measurement {
    let g = layered_dag(nodes, seed);
    let p = Platform::reference();
    let base = MapperConfig::series_parallel();

    let t0 = Instant::now();
    let serial = decomposition_map_reference(&g, &p, &base);
    let serial_seconds = t0.elapsed().as_secs_f64();

    let engine = |t: usize| MapperConfig {
        engine: EngineConfig {
            threads: Some(t),
            ..EngineConfig::default()
        },
        ..base
    };
    let t1 = Instant::now();
    let batch1 = decomposition_map(&g, &p, &engine(1));
    let batch1_seconds = t1.elapsed().as_secs_f64();
    let tn = Instant::now();
    let batchn = decomposition_map(&g, &p, &engine(threads));
    let batchn_seconds = tn.elapsed().as_secs_f64();

    assert_eq!(serial.mapping, batch1.mapping, "engine must be exact");
    assert_eq!(serial.mapping, batchn.mapping, "engine must be exact");
    assert_eq!(serial.history, batchn.history, "engine must be exact");

    Measurement {
        nodes: g.node_count(),
        edges: g.edge_count(),
        serial_seconds,
        serial_evaluations: serial.evaluations,
        batch1_seconds,
        batchn_seconds,
        batchn_evaluations: batchn.evaluations,
        simulated: batchn.batch.simulated,
        memo_hits: batchn.batch.memo_hits,
        pruned: batchn.batch.pruned,
        trivial: batchn.batch.trivial,
        iterations: batchn.iterations,
    }
}

fn main() {
    let opts = Opts::parse();
    let threads = opts.threads.unwrap_or(8);
    let sizes: &[usize] = if opts.quick {
        &[60, 120]
    } else {
        &[120, 250, 500]
    };

    println!(
        "perf_report: SeriesParallel mapper, serial seed path vs candidate engine ({threads} threads)\n"
    );
    println!(
        "{:>6} {:>7} {:>10} {:>10} {:>10} {:>9} {:>9} {:>12} {:>10} {:>9}",
        "nodes", "edges", "serial", "batch1", "batchN", "x1", "xN", "pruned", "memo", "hit%"
    );

    let mut rows = Vec::new();
    for &nodes in sizes {
        let m = measure(nodes, opts.seed, threads);
        println!(
            "{:>6} {:>7} {:>9.2}s {:>9.2}s {:>9.2}s {:>8.2}x {:>8.2}x {:>12} {:>10} {:>8.1}%",
            m.nodes,
            m.edges,
            m.serial_seconds,
            m.batch1_seconds,
            m.batchn_seconds,
            m.speedup_1t(),
            m.speedup_nt(),
            m.pruned,
            m.memo_hits,
            100.0 * m.memo_hit_rate(),
        );
        rows.push(m);
    }
    let head = rows.last().expect("at least one size");
    println!(
        "\nheadline ({} nodes, {} threads): {:.2}x vs seed serial path \
         ({:.1} ns/eval serial, {:.1} ns/candidate batched)",
        head.nodes,
        threads,
        head.speedup_nt(),
        head.serial_ns_per_eval(),
        head.batch_ns_per_candidate(),
    );

    // ---- machine-readable report ----
    let mut json = String::from("{\n  \"benchmark\": \"candidate_engine_mapper\",\n");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"quick\": {},", opts.quick);
    let _ = writeln!(json, "  \"seed\": {},", opts.seed);
    json.push_str("  \"runs\": [\n");
    for (i, m) in rows.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"nodes\": {},", m.nodes);
        let _ = writeln!(json, "      \"edges\": {},", m.edges);
        let _ = writeln!(json, "      \"iterations\": {},", m.iterations);
        let _ = writeln!(json, "      \"serial_seconds\": {:.6},", m.serial_seconds);
        let _ = writeln!(json, "      \"serial_evaluations\": {},", m.serial_evaluations);
        let _ = writeln!(json, "      \"serial_mean_ns_per_eval\": {:.1},", m.serial_ns_per_eval());
        let _ = writeln!(json, "      \"batch1_seconds\": {:.6},", m.batch1_seconds);
        let _ = writeln!(json, "      \"batchn_seconds\": {:.6},", m.batchn_seconds);
        let _ = writeln!(json, "      \"batchn_evaluations\": {},", m.batchn_evaluations);
        let _ = writeln!(json, "      \"batch_mean_ns_per_candidate\": {:.1},", m.batch_ns_per_candidate());
        let _ = writeln!(json, "      \"evals_skipped_by_pruning\": {},", m.pruned);
        let _ = writeln!(json, "      \"memo_hits\": {},", m.memo_hits);
        let _ = writeln!(json, "      \"memo_hit_rate\": {:.4},", m.memo_hit_rate());
        let _ = writeln!(json, "      \"simulated\": {},", m.simulated);
        let _ = writeln!(json, "      \"trivial_skips\": {},", m.trivial);
        let _ = writeln!(json, "      \"speedup_1_thread\": {:.3},", m.speedup_1t());
        let _ = writeln!(json, "      \"speedup_n_threads\": {:.3}", m.speedup_nt());
        let _ = writeln!(json, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"headline_nodes\": {},", head.nodes);
    let _ = writeln!(json, "  \"headline_speedup\": {:.3}", head.speedup_nt());
    json.push_str("}\n");
    std::fs::write("BENCH_mapper.json", &json).expect("write BENCH_mapper.json");
    println!("\nwrote BENCH_mapper.json");
}

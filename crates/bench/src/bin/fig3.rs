//! Fig. 3 — decomposition mapping vs. three MILPs on random SP graphs.
//!
//! Paper setup: graph sizes 5–30 (ZhouLiu only up to 20 due to 5-minute
//! timeouts), 30 graphs per size, relative improvement and execution
//! time.  Defaults here are laptop-scale (10 graphs, step 5, smaller
//! MILP budgets — our simplex is slower than Gurobi, see EXPERIMENTS.md);
//! `--full` raises replicates and the ZhouLiu size cap, `--quick` is a
//! smoke test.

use spmap_bench::cli::Opts;
use spmap_bench::sweep::{report, run_sweep, Point};
use spmap_bench::workload::{cell_seed, sp_workload};
use spmap_bench::Algo;
use spmap_model::Platform;

fn main() {
    let opts = Opts::parse();
    let replicates = opts.replicates(10, 2, 30);
    let step = opts.step.unwrap_or(5);
    let sizes: Vec<usize> = (5..=30).step_by(step).collect();
    let scale = if opts.quick { 10 } else { 1 };
    let zhou_max = if opts.full { 20 } else { 10 };
    // Our dense-tableau simplex cannot solve WGDP-Time root LPs beyond
    // ~15 tasks within laptop budgets (the paper's Gurobi managed ~40);
    // the blow-up shape is preserved at a smaller scale.
    let wgdp_time_max = if opts.full { 30 } else { 15 };
    let algos = [
        Algo::WgdpTime {
            time_limit_ms: 20_000 / scale,
        },
        Algo::WgdpDevice {
            time_limit_ms: 10_000 / scale,
        },
        Algo::ZhouLiu {
            time_limit_ms: 30_000 / scale,
        },
        Algo::SingleNode,
        Algo::SeriesParallel,
    ];
    let points: Vec<Point> = sizes
        .iter()
        .map(|&n| Point {
            label: n.to_string(),
            graphs: sp_workload(opts.seed ^ 3, n, replicates),
            seed: cell_seed(opts.seed ^ 3, n, 777),
        })
        .collect();
    let result = run_sweep(&points, &algos, &Platform::reference(), |pi, ai| {
        (matches!(algos[ai], Algo::ZhouLiu { .. }) && sizes[pi] > zhou_max)
            || (matches!(algos[ai], Algo::WgdpTime { .. }) && sizes[pi] > wgdp_time_max)
    });
    report(
        "fig3",
        "tasks",
        &points,
        &algos,
        &result,
        (
            "Fig. 3a (random SP graphs, MILPs vs decomposition)",
            "Fig. 3b",
        ),
    );
    println!("\nNote: ZhouLiu cells beyond {zhou_max} tasks and WGDP-Time cells beyond {wgdp_time_max} tasks are skipped");
    println!("(paper: 5-min Gurobi timeouts beyond 20 resp. minutes-long solves at 30-40; our simplex scales lower).");
}

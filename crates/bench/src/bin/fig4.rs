//! Fig. 4 — HEFT/PEFT vs. decomposition mapping (basic and FirstFit) on
//! random SP graphs of 5–200 tasks.
//!
//! Expected shape (paper): HEFT/PEFT quality decays with graph size
//! while decomposition stays flat; SeriesParallel ≈ +5 % over
//! SingleNode; FirstFit ≈ basic quality at a fraction of the time; the
//! SP variant becomes *faster* than single-node beyond ~50–75 tasks.

use spmap_bench::cli::Opts;
use spmap_bench::sweep::{report, run_sweep, Point};
use spmap_bench::workload::{cell_seed, sp_workload};
use spmap_bench::Algo;
use spmap_model::Platform;

fn main() {
    let opts = Opts::parse();
    let replicates = opts.replicates(10, 3, 30);
    let step = opts.step.unwrap_or(if opts.quick { 50 } else { 5 });
    let max = if opts.quick { 105 } else { 200 };
    let sizes: Vec<usize> = (5..=max).step_by(step).collect();
    let algos = [
        Algo::Heft,
        Algo::Peft,
        Algo::SingleNode,
        Algo::SeriesParallel,
        Algo::SnFirstFit,
        Algo::SpFirstFit,
    ];
    let points: Vec<Point> = sizes
        .iter()
        .map(|&n| Point {
            label: n.to_string(),
            graphs: sp_workload(opts.seed ^ 4, n, replicates),
            seed: cell_seed(opts.seed ^ 4, n, 777),
        })
        .collect();
    let result = run_sweep(&points, &algos, &Platform::reference(), |_, _| false);
    report(
        "fig4",
        "tasks",
        &points,
        &algos,
        &result,
        (
            "Fig. 4a (random SP graphs, list schedulers vs decomposition)",
            "Fig. 4b",
        ),
    );
}

//! Fig. 6 — execution time / quality trade-off of NSGA-II over its
//! generation budget, on random SP graphs with 200 nodes.
//!
//! Expected shape (paper): quality saturates around ~200 generations;
//! even at the saturation point the GA remains 5–10× slower than the
//! decomposition heuristics (shown as reference rows).

use spmap_bench::cli::Opts;
use spmap_bench::report::{dur, pct, Table};
use spmap_bench::sweep::{run_sweep, Point};
use spmap_bench::workload::{cell_seed, sp_workload};
use spmap_bench::Algo;
use spmap_model::Platform;
use std::time::Duration;

fn main() {
    let opts = Opts::parse();
    let replicates = opts.replicates(10, 3, 30);
    let tasks = if opts.quick { 60 } else { 200 };
    let step = opts.step.unwrap_or(50);
    let gens: Vec<usize> = (step..=500).step_by(step).collect();

    // One shared workload (the x-axis is the generation budget).
    let graphs = sp_workload(opts.seed ^ 6, tasks, replicates);
    let mut algos: Vec<Algo> = gens
        .iter()
        .map(|&g| Algo::Nsga2 { generations: g })
        .collect();
    algos.push(Algo::SnFirstFit);
    algos.push(Algo::SpFirstFit);
    let points = vec![Point {
        label: tasks.to_string(),
        graphs,
        seed: cell_seed(opts.seed ^ 6, tasks, 777),
    }];
    let result = run_sweep(&points, &algos, &Platform::reference(), |_, _| false);

    let mut t = Table::new(&["generations", "rel. improvement", "exec time"]);
    let mut csv = Table::new(&["generations", "improvement", "exec_seconds"]);
    for (ai, &g) in gens.iter().enumerate() {
        let imp = result.improvement[0][ai].unwrap();
        let ex = result.exec_seconds[0][ai].unwrap();
        t.row(vec![
            g.to_string(),
            pct(imp),
            dur(Duration::from_secs_f64(ex)),
        ]);
        csv.row(vec![g.to_string(), format!("{imp:.6}"), format!("{ex:.6}")]);
    }
    for (k, name) in ["SNFirstFit", "SPFirstFit"].iter().enumerate() {
        let ai = gens.len() + k;
        let imp = result.improvement[0][ai].unwrap();
        let ex = result.exec_seconds[0][ai].unwrap();
        t.row(vec![
            (*name).to_string(),
            pct(imp),
            dur(Duration::from_secs_f64(ex)),
        ]);
        csv.row(vec![
            (*name).to_string(),
            format!("{imp:.6}"),
            format!("{ex:.6}"),
        ]);
    }
    println!(
        "\nFig. 6 — NSGA-II generations trade-off on {}-node random SP graphs ({} graphs)",
        tasks, replicates
    );
    t.print();
    let p = csv.write_csv("fig6_generations.csv");
    println!("\nCSV: {}", p.display());
}

//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. **γ-threshold sweep** — the paper (§IV-B) finds that "using a
//!    γ-threshold heuristic with γ > 1 does not provide a significant
//!    benefit in comparison with the FirstFit variant"; this ablation
//!    sweeps γ ∈ {1, 1.5, 2, 4, ∞(basic)} and reports quality and
//!    evaluation counts.
//! 2. **Cut-policy sweep** — Alg. 1 leaves the conflict cut open
//!    ("choose any"); the paper's Fig. 2 discussion hints that cutting
//!    small subtrees keeps better decompositions.  This ablation maps
//!    almost-SP graphs under all four [`CutPolicy`] variants.

use spmap_bench::cli::Opts;
use spmap_bench::report::{mean, pct, Table};
use spmap_bench::workload::{almost_sp_workload, sp_workload};
use spmap_core::{decomposition_map, MapperConfig, SearchHeuristic, SubgraphStrategy};
use spmap_decomp::CutPolicy;
use spmap_model::Platform;

fn main() {
    let opts = Opts::parse();
    let replicates = opts.replicates(8, 3, 20);
    let platform = Platform::reference();

    // ---- Ablation 1: γ sweep on random SP graphs ----
    let tasks = if opts.quick { 40 } else { 100 };
    let graphs = sp_workload(opts.seed ^ 0xab1, tasks, replicates);
    let variants: Vec<(String, SearchHeuristic)> = vec![
        (
            "FirstFit (γ=1)".into(),
            SearchHeuristic::GammaThreshold { gamma: 1.0 },
        ),
        (
            "γ=1.5".into(),
            SearchHeuristic::GammaThreshold { gamma: 1.5 },
        ),
        ("γ=2".into(), SearchHeuristic::GammaThreshold { gamma: 2.0 }),
        ("γ=4".into(), SearchHeuristic::GammaThreshold { gamma: 4.0 }),
        ("basic (exhaustive)".into(), SearchHeuristic::Exhaustive),
    ];
    let mut t = Table::new(&["variant", "improvement", "evaluations"]);
    let mut csv = Table::new(&["variant", "improvement", "evaluations"]);
    for (name, heuristic) in &variants {
        let cfg = MapperConfig {
            heuristic: *heuristic,
            ..MapperConfig::series_parallel()
        };
        let runs: Vec<_> = spmap_par::par_map(&graphs, |_, g| {
            let r = decomposition_map(g, &platform, &cfg);
            (r.relative_improvement(), r.evaluations as f64)
        });
        let improvement = mean(runs.iter().map(|r| r.0));
        let evals = mean(runs.iter().map(|r| r.1));
        t.row(vec![name.clone(), pct(improvement), format!("{evals:.0}")]);
        csv.row(vec![
            name.clone(),
            format!("{improvement:.6}"),
            format!("{evals:.0}"),
        ]);
    }
    println!("\nAblation 1 — γ-threshold sweep (SeriesParallel mapper, {tasks}-task SP graphs, {replicates} graphs)");
    t.print();
    let p = csv.write_csv("ablation_gamma.csv");
    println!("CSV: {}\n", p.display());

    // ---- Ablation 2: cut policy on almost-SP graphs ----
    let extra = 40;
    let graphs = almost_sp_workload(opts.seed ^ 0xab2, tasks, extra, replicates);
    let policies = [
        ("SmallestSubtree", CutPolicy::SmallestSubtree),
        ("LargestSubtree", CutPolicy::LargestSubtree),
        ("FirstActive", CutPolicy::FirstActive),
        ("Random", CutPolicy::Random { seed: 9 }),
    ];
    let mut t = Table::new(&["cut policy", "improvement", "subgraphs"]);
    let mut csv = Table::new(&["cut_policy", "improvement", "subgraphs"]);
    for (name, policy) in policies {
        let cfg = MapperConfig {
            strategy: SubgraphStrategy::SeriesParallel { cut_policy: policy },
            heuristic: SearchHeuristic::first_fit(),
            ..MapperConfig::series_parallel()
        };
        let runs: Vec<_> = spmap_par::par_map(&graphs, |_, g| {
            let r = decomposition_map(g, &platform, &cfg);
            (r.relative_improvement(), r.subgraph_count as f64)
        });
        let improvement = mean(runs.iter().map(|r| r.0));
        let subs = mean(runs.iter().map(|r| r.1));
        t.row(vec![name.into(), pct(improvement), format!("{subs:.0}")]);
        csv.row(vec![
            name.into(),
            format!("{improvement:.6}"),
            format!("{subs:.0}"),
        ]);
    }
    println!(
        "Ablation 2 — Alg. 1 cut policy (SPFirstFit, {tasks}-task graphs + {extra} conflicting edges, {replicates} graphs)"
    );
    t.print();
    let p = csv.write_csv("ablation_cut_policy.csv");
    println!("CSV: {}", p.display());
}

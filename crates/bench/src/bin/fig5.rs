//! Fig. 5 — NSGA-II vs. FirstFit decomposition mapping on random SP
//! graphs of 5–100 tasks.
//!
//! Expected shape (paper): the GA reliably avoids local minima (high
//! improvement at every size, often above SingleNode, frequently below
//! SeriesParallel) but is ~30× slower at n = 100.

use spmap_bench::cli::Opts;
use spmap_bench::sweep::{report, run_sweep, Point};
use spmap_bench::workload::{cell_seed, sp_workload};
use spmap_bench::Algo;
use spmap_model::Platform;

fn main() {
    let opts = Opts::parse();
    let replicates = opts.replicates(10, 3, 30);
    let step = opts.step.unwrap_or(if opts.quick { 25 } else { 5 });
    let sizes: Vec<usize> = (5..=100).step_by(step).collect();
    let generations = if opts.quick { 100 } else { 500 };
    let algos = [
        Algo::SnFirstFit,
        Algo::SpFirstFit,
        Algo::Nsga2 { generations },
    ];
    let points: Vec<Point> = sizes
        .iter()
        .map(|&n| Point {
            label: n.to_string(),
            graphs: sp_workload(opts.seed ^ 5, n, replicates),
            seed: cell_seed(opts.seed ^ 5, n, 777),
        })
        .collect();
    let result = run_sweep(&points, &algos, &Platform::reference(), |_, _| false);
    report(
        "fig5",
        "tasks",
        &points,
        &algos,
        &result,
        ("Fig. 5a (NSGA-II vs FirstFit decomposition)", "Fig. 5b"),
    );
}

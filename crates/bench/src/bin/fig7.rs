//! Fig. 7 — almost-series-parallel sensitivity: 100-node graphs with an
//! increasing number of conflicting extra edges (0–200).
//!
//! Expected shape (paper): quality decreases slightly for everyone; the
//! series-parallel strategy converges towards the single-node strategy
//! as decomposition trees fragment; the GA stays close to both; the SP
//! execution time grows (~30 % above single-node at +200 edges).

use spmap_bench::cli::Opts;
use spmap_bench::sweep::{report, run_sweep, Point};
use spmap_bench::workload::{almost_sp_workload, cell_seed};
use spmap_bench::Algo;
use spmap_model::Platform;

fn main() {
    let opts = Opts::parse();
    let replicates = opts.replicates(10, 3, 30);
    let tasks = 100;
    let step = opts.step.unwrap_or(if opts.quick { 100 } else { 20 });
    let mut extras: Vec<usize> = (0..=200).step_by(step).collect();
    if extras.first() != Some(&0) {
        extras.insert(0, 0);
    }
    let generations = if opts.quick { 100 } else { 500 };
    let algos = [
        Algo::Heft,
        Algo::Peft,
        Algo::Nsga2 { generations },
        Algo::SnFirstFit,
        Algo::SpFirstFit,
    ];
    let points: Vec<Point> = extras
        .iter()
        .map(|&k| Point {
            label: k.to_string(),
            graphs: almost_sp_workload(opts.seed ^ 7, tasks, k, replicates),
            seed: cell_seed(opts.seed ^ 7, tasks + (k << 10), 777),
        })
        .collect();
    let result = run_sweep(&points, &algos, &Platform::reference(), |_, _| false);
    report(
        "fig7",
        "extra_edges",
        &points,
        &algos,
        &result,
        (
            "Fig. 7a (100-node almost-SP graphs, varying conflicting edges)",
            "Fig. 7b",
        ),
    );
}

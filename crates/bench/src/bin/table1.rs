//! Table I — real-world workflow benchmark sets (WfCommons-style).
//!
//! For every family the paper reports (a) the average positive relative
//! improvement over all graphs of the set and (b) the summed execution
//! time over the set.  `bwa` and `seismology` are included here for
//! completeness: the paper drops them from Table I because no algorithm
//! finds a significant acceleration — our reproduction should show ~0 %
//! for them too.
//!
//! Defaults use the Small+Medium tiers and 200 GA generations to stay
//! laptop-friendly; `--full` uses all four size tiers (montage up to
//! 1312 tasks, epigenomics up to 1695) and the paper's 500 generations.

use std::time::Duration;

use spmap_bench::cli::Opts;
use spmap_bench::report::{dur, mean, pct, Table};
use spmap_bench::{run_algo, Algo};
use spmap_model::Platform;
use spmap_workflows::{benchmark_set, Family, SizeTier};

fn main() {
    let opts = Opts::parse();
    let tier = if opts.full {
        SizeTier::Huge
    } else if opts.quick {
        SizeTier::Small
    } else {
        SizeTier::Medium
    };
    let seeds_per_size = opts.replicates(3, 2, 5);
    let generations = if opts.full {
        500
    } else if opts.quick {
        50
    } else {
        200
    };
    let algos = [
        Algo::Heft,
        Algo::Peft,
        Algo::Nsga2 { generations },
        Algo::SnFirstFit,
        Algo::SpFirstFit,
    ];
    let set = benchmark_set(tier, seeds_per_size, opts.seed);
    eprintln!(
        "table1: {} instances (max tier {:?}), {} algos, {} threads",
        set.len(),
        tier,
        algos.len(),
        spmap_par::num_threads()
    );

    let mut cells: Vec<(usize, usize)> = Vec::new();
    for ii in 0..set.len() {
        for ai in 0..algos.len() {
            cells.push((ii, ai));
        }
    }
    let outcomes = spmap_par::par_map(&cells, |_, &(ii, ai)| {
        run_algo(
            &algos[ai],
            &set[ii].graph,
            &Platform::reference(),
            opts.seed ^ (ii as u64) << 8,
        )
    });

    let mut headers = vec!["set".to_string()];
    headers.extend(algos.iter().map(|a| a.name().to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&headers_ref);
    let mut csv = Table::new(&headers_ref);
    for family in Family::all() {
        let mut imp_row = vec![family.name().to_string()];
        let mut time_row = vec![String::new()];
        let mut csv_row = vec![family.name().to_string()];
        for ai in 0..algos.len() {
            let group: Vec<_> = cells
                .iter()
                .zip(&outcomes)
                .filter(|((ii, a), _)| set[*ii].family == family && *a == ai)
                .map(|(_, o)| o)
                .collect();
            let improvement = mean(group.iter().map(|o| o.improvement));
            let total: f64 = group.iter().map(|o| o.exec_time.as_secs_f64()).sum();
            imp_row.push(pct(improvement));
            time_row.push(dur(Duration::from_secs_f64(total)));
            csv_row.push(format!("{improvement:.6}/{total:.6}"));
        }
        table.row(imp_row);
        table.row(time_row);
        csv.row(csv_row);
    }
    println!(
        "\nTable I — workflow benchmark sets (first row per set: avg positive rel. improvement; second row: summed exec time)"
    );
    table.print();
    let p = csv.write_csv("table1.csv");
    println!(
        "\nCSV (improvement/total_seconds per cell): {}",
        p.display()
    );
}

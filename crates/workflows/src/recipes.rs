//! The nine workflow-family recipes.
//!
//! Each generator targets a requested task count, derives its width
//! parameters from it, and labels tasks with their real pipeline stage
//! names.  Complexities (operations per data point) and data volumes are
//! family-specific magnitudes: compute-rich families (blast, epigenomics,
//! montage's mAdd tail, soykb) can be accelerated; transfer-dominated
//! families (bwa, seismology) cannot — matching the paper's findings.

use rand::rngs::StdRng;
use rand::SeedableRng;

use spmap_graph::{NodeId, TaskGraph};

use crate::{builder, typed_task, MB};

/// montage: `w` projections → 2w diff-fit lattice → concat/model →
/// `w` backgrounds → imgtbl → mAdd → mShrink → mJPEG.  The mosaic tail
/// (mAdd/mShrink) carries most of the work — the paper's explanation for
/// PEFT doing well here.
pub fn montage(tasks: usize, seed: u64) -> TaskGraph {
    let w = ((tasks.saturating_sub(6)) / 4).max(2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = builder();
    let projects: Vec<NodeId> = (0..w)
        .map(|_| b.add_task(typed_task(&mut rng, "mProjectPP", 6.0, 120.0)))
        .collect();
    let concat = b.add_task(typed_task(&mut rng, "mConcatFit", 2.0, 40.0));
    let mut diffs = Vec::with_capacity(2 * w);
    for i in 0..w {
        for stride in [1usize, 2] {
            let d = b.add_task(typed_task(&mut rng, "mDiffFit", 3.0, 30.0));
            b.add_edge(projects[i], d, 120.0 * MB).unwrap();
            b.add_edge(projects[(i + stride) % w], d, 120.0 * MB)
                .unwrap();
            b.add_edge(d, concat, 5.0 * MB).unwrap();
            diffs.push(d);
        }
    }
    let bg_model = b.add_task(typed_task(&mut rng, "mBgModel", 4.0, 40.0));
    b.add_edge(concat, bg_model, 10.0 * MB).unwrap();
    let imgtbl = b.add_task(typed_task(&mut rng, "mImgtbl", 1.0, 30.0));
    for &p in &projects {
        let bg = b.add_task(typed_task(&mut rng, "mBackground", 5.0, 120.0));
        b.add_edge(p, bg, 120.0 * MB).unwrap();
        b.add_edge(bg_model, bg, 1.0 * MB).unwrap();
        b.add_edge(bg, imgtbl, 120.0 * MB).unwrap();
    }
    let m_add = b.add_task(typed_task(&mut rng, "mAdd", 25.0, 900.0));
    b.add_edge(imgtbl, m_add, 900.0 * MB).unwrap();
    let shrink = b.add_task(typed_task(&mut rng, "mShrink", 8.0, 500.0));
    b.add_edge(m_add, shrink, 500.0 * MB).unwrap();
    let jpeg = b.add_task(typed_task(&mut rng, "mJPEG", 4.0, 100.0));
    b.add_edge(shrink, jpeg, 100.0 * MB).unwrap();
    b.build().expect("montage recipe is acyclic")
}

/// epigenomics: per library a fastqSplit fans into parallel 4-stage
/// chains (filterContams → sol2sanger → fast2bfq → map) merged per
/// library, then mapIndex → pileup.  Almost entirely chains — the
/// series-parallel showcase of the paper's Table I discussion.
pub fn epigenomics(tasks: usize, seed: u64) -> TaskGraph {
    let libs = ((tasks as f64 / 330.0).round() as usize).clamp(2, 8);
    let chains = ((tasks.saturating_sub(2 * libs + 2)) / (4 * libs)).max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = builder();
    let index = b.add_task(typed_task(&mut rng, "mapIndex", 5.0, 120.0));
    for _ in 0..libs {
        let split = b.add_task(typed_task(&mut rng, "fastqSplit", 2.0, 400.0));
        let merge = b.add_task(typed_task(&mut rng, "mapMerge", 6.0, 150.0));
        for _ in 0..chains {
            let chunk_mb = 400.0 / chains as f64;
            let filter = b.add_task(typed_task(&mut rng, "filterContams", 4.0, chunk_mb));
            let sol = b.add_task(typed_task(&mut rng, "sol2sanger", 3.0, chunk_mb));
            let bfq = b.add_task(typed_task(&mut rng, "fast2bfq", 3.0, chunk_mb));
            let map = b.add_task(typed_task(&mut rng, "map", 12.0, chunk_mb));
            b.add_edge(split, filter, chunk_mb * MB).unwrap();
            b.add_edge(filter, sol, chunk_mb * MB).unwrap();
            b.add_edge(sol, bfq, chunk_mb * MB).unwrap();
            b.add_edge(bfq, map, chunk_mb * MB).unwrap();
            b.add_edge(map, merge, chunk_mb * MB).unwrap();
        }
        b.add_edge(merge, index, 150.0 * MB).unwrap();
    }
    let pileup = b.add_task(typed_task(&mut rng, "pileup", 7.0, 200.0));
    b.add_edge(index, pileup, 200.0 * MB).unwrap();
    b.build().expect("epigenomics recipe is acyclic")
}

/// 1000genome: per chromosome a wide individuals fan-in plus a sifting
/// side input feeding mutation-overlap and frequency analyses.
pub fn genome1000(tasks: usize, seed: u64) -> TaskGraph {
    let chroms = ((tasks as f64 / 160.0).round() as usize).clamp(1, 8);
    let analyses = 7usize;
    let per_chrom = (tasks / chroms).max(2 + 2 * analyses + 4);
    let individuals = per_chrom - 2 - 2 * analyses;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = builder();
    // Final gather keeps multi-chromosome instances weakly connected (the
    // Pegasus workflows end in a summary/transfer stage).
    let report = b.add_task(typed_task(&mut rng, "mutations_report", 1.0, 30.0));
    for _ in 0..chroms {
        let merge = b.add_task(typed_task(&mut rng, "individuals_merge", 3.0, 120.0));
        for _ in 0..individuals {
            let ind = b.add_task(typed_task(&mut rng, "individuals", 8.0, 25.0));
            b.add_edge(ind, merge, 25.0 * MB).unwrap();
        }
        let sifting = b.add_task(typed_task(&mut rng, "sifting", 2.0, 40.0));
        for _ in 0..analyses {
            let mo = b.add_task(typed_task(&mut rng, "mutation_overlap", 6.0, 100.0));
            b.add_edge(merge, mo, 120.0 * MB).unwrap();
            b.add_edge(sifting, mo, 40.0 * MB).unwrap();
            b.add_edge(mo, report, 10.0 * MB).unwrap();
            let fr = b.add_task(typed_task(&mut rng, "frequency", 7.0, 100.0));
            b.add_edge(merge, fr, 120.0 * MB).unwrap();
            b.add_edge(sifting, fr, 40.0 * MB).unwrap();
            b.add_edge(fr, report, 10.0 * MB).unwrap();
        }
    }
    b.build().expect("1000genome recipe is acyclic")
}

/// blast: split → wide compute-heavy blastall fan → two concatenations.
pub fn blast(tasks: usize, seed: u64) -> TaskGraph {
    let w = tasks.saturating_sub(3).max(2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = builder();
    let split = b.add_task(typed_task(&mut rng, "split_fasta", 1.0, 60.0));
    let cat_blast = b.add_task(typed_task(&mut rng, "cat_blast", 1.0, 30.0));
    let cat = b.add_task(typed_task(&mut rng, "cat_all", 1.0, 30.0));
    for _ in 0..w {
        let blastall = b.add_task(typed_task(
            &mut rng,
            "blastall",
            15.0,
            60.0 / w as f64 + 20.0,
        ));
        b.add_edge(split, blastall, (60.0 / w as f64) * MB).unwrap();
        b.add_edge(blastall, cat_blast, 10.0 * MB).unwrap();
    }
    b.add_edge(cat_blast, cat, 30.0 * MB).unwrap();
    b.build().expect("blast recipe is acyclic")
}

/// bwa: index + reduce feeding a wide, *transfer-dominated* alignment
/// fan (low complexity per byte — the paper finds no acceleration here).
pub fn bwa(tasks: usize, seed: u64) -> TaskGraph {
    let w = tasks.saturating_sub(3).max(2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = builder();
    let index = b.add_task(typed_task(&mut rng, "bwa_index", 0.4, 300.0));
    let reduce = b.add_task(typed_task(&mut rng, "fastq_reduce", 0.25, 300.0));
    let cat = b.add_task(typed_task(&mut rng, "cat_bwa", 0.3, 100.0));
    for _ in 0..w {
        let align = b.add_task(typed_task(&mut rng, "bwa_align", 0.25, 200.0));
        b.add_edge(index, align, 300.0 * MB).unwrap();
        b.add_edge(reduce, align, 200.0 * MB).unwrap();
        b.add_edge(align, cat, 100.0 * MB).unwrap();
    }
    b.build().expect("bwa recipe is acyclic")
}

/// cycles: independent 3-stage parameter-sweep chains gathered by an
/// output parser and a plotting task.
pub fn cycles(tasks: usize, seed: u64) -> TaskGraph {
    let sweeps = ((tasks.saturating_sub(2)) / 3).max(2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = builder();
    let parser = b.add_task(typed_task(&mut rng, "cycles_output_parser", 2.0, 60.0));
    let plots = b.add_task(typed_task(&mut rng, "cycles_plots", 3.0, 80.0));
    for _ in 0..sweeps {
        let baseline = b.add_task(typed_task(&mut rng, "baseline_cycles", 5.0, 40.0));
        let cyc = b.add_task(typed_task(&mut rng, "cycles", 9.0, 40.0));
        let fert = b.add_task(typed_task(&mut rng, "fertilizer_increase", 6.0, 40.0));
        b.add_edge(baseline, cyc, 40.0 * MB).unwrap();
        b.add_edge(cyc, fert, 40.0 * MB).unwrap();
        b.add_edge(fert, parser, 20.0 * MB).unwrap();
    }
    b.add_edge(parser, plots, 60.0 * MB).unwrap();
    b.build().expect("cycles recipe is acyclic")
}

/// seismology: a flat, transfer-dominated deconvolution fan-in.
pub fn seismology(tasks: usize, seed: u64) -> TaskGraph {
    let w = tasks.saturating_sub(1).max(2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = builder();
    let wrapper = b.add_task(typed_task(&mut rng, "siftSTFByMisfit", 0.15, 100.0));
    for _ in 0..w {
        let decon = b.add_task(typed_task(&mut rng, "sG1IterDecon", 0.1, 200.0));
        b.add_edge(decon, wrapper, 200.0 * MB).unwrap();
    }
    b.build().expect("seismology recipe is acyclic")
}

/// soykb: per-sample 6-stage alignment chains, two haplotype callers per
/// sample, and a deep shared variant-calling tail.
pub fn soykb(tasks: usize, seed: u64) -> TaskGraph {
    let samples = ((tasks.saturating_sub(6)) / 8).max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = builder();
    let combine = b.add_task(typed_task(&mut rng, "combine_variants", 4.0, 120.0));
    for _ in 0..samples {
        let stages = [
            ("alignment_to_reference", 10.0, 150.0),
            ("sort_sam", 4.0, 150.0),
            ("dedup", 4.0, 130.0),
            ("add_replace", 3.0, 130.0),
            ("realign_target_creator", 6.0, 130.0),
            ("indel_realign", 8.0, 130.0),
        ];
        let mut prev: Option<NodeId> = None;
        let mut last = NodeId(0);
        for (name, c, mb) in stages {
            let t = b.add_task(typed_task(&mut rng, name, c, mb));
            if let Some(p) = prev {
                b.add_edge(p, t, 130.0 * MB).unwrap();
            }
            prev = Some(t);
            last = t;
        }
        for _ in 0..2 {
            let caller = b.add_task(typed_task(&mut rng, "haplotype_caller", 12.0, 100.0));
            b.add_edge(last, caller, 130.0 * MB).unwrap();
            b.add_edge(caller, combine, 60.0 * MB).unwrap();
        }
    }
    let genotype = b.add_task(typed_task(&mut rng, "genotype_gvcfs", 8.0, 150.0));
    b.add_edge(combine, genotype, 120.0 * MB).unwrap();
    let mut tails = Vec::new();
    for name in ["select_variants_snp", "select_variants_indel"] {
        let sel = b.add_task(typed_task(&mut rng, name, 3.0, 80.0));
        b.add_edge(genotype, sel, 150.0 * MB).unwrap();
        tails.push(sel);
    }
    let merge = b.add_task(typed_task(&mut rng, "merge_gcvf", 2.0, 80.0));
    for (sel, name) in tails.iter().zip(["filtering_snp", "filtering_indel"]) {
        let filt = b.add_task(typed_task(&mut rng, name, 3.0, 80.0));
        b.add_edge(*sel, filt, 80.0 * MB).unwrap();
        b.add_edge(filt, merge, 40.0 * MB).unwrap();
    }
    b.build().expect("soykb recipe is acyclic")
}

/// srasearch: per-accession prefetch → fasterq-dump → blastn chains,
/// pasted and concatenated.
pub fn srasearch(tasks: usize, seed: u64) -> TaskGraph {
    let accessions = ((tasks.saturating_sub(2)) / 3).max(2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = builder();
    let paste = b.add_task(typed_task(&mut rng, "paste", 1.0, 40.0));
    let cat = b.add_task(typed_task(&mut rng, "cat", 0.5, 40.0));
    for _ in 0..accessions {
        let prefetch = b.add_task(typed_task(&mut rng, "prefetch", 0.5, 120.0));
        let fasterq = b.add_task(typed_task(&mut rng, "fasterq_dump", 2.0, 120.0));
        let blastn = b.add_task(typed_task(&mut rng, "blastn", 10.0, 80.0));
        b.add_edge(prefetch, fasterq, 120.0 * MB).unwrap();
        b.add_edge(fasterq, blastn, 120.0 * MB).unwrap();
        b.add_edge(blastn, paste, 20.0 * MB).unwrap();
    }
    b.add_edge(paste, cat, 40.0 * MB).unwrap();
    b.build().expect("srasearch recipe is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmap_graph::ops;

    #[test]
    fn montage_shape() {
        let g = montage(260, 1);
        // Sinks: exactly one (mJPEG).
        assert_eq!(ops::sinks(&g).len(), 1);
        // Sources: the w projections.
        let w = (260 - 6) / 4;
        assert_eq!(ops::sources(&g).len(), w);
        // mAdd is the heavy hitter.
        let m_add = g
            .nodes()
            .find(|&v| g.task(v).name == "mAdd")
            .expect("mAdd exists");
        let ops_m_add = g.task(m_add).ops();
        let mean: f64 = g.nodes().map(|v| g.task(v).ops()).sum::<f64>() / g.node_count() as f64;
        assert!(ops_m_add > 20.0 * mean, "mAdd must dominate");
    }

    #[test]
    fn epigenomics_chain_length() {
        let g = epigenomics(247, 2);
        // Every 'map' task has exactly one successor (its merge).
        for v in g.nodes() {
            if g.task(v).name == "map" {
                assert_eq!(g.out_degree(v), 1);
                assert_eq!(g.in_degree(v), 1);
            }
        }
        assert_eq!(ops::sinks(&g).len(), 1, "pileup is the unique sink");
    }

    #[test]
    fn blast_is_map_reduce() {
        let g = blast(40, 3);
        assert_eq!(ops::sources(&g).len(), 1);
        assert_eq!(ops::sinks(&g).len(), 1);
        let blasts = g.nodes().filter(|&v| g.task(v).name == "blastall").count();
        assert_eq!(blasts, 37);
    }

    #[test]
    fn seismology_is_flat() {
        let g = seismology(60, 4);
        assert_eq!(g.node_count(), 60);
        assert_eq!(g.edge_count(), 59);
        assert_eq!(ops::sinks(&g).len(), 1);
        assert_eq!(ops::sources(&g).len(), 59);
    }

    #[test]
    fn genome1000_fan_structure() {
        let g = genome1000(160, 5);
        let merges = g
            .nodes()
            .filter(|&v| g.task(v).name == "individuals_merge")
            .count();
        assert!(merges >= 1);
        for v in g.nodes() {
            if g.task(v).name == "mutation_overlap" {
                assert_eq!(g.in_degree(v), 2, "merge + sifting inputs");
            }
        }
    }

    #[test]
    fn soykb_tail_depth() {
        let g = soykb(86, 6);
        // The tail runs combine -> genotype -> select -> filter -> merge:
        // depth at least 10 including a sample chain.
        let layers = ops::bfs_layers(&g);
        let max_layer = layers.iter().max().unwrap();
        assert!(*max_layer >= 10, "soykb must be deep, got {max_layer}");
    }

    #[test]
    fn srasearch_chains() {
        let g = srasearch(32, 7);
        assert_eq!(ops::sinks(&g).len(), 1);
        let blastn = g.nodes().filter(|&v| g.task(v).name == "blastn").count();
        assert_eq!(blastn, 10);
    }

    #[test]
    fn cycles_sweep_count() {
        let g = cycles(92, 8);
        let sweeps = g
            .nodes()
            .filter(|&v| g.task(v).name == "baseline_cycles")
            .count();
        assert_eq!(sweeps, 30);
        assert!(ops::topo_order(&g).is_some());
    }

    #[test]
    fn bwa_in_degree() {
        let g = bwa(20, 9);
        for v in g.nodes() {
            if g.task(v).name == "bwa_align" {
                assert_eq!(g.in_degree(v), 2, "index + reduce");
                assert_eq!(g.out_degree(v), 1);
            }
        }
    }
}
